//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Contention manager** — the paper's Karma+deadlock default vs the
//!   classic Aggressive / Polite / Timestamp policies, on the
//!   high-contention linked list (the CM-sensitive workload, §4.4.1).
//! * **Read visibility** — the paper's visible readers vs the
//!   invisible-read extension, on the read-dominated low-contention
//!   hash table.
//! * **Patience** — how long NZSTM waits for an abort acknowledgement
//!   before inflating (the cost knob behind §2.3.1's "resorting to
//!   indirection only when … unresponsive").

use nztm_bench::microbench::bench_runs;
use nztm_core::cm::{Aggressive, ContentionManager, Greedy, KarmaDeadlock, Polite, Timestamp};
use nztm_core::{NzConfig, Nzstm, ReadMode};
use nztm_sim::{DetRng, Native};
use nztm_workloads::hashtable::HashTableSet;
use nztm_workloads::linkedlist::LinkedListSet;
use nztm_workloads::set::{Contention, SetOp, TmSet};
use std::sync::Arc;

const THREADS: usize = 4;
const OPS: u64 = 800;
const SAMPLES: usize = 10;
const ITERS: u64 = 3;

/// Run a 4-thread set workload once; returns wall time.
fn run_once<T: TmSet<Nzstm<Native>> + 'static>(
    sys: Arc<Nzstm<Native>>,
    platform: Arc<Native>,
    set: Arc<T>,
    contention: Contention,
) -> std::time::Duration {
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let sys = Arc::clone(&sys);
            let set = Arc::clone(&set);
            let platform = Arc::clone(&platform);
            scope.spawn(move || {
                platform.register_thread_as(tid);
                let mut rng = DetRng::new(7).split(tid as u64);
                for _ in 0..OPS {
                    set.apply(&*sys, SetOp::draw(&mut rng, contention));
                }
            });
        }
    });
    start.elapsed()
}

fn cm_ablation() {
    let cms: Vec<(&str, Arc<dyn ContentionManager>)> = vec![
        ("karma-deadlock", Arc::new(KarmaDeadlock::default())),
        ("aggressive", Arc::new(Aggressive)),
        ("polite", Arc::new(Polite::default())),
        ("timestamp", Arc::new(Timestamp)),
        ("greedy", Arc::new(Greedy)),
    ];
    for (name, cm) in cms {
        bench_runs("cm-linkedlist-high", name, SAMPLES, ITERS, |iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let p = Native::new(THREADS);
                let s = Nzstm::new(Arc::clone(&p), Arc::clone(&cm), NzConfig::default());
                let set = Arc::new(LinkedListSet::new(
                    &*s,
                    (THREADS as u64 * OPS * 3) as usize + 1024,
                ));
                total += run_once(s, p, set, Contention::High);
            }
            total
        });
    }
}

fn read_mode_ablation() {
    for (name, mode) in [("visible", ReadMode::Visible), ("invisible", ReadMode::Invisible)] {
        bench_runs("readmode-hashtable-low", name, SAMPLES, ITERS, |iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let p = Native::new(THREADS);
                let s = Nzstm::new(
                    Arc::clone(&p),
                    Arc::new(KarmaDeadlock::default()),
                    NzConfig { read_mode: mode, ..NzConfig::default() },
                );
                let set = Arc::new(HashTableSet::new(
                    &*s,
                    (THREADS as u64 * OPS * 3) as usize + 1024,
                ));
                total += run_once(s, p, set, Contention::Low);
            }
            total
        });
    }
}

fn patience_ablation() {
    for patience in [8u64, 128, 2048] {
        bench_runs("patience-linkedlist-high", &patience.to_string(), SAMPLES, ITERS, |iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let p = Native::new(THREADS);
                let s = Nzstm::new(
                    Arc::clone(&p),
                    Arc::new(KarmaDeadlock::default()),
                    NzConfig { patience, ..NzConfig::default() },
                );
                let set = Arc::new(LinkedListSet::new(
                    &*s,
                    (THREADS as u64 * OPS * 3) as usize + 1024,
                ));
                total += run_once(s, p, set, Contention::High);
            }
            total
        });
    }
}

fn main() {
    cm_ablation();
    read_mode_ablation();
    patience_ablation();
}
