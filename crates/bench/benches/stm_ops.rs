//! Criterion micro-benchmarks: single-thread per-operation costs of
//! every software TM in the workspace.
//!
//! These are the "inherent overhead" numbers behind §4.4.2's
//! within-10% claims: an uncontended read-modify-write transaction, a
//! read-only transaction, and a bigger 8-object transaction, for NZSTM,
//! BZSTM, SCSS, DSTM, DSTM2-SF, and the global lock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nztm_core::{Bzstm, Nzstm, NzstmScss, TmSys};
use nztm_dstm::{Dstm, GlobalLockTm, ShadowStm};
use nztm_sim::Native;
use std::sync::Arc;

fn bench_system<S: TmSys>(c: &mut Criterion, name: &str, sys: Arc<S>) {
    let obj = sys.alloc(0u64);
    let objs: Vec<_> = (0..8).map(|i| sys.alloc(i as u64)).collect();

    let mut g = c.benchmark_group("txn");
    g.bench_with_input(BenchmarkId::new("rmw1", name), &(), |b, ()| {
        b.iter(|| {
            sys.execute(&mut |tx| {
                let v = S::read(tx, &obj)?;
                S::write(tx, &obj, &(v + 1))
            })
        })
    });
    g.bench_with_input(BenchmarkId::new("read1", name), &(), |b, ()| {
        b.iter(|| sys.execute(&mut |tx| S::read(tx, &obj)))
    });
    g.bench_with_input(BenchmarkId::new("rmw8", name), &(), |b, ()| {
        b.iter(|| {
            sys.execute(&mut |tx| {
                for o in &objs {
                    let v = S::read(tx, o)?;
                    S::write(tx, o, &(v + 1))?;
                }
                Ok(())
            })
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system(c, "NZSTM", Nzstm::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system(c, "BZSTM", Bzstm::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system(c, "SCSS", NzstmScss::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system(c, "DSTM", Dstm::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system(c, "DSTM2-SF", ShadowStm::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system(c, "GlobalLock", GlobalLockTm::new(p));
    }
}

criterion_group! {
    name = ops;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(ops);
