//! Micro-benchmarks: single-thread per-operation costs of every software
//! TM in the workspace.
//!
//! These are the "inherent overhead" numbers behind §4.4.2's
//! within-10% claims: an uncontended read-modify-write transaction, a
//! read-only transaction, and a bigger 8-object transaction, for NZSTM,
//! BZSTM, SCSS, DSTM, DSTM2-SF, and the global lock.

use nztm_bench::microbench::bench;
use nztm_core::{NzBuilder, TmSys};
use nztm_dstm::{Dstm, GlobalLockTm, ShadowStm};
use nztm_sim::Native;
use std::sync::Arc;

fn bench_system<S: TmSys>(name: &str, sys: Arc<S>) {
    let obj = sys.alloc(0u64);
    let objs: Vec<_> = (0..8).map(|i| sys.alloc(i as u64)).collect();

    bench("txn", &format!("rmw1/{name}"), || {
        sys.execute(|tx| {
            let v = S::read(tx, &obj)?;
            S::write(tx, &obj, &(v + 1))
        });
    });
    bench("txn", &format!("read1/{name}"), || {
        let _ = sys.execute(|tx| S::read(tx, &obj));
    });
    bench("txn", &format!("rmw8/{name}"), || {
        sys.execute(|tx| {
            for o in &objs {
                let v = S::read(tx, o)?;
                S::write(tx, o, &(v + 1))?;
            }
            Ok(())
        });
    });
}

fn main() {
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system("NZSTM", NzBuilder::new(p).build_nzstm());
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system("BZSTM", NzBuilder::new(p).build_bzstm());
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system("SCSS", NzBuilder::new(p).build_scss());
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system("DSTM", Dstm::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system("DSTM2-SF", ShadowStm::with_defaults(p));
    }
    {
        let p = Native::new(1);
        p.register_thread_as(0);
        bench_system("GlobalLock", GlobalLockTm::new(p));
    }
}
