//! Per-structure miss attribution cross-check (`bench_pr2 attrib`).
//!
//! Validates the memory-layout work by asking the same question two
//! ways and checking the answers agree: *which structures cost the most
//! cache misses on the hot path?*
//!
//! * **Sim side** — runs NZSTM on the deterministic simulator with
//!   [`nztm_sim::Machine::enable_attribution`] armed, so every charged access is
//!   binned by the structure class of its pre-translation address
//!   (reader stripes, registry slots, object headers, object data,
//!   word buffers, descriptors, locators). Misses come straight from
//!   the simulated cache model.
//! * **Native side** — per-structure miss counters do not exist on real
//!   hardware without PEBS/IBS address sampling, and this container has
//!   no PMU access (`perf` is absent and hardware events are not
//!   exposed). Instead the native run collects engine statistics
//!   ([`TmStats`]) and feeds them through an explicit traffic model:
//!   each class is weighted by the number of *shared-line* accesses the
//!   protocol performs on it per operation — the accesses that turn
//!   into coherence misses under contention. When a working `perf`
//!   binary is present it is recorded in the report (so a PMU-equipped
//!   host can see whole-process miss counts next to the model), but the
//!   per-structure ranking always comes from the model.
//!
//! The check passes when the two sides agree on the **top-2 miss
//! contributors** per workload. Disagreements are not an error exit —
//! they are recorded in the JSON report (`agree: false`) and belong in
//! EXPERIMENTS.md with an explanation.

use crate::hotpath::{HotWorkload, OpDriver};
use crate::suite::paper_machine;
use nztm_core::{NzBuilder, Nzstm, TmStats};
use nztm_sim::attrib::{ClassStats, StructClass};
use nztm_sim::{DetRng, Native, SimPlatform};
use std::sync::Arc;

/// Workloads the cross-check runs — the acceptance criteria name
/// read-heavy and write-heavy; transfer rides along as a mixed probe.
pub const ATTRIB_WORKLOADS: &[&str] = &["read-heavy", "write-heavy"];

/// One workload's two-sided attribution.
#[derive(Clone, Debug)]
pub struct AttribComparison {
    pub workload: String,
    pub threads: usize,
    /// Simulated per-class counters, in [`StructClass::ALL`] order.
    pub sim: Vec<(StructClass, ClassStats)>,
    /// Native model weights (estimated shared-line accesses), in
    /// [`StructClass::ALL`] order.
    pub native: Vec<(StructClass, f64)>,
    /// Top-2 classes by simulated misses (classes with zero accesses
    /// never rank).
    pub sim_top2: Vec<StructClass>,
    /// Top-2 classes by native model weight.
    pub native_top2: Vec<StructClass>,
    /// Set equality of the two top-2 lists (order-insensitive).
    pub agree: bool,
}

/// The full cross-check report.
#[derive(Clone, Debug)]
pub struct AttribReport {
    pub threads: usize,
    pub ops_per_thread: u64,
    /// Where the native ranking came from. Always `"engine-stats"`
    /// today; kept in the schema so a future PEBS-based ranking can
    /// announce itself.
    pub native_source: String,
    /// Whether a runnable `perf` binary was found (context only).
    pub perf_available: bool,
    pub comparisons: Vec<AttribComparison>,
}

impl AttribReport {
    /// True iff every workload's top-2 sets agree.
    pub fn all_agree(&self) -> bool {
        self.comparisons.iter().all(|c| c.agree)
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"ops_per_thread\": {},\n", self.ops_per_thread));
        s.push_str(&format!("  \"native_source\": \"{}\",\n", self.native_source));
        s.push_str(&format!("  \"perf_available\": {},\n", self.perf_available));
        s.push_str(&format!("  \"all_agree\": {},\n", self.all_agree()));
        s.push_str("  \"workloads\": [\n");
        for (i, c) in self.comparisons.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"workload\": \"{}\",\n", c.workload));
            s.push_str(&format!("      \"agree\": {},\n", c.agree));
            let names = |v: &[StructClass]| {
                v.iter().map(|c| format!("\"{}\"", c.name())).collect::<Vec<_>>().join(", ")
            };
            s.push_str(&format!("      \"sim_top2\": [{}],\n", names(&c.sim_top2)));
            s.push_str(&format!("      \"native_top2\": [{}],\n", names(&c.native_top2)));
            s.push_str("      \"sim\": [\n");
            for (j, (class, st)) in c.sim.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"class\": \"{}\", \"accesses\": {}, \"writes\": {}, \
                     \"misses\": {}, \"mem_accesses\": {}, \"remote_transfers\": {}, \
                     \"invalidating_writes\": {}}}{}\n",
                    class.name(),
                    st.accesses,
                    st.writes,
                    st.misses(),
                    st.mem_accesses,
                    st.remote_transfers,
                    st.invalidating_writes,
                    if j + 1 < c.sim.len() { "," } else { "" }
                ));
            }
            s.push_str("      ],\n");
            s.push_str("      \"native\": [\n");
            for (j, (class, w)) in c.native.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"class\": \"{}\", \"weight\": {:.1}}}{}\n",
                    class.name(),
                    w,
                    if j + 1 < c.native.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.comparisons.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// Run NZSTM on the simulator with attribution armed and return the
/// measured-phase per-class counters.
///
/// Attribution must be enabled **before** the engine is constructed:
/// arming also turns on the process-global range registry, and only
/// structures allocated after that point get tagged. Counters are
/// cleared at the start of each [`nztm_sim::Machine::run`], so the
/// warmup phase does not pollute the measured numbers.
pub(crate) fn sim_attribution(
    workload: HotWorkload,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> Vec<(StructClass, ClassStats)> {
    let (machine, platform) = paper_machine(threads);
    machine.enable_attribution();
    let sys: Arc<Nzstm<SimPlatform>> = NzBuilder::new(Arc::clone(&platform)).build_nzstm();

    // Setup on core 0, so allocation is charged (and tagged) in-model.
    let driver: Arc<OpDriver<Nzstm<SimPlatform>>> = {
        let slot: Arc<nztm_sim::sync::Mutex<Option<OpDriver<Nzstm<SimPlatform>>>>> =
            Arc::new(nztm_sim::sync::Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let sys2 = Arc::clone(&sys);
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(move || *slot2.lock() = Some(OpDriver::new(&*sys2, workload)))];
        for _ in 1..threads {
            bodies.push(Box::new(|| {}));
        }
        machine.run(bodies);
        let built = slot.lock().take().expect("setup built the driver");
        Arc::new(built)
    };

    let run_phase = |ops: u64, seed: u64| {
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..threads)
            .map(|tid| {
                let sys = Arc::clone(&sys);
                let driver = Arc::clone(&driver);
                Box::new(move || {
                    let mut rng = DetRng::new(seed).split(tid as u64 + 1);
                    for _ in 0..ops {
                        driver.one_op(&*sys, &mut rng);
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        machine.run(bodies);
    };

    run_phase((ops_per_thread / 4).max(4), seed ^ 0x5EED);
    sys.reset_stats();
    run_phase(ops_per_thread, seed);
    machine.attribution().expect("attribution was enabled")
}

/// Run NZSTM on native threads and return the measured-phase engine
/// statistics that feed the traffic model.
fn native_stats(
    workload: HotWorkload,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> TmStats {
    let platform = Native::new(threads.max(1));
    platform.register_thread_as(0);
    let sys: Arc<Nzstm<Native>> = NzBuilder::new(Arc::clone(&platform)).build_nzstm();
    let driver = Arc::new(OpDriver::new(&*sys, workload));
    let warmup = (ops_per_thread / 4).max(4);
    let start = std::sync::Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let platform = Arc::clone(&platform);
            let sys = Arc::clone(&sys);
            let driver = Arc::clone(&driver);
            let start = &start;
            scope.spawn(move || {
                platform.register_thread_as(tid);
                let mut rng = DetRng::new(seed).split(tid as u64 + 1);
                for _ in 0..warmup {
                    driver.one_op(&*sys, &mut rng);
                }
                start.wait(); // parked; main resets stats
                start.wait();
                for _ in 0..ops_per_thread {
                    driver.one_op(&*sys, &mut rng);
                }
            });
        }
        start.wait();
        sys.reset_stats();
        start.wait();
    });
    platform.register_thread_as(0);
    sys.stats_snapshot()
}

/// The native traffic model: estimated shared-line accesses per class,
/// derived from engine statistics.
///
/// The weights count the protocol's accesses to *cross-thread-shared*
/// cache lines — the ones that miss under contention. Per-event costs
/// (from the engine's hot path, `engine.rs`):
///
/// * `obj_headers` — every visible read RMWs the readers word twice
///   (arrive + depart) on the header line; every acquire CASes the
///   owner word, publishes the backup pointer, and bumps the version:
///   `2·reads + 3·acquires`.
/// * `obj_data` — reads load data in place (shared-read, misses only
///   when a writer invalidates); writers write in place and read the
///   old value for the backup: `reads + 2·acquires`. **Layout
///   folding:** with the zero-indirection layout, data words that fit
///   the first cache line (32-byte header + up to 4 words) share the
///   header's line, so their traffic is attributed to `obj_headers` —
///   exactly how the simulator's address-range classifier bins them.
///   The benchmark objects hold one `u64`, so the fold applies here.
/// * `word_bufs` — backup copy-out at acquire plus commit take-back.
///   Mostly core-local (pooled per thread), so it rarely *misses*, but
///   the traffic exists: `2·acquires`, discounted ×0.25 for locality.
/// * `registry_slots` — one slot publish per transaction begin/end:
///   `commits + aborts`.
/// * `txn_descs` — status publish and finalize CAS per transaction,
///   plus every remote abort request CASes the victim's descriptor:
///   `2·(commits + aborts) + abort_requests_sent`.
/// * `reader_stripes` — zero at ≤ 64 threads: flat mode keeps the
///   reader bitmap in the object header (already counted there).
/// * `locators` — one per inflation.
pub fn native_model(
    st: &TmStats,
    threads: usize,
    words_per_object: usize,
) -> Vec<(StructClass, f64)> {
    let txns = (st.commits + st.aborts()) as f64;
    // First cache line: 32-byte header + 4 data words (see the layout
    // docs in nztm-core). Objects at or under that size have no
    // off-line data at all.
    let data_on_header_line = words_per_object <= 4;
    let data_traffic = st.reads as f64 + 2.0 * st.acquires as f64;
    StructClass::ALL
        .iter()
        .map(|&class| {
            let w = match class {
                StructClass::ObjHeaders => {
                    2.0 * st.reads as f64
                        + 3.0 * st.acquires as f64
                        + if data_on_header_line { data_traffic } else { 0.0 }
                }
                StructClass::ObjData => {
                    if data_on_header_line {
                        0.0
                    } else {
                        data_traffic
                    }
                }
                StructClass::WordBufs => 2.0 * st.acquires as f64 * 0.25,
                StructClass::RegistrySlots => txns,
                StructClass::TxnDescs => 2.0 * txns + st.abort_requests_sent as f64,
                StructClass::ReaderStripes => {
                    if threads <= 64 {
                        0.0
                    } else {
                        2.0 * st.reads as f64
                    }
                }
                StructClass::Locators => st.inflations as f64,
                StructClass::Other => 0.0,
            };
            (class, w)
        })
        .collect()
}

/// Top-2 classes of a `(class, value)` table, descending, zeros
/// excluded.
fn top2<T: Copy>(table: &[(StructClass, T)], value: impl Fn(&T) -> f64) -> Vec<StructClass> {
    let mut ranked: Vec<(StructClass, f64)> =
        table.iter().map(|(c, v)| (*c, value(v))).filter(|(_, v)| *v > 0.0).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    ranked.truncate(2);
    ranked.into_iter().map(|(c, _)| c).collect()
}

/// Run the full cross-check.
pub fn run_cross_check(threads: usize, ops_per_thread: u64, seed: u64) -> AttribReport {
    let perf_available = std::process::Command::new("perf")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    let comparisons = ATTRIB_WORKLOADS
        .iter()
        .map(|&name| {
            let w = HotWorkload::from_name(name);
            let sim = sim_attribution(w, threads, ops_per_thread, seed);
            let st = native_stats(w, threads, ops_per_thread, seed);
            // All hot-path benchmark objects are single-u64.
            let native = native_model(&st, threads, 1);
            let sim_top2 = top2(&sim, |c: &ClassStats| c.misses() as f64);
            let native_top2 = top2(&native, |w: &f64| *w);
            let agree = {
                let mut a = sim_top2.clone();
                let mut b = native_top2.clone();
                a.sort_by_key(|c| c.index());
                b.sort_by_key(|c| c.index());
                a == b
            };
            AttribComparison {
                workload: name.to_string(),
                threads,
                sim,
                native,
                sim_top2,
                native_top2,
                agree,
            }
        })
        .collect();
    AttribReport {
        threads,
        ops_per_thread,
        native_source: "engine-stats".to_string(),
        perf_available,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_attribution_sees_object_traffic() {
        let table = sim_attribution(HotWorkload::ReadHeavy, 2, 32, 0xA77B);
        let get = |c: StructClass| table.iter().find(|(k, _)| *k == c).unwrap().1;
        // A read-heavy NZSTM run must touch headers (visible-reader
        // RMWs) and descriptors; single-u64 objects keep their data
        // word on the header line (zero-indirection), so obj_data must
        // stay zero — the classifier binning the data word anywhere
        // else would mean the colocated layout regressed.
        assert!(get(StructClass::ObjHeaders).accesses > 0, "headers untouched: {table:?}");
        assert!(get(StructClass::TxnDescs).accesses > 0, "descriptors untouched: {table:?}");
        assert_eq!(
            get(StructClass::ObjData).accesses,
            0,
            "single-word data left the header line: {table:?}"
        );
        let tagged: u64 = table
            .iter()
            .filter(|(c, _)| *c != StructClass::Other)
            .map(|(_, s)| s.accesses)
            .sum();
        assert!(
            tagged > get(StructClass::Other).accesses,
            "tagged structures should dominate untagged traffic: {table:?}"
        );
    }

    #[test]
    fn native_model_ranks_headers_first_on_read_heavy() {
        // Synthetic read-heavy stats: many reads, few acquires.
        let st = TmStats { reads: 10_000, acquires: 400, commits: 1_300, ..Default::default() };
        // Single-word objects: data folds onto the header line, so the
        // runner-up is descriptor traffic, not obj_data.
        let model = native_model(&st, 8, 1);
        let ranked = top2(&model, |w| *w);
        assert_eq!(ranked, vec![StructClass::ObjHeaders, StructClass::TxnDescs], "{model:?}");
        // Wide objects: data words past the first line surface as their
        // own class and outrank descriptors.
        let wide = native_model(&st, 8, 12);
        let ranked = top2(&wide, |w| *w);
        assert_eq!(ranked, vec![StructClass::ObjHeaders, StructClass::ObjData], "{wide:?}");
    }

    #[test]
    fn top2_skips_zero_classes() {
        let table = vec![
            (StructClass::ReaderStripes, 0.0),
            (StructClass::ObjHeaders, 5.0),
            (StructClass::ObjData, 3.0),
            (StructClass::Locators, 0.0),
        ];
        let ranked = top2(&table, |w| *w);
        assert_eq!(ranked, vec![StructClass::ObjHeaders, StructClass::ObjData]);
    }

    #[test]
    fn cross_check_report_serializes() {
        let r = run_cross_check(2, 24, 0xC0DE);
        let json = r.to_json();
        assert!(json.contains("\"sim_top2\""));
        assert!(json.contains("\"native_source\": \"engine-stats\""));
        assert!(json.contains("\"workload\": \"read-heavy\""));
    }
}
