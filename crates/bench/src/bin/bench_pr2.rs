//! `bench_pr2` — hot-path throughput matrix and regression gate.
//!
//! ```text
//! bench_pr2 run    [--quick] [--repeat N] [--out PATH]
//! bench_pr2 check  --baseline PATH --current PATH [--tolerance 0.15] [--raw]
//! bench_pr2 attrib [--threads N] [--ops N] [--out PATH]
//! ```
//!
//! `run` measures the three hot-path workloads (read-heavy,
//! write-heavy, transfer) for BZSTM/NZSTM/SCSS (native threads) and the
//! NZTM hybrid (simulator) at 1/4/8 threads, prints the table, and
//! writes the JSON report. `check` compares two reports on
//! calibration-normalized throughput and exits nonzero if any
//! workload's geometric mean regressed beyond the tolerance. `attrib`
//! runs the sim-vs-native per-structure miss attribution cross-check
//! (see `nztm_bench::attrib`) and exits nonzero only on infrastructure
//! failure — a top-2 disagreement is reported in the JSON, not fatal.

use nztm_bench::hotpath::{check_reports_with, parse_report, run_matrix_best_of, HotScale};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench_pr2 run [--quick] [--repeat N] [--scaling] [--out PATH] [--htm-hist PATH]\n  \
         bench_pr2 check --baseline PATH --current PATH [--tolerance 0.15] [--raw]\n  \
         bench_pr2 attrib [--threads N] [--ops N] [--out PATH]\n\n\
         --scaling appends the NZSTM thread-scaling sweep (1..128 threads,\n\
         crossing the striped-reader-indicator boundary at 64).\n\
         --htm-hist writes the per-cell HTM abort-reason histogram (hybrid\n\
         cells; includes the NZTM-RTM cells on htm-native builds).\n\
         --raw gates on plain ops/s (same-machine A/B runs) instead of\n\
         calibration-normalized throughput (cross-machine baselines).\n\
         attrib cross-checks simulated per-structure miss attribution\n\
         against a native engine-stats traffic model (top-2 agreement)."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("attrib") => cmd_attrib(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    let scaling = args.iter().any(|a| a == "--scaling");
    let out = flag_value(args, "--out");
    // Best-of-N per cell; filters machine-load spikes for tight-
    // tolerance comparisons.
    let repeat: usize = match flag_value(args, "--repeat").unwrap_or("1").parse() {
        Ok(n) if n >= 1 => n,
        _ => return usage(),
    };
    let (mode, scale) = if quick {
        ("quick", HotScale::quick())
    } else {
        ("full", HotScale::full())
    };
    let report = run_matrix_best_of(mode, &scale, true, repeat, scaling);
    println!("{}", report.render_text());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    } else {
        println!("{}", report.to_json());
    }
    if let Some(path) = flag_value(args, "--htm-hist") {
        if let Err(e) = std::fs::write(path, report.htm_histogram_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_attrib(args: &[String]) -> ExitCode {
    let threads: usize = match flag_value(args, "--threads").unwrap_or("4").parse() {
        Ok(n) if n >= 1 => n,
        _ => return usage(),
    };
    // Per-thread ops: the sim side is the cost driver (~1000x slower
    // per op than native); 192/thread keeps the 4-thread check under a
    // minute while still exercising warmed pools.
    let ops: u64 = match flag_value(args, "--ops").unwrap_or("192").parse() {
        Ok(n) if n >= 1 => n,
        _ => return usage(),
    };
    let report = nztm_bench::attrib::run_cross_check(threads, ops, 0xB24C);
    for c in &report.comparisons {
        let names = |v: &[nztm_sim::StructClass]| {
            v.iter().map(|c| c.name()).collect::<Vec<_>>().join(", ")
        };
        eprintln!(
            "{:<12} sim top-2: [{}]  native top-2: [{}]  agree={}",
            c.workload,
            names(&c.sim_top2),
            names(&c.native_top2),
            c.agree
        );
    }
    eprintln!(
        "attrib cross-check: {} (native_source={}, perf_available={})",
        if report.all_agree() { "top-2 AGREE" } else { "top-2 DISAGREE (see report)" },
        report.native_source,
        report.perf_available
    );
    let json = report.to_json();
    if let Some(path) = flag_value(args, "--out") {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    } else {
        println!("{json}");
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (Some(base_path), Some(cur_path)) =
        (flag_value(args, "--baseline"), flag_value(args, "--current"))
    else {
        return usage();
    };
    let tolerance: f64 = match flag_value(args, "--tolerance").unwrap_or("0.15").parse() {
        Ok(t) => t,
        Err(_) => return usage(),
    };
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|s| parse_report(&s).map_err(|e| format!("parsing {path}: {e}")))
    };
    let (base, cur) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let raw = args.iter().any(|a| a == "--raw");
    let outcome = check_reports_with(&base, &cur, tolerance, raw);
    println!("{}", outcome.report);
    if outcome.ok {
        println!("bench gate: OK (tolerance {:.0}%)", tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        println!("bench gate: FAILED (tolerance {:.0}%)", tolerance * 100.0);
        ExitCode::FAILURE
    }
}
