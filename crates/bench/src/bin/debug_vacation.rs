//! Bisection tool for the vacation conservation failure:
//! `debug_vacation <system> <cores> <relations> <txns>`
//! where system ∈ {nzstm, logtm, hybrid, bzstm}.

use nztm_bench::suite::paper_machine;
use nztm_core::cm::KarmaDeadlock;
use nztm_core::{Bzstm, NzBuilder, NzConfig, Nzstm, NzstmScss};
use nztm_htm::{AtmtpConfig, BestEffortHtm, HybridConfig, LogTmSe, NztmHybrid};
use nztm_workloads::driver::run_vacation_sim;
use nztm_workloads::stamp::vacation::VacationConfig;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let system = args.first().map(String::as_str).unwrap_or("hybrid");
    let cores: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let relations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let txns: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(40);

    let (machine, platform) = paper_machine(cores);
    let cfg = VacationConfig::high(relations, 16);
    eprintln!("running {system} cores={cores} relations={relations} txns={txns}");
    let r = match system {
        "nzstm" => {
            let s = Nzstm::new(
                Arc::clone(&platform),
                Arc::new(KarmaDeadlock::default()),
                NzConfig::default(),
            );
            run_vacation_sim(&machine, &platform, &s, cfg, txns)
        }
        "bzstm" => {
            let s: Arc<Bzstm<_>> = NzBuilder::new(Arc::clone(&platform)).build_bzstm();
            run_vacation_sim(&machine, &platform, &s, cfg, txns)
        }
        "scss" => {
            let s: Arc<NzstmScss<_>> = NzBuilder::new(Arc::clone(&platform)).build_scss();
            run_vacation_sim(&machine, &platform, &s, cfg, txns)
        }
        "logtm" => {
            let s = LogTmSe::new(Arc::clone(&platform));
            run_vacation_sim(&machine, &platform, &s, cfg, txns)
        }
        "hybrid" => {
            let stm = Nzstm::new(
                Arc::clone(&platform),
                Arc::new(KarmaDeadlock::default()),
                NzConfig::default(),
            );
            let htm = BestEffortHtm::new(Arc::clone(&platform), AtmtpConfig::default());
            htm.install();
            let s = NztmHybrid::new(stm, htm, HybridConfig::default());
            let r = run_vacation_sim(&machine, &platform, &s, cfg, txns);
            s.htm().uninstall();
            r
        }
        "hybridlog" => {
            // Like "hybrid", but with host-side event logging to localize
            // conservation failures.
            
            use nztm_sim::DetRng;
            use nztm_workloads::stamp::vacation::Vacation;
            let stm = Nzstm::new(
                Arc::clone(&platform),
                Arc::new(KarmaDeadlock::default()),
                NzConfig::default(),
            );
            let htm = BestEffortHtm::new(Arc::clone(&platform), AtmtpConfig::default());
            htm.install();
            let s = NztmHybrid::new(stm, htm, HybridConfig::default());
            // Setup on core 0.
            let slot: Arc<nztm_sim::sync::Mutex<Option<Vacation<NztmHybrid>>>> =
                Arc::new(nztm_sim::sync::Mutex::new(None));
            {
                let (s2, slot2, cfg2) = (Arc::clone(&s), Arc::clone(&slot), cfg.clone());
                let mut bodies: Vec<Box<dyn FnOnce() + Send>> =
                    vec![Box::new(move || *slot2.lock() = Some(Vacation::new(&*s2, cfg2)))];
                for _ in 1..cores {
                    bodies.push(Box::new(|| {}));
                }
                machine.run(bodies);
            }
            let v = Arc::new(slot.lock().take().unwrap());
            type Log = nztm_sim::sync::Mutex<Vec<String>>;
            let log: Arc<Log> = Arc::new(nztm_sim::sync::Mutex::new(Vec::new()));
            let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..cores)
                .map(|tid| {
                    let v = Arc::clone(&v);
                    let s = Arc::clone(&s);
                    let log = Arc::clone(&log);
                    let seed = cfg.seed;
                    Box::new(move || {
                        let mut rng = DetRng::new(seed ^ 0xBEEF).split(tid as u64);
                        for n in 0..txns {
                            let r = rng.next_below(100);
                            if r < v.cfg.user_pct {
                                if r < v.cfg.user_pct / 10 {
                                    let (c, rel) = v.delete_customer(&*s, &mut rng);
                                    log.lock().push(format!("t{tid}.{n} DEL c{c} {rel:?}"));
                                } else if let Some((k, id, c, sl)) =
                                    v.make_reservation(&*s, &mut rng)
                                {
                                    log.lock().push(format!(
                                        "t{tid}.{n} RES k{k} id{id} c{c} slot{sl}"
                                    ));
                                }
                            } else {
                                v.update_tables(&*s, &mut rng);
                            }
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            machine.run(bodies);
            // Dump events touching the suspicious resource and customers.
            for line in log.lock().iter() {
                println!("{line}");
            }
            v.check_conservation(&*s);
            println!("conservation OK");
            s.htm().uninstall();
            return;
        }
        "counter" => {
            // Mixed-path counter hammer: all cores increment one object
            // through the hybrid. Any lost update = conservation bug.
            use nztm_core::TmSys;
            let stm = Nzstm::new(
                Arc::clone(&platform),
                Arc::new(KarmaDeadlock::default()),
                NzConfig::default(),
            );
            let htm = BestEffortHtm::new(Arc::clone(&platform), AtmtpConfig::default());
            htm.install();
            let s = NztmHybrid::new(stm, htm, HybridConfig::default());
            let obj = s.alloc(0u64);
            let per = txns;
            let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..cores)
                .map(|_| {
                    let s = Arc::clone(&s);
                    let obj = Arc::clone(&obj);
                    Box::new(move || {
                        for _ in 0..per {
                            s.execute(|tx| {
                                let v = NztmHybrid::read(tx, &obj)?;
                                NztmHybrid::write(tx, &obj, &(v + 1))
                            });
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            machine.run(bodies);
            let expect = cores as u64 * per;
            let got = obj.read_untracked();
            println!("counter: got={got} expect={expect} stats={:?}", s.stats_snapshot());
            assert_eq!(got, expect, "LOST UPDATES");
            s.htm().uninstall();
            return;
        }
        other => panic!("unknown system {other}"),
    };
    println!("OK commits={} stats={:?}", r.stats.commits, r.stats);
}
