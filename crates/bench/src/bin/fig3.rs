//! Figure 3: simulator throughput — LogTM-SE vs NZTM/ATMTP vs NZSTM.
//!
//! "Figure 3 shows the completion rate of transactions (throughput) on
//! the simulator, normalized to the throughput of LogTM-SE running on a
//! single processor." X-axis: 1, 3, 7, 15 threads (§4.3: one processor
//! kept free for interrupts in the paper's simulator; we keep the same
//! counts for comparability).
//!
//! Usage: `fig3 [--full] [--json out.json] [workload ...]`

use nztm_bench::report::{Cell, FigureReport, Panel, Series};
use nztm_bench::suite::{fig3_systems, Workload, WorkloadScale, ALL_WORKLOADS};
use nztm_bench::suite::fig3_cell;

const THREADS: &[usize] = &[1, 3, 7, 15];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wl_filter: Vec<Workload> =
        args.iter().filter_map(|a| Workload::from_name(a)).collect();
    let workloads: Vec<Workload> =
        if wl_filter.is_empty() { ALL_WORKLOADS.to_vec() } else { wl_filter };
    let scale = if full { WorkloadScale::full() } else { WorkloadScale::quick() };

    let mut panels = Vec::new();
    for w in workloads {
        eprintln!("[fig3] {} ...", w.name());
        // Normalization base: LogTM-SE at 1 thread.
        let base = fig3_cell(nztm_bench::suite::SimSystem::LogTmSe, w, 1, &scale);
        let base_tp = base.throughput();

        let mut series = Vec::new();
        for sys in fig3_systems() {
            let mut cells = Vec::new();
            for &t in THREADS {
                let r = fig3_cell(sys, w, t, &scale);
                let st = &r.stats;
                cells.push(Cell {
                    threads: t,
                    raw: r.throughput(),
                    norm: if base_tp > 0.0 { r.throughput() / base_tp } else { 0.0 },
                    commits: st.commits,
                    aborts: st.aborts() + st.htm_aborts,
                    abort_rate: {
                        let attempts = st.attempts() + st.htm_aborts;
                        if attempts == 0 {
                            0.0
                        } else {
                            (st.aborts() + st.htm_aborts) as f64 / attempts as f64
                        }
                    },
                    htm_share: st.htm_commit_share(),
                    inflations: st.inflations,
                    hotspots: r.hotspots.clone(),
                });
                eprintln!(
                    "[fig3]   {:<11} t={:<2} cycles={:<12} commits={}",
                    sys.name(),
                    t,
                    r.elapsed,
                    st.commits
                );
            }
            series.push(Series { system: sys.name().to_string(), cells });
        }
        panels.push(Panel { workload: w.name().to_string(), series });
    }

    let report = FigureReport {
        figure: "Figure 3 — simulator".into(),
        normalization: "1-thread LogTM-SE".into(),
        panels,
    };
    println!("{}", report.render_text());
    if let Some(p) = json_path {
        std::fs::write(&p, report.to_json()).expect("write json");
        eprintln!("[fig3] wrote {p}");
    }
}
