//! Figure 4: "Rock machine" throughput — DSTM2-SF vs BZSTM vs SCSS vs
//! NZSTM on native threads.
//!
//! "Figure 4 shows the completion rate of transactions (throughput) on
//! the Rock machine, normalized to the throughput of a single global
//! lock (not shown) running on a single processor." X-axis: 1, 2, 4, 8,
//! 16 threads.
//!
//! The substitution for Rock silicon is the host CPU: the four software
//! systems run on real threads; their *relative* standings — within
//! ~10% of one another except kmeans (§4.4.2) — are the reproduction
//! target. (Note: on a single-core host the scaling dimension
//! degenerates; the relative system-to-system comparison at each thread
//! count remains meaningful.)
//!
//! Usage: `fig4 [--full] [--threads 1,2,4] [--json out.json] [workload ...]`

use nztm_bench::report::{Cell, FigureReport, Panel, Series};
use nztm_bench::suite::{fig4_cell, fig4_sim_cell, fig4_systems, Workload, WorkloadScale, ALL_WORKLOADS};

const THREADS: &[usize] = &[1, 2, 4, 8, 16];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    // --sim: run the four software systems on the deterministic
    // simulator instead of host threads (cycle-based, reproducible; the
    // configuration used for the S4–S6 shape claims).
    let sim = args.iter().any(|a| a == "--sim");
    let json_path =
        args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.parse().expect("thread count")).collect())
        .unwrap_or_else(|| THREADS.to_vec());
    let wl_filter: Vec<Workload> = args.iter().filter_map(|a| Workload::from_name(a)).collect();
    let workloads: Vec<Workload> =
        if wl_filter.is_empty() { ALL_WORKLOADS.to_vec() } else { wl_filter };
    let scale = if full { WorkloadScale::full() } else { WorkloadScale::quick() };

    let mut panels = Vec::new();
    let cell = |sys: &str, w: Workload, t: usize, scale: &WorkloadScale| {
        if sim {
            fig4_sim_cell(sys, w, t, scale)
        } else {
            fig4_cell(sys, w, t, scale)
        }
    };
    for w in workloads {
        eprintln!("[fig4] {} ...", w.name());
        // Normalization base: a single global lock at 1 thread.
        let base = cell("GlobalLock", w, 1, &scale);
        let base_tp = base.throughput();

        let mut series = Vec::new();
        for sys in fig4_systems() {
            let mut cells = Vec::new();
            for &t in &threads {
                let r = cell(sys, w, t, &scale);
                let st = &r.stats;
                cells.push(Cell {
                    threads: t,
                    raw: r.throughput(),
                    norm: if base_tp > 0.0 { r.throughput() / base_tp } else { 0.0 },
                    commits: st.commits,
                    aborts: st.aborts(),
                    abort_rate: st.abort_rate(),
                    htm_share: 0.0,
                    inflations: st.inflations,
                    hotspots: r.hotspots.clone(),
                });
                eprintln!(
                    "[fig4]   {:<9} t={:<2} ns={:<13} commits={} aborts={}",
                    sys,
                    t,
                    r.elapsed,
                    st.commits,
                    st.aborts()
                );
            }
            series.push(Series { system: sys.to_string(), cells });
        }
        panels.push(Panel { workload: w.name().to_string(), series });
    }

    let report = FigureReport {
        figure: if sim {
            "Figure 4 — simulated cycles (Rock substitute)".into()
        } else {
            "Figure 4 — native (Rock substitute)".into()
        },
        normalization: "1-thread single global lock".into(),
        panels,
    };
    println!("{}", report.render_text());
    if let Some(p) = json_path {
        std::fs::write(&p, report.to_json()).expect("write json");
        eprintln!("[fig4] wrote {p}");
    }
}
