//! §4.4 scalar claims (S1–S7 in DESIGN.md): print paper-claim vs
//! measured, one block per claim.
//!
//! Usage: `stats [s1 s2 ... s7]` (default: all)

use nztm_bench::suite::{
    fig3_cell, fig3_hybrid_cell_with_atmtp, fig4_sim_cell, SimSystem, Workload, WorkloadScale,
};
use nztm_htm::AtmtpConfig;

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn s1(scale: &WorkloadScale) {
    println!("\n== S1 (§4.4.1): hashtable @15p — <1% of NZTM transactions abort ==");
    let r = fig3_cell(SimSystem::NztmAtmtp, Workload::HashtableLow, 15, scale);
    let st = r.stats;
    println!("paper: <1% abort; most commit in hardware");
    println!(
        "measured: {} of transactions aborted ≥1x | hw-commit share {} (commits={} hw-aborts={} sw-aborts={})",
        pct(st.txn_abort_rate()),
        pct(st.htm_commit_share()),
        st.commits,
        st.htm_aborts,
        st.aborts()
    );
}

fn s2(scale: &WorkloadScale) {
    println!("\n== S2 (§4.4.1): @15p abort rates — linkedlist ~19% > redblack ~14% ==");
    for w in [Workload::LinkedlistHigh, Workload::RedblackHigh] {
        let r = fig3_cell(SimSystem::NztmAtmtp, w, 15, scale);
        let st = r.stats;
        println!(
            "measured {:<16} {} of transactions aborted ≥1x (attempt-level abort rate {})",
            w.name(),
            pct(st.txn_abort_rate()),
            pct((st.htm_aborts + st.aborts()) as f64
                / (st.commits + st.htm_aborts + st.aborts()).max(1) as f64)
        );
    }
    println!("paper: linkedlist ≈19%, redblack ≈14% (linkedlist > redblack)");
}

fn s3(scale: &WorkloadScale) {
    println!("\n== S3 (§4.4.1): vacation @15p — ~25% of hw txns abort on resources ==");
    // The paper's vacation transactions are far bigger than our scaled
    // port's; to recreate the same pressure on the write buffer we pair
    // big tables with ATMTP's *actual* default store-queue depth (32
    // entries — the paper explicitly enlarged it to 256 and still saw
    // ~25% resource aborts at its scale).
    let mut scale = *scale;
    scale.vacation_relations = 4096;
    scale.vacation_txns = scale.vacation_txns.min(40);
    let r = fig3_hybrid_cell_with_atmtp(
        Workload::VacationHigh,
        15,
        &scale,
        AtmtpConfig { store_buffer_entries: 32, ..AtmtpConfig::default() },
    );
    let st = r.stats;
    let hw_attempts = st.htm_commits + st.htm_aborts;
    println!(
        "measured: capacity-abort share of hw attempts = {} (capacity={} conflict={} explicit={} other={})",
        pct(st.htm_capacity_aborts as f64 / hw_attempts.max(1) as f64),
        st.htm_capacity_aborts,
        st.htm_conflict_aborts,
        st.htm_explicit_aborts,
        st.htm_other_aborts
    );
    println!("paper: ~25% of hardware transactions abort due to resource limitations");
}

fn s4(scale: &WorkloadScale) {
    // Simulated cells: deterministic cycles with the paper cache model.
    println!("\n== S4 (§4.4.2): NZSTM lags BZSTM by ~2–5% (inflation checks, no inflation) ==");
    for w in [Workload::HashtableLow, Workload::RedblackLow, Workload::LinkedlistLow] {
        let b = fig4_sim_cell("BZSTM", w, 4, scale);
        let n = fig4_sim_cell("NZSTM", w, 4, scale);
        let gap = (b.throughput() - n.throughput()) / b.throughput().max(f64::MIN_POSITIVE);
        println!(
            "measured {:<16} BZSTM/NZSTM gap {}  (inflations observed: {})",
            w.name(),
            pct(gap),
            n.stats.inflations
        );
    }
    println!("paper: NZSTM slightly lags BZSTM (≈2–5%); no actual inflation observed");
}

fn s5(scale: &WorkloadScale) {
    // Simulated cells: deterministic cycles with the paper cache model.
    println!("\n== S5 (§4.4.2): SCSS ≈ NZSTM everywhere except write-dominated kmeans ==");
    for w in [Workload::HashtableLow, Workload::RedblackLow, Workload::KmeansHigh] {
        let n = fig4_sim_cell("NZSTM", w, 4, scale);
        let s = fig4_sim_cell("SCSS", w, 4, scale);
        let ratio = s.throughput() / n.throughput().max(f64::MIN_POSITIVE);
        println!(
            "measured {:<16} SCSS/NZSTM throughput ratio {:.2} (scss stores={})",
            w.name(),
            ratio,
            s.stats.scss_stores
        );
    }
    println!("paper: ratio ≈1 except kmeans, where SCSS is significantly slower");
}

fn s6(scale: &WorkloadScale) {
    // Simulated cells: deterministic cycles with the paper cache model.
    println!("\n== S6 (§4.4.2): NZSTM significantly outperforms DSTM2-SF on kmeans ==");
    for w in [Workload::KmeansHigh, Workload::KmeansLow, Workload::HashtableLow] {
        let n = fig4_sim_cell("NZSTM", w, 4, scale);
        let d = fig4_sim_cell("DSTM2-SF", w, 4, scale);
        println!(
            "measured {:<16} NZSTM/DSTM2-SF throughput ratio {:.2}",
            w.name(),
            n.throughput() / d.throughput().max(f64::MIN_POSITIVE)
        );
    }
    println!("paper: kmeans ratio >> 1 (shadow copies double the kmeans object's cache lines);");
    println!("       other benchmarks within ~10%");
}

fn s7(scale: &WorkloadScale) {
    println!("\n== S7 (§4.4.2): NZTM hashtable-low @16p — ~75% of txns in hw, >60% over NZSTM ==");
    // The paper measured this on Rock at 16 threads; we use the simulated
    // best-effort HTM at 16 cores.
    let hy = fig3_cell(SimSystem::NztmAtmtp, Workload::HashtableLow, 16, scale);
    let sw = fig3_cell(SimSystem::Nzstm, Workload::HashtableLow, 16, scale);
    println!(
        "measured: hw-commit share {} | NZTM/NZSTM throughput ratio {:.2}",
        pct(hy.stats.htm_commit_share()),
        hy.throughput() / sw.throughput().max(f64::MIN_POSITIVE)
    );
    println!("paper: ≈75% of transactions commit in hardware; throughput >1.6× NZSTM");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { WorkloadScale::full() } else { WorkloadScale::quick() };
    let want =
        |k: &str| args.is_empty() || args.iter().all(|a| a == "--full") || args.iter().any(|a| a == k);
    if want("s1") {
        s1(&scale);
    }
    if want("s2") {
        s2(&scale);
    }
    if want("s3") {
        s3(&scale);
    }
    if want("s4") {
        s4(&scale);
    }
    if want("s5") {
        s5(&scale);
    }
    if want("s6") {
        s6(&scale);
    }
    if want("s7") {
        s7(&scale);
    }
}
