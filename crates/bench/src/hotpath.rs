//! Hot-path throughput benchmark and regression gate (`BENCH_PR2.json`).
//!
//! Three microbench workloads stress the transactional fast path —
//! exactly the costs the zero-allocation work targets:
//!
//! * `read-heavy` — 15/16 of transactions read 8 of 256 objects (with
//!   repeats, so re-read lookups fire); 1/16 update a single object.
//! * `write-heavy` — every transaction reads and increments 4 objects.
//! * `transfer` — the workloads crate's transfer bank (2-account
//!   transfers, 1-in-8 full audits): mixed read/write with conflicts.
//!
//! Each workload runs at 1/4/8 threads for BZSTM, NZSTM, and SCSS on
//! native threads, and for the NZTM hybrid on the deterministic
//! simulator (the hybrid's HTM is simulator-only, so its cells measure
//! host wall-clock *of the simulation* — comparable run-to-run on one
//! machine, not against the native cells).
//!
//! Output is a flat JSON report. Because absolute ops/s varies across
//! machines, each cell also records `norm`: ops/s divided by a
//! single-thread SplitMix64 calibration rate measured in the same
//! process. The `check` gate compares per-workload geometric means of
//! `norm` ratios, so a uniformly slower CI runner does not fail the
//! gate while a real hot-path regression does.

use crate::suite::paper_machine;
use nztm_core::cm::{AdaptiveConfig, KarmaDeadlock};
use nztm_core::{Bzstm, NzBuilder, NzConfig, Nzstm, NzstmScss, TmStats, TmSys};
use nztm_htm::{AtmtpConfig, BestEffortHtm, HybridConfig, NztmHybrid};
use nztm_sim::{DetRng, Machine, Native};
use nztm_workloads::kv::{KvTraceCfg, KvTraceGen, ShardedKv};
use std::hint::black_box;
use std::sync::{Arc, Barrier};
use std::time::Instant;

pub const WORKLOADS: &[&str] = &["read-heavy", "write-heavy", "transfer"];
pub const SYSTEMS: &[&str] = &["BZSTM", "NZSTM", "SCSS", "NOREC", "HYBRID"];
pub const THREADS: &[usize] = &[1, 4, 8];

/// The hybrid over the arch-native x86_64 RTM backend, on real threads
/// (`htm-native` builds only). Deliberately *not* in [`SYSTEMS`]: its
/// numbers depend on whether the host has RTM, so the regression gate
/// never matches these cells against a baseline — they are reported for
/// the abort-reason histogram and hw-commit ratio, with the backend
/// decision recorded in the report's `htm_native` field.
pub const NATIVE_HTM_SYSTEM: &str = "NZTM-RTM";

/// Scaling-sweep dimension (`bench_pr2 run --scaling`): NZSTM on native
/// threads across thread counts that cross the 64-thread flat reader-
/// bitmap boundary. `scale-read-mostly` reuses the read-heavy op mix
/// (visible-reader registration dominates); `scale-mixed` reuses the
/// transfer bank (conflicting read/write).
pub const SCALING_WORKLOADS: &[&str] = &["scale-read-mostly", "scale-mixed"];
pub const SCALING_SYSTEM: &str = "NZSTM";
pub const SCALING_THREADS: &[usize] = &[1, 4, 16, 64, 128];
/// Scaling cells past this thread count are reported but never gated:
/// 128 threads oversubscribe every CI runner, so their wall-clock is
/// dominated by the host scheduler, not the STM hot path.
pub const SCALING_GATE_MAX_THREADS: usize = 64;

/// Sharded KV service sweep (PR 8, runs with `--scaling`): the
/// `nztm-workloads` sharded session/wallet store — [`ShardedKv`] over
/// `nztm-tds` hash-map shards — driven by the deterministic
/// million-user zipfian trace generator ([`KvTraceGen`]), NZSTM on
/// native threads across the same thread counts as the scaling sweep.
/// Read-mostly with write bursts and cross-shard transfers; every cell
/// re-checks the wallet-conservation invariant after the run. Cells up
/// to [`SCALING_GATE_MAX_THREADS`] ride the regression gate.
pub const KV_WORKLOAD: &str = "sharded-kv";
const KV_SHARDS: usize = 8;
const KV_BUCKETS_PER_SHARD: usize = 1_024;
/// Distinct-users-per-shard headroom. Gets never allocate and puts /
/// transfers allocate only on a user's first touch, so the worst case
/// is ~0.3 allocations per trace op; this bounds even a maximally
/// unskewed full-scale run (3 samples x 54k ops) with >2x slack.
const KV_CAPACITY_PER_SHARD: usize = 16_384;

/// Contention-management sweep (runs with `--scaling`): the write-heavy
/// op mix at the abort-storm thread counts from the PR-5 sweep, NZSTM
/// with the static Karma default vs `NZSTM-ACM` (the same engine under
/// `cm::Adaptive`). These cells are gated on *abort rate*, not
/// throughput: wall-clock at 68+ threads is host-scheduler noise on CI,
/// but aborts-per-commit is a property of the protocol + policy and is
/// comparable across hosts.
pub const CM_WORKLOAD: &str = "cm-write-heavy";
pub const CM_BASE_SYSTEM: &str = "NZSTM";
pub const CM_ADAPTIVE_SYSTEM: &str = "NZSTM-ACM";
pub const CM_THREADS: &[usize] = &[68, 96, 128];
/// Thread counts whose abort-rate comparison gates the build (68 is
/// reported for trend-watching only — at the low end of the storm the
/// two policies legitimately track each other).
pub const CM_GATE_THREADS: &[usize] = &[96, 128];
/// The adaptive policy's abort rate may exceed Karma's by at most this
/// relative slack before the gate fails. The acceptance target is a
/// *reduction*; the slack only absorbs sampling noise on shared
/// runners.
pub const CM_ABORT_RATE_SLACK: f64 = 0.10;
/// Absolute slack on top of the relative one. On an oversubscribed
/// runner conflicts arrive as preemption-driven bursts: a 48k-op cell
/// often measures *zero* aborts for one policy and a ~0.02-0.03
/// aborts/commit burst for the other, in either direction — relative
/// slack is useless against a zero baseline. 0.05 sits ~3x above the
/// worst pooled burst observed while still failing a real
/// waiting-policy collapse (the mistuned escalation measured +0.23
/// over Karma).
pub const CM_ABORT_RATE_EPSILON: f64 = 0.05;
/// Ops per cm cell, independent of `--quick`: an abort *rate* needs a
/// large op count to be stable (a single preemption-driven conflict
/// cascade dominates a 4k-op quick cell), and the six cm cells are
/// cheap enough to always run at full size.
pub const CM_OPS: u64 = 48_000;

/// Ops per hybrid (simulator) cell, independent of `--quick`'s
/// native scale — the same pinning the cm cells get via [`CM_OPS`].
/// The old per-scale budget left full-mode hybrid cells at 384 total
/// ops (48 per thread at 8 threads): wall-clock granularity and warmup
/// edges dominated, so the cells' `norm` values were meaningless. The
/// simulator is deterministic, so unlike the native cells it needs op
/// volume only for timing granularity, not noise rejection; 3072 ops
/// keeps the slowest cell (write-heavy at 8 simulated cores, ~7K
/// simulated ops/s of host wall) under a second.
pub const HYBRID_OPS: u64 = 3_072;

const N_OBJECTS: usize = 256;
const N_ACCOUNTS: usize = 64;
/// Object-pool size for the cm sweep: small enough that concurrent
/// write transactions conflict by construction, so the measured abort
/// rate reflects the CM policy rather than scheduling luck (over 256
/// objects, an oversubscribed host only conflicts when a thread is
/// preempted mid-transaction — run-to-run noise swamps the policy).
const CM_N_OBJECTS: usize = 16;

/// Hardware-transaction accounting for one hybrid cell: how many
/// transactions committed on the HTM path and why the rest aborted,
/// in the CPS taxonomy the retry policy consults. Populated for the
/// simulated `HYBRID` cells and the native [`NATIVE_HTM_SYSTEM`] cells;
/// `None` on pure-software systems.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HtmCellStats {
    /// Transactions that committed on the hardware path.
    pub hw_commits: u64,
    /// Hardware aborts classified as coherence conflicts (retried).
    pub conflict_aborts: u64,
    /// Hardware aborts from overflowing hardware resources (straight to
    /// software — retrying cannot help).
    pub capacity_aborts: u64,
    /// Explicit self-aborts: the §2.4 software-conflict check fired
    /// inside a hardware transaction (`xabort` on the native path).
    pub explicit_aborts: u64,
    /// Environmental aborts (TLB miss, interrupt, spurious).
    pub other_aborts: u64,
    /// Transactions that exhausted the hardware budget and completed on
    /// the software path.
    pub fallbacks: u64,
}

impl HtmCellStats {
    fn from_tm(st: &TmStats) -> HtmCellStats {
        HtmCellStats {
            hw_commits: st.htm_commits,
            conflict_aborts: st.htm_conflict_aborts,
            capacity_aborts: st.htm_capacity_aborts,
            explicit_aborts: st.htm_explicit_aborts,
            other_aborts: st.htm_other_aborts,
            fallbacks: st.fallbacks,
        }
    }

    fn add(&mut self, o: &HtmCellStats) {
        self.hw_commits += o.hw_commits;
        self.conflict_aborts += o.conflict_aborts;
        self.capacity_aborts += o.capacity_aborts;
        self.explicit_aborts += o.explicit_aborts;
        self.other_aborts += o.other_aborts;
        self.fallbacks += o.fallbacks;
    }

    /// Fraction of the cell's commits that landed on the hardware path.
    pub fn hw_ratio(&self, commits: u64) -> f64 {
        self.hw_commits as f64 / commits.max(1) as f64
    }

    pub fn total_aborts(&self) -> u64 {
        self.conflict_aborts + self.capacity_aborts + self.explicit_aborts + self.other_aborts
    }
}

/// One measured (workload, system, threads) cell.
///
/// The headline numbers (`ops_per_sec`, `norm`, `commits`, `aborts`)
/// come from the *best* timed sample — right for a throughput gate on a
/// noisy shared host, but biased for anything conflict-related: picking
/// the fastest sample also picks the least-conflicted one, skewing
/// abort rates toward zero. The sample-distribution fields
/// (`samples`, `ops_per_sec_mean`, `ops_per_sec_p95`,
/// `abort_rate_mean`) report the whole pool so readers can see the
/// spread and an unbiased abort rate next to the best-of value.
#[derive(Clone, Debug)]
pub struct HotCell {
    pub workload: String,
    pub system: String,
    pub threads: usize,
    pub ops: u64,
    pub elapsed_ns: u64,
    pub ops_per_sec: f64,
    /// ops/s ÷ calibration ops/s — the machine-independent gate metric.
    pub norm: f64,
    pub commits: u64,
    pub aborts: u64,
    /// Timed samples behind this cell (across `--repeat` rounds too).
    pub samples: u64,
    /// Mean ops/s over all samples (best-of-unbiased central value).
    pub ops_per_sec_mean: f64,
    /// 95th-percentile ops/s over all samples (nearest-rank).
    pub ops_per_sec_p95: f64,
    /// Mean per-sample aborts/commit — the unbiased abort rate.
    pub abort_rate_mean: f64,
    /// Raw per-sample `(ops/s, aborts/commit)` pool; carried so
    /// best-of merging recomputes exact summaries, never serialized
    /// (empty on a parsed report).
    pub sample_stats: Vec<(f64, f64)>,
    /// Hardware-path accounting (hybrid cells only).
    pub htm: Option<HtmCellStats>,
}

impl HotCell {
    /// Aborts per committed transaction — the contention-sweep gate
    /// metric. Unlike ops/s it is a property of the protocol + CM
    /// policy, not the host, so it compares across machines.
    pub fn abort_rate(&self) -> f64 {
        self.aborts as f64 / self.commits.max(1) as f64
    }

    /// Recompute the sample-summary fields from the raw pool (no-op on
    /// parsed cells, whose pool is empty and whose summaries came from
    /// the JSON).
    fn refresh_sample_summary(&mut self) {
        if self.sample_stats.is_empty() {
            return;
        }
        let n = self.sample_stats.len();
        self.samples = n as u64;
        self.ops_per_sec_mean =
            self.sample_stats.iter().map(|(o, _)| o).sum::<f64>() / n as f64;
        self.abort_rate_mean =
            self.sample_stats.iter().map(|(_, r)| r).sum::<f64>() / n as f64;
        let mut ops: Vec<f64> = self.sample_stats.iter().map(|(o, _)| *o).collect();
        ops.sort_by(|a, b| a.total_cmp(b));
        let rank = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
        self.ops_per_sec_p95 = ops[rank];
    }
}

#[derive(Clone, Debug)]
pub struct HotReport {
    pub mode: String,
    pub calibration_mops: f64,
    /// One-line record of the native-HTM backend decision for this run
    /// ("not built" / "native RTM" / the fallback reason) — so a report
    /// always says which path its hybrid cells exercised, never
    /// silently. Kept comma-free for the flat JSON reader.
    pub htm_native: String,
    pub cells: Vec<HotCell>,
}

/// Iteration budget for one full run.
#[derive(Clone, Copy, Debug)]
pub struct HotScale {
    /// Total transactional ops per native cell (split across threads).
    pub native_ops: u64,
    /// Total ops per simulated (hybrid) cell — the simulator is ~1000x
    /// slower per op than native threads.
    pub sim_ops: u64,
    /// Timed samples per cell; the best is reported (best-of-N rejects
    /// scheduler noise, which on CI runners is one-sided).
    pub samples: usize,
    pub seed: u64,
}

impl HotScale {
    pub fn quick() -> Self {
        HotScale { native_ops: 4_000, sim_ops: 96, samples: 1, seed: 0xB24C }
    }

    pub fn full() -> Self {
        HotScale { native_ops: 48_000, sim_ops: 384, samples: 3, seed: 0xB24C }
    }
}

/// Measure the calibration rate: single-threaded SplitMix64 mixing, in
/// million ops per second. Everything the gate compares is divided by
/// this, so a CI runner half as fast as the committed-baseline machine
/// still produces comparable `norm` values.
pub fn calibrate() -> f64 {
    fn run(iters: u64) -> f64 {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let t = Instant::now();
        for _ in 0..iters {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            black_box(z ^ (z >> 31));
        }
        iters as f64 / t.elapsed().as_secs_f64() / 1e6
    }
    run(1 << 20); // warmup
    run(1 << 23).max(run(1 << 23))
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum HotWorkload {
    ReadHeavy,
    WriteHeavy,
    /// The write-heavy op mix over [`CM_N_OBJECTS`] objects: a
    /// conflict-by-construction storm for the contention sweep.
    CmWriteHeavy,
    Transfer,
    /// The sharded KV/session store under the million-user zipfian
    /// trace (PR 8). Ops come from a stateful per-thread [`KvTraceGen`]
    /// rather than the plain RNG — see [`OpSource`].
    ShardedKv,
}

impl HotWorkload {
    pub(crate) fn from_name(s: &str) -> HotWorkload {
        match s {
            "read-heavy" | "scale-read-mostly" => HotWorkload::ReadHeavy,
            "write-heavy" => HotWorkload::WriteHeavy,
            "cm-write-heavy" => HotWorkload::CmWriteHeavy,
            "transfer" | "scale-mixed" => HotWorkload::Transfer,
            "sharded-kv" => HotWorkload::ShardedKv,
            other => panic!("unknown workload {other:?}"),
        }
    }
}

/// The per-thread op driver shared by the native and simulated runners
/// (and the attribution cross-check in [`crate::attrib`]).
pub(crate) struct OpDriver<S: TmSys> {
    workload: HotWorkload,
    objects: Vec<S::Obj<u64>>,
    bank: Option<nztm_workloads::harness::TransferBank<S>>,
    kv: Option<ShardedKv<S>>,
}

/// Per-thread op stream: the classic workloads draw from a plain RNG;
/// the sharded KV workload replays the stateful trace generator (write
/// bursts and transfer cadence live in the generator, not the RNG).
pub(crate) enum OpSource {
    Rng(DetRng),
    Kv(KvTraceGen),
}

impl<S: TmSys> OpDriver<S> {
    pub(crate) fn new(sys: &S, workload: HotWorkload) -> Self {
        let mut kv = None;
        let (objects, bank) = match workload {
            HotWorkload::Transfer => {
                (Vec::new(), Some(nztm_workloads::harness::TransferBank::new(sys, N_ACCOUNTS, 1_000)))
            }
            HotWorkload::CmWriteHeavy => {
                ((0..CM_N_OBJECTS).map(|i| sys.alloc(i as u64)).collect(), None)
            }
            HotWorkload::ShardedKv => {
                kv = Some(ShardedKv::new(
                    sys,
                    KV_SHARDS,
                    KV_BUCKETS_PER_SHARD,
                    KV_CAPACITY_PER_SHARD,
                    100,
                ));
                (Vec::new(), None)
            }
            _ => ((0..N_OBJECTS).map(|i| sys.alloc(i as u64)).collect(), None),
        };
        OpDriver { workload, objects, bank, kv }
    }

    /// Build the op stream for one worker thread. Constructing the KV
    /// generator pays the zipfian zeta sum (one pass over the user
    /// population) — callers do this outside the timed phase.
    pub(crate) fn source(&self, seed: u64, stream: u64) -> OpSource {
        match self.workload {
            HotWorkload::ShardedKv => {
                OpSource::Kv(KvTraceGen::new(KvTraceCfg::million_users(), seed, stream))
            }
            _ => OpSource::Rng(DetRng::new(seed).split(stream)),
        }
    }

    pub(crate) fn step(&self, sys: &S, src: &mut OpSource) {
        match src {
            OpSource::Rng(rng) => self.one_op(sys, rng),
            OpSource::Kv(gen) => {
                let op = gen.next();
                black_box(self.kv.as_ref().unwrap().apply(sys, &op));
            }
        }
    }

    pub(crate) fn one_op(&self, sys: &S, rng: &mut DetRng) {
        match self.workload {
            HotWorkload::Transfer => self.bank.as_ref().unwrap().one_op(sys, rng),
            HotWorkload::ReadHeavy => {
                let n = self.objects.len() as u64;
                if rng.chance(1, 16) {
                    let obj = &self.objects[rng.next_below(n) as usize];
                    sys.execute(|tx| {
                        let v = S::read(tx, obj)?;
                        S::write(tx, obj, &v.wrapping_add(1))
                    });
                } else {
                    let mut idx = [0u64; 8];
                    for i in &mut idx {
                        *i = rng.next_below(n);
                    }
                    let sum = sys.execute(|tx| {
                        let mut acc = 0u64;
                        for &i in &idx {
                            acc = acc.wrapping_add(S::read(tx, &self.objects[i as usize])?);
                        }
                        Ok(acc)
                    });
                    black_box(sum);
                }
            }
            HotWorkload::ShardedKv => {
                unreachable!("sharded-kv ops come from the trace generator — use step()")
            }
            HotWorkload::WriteHeavy | HotWorkload::CmWriteHeavy => {
                let n = self.objects.len() as u64;
                let mut idx = [0u64; 4];
                for i in &mut idx {
                    *i = rng.next_below(n);
                }
                sys.execute(|tx| {
                    for &i in &idx {
                        let obj = &self.objects[i as usize];
                        let v = S::read(tx, obj)?;
                        S::write(tx, obj, &v.wrapping_add(1))?;
                    }
                    Ok(())
                });
            }
        }
    }
}

struct CellTiming {
    ops: u64,
    elapsed_ns: u64,
    commits: u64,
    aborts: u64,
    /// Per-sample `(ops/s, aborts/commit)` — every timed sample taken
    /// for this cell, not just the kept one.
    sample_stats: Vec<(f64, f64)>,
    htm: Option<HtmCellStats>,
}

impl CellTiming {
    fn own_sample(&self) -> (f64, f64) {
        (
            self.ops as f64 / (self.elapsed_ns.max(1) as f64 / 1e9),
            self.aborts as f64 / self.commits.max(1) as f64,
        )
    }
}

/// One timed native sample: warmup phase, stats reset while the workers
/// are parked at a barrier, then the measured phase timed between the
/// release barrier and a completion barrier. Warmup exists so the
/// measured phase sees populated descriptor/buffer free lists — the
/// steady state the zero-allocation claim is about.
fn native_sample_timed<S: TmSys>(
    platform: &Arc<Native>,
    sys: &Arc<S>,
    driver: &Arc<OpDriver<S>>,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> CellTiming {
    platform.register_thread_as(0);
    let warmup_ops = (ops_per_thread / 8).max(16);
    let start = Arc::new(Barrier::new(threads + 1));
    let done = Arc::new(Barrier::new(threads + 1));
    let mut elapsed_ns = 0u64;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let platform = Arc::clone(platform);
            let driver = Arc::clone(driver);
            let sys = Arc::clone(sys);
            let (start, done) = (Arc::clone(&start), Arc::clone(&done));
            scope.spawn(move || {
                platform.register_thread_as(tid);
                let mut src = driver.source(seed, tid as u64 + 1);
                for _ in 0..warmup_ops {
                    driver.step(&*sys, &mut src);
                }
                start.wait(); // workers parked; main resets stats
                start.wait(); // released together; measured phase
                for _ in 0..ops_per_thread {
                    driver.step(&*sys, &mut src);
                }
                done.wait();
            });
        }
        start.wait();
        sys.reset_stats();
        let t0 = Instant::now();
        start.wait();
        done.wait();
        elapsed_ns = t0.elapsed().as_nanos() as u64;
    });
    platform.register_thread_as(0);
    if let Some(bank) = &driver.bank {
        bank.assert_conserved();
    }
    if let Some(kv) = &driver.kv {
        kv.assert_conserved();
    }
    let st = sys.stats_snapshot();
    CellTiming {
        ops: ops_per_thread * threads as u64,
        elapsed_ns: elapsed_ns.max(1),
        commits: st.commits,
        aborts: st.aborts(),
        sample_stats: Vec::new(),
        htm: Some(HtmCellStats::from_tm(&st)),
    }
}

fn run_native_cell<S: TmSys>(
    sys_of: impl Fn(&Arc<Native>) -> Arc<S>,
    workload: HotWorkload,
    threads: usize,
    scale: &HotScale,
) -> CellTiming {
    let platform = Native::new(threads.max(1));
    platform.register_thread_as(0);
    let sys = sys_of(&platform);
    if crate::suite::trace_requested() {
        sys.set_tracing(true);
    }
    let driver = Arc::new(OpDriver::new(&*sys, workload));
    let ops_per_thread = (scale.native_ops / threads as u64).max(1);
    // Throughput cells keep the best-timed sample (one-sided scheduler
    // noise); cm cells *sum* all samples instead — picking the fastest
    // sample also picks the least-conflicted one, which biases an
    // abort-rate metric toward zero.
    let aggregate = workload == HotWorkload::CmWriteHeavy;
    let mut pool = Vec::new();
    let mut best: Option<CellTiming> = None;
    for s in 0..scale.samples.max(1) {
        let t = native_sample_timed(
            &platform,
            &sys,
            &driver,
            threads,
            ops_per_thread,
            scale.seed.wrapping_add(s as u64),
        );
        pool.push(t.own_sample());
        best = Some(match best.take() {
            None => t,
            Some(b) if aggregate => CellTiming {
                ops: b.ops + t.ops,
                elapsed_ns: b.elapsed_ns + t.elapsed_ns,
                commits: b.commits + t.commits,
                aborts: b.aborts + t.aborts,
                sample_stats: Vec::new(),
                htm: match (b.htm, t.htm) {
                    (Some(mut x), Some(y)) => {
                        x.add(&y);
                        Some(x)
                    }
                    (x, y) => x.or(y),
                },
            },
            Some(b) => {
                if t.elapsed_ns < b.elapsed_ns {
                    t
                } else {
                    b
                }
            }
        });
    }
    let mut best = best.unwrap();
    best.sample_stats = pool;
    best
}

/// One hybrid (simulator) cell. Wall-clock is host time spent simulating
/// the measured phase — self-consistent across runs on one machine.
fn run_hybrid_cell(workload: HotWorkload, threads: usize, scale: &HotScale) -> CellTiming {
    let (machine, platform) = paper_machine(threads);
    let stm = Nzstm::new(
        Arc::clone(&platform),
        Arc::new(KarmaDeadlock::default()),
        NzConfig::default(),
    );
    let htm = BestEffortHtm::new(Arc::clone(&platform), AtmtpConfig::default());
    htm.install();
    let sys = NztmHybrid::new(stm, htm, HybridConfig::default());
    if crate::suite::trace_requested() {
        sys.set_tracing(true);
    }

    // Setup on core 0 (allocation charges the simulated cache model).
    let driver: Arc<OpDriver<NztmHybrid>> = {
        let slot: Arc<nztm_sim::sync::Mutex<Option<OpDriver<NztmHybrid>>>> =
            Arc::new(nztm_sim::sync::Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let sys2 = Arc::clone(&sys);
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(move || *slot2.lock() = Some(OpDriver::new(&*sys2, workload)))];
        for _ in 1..threads {
            bodies.push(Box::new(|| {}));
        }
        machine.run(bodies);
        let built = slot.lock().take().expect("setup built the driver");
        Arc::new(built)
    };

    let ops_per_thread = (scale.sim_ops / threads as u64).max(1);
    let run_phase = |machine: &Arc<Machine>, ops: u64, seed: u64| {
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..threads)
            .map(|tid| {
                let sys = Arc::clone(&sys);
                let driver = Arc::clone(&driver);
                Box::new(move || {
                    let mut src = driver.source(seed, tid as u64 + 1);
                    for _ in 0..ops {
                        driver.step(&*sys, &mut src);
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        machine.run(bodies);
    };

    run_phase(&machine, (ops_per_thread / 4).max(4), scale.seed ^ 0x5EED);
    sys.reset_stats();
    let t0 = Instant::now();
    run_phase(&machine, ops_per_thread, scale.seed);
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    if let Some(bank) = &driver.bank {
        bank.assert_conserved();
    }
    if let Some(kv) = &driver.kv {
        kv.assert_conserved();
    }
    let st = sys.stats_snapshot();
    sys.htm().uninstall();
    let mut t = CellTiming {
        ops: ops_per_thread * threads as u64,
        elapsed_ns: elapsed_ns.max(1),
        commits: st.commits,
        aborts: st.aborts(),
        sample_stats: Vec::new(),
        htm: Some(HtmCellStats::from_tm(&st)),
    };
    t.sample_stats = vec![t.own_sample()];
    t
}

/// Native-HTM policy for the NZTM-RTM cells: `NZTM_HTM_NATIVE=0` forces
/// the transparent software fallback (an A/B lever for the conformance
/// lane); anything else — including unset — probes the CPU (`Auto`).
#[cfg(feature = "htm-native")]
fn native_htm_policy_from_env() -> nztm_core::NativeHtmPolicy {
    match std::env::var("NZTM_HTM_NATIVE").as_deref() {
        Ok("0") => nztm_core::NativeHtmPolicy::ForceOff,
        _ => nztm_core::NativeHtmPolicy::Auto,
    }
}

/// One NZTM-RTM cell: the same hybrid engine as the simulated `HYBRID`
/// cells, but on native threads with the arch-native RTM backend. On a
/// host without RTM the cells still run (through the transparent
/// software fallback) so the report shape is host-independent; the
/// decision lands in [`HotReport::htm_native`].
#[cfg(feature = "htm-native")]
fn run_native_htm_cell(workload: HotWorkload, threads: usize, scale: &HotScale) -> CellTiming {
    use nztm_htm::native::NativeHtm;
    let policy = native_htm_policy_from_env();
    run_native_cell(
        |p| -> Arc<NztmHybrid<Native, NativeHtm>> {
            let stm = NzBuilder::new(Arc::clone(p)).native_htm(policy).build_nzstm();
            let htm = NativeHtm::new(stm.native_htm_policy());
            NztmHybrid::new(stm, htm, HybridConfig::default())
        },
        workload,
        threads,
        scale,
    )
}

fn run_cell(workload: &str, system: &str, threads: usize, scale: &HotScale) -> CellTiming {
    let w = HotWorkload::from_name(workload);
    // Abort rates need op volume to be stable; pin cm cells to full
    // size (and at least two summed samples) even under --quick — see
    // CM_OPS and the sample aggregation in run_native_cell.
    let cm_scale;
    let mut scale = if w == HotWorkload::CmWriteHeavy && scale.native_ops < CM_OPS {
        cm_scale = HotScale { native_ops: CM_OPS, samples: scale.samples.max(2), ..*scale };
        &cm_scale
    } else {
        scale
    };
    // Hybrid cells are likewise pinned: per-scale sim budgets left them
    // with op counts too small to time (see HYBRID_OPS).
    let hybrid_scale;
    if system == "HYBRID" && scale.sim_ops < HYBRID_OPS {
        hybrid_scale = HotScale { sim_ops: HYBRID_OPS, ..*scale };
        scale = &hybrid_scale;
    }
    let mut t = match system {
        "BZSTM" => run_native_cell(
            |p| -> Arc<Bzstm<Native>> { NzBuilder::new(Arc::clone(p)).build_bzstm() },
            w,
            threads,
            scale,
        ),
        "NZSTM" => run_native_cell(
            |p| -> Arc<Nzstm<Native>> { NzBuilder::new(Arc::clone(p)).build_nzstm() },
            w,
            threads,
            scale,
        ),
        // Same engine, adaptive contention manager (ISSUE 6): the only
        // delta vs the "NZSTM" cells is the CM policy, so the abort-rate
        // comparison isolates what adaptation buys.
        "NZSTM-ACM" => run_native_cell(
            |p| -> Arc<Nzstm<Native>> {
                NzBuilder::new(Arc::clone(p))
                    .adaptive_cm(AdaptiveConfig::default())
                    .build_nzstm()
            },
            w,
            threads,
            scale,
        ),
        "SCSS" => run_native_cell(
            |p| -> Arc<NzstmScss<Native>> { NzBuilder::new(Arc::clone(p)).build_scss() },
            w,
            threads,
            scale,
        ),
        "NOREC" => run_native_cell(
            |p| -> Arc<nztm_core::Norec<Native>> { NzBuilder::new(Arc::clone(p)).build_norec() },
            w,
            threads,
            scale,
        ),
        "HYBRID" => run_hybrid_cell(w, threads, scale),
        #[cfg(feature = "htm-native")]
        s if s == NATIVE_HTM_SYSTEM => run_native_htm_cell(w, threads, scale),
        other => panic!("unknown system {other:?}"),
    };
    // Only hybrid cells carry a hardware-path breakdown; pure-software
    // systems share the stats struct but their HTM counters are
    // structurally zero — suppress them instead of reporting noise.
    if !(system == "HYBRID" || system == NATIVE_HTM_SYSTEM) {
        t.htm = None;
    }
    t
}

/// Run the full matrix and assemble the report. With `scaling`, the
/// NZSTM scaling sweep (see [`SCALING_WORKLOADS`]) is appended.
pub fn run_matrix(mode: &str, scale: &HotScale, progress: bool, scaling: bool) -> HotReport {
    let calibration_mops = calibrate();
    let mut cells = Vec::new();
    let mut measure = |w: &str, s: &str, t: usize| {
        let timing = run_cell(w, s, t, scale);
        let secs = timing.elapsed_ns as f64 / 1e9;
        let ops_per_sec = timing.ops as f64 / secs;
        let norm = ops_per_sec / (calibration_mops * 1e6);
        if progress {
            eprintln!(
                "{w:<16} {s:<7} t={t}  {:>12.0} ops/s  norm={norm:.6}  \
                 commits={} aborts={}",
                ops_per_sec, timing.commits, timing.aborts
            );
        }
        let mut cell = HotCell {
            workload: w.to_string(),
            system: s.to_string(),
            threads: t,
            ops: timing.ops,
            elapsed_ns: timing.elapsed_ns,
            ops_per_sec,
            norm,
            commits: timing.commits,
            aborts: timing.aborts,
            samples: 1,
            ops_per_sec_mean: ops_per_sec,
            ops_per_sec_p95: ops_per_sec,
            abort_rate_mean: timing.aborts as f64 / timing.commits.max(1) as f64,
            sample_stats: timing.sample_stats,
            htm: timing.htm,
        };
        cell.refresh_sample_summary();
        cells.push(cell);
    };
    for &w in WORKLOADS {
        for &s in SYSTEMS {
            for &t in THREADS {
                measure(w, s, t);
            }
        }
    }
    // Native-HTM cells ride every run of an `htm-native` build — on a
    // host without RTM they exercise (and thereby prove) the
    // transparent fallback, and the report records which.
    #[cfg(feature = "htm-native")]
    {
        if progress {
            eprintln!("native HTM: {}", crate::registry::native_htm_status());
        }
        for &w in WORKLOADS {
            for &t in THREADS {
                measure(w, NATIVE_HTM_SYSTEM, t);
            }
        }
    }
    if scaling {
        for &w in SCALING_WORKLOADS {
            for &t in SCALING_THREADS {
                measure(w, SCALING_SYSTEM, t);
            }
        }
        for &t in SCALING_THREADS {
            measure(KV_WORKLOAD, SCALING_SYSTEM, t);
        }
        for &s in &[CM_BASE_SYSTEM, CM_ADAPTIVE_SYSTEM] {
            for &t in CM_THREADS {
                measure(CM_WORKLOAD, s, t);
            }
        }
    }
    HotReport {
        mode: mode.to_string(),
        calibration_mops,
        htm_native: crate::registry::native_htm_status(),
        cells,
    }
}

/// Run the matrix `repeat` times and keep each cell's best run (and the
/// best calibration rate). Best-of-N filters transient load spikes on a
/// shared machine, which single runs can't — use it when the comparison
/// tolerance is tighter than the run-to-run noise (e.g. the trace-
/// feature overhead gate).
pub fn run_matrix_best_of(
    mode: &str,
    scale: &HotScale,
    progress: bool,
    repeat: usize,
    scaling: bool,
) -> HotReport {
    let mut best = run_matrix(mode, scale, progress, scaling);
    for round in 1..repeat.max(1) {
        if progress {
            eprintln!("-- best-of round {} --", round + 1);
        }
        let next = run_matrix(mode, scale, progress, scaling);
        best.calibration_mops = best.calibration_mops.max(next.calibration_mops);
        for (b, n) in best.cells.iter_mut().zip(next.cells) {
            debug_assert_eq!((&b.workload, &b.system, b.threads), (&n.workload, &n.system, n.threads));
            // The sample pool spans rounds even though the headline
            // numbers keep only the best round's cell.
            let mut pool = std::mem::take(&mut b.sample_stats);
            let mut n = n;
            pool.append(&mut n.sample_stats);
            if n.ops_per_sec > b.ops_per_sec {
                *b = n;
            }
            b.sample_stats = pool;
            b.refresh_sample_summary();
        }
        // Normalize every kept cell against the single best calibration
        // so `norm` stays one consistent machine-speed reference.
        let cal = best.calibration_mops * 1e6;
        for b in best.cells.iter_mut() {
            b.norm = b.ops_per_sec / cal;
        }
    }
    best
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

impl HotReport {
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"bench\": \"BENCH_PR2\",").unwrap();
        // Schema 2 added the per-cell sample distribution (samples,
        // ops_per_sec_mean, ops_per_sec_p95, abort_rate_mean); schema 3
        // adds the header `htm_native` decision string and, on hybrid
        // cells only, the flat `htm_*` hardware-path breakdown. The
        // gate reads the same fields it always did, and older reports
        // still parse (missing fields default — distribution to the
        // best-of values, htm to absent).
        writeln!(out, "  \"schema\": 3,").unwrap();
        writeln!(out, "  \"mode\": \"{}\",", self.mode).unwrap();
        writeln!(out, "  \"hybrid_platform\": \"sim\",").unwrap();
        writeln!(out, "  \"calibration_mops\": {},", json_f64(self.calibration_mops)).unwrap();
        // Comma-free by construction (the flat reader stops a field at
        // the first comma) and before "cells" so it parses as a header
        // field; sanitize defensively in case a fallback reason grows
        // punctuation.
        writeln!(out, "  \"htm_native\": \"{}\",", self.htm_native.replace(',', ";")).unwrap();
        writeln!(out, "  \"cells\": [").unwrap();
        for (i, c) in self.cells.iter().enumerate() {
            write!(
                out,
                "    {{ \"workload\": \"{}\", \"system\": \"{}\", \"threads\": {}, \
                 \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {}, \"norm\": {}, \
                 \"commits\": {}, \"aborts\": {}, \"samples\": {}, \
                 \"ops_per_sec_mean\": {}, \"ops_per_sec_p95\": {}, \
                 \"abort_rate_mean\": {}",
                c.workload,
                c.system,
                c.threads,
                c.ops,
                c.elapsed_ns,
                json_f64(c.ops_per_sec),
                json_f64(c.norm),
                c.commits,
                c.aborts,
                c.samples,
                json_f64(c.ops_per_sec_mean),
                json_f64(c.ops_per_sec_p95),
                json_f64(c.abort_rate_mean)
            )
            .unwrap();
            // Hybrid cells append the hardware-path breakdown as flat
            // fields (the reader splits cells on braces, so no nesting).
            if let Some(h) = &c.htm {
                write!(
                    out,
                    ", \"htm_hw_commits\": {}, \"htm_hw_ratio\": {}, \
                     \"htm_ab_conflict\": {}, \"htm_ab_capacity\": {}, \
                     \"htm_ab_explicit\": {}, \"htm_ab_other\": {}, \"htm_fallbacks\": {}",
                    h.hw_commits,
                    json_f64(h.hw_ratio(c.commits)),
                    h.conflict_aborts,
                    h.capacity_aborts,
                    h.explicit_aborts,
                    h.other_aborts,
                    h.fallbacks
                )
                .unwrap();
            }
            write!(out, " }}").unwrap();
            writeln!(out, "{}", if i + 1 < self.cells.len() { "," } else { "" }).unwrap();
        }
        writeln!(out, "  ]").unwrap();
        write!(out, "}}").unwrap();
        out
    }

    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "==== BENCH_PR2 ({}; calibration {:.1} Mops) ====", self.mode, self.calibration_mops)
            .unwrap();
        for &w in WORKLOADS {
            writeln!(out, "\n--- {w} (ops/s) ---").unwrap();
            write!(out, "{:<8}", "system").unwrap();
            for t in THREADS {
                write!(out, "{t:>14}").unwrap();
            }
            writeln!(out).unwrap();
            for &s in SYSTEMS {
                write!(out, "{s:<8}").unwrap();
                for &t in THREADS {
                    match self.cell(w, s, t) {
                        Some(c) => write!(out, "{:>14.0}", c.ops_per_sec).unwrap(),
                        None => write!(out, "{:>14}", "-").unwrap(),
                    }
                }
                writeln!(out).unwrap();
            }
        }
        let sweep_workloads = || SCALING_WORKLOADS.iter().chain(std::iter::once(&KV_WORKLOAD));
        if self.cells.iter().any(|c| {
            SCALING_WORKLOADS.contains(&c.workload.as_str()) || c.workload == KV_WORKLOAD
        }) {
            writeln!(out, "\n--- scaling sweep, {SCALING_SYSTEM} (ops/s) ---").unwrap();
            write!(out, "{:<18}", "workload").unwrap();
            for t in SCALING_THREADS {
                write!(out, "{t:>14}").unwrap();
            }
            writeln!(out).unwrap();
            for &w in sweep_workloads() {
                write!(out, "{w:<18}").unwrap();
                for &t in SCALING_THREADS {
                    match self.cell(w, SCALING_SYSTEM, t) {
                        Some(c) => write!(out, "{:>14.0}", c.ops_per_sec).unwrap(),
                        None => write!(out, "{:>14}", "-").unwrap(),
                    }
                }
                writeln!(out).unwrap();
            }
        }
        if self.cells.iter().any(|c| c.workload == CM_WORKLOAD) {
            writeln!(out, "\n--- {CM_WORKLOAD} (aborts/commit; ops/s in parens) ---").unwrap();
            write!(out, "{:<10}", "system").unwrap();
            for t in CM_THREADS {
                write!(out, "{t:>22}").unwrap();
            }
            writeln!(out).unwrap();
            for &s in &[CM_BASE_SYSTEM, CM_ADAPTIVE_SYSTEM] {
                write!(out, "{s:<10}").unwrap();
                for &t in CM_THREADS {
                    match self.cell(CM_WORKLOAD, s, t) {
                        Some(c) => write!(
                            out,
                            "{:>22}",
                            format!("{:.4} ({:.0})", c.abort_rate(), c.ops_per_sec)
                        )
                        .unwrap(),
                        None => write!(out, "{:>22}", "-").unwrap(),
                    }
                }
                writeln!(out).unwrap();
            }
        }
        let htm_cells: Vec<&HotCell> = self.cells.iter().filter(|c| c.htm.is_some()).collect();
        if !htm_cells.is_empty() {
            writeln!(
                out,
                "\n--- HTM hardware path (hw-commit ratio; abort reasons; fallbacks) ---"
            )
            .unwrap();
            writeln!(out, "native backend: {}", self.htm_native).unwrap();
            for c in htm_cells {
                let h = c.htm.as_ref().unwrap();
                writeln!(
                    out,
                    "{:<16} {:<9} t={:<3} hw {:>5.1}%  conflict={} capacity={} explicit={} \
                     other={} fallbacks={}",
                    c.workload,
                    c.system,
                    c.threads,
                    h.hw_ratio(c.commits) * 100.0,
                    h.conflict_aborts,
                    h.capacity_aborts,
                    h.explicit_aborts,
                    h.other_aborts,
                    h.fallbacks
                )
                .unwrap();
            }
        }
        out
    }

    /// Standalone abort-reason histogram over every hybrid cell, for
    /// the `bench_pr2 run --htm-hist` artifact: one JSON object per
    /// cell plus a pooled total, same flat style as the main report.
    pub fn htm_histogram_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"bench\": \"BENCH_PR2_HTM_HIST\",").unwrap();
        writeln!(out, "  \"schema\": 1,").unwrap();
        writeln!(out, "  \"mode\": \"{}\",", self.mode).unwrap();
        writeln!(out, "  \"htm_native\": \"{}\",", self.htm_native.replace(',', ";")).unwrap();
        let cells: Vec<&HotCell> = self.cells.iter().filter(|c| c.htm.is_some()).collect();
        let mut pooled = HtmCellStats::default();
        let mut pooled_commits = 0u64;
        writeln!(out, "  \"cells\": [").unwrap();
        for (i, c) in cells.iter().enumerate() {
            let h = c.htm.as_ref().unwrap();
            pooled.add(h);
            pooled_commits += c.commits;
            write!(
                out,
                "    {{ \"workload\": \"{}\", \"system\": \"{}\", \"threads\": {}, \
                 \"commits\": {}, \"hw_commits\": {}, \"hw_ratio\": {}, \"conflict\": {}, \
                 \"capacity\": {}, \"explicit\": {}, \"other\": {}, \"fallbacks\": {} }}",
                c.workload,
                c.system,
                c.threads,
                c.commits,
                h.hw_commits,
                json_f64(h.hw_ratio(c.commits)),
                h.conflict_aborts,
                h.capacity_aborts,
                h.explicit_aborts,
                h.other_aborts,
                h.fallbacks
            )
            .unwrap();
            writeln!(out, "{}", if i + 1 < cells.len() { "," } else { "" }).unwrap();
        }
        writeln!(out, "  ],").unwrap();
        writeln!(
            out,
            "  \"pooled\": {{ \"commits\": {}, \"hw_commits\": {}, \"hw_ratio\": {}, \
             \"conflict\": {}, \"capacity\": {}, \"explicit\": {}, \"other\": {}, \
             \"fallbacks\": {} }}",
            pooled_commits,
            pooled.hw_commits,
            json_f64(pooled.hw_ratio(pooled_commits)),
            pooled.conflict_aborts,
            pooled.capacity_aborts,
            pooled.explicit_aborts,
            pooled.other_aborts,
            pooled.fallbacks
        )
        .unwrap();
        write!(out, "}}").unwrap();
        out
    }

    pub fn cell(&self, workload: &str, system: &str, threads: usize) -> Option<&HotCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.system == system && c.threads == threads)
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the emitter's own output (the workspace has no
// serialization dependency by design). It only understands the flat
// shape `to_json` writes — which is all the gate needs.
// ---------------------------------------------------------------------

fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find([',', '}', '\n'])
        .unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn str_field(obj: &str, key: &str) -> Option<String> {
    let raw = field(obj, key)?;
    Some(raw.trim_matches('"').to_string())
}

fn f64_field(obj: &str, key: &str) -> Option<f64> {
    field(obj, key)?.parse().ok()
}

fn u64_field(obj: &str, key: &str) -> Option<u64> {
    field(obj, key)?.parse().ok()
}

pub fn parse_report(s: &str) -> Result<HotReport, String> {
    let head_end = s.find("\"cells\"").ok_or("missing cells array")?;
    let head = &s[..head_end];
    let mode = str_field(head, "mode").unwrap_or_else(|| "unknown".into());
    let calibration_mops =
        f64_field(head, "calibration_mops").ok_or("missing calibration_mops")?;
    // Pre-schema-3 reports have no decision string.
    let htm_native =
        str_field(head, "htm_native").unwrap_or_else(|| "unknown (schema < 3)".into());
    let body = &s[head_end..];
    let open = body.find('[').ok_or("missing cells [")?;
    let close = body.rfind(']').ok_or("missing cells ]")?;
    let mut cells = Vec::new();
    for obj in body[open + 1..close].split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        if obj.trim().is_empty() {
            continue;
        }
        let ops_per_sec = f64_field(obj, "ops_per_sec").ok_or("cell missing ops_per_sec")?;
        let commits = u64_field(obj, "commits").unwrap_or(0);
        let aborts = u64_field(obj, "aborts").unwrap_or(0);
        // Schema-1 back-compat: distribution fields default to the
        // best-of values (a single-sample report is its own mean).
        let cell = HotCell {
            workload: str_field(obj, "workload").ok_or("cell missing workload")?,
            system: str_field(obj, "system").ok_or("cell missing system")?,
            threads: u64_field(obj, "threads").ok_or("cell missing threads")? as usize,
            ops: u64_field(obj, "ops").ok_or("cell missing ops")?,
            elapsed_ns: u64_field(obj, "elapsed_ns").ok_or("cell missing elapsed_ns")?,
            ops_per_sec,
            norm: f64_field(obj, "norm").ok_or("cell missing norm")?,
            commits,
            aborts,
            samples: u64_field(obj, "samples").unwrap_or(1),
            ops_per_sec_mean: f64_field(obj, "ops_per_sec_mean").unwrap_or(ops_per_sec),
            ops_per_sec_p95: f64_field(obj, "ops_per_sec_p95").unwrap_or(ops_per_sec),
            abort_rate_mean: f64_field(obj, "abort_rate_mean")
                .unwrap_or(aborts as f64 / commits.max(1) as f64),
            sample_stats: Vec::new(),
            // Hybrid cells carry the flat htm_* fields; their presence
            // is keyed on hw_commits (always written together).
            htm: u64_field(obj, "htm_hw_commits").map(|hw_commits| HtmCellStats {
                hw_commits,
                conflict_aborts: u64_field(obj, "htm_ab_conflict").unwrap_or(0),
                capacity_aborts: u64_field(obj, "htm_ab_capacity").unwrap_or(0),
                explicit_aborts: u64_field(obj, "htm_ab_explicit").unwrap_or(0),
                other_aborts: u64_field(obj, "htm_ab_other").unwrap_or(0),
                fallbacks: u64_field(obj, "htm_fallbacks").unwrap_or(0),
            }),
        };
        cells.push(cell);
    }
    if cells.is_empty() {
        return Err("no cells parsed".into());
    }
    Ok(HotReport { mode, calibration_mops, htm_native, cells })
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

pub struct CheckOutcome {
    pub report: String,
    /// Per-workload geometric-mean speedup of calibration-normalized
    /// throughput (current / baseline).
    pub workload_speedup: Vec<(String, f64)>,
    pub ok: bool,
}

/// Compare `current` against `baseline`: for every workload, take the
/// geometric mean over matched (system, threads) cells of the ratio of
/// calibration-normalized throughput. A workload whose geomean falls
/// below `1 - tolerance` is a regression. The geomean (rather than a
/// per-cell gate) keeps one noisy cell on a shared CI runner from
/// failing the build, while a real hot-path regression — which shows up
/// across cells — still does.
pub fn check_reports(baseline: &HotReport, current: &HotReport, tolerance: f64) -> CheckOutcome {
    check_reports_with(baseline, current, tolerance, false)
}

/// Like [`check_reports`], but with a choice of gate metric: `raw`
/// compares plain ops/s instead of calibration-normalized throughput.
/// Use raw for back-to-back A/B runs on the *same* machine (e.g. the
/// trace-feature overhead gate), where a load spike during one run's
/// calibration loop would otherwise dominate the comparison; keep the
/// normalized metric when the baseline comes from a different machine.
pub fn check_reports_with(
    baseline: &HotReport,
    current: &HotReport,
    tolerance: f64,
    raw: bool,
) -> CheckOutcome {
    use std::fmt::Write;
    let mut out = String::new();
    let mut workload_speedup = Vec::new();
    let mut ok = true;
    writeln!(
        out,
        "baseline calibration {:.1} Mops, current {:.1} Mops (gate on {} throughput)",
        baseline.calibration_mops,
        current.calibration_mops,
        if raw { "raw" } else { "normalized" }
    )
    .unwrap();
    for &w in WORKLOADS {
        let mut log_sum = 0.0f64;
        let mut n = 0u32;
        writeln!(out, "\n--- {w} ---").unwrap();
        for &s in SYSTEMS {
            for &t in THREADS {
                let (Some(b), Some(c)) = (baseline.cell(w, s, t), current.cell(w, s, t)) else {
                    continue;
                };
                let (bv, cv) =
                    if raw { (b.ops_per_sec, c.ops_per_sec) } else { (b.norm, c.norm) };
                if !(bv > 0.0 && cv > 0.0) {
                    continue;
                }
                let ratio = cv / bv;
                log_sum += ratio.ln();
                n += 1;
                writeln!(
                    out,
                    "  {s:<7} t={t}  {:>12.0} -> {:>12.0} ops/s   x{ratio:.2}",
                    b.ops_per_sec, c.ops_per_sec
                )
                .unwrap();
            }
        }
        if n == 0 {
            writeln!(out, "  (no matched cells)").unwrap();
            continue;
        }
        let geomean = (log_sum / n as f64).exp();
        let pass = geomean >= 1.0 - tolerance;
        ok &= pass;
        writeln!(
            out,
            "  geomean x{geomean:.3}  {}",
            if pass { "OK" } else { "REGRESSION (below tolerance)" }
        )
        .unwrap();
        workload_speedup.push((w.to_string(), geomean));
    }
    // Scaling sweep: the ≤64-thread read-mostly cells ride the same
    // gate — they run in the flat reader-indicator mode, whose traffic
    // is bit-identical to the pre-striping bitmap, so a regression here
    // means the striping refactor leaked cost into the common case.
    // Cells past SCALING_GATE_MAX_THREADS and the mixed sweep are
    // reported for trend-watching only. An old baseline without scaling
    // cells simply has no matched cells and gates nothing. The sharded
    // KV sweep (PR 8) rides the same gate at the same thread cutoff —
    // its hot path is the tds hash map through the full engine, so a
    // regression there is a real ADT-path regression even when the word
    // workloads hold steady.
    for &w in SCALING_WORKLOADS.iter().chain(std::iter::once(&KV_WORKLOAD)) {
        let gated = w == "scale-read-mostly" || w == KV_WORKLOAD;
        let mut log_sum = 0.0f64;
        let mut n = 0u32;
        let mut any = false;
        for &t in SCALING_THREADS {
            let (Some(b), Some(c)) =
                (baseline.cell(w, SCALING_SYSTEM, t), current.cell(w, SCALING_SYSTEM, t))
            else {
                continue;
            };
            let (bv, cv) = if raw { (b.ops_per_sec, c.ops_per_sec) } else { (b.norm, c.norm) };
            if !(bv > 0.0 && cv > 0.0) {
                continue;
            }
            if !any {
                writeln!(out, "\n--- {w} ---").unwrap();
                any = true;
            }
            let ratio = cv / bv;
            let in_gate = gated && t <= SCALING_GATE_MAX_THREADS;
            if in_gate {
                log_sum += ratio.ln();
                n += 1;
            }
            writeln!(
                out,
                "  {SCALING_SYSTEM:<7} t={t:<3}  {:>12.0} -> {:>12.0} ops/s   x{ratio:.2}{}",
                b.ops_per_sec,
                c.ops_per_sec,
                if in_gate { "" } else { "   (not gated)" }
            )
            .unwrap();
        }
        if n == 0 {
            continue;
        }
        let geomean = (log_sum / n as f64).exp();
        let pass = geomean >= 1.0 - tolerance;
        ok &= pass;
        writeln!(
            out,
            "  geomean x{geomean:.3} (t<={SCALING_GATE_MAX_THREADS})  {}",
            if pass { "OK" } else { "REGRESSION (below tolerance)" }
        )
        .unwrap();
        workload_speedup.push((w.to_string(), geomean));
    }
    // Contention-management sweep: gated on abort rate *within the
    // current report* — NZSTM-ACM (adaptive CM) vs NZSTM (static Karma)
    // measured back-to-back in the same run, so host speed, load, and
    // oversubscription noise cancel out of the comparison. The adaptive
    // policy exists to cut the abort storm, so it fails the gate if its
    // abort rate exceeds the Karma baseline's by more than
    // CM_ABORT_RATE_SLACK (relative) + CM_ABORT_RATE_EPSILON (absolute,
    // for burst noise against a zero baseline — see the constants).
    // Abort and commit counts are pooled across the
    // CM_GATE_THREADS cells before comparing — one pooled verdict, not
    // per-cell verdicts, so a single unlucky schedule cannot fail the
    // build. Wall-clock at these thread counts is never gated, and a
    // report without cm cells (a run without --scaling) gates nothing.
    {
        let mut any = false;
        let (mut gk, mut ga) = ((0u64, 0u64), (0u64, 0u64)); // (aborts, commits)
        for &t in CM_THREADS {
            let (Some(k), Some(a)) = (
                current.cell(CM_WORKLOAD, CM_BASE_SYSTEM, t),
                current.cell(CM_WORKLOAD, CM_ADAPTIVE_SYSTEM, t),
            ) else {
                continue;
            };
            if !any {
                writeln!(out, "\n--- {CM_WORKLOAD} (abort rate, current run) ---").unwrap();
                any = true;
            }
            let in_gate = CM_GATE_THREADS.contains(&t);
            if in_gate {
                gk = (gk.0 + k.aborts, gk.1 + k.commits);
                ga = (ga.0 + a.aborts, ga.1 + a.commits);
            }
            writeln!(
                out,
                "  t={t:<3}  karma {:.4} -> adaptive {:.4} aborts/commit{}",
                k.abort_rate(),
                a.abort_rate(),
                if in_gate { "" } else { "   (not gated)" }
            )
            .unwrap();
        }
        if ga.1 > 0 {
            let kr = gk.0 as f64 / gk.1.max(1) as f64;
            let ar = ga.0 as f64 / ga.1.max(1) as f64;
            let pass = ar <= kr * (1.0 + CM_ABORT_RATE_SLACK) + CM_ABORT_RATE_EPSILON;
            ok &= pass;
            writeln!(
                out,
                "  pooled (t in {CM_GATE_THREADS:?})  karma {kr:.4} -> adaptive {ar:.4}   {}",
                if pass { "OK" } else { "REGRESSION (adaptive aborts more than karma)" }
            )
            .unwrap();
        }
    }
    CheckOutcome { report: out, workload_speedup, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_cell(w: &str, s: &str, t: usize, ops_per_sec: f64, aborts: u64) -> HotCell {
        let mut c = HotCell {
            workload: w.into(),
            system: s.into(),
            threads: t,
            ops: 1000,
            elapsed_ns: 1_000_000,
            ops_per_sec,
            norm: ops_per_sec / 100e6,
            commits: 1000,
            aborts,
            samples: 1,
            ops_per_sec_mean: ops_per_sec,
            ops_per_sec_p95: ops_per_sec,
            abort_rate_mean: aborts as f64 / 1000.0,
            sample_stats: vec![(ops_per_sec, aborts as f64 / 1000.0)],
            htm: None,
        };
        c.refresh_sample_summary();
        c
    }

    fn demo_report(scale: f64) -> HotReport {
        let mut cells = Vec::new();
        for &w in WORKLOADS {
            for &s in SYSTEMS {
                for &t in THREADS {
                    cells.push(demo_cell(w, s, t, 1e6 * scale * (t as f64), 7));
                }
            }
        }
        HotReport {
            mode: "test".into(),
            calibration_mops: 100.0,
            htm_native: "test fixture".into(),
            cells,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = demo_report(1.0);
        let parsed = parse_report(&r.to_json()).unwrap();
        assert_eq!(parsed.cells.len(), r.cells.len());
        assert_eq!(parsed.calibration_mops, r.calibration_mops);
        let a = parsed.cell("transfer", "SCSS", 4).unwrap();
        let b = r.cell("transfer", "SCSS", 4).unwrap();
        assert_eq!(a.ops, b.ops);
        assert!((a.norm - b.norm).abs() < 1e-12);
        assert_eq!(a.commits, 1000);
        // Schema-2 sample-distribution fields survive the round trip.
        assert_eq!(a.samples, b.samples);
        assert!((a.ops_per_sec_mean - b.ops_per_sec_mean).abs() < 1e-9);
        assert!((a.ops_per_sec_p95 - b.ops_per_sec_p95).abs() < 1e-9);
        assert!((a.abort_rate_mean - b.abort_rate_mean).abs() < 1e-12);
        assert!(r.to_json().contains("\"schema\": 3"));
        assert_eq!(parsed.htm_native, r.htm_native);
    }

    #[test]
    fn htm_breakdown_round_trips_and_renders() {
        let mut r = demo_report(1.0);
        let h = HtmCellStats {
            hw_commits: 900,
            conflict_aborts: 40,
            capacity_aborts: 3,
            explicit_aborts: 7,
            other_aborts: 2,
            fallbacks: 100,
        };
        // Attach the breakdown to every HYBRID cell, the way a real run
        // does; software cells stay bare.
        for c in r.cells.iter_mut().filter(|c| c.system == "HYBRID") {
            c.htm = Some(h);
        }
        let parsed = parse_report(&r.to_json()).unwrap();
        let c = parsed.cell("transfer", "HYBRID", 4).unwrap();
        assert_eq!(c.htm, Some(h));
        assert!((c.htm.unwrap().hw_ratio(c.commits) - 0.9).abs() < 1e-12);
        assert_eq!(parsed.cell("transfer", "NZSTM", 4).unwrap().htm, None);
        // The flat reader requires one-line cells: no nested objects.
        for line in r.to_json().lines().filter(|l| l.contains("\"workload\"")) {
            assert_eq!(line.matches('{').count(), 1, "{line}");
            assert_eq!(line.matches('}').count(), 1, "{line}");
        }
        let text = r.render_text();
        assert!(text.contains("HTM hardware path"), "{text}");
        assert!(text.contains("explicit=7"), "{text}");
        // Histogram artifact: per-cell rows plus a pooled total.
        let hist = r.htm_histogram_json();
        assert!(hist.contains("BENCH_PR2_HTM_HIST"), "{hist}");
        assert!(hist.contains("\"pooled\""), "{hist}");
        let n_hybrid = r.cells.iter().filter(|c| c.htm.is_some()).count();
        assert_eq!(hist.matches("\"workload\"").count(), n_hybrid);
        assert!(hist.contains(&format!("\"hw_commits\": {}", 900 * n_hybrid as u64)), "{hist}");
    }

    #[test]
    fn reports_without_htm_fields_parse_as_software_only() {
        // A pre-schema-3 report (no htm_native header, no htm_* cell
        // fields) parses with the breakdown absent, not zeroed.
        let r = demo_report(1.0);
        let mut json = r.to_json();
        json = json.lines().filter(|l| !l.contains("htm_native")).collect::<Vec<_>>().join("\n");
        let parsed = parse_report(&json).unwrap();
        assert!(parsed.htm_native.contains("schema < 3"));
        assert!(parsed.cells.iter().all(|c| c.htm.is_none()));
    }

    #[test]
    fn schema1_reports_parse_with_bestof_defaults() {
        // A committed schema-1 baseline has no distribution fields; they
        // default to the best-of values so mixed-schema gating works.
        let legacy = r#"{
  "bench": "BENCH_PR2",
  "schema": 1,
  "mode": "full",
  "calibration_mops": 100.0,
  "cells": [
    { "workload": "read-heavy", "system": "NZSTM", "threads": 8, "ops": 1000, "elapsed_ns": 1000000, "ops_per_sec": 500000, "norm": 0.005, "commits": 900, "aborts": 9 }
  ]
}"#;
        let r = parse_report(legacy).unwrap();
        let c = r.cell("read-heavy", "NZSTM", 8).unwrap();
        assert_eq!(c.samples, 1);
        assert_eq!(c.ops_per_sec_mean, c.ops_per_sec);
        assert_eq!(c.ops_per_sec_p95, c.ops_per_sec);
        assert!((c.abort_rate_mean - 0.01).abs() < 1e-12);
    }

    #[test]
    fn sample_summary_is_unbiased_by_best_of() {
        // Three samples: the best-of fields keep the fastest, but the
        // distribution fields see all three — including the abort rate
        // of the slow, conflicted samples best-of discards.
        let mut c = demo_cell("read-heavy", "NZSTM", 8, 9e5, 0);
        c.sample_stats = vec![(9e5, 0.0), (5e5, 0.3), (4e5, 0.6)];
        c.refresh_sample_summary();
        assert_eq!(c.samples, 3);
        assert!((c.ops_per_sec_mean - 6e5).abs() < 1.0);
        assert!((c.abort_rate_mean - 0.3).abs() < 1e-12);
        assert_eq!(c.ops_per_sec_p95, 9e5, "nearest-rank p95 of 3 is the max");
        // Best-of headline is untouched.
        assert_eq!(c.ops_per_sec, 9e5);
    }

    #[test]
    fn check_passes_identical_and_fails_regression() {
        let base = demo_report(1.0);
        let same = check_reports(&base, &demo_report(1.0), 0.15);
        assert!(same.ok, "{}", same.report);
        let slow = check_reports(&base, &demo_report(0.5), 0.15);
        assert!(!slow.ok, "a 2x slowdown must trip the gate");
        let fast = check_reports(&base, &demo_report(2.0), 0.15);
        assert!(fast.ok);
        assert!(fast.workload_speedup.iter().all(|(_, g)| (*g - 2.0).abs() < 1e-9));
    }

    #[test]
    fn check_normalizes_by_calibration() {
        // Same norm values, different absolute ops/s: a uniformly slower
        // machine (half calibration, half throughput) must pass.
        let base = demo_report(1.0);
        let mut cur = demo_report(0.5);
        cur.calibration_mops = 50.0;
        for c in &mut cur.cells {
            c.norm = c.ops_per_sec / 50e6;
        }
        let out = check_reports(&base, &cur, 0.15);
        assert!(out.ok, "{}", out.report);
    }

    fn demo_scaling_cells(scale: f64) -> Vec<HotCell> {
        let mut cells = Vec::new();
        for &w in SCALING_WORKLOADS {
            for &t in SCALING_THREADS {
                let ops_per_sec = 1e6 * scale * (t as f64).min(8.0);
                cells.push(demo_cell(w, SCALING_SYSTEM, t, ops_per_sec, 3));
            }
        }
        cells
    }

    #[test]
    fn scaling_gate_covers_read_mostly_up_to_64_threads() {
        let mut base = demo_report(1.0);
        base.cells.extend(demo_scaling_cells(1.0));
        // A slowdown confined to the ungated cells (128 threads, or the
        // mixed sweep) must pass.
        let mut cur = demo_report(1.0);
        cur.cells.extend(demo_scaling_cells(1.0).into_iter().map(|mut c| {
            if c.threads > SCALING_GATE_MAX_THREADS || c.workload == "scale-mixed" {
                c.ops_per_sec *= 0.4;
                c.norm *= 0.4;
            }
            c
        }));
        let out = check_reports(&base, &cur, 0.15);
        assert!(out.ok, "{}", out.report);
        // A slowdown in the gated scale-read-mostly cells must fail.
        let mut cur2 = demo_report(1.0);
        cur2.cells.extend(demo_scaling_cells(0.5));
        let out2 = check_reports(&base, &cur2, 0.15);
        assert!(!out2.ok, "{}", out2.report);
        assert!(out2.report.contains("scale-read-mostly"));
        // A baseline from before the sweep existed has no matched
        // scaling cells and gates nothing there.
        let old = demo_report(1.0);
        let out3 = check_reports(&old, &cur2, 0.15);
        assert!(out3.ok, "{}", out3.report);
    }

    fn demo_kv_cells(scale: f64) -> Vec<HotCell> {
        SCALING_THREADS
            .iter()
            .map(|&t| {
                demo_cell(KV_WORKLOAD, SCALING_SYSTEM, t, 1e6 * scale * (t as f64).min(8.0), 3)
            })
            .collect()
    }

    #[test]
    fn kv_sweep_rides_the_scaling_gate_below_the_thread_cutoff() {
        let mut base = demo_report(1.0);
        base.cells.extend(demo_kv_cells(1.0));
        // A slowdown confined to the oversubscribed 128-thread cell is
        // reported but not gated.
        let mut cur = demo_report(1.0);
        cur.cells.extend(demo_kv_cells(1.0).into_iter().map(|mut c| {
            if c.threads > SCALING_GATE_MAX_THREADS {
                c.ops_per_sec *= 0.4;
                c.norm *= 0.4;
            }
            c
        }));
        let out = check_reports(&base, &cur, 0.15);
        assert!(out.ok, "{}", out.report);
        // An across-the-board KV slowdown fails even with every word
        // workload unchanged: the ADT path is gated in its own right.
        let mut cur2 = demo_report(1.0);
        cur2.cells.extend(demo_kv_cells(0.5));
        let out2 = check_reports(&base, &cur2, 0.15);
        assert!(!out2.ok, "{}", out2.report);
        assert!(out2.report.contains(KV_WORKLOAD));
    }

    fn demo_cm_cells(karma_aborts: u64, adaptive_aborts: u64) -> Vec<HotCell> {
        let mut cells = Vec::new();
        for &(s, aborts) in
            &[(CM_BASE_SYSTEM, karma_aborts), (CM_ADAPTIVE_SYSTEM, adaptive_aborts)]
        {
            for &t in CM_THREADS {
                cells.push(demo_cell(CM_WORKLOAD, s, t, 1e6, aborts));
            }
        }
        cells
    }

    #[test]
    fn cm_gate_compares_adaptive_to_karma_within_the_current_run() {
        let base = demo_report(1.0);
        // Adaptive cutting the abort rate passes.
        let mut cur = demo_report(1.0);
        cur.cells.extend(demo_cm_cells(400, 150));
        let out = check_reports(&base, &cur, 0.15);
        assert!(out.ok, "{}", out.report);
        assert!(out.report.contains(CM_WORKLOAD));
        // Adaptive aborting materially more than Karma fails, even
        // though every throughput cell is unchanged — and it fails
        // against a baseline with no cm cells at all, because the gate
        // is intra-run.
        let mut cur2 = demo_report(1.0);
        cur2.cells.extend(demo_cm_cells(150, 400));
        let out2 = check_reports(&base, &cur2, 0.15);
        assert!(!out2.ok, "{}", out2.report);
        assert!(out2.report.contains("adaptive aborts more than karma"));
        // A report without cm cells (run without --scaling) gates
        // nothing here.
        let out3 = check_reports(&base, &demo_report(1.0), 0.15);
        assert!(out3.ok, "{}", out3.report);
        assert!(!out3.report.contains(CM_WORKLOAD));
    }

    #[test]
    fn cm_gate_skips_the_ungated_68_thread_cell() {
        // A regression confined to the 68-thread cell (trend-watching
        // only) must pass; the same regression at a gated count fails.
        let base = demo_report(1.0);
        let bump = |cells: Vec<HotCell>, at: usize| {
            cells
                .into_iter()
                .map(|mut c| {
                    if c.system == CM_ADAPTIVE_SYSTEM && c.threads == at {
                        c.aborts = 900;
                    }
                    c
                })
                .collect::<Vec<_>>()
        };
        let mut cur = demo_report(1.0);
        cur.cells.extend(bump(demo_cm_cells(200, 100), 68));
        assert!(check_reports(&base, &cur, 0.15).ok);
        let mut cur2 = demo_report(1.0);
        cur2.cells.extend(bump(demo_cm_cells(200, 100), 96));
        assert!(!check_reports(&base, &cur2, 0.15).ok);
    }

    #[test]
    fn cm_cells_round_trip_and_render() {
        let mut r = demo_report(1.0);
        r.cells.extend(demo_cm_cells(300, 120));
        let parsed = parse_report(&r.to_json()).unwrap();
        let c = parsed.cell(CM_WORKLOAD, CM_ADAPTIVE_SYSTEM, 96).unwrap();
        assert_eq!(c.aborts, 120);
        assert!((c.abort_rate() - 0.12).abs() < 1e-12);
        let text = r.render_text();
        assert!(text.contains(CM_WORKLOAD), "{text}");
        assert!(text.contains(CM_ADAPTIVE_SYSTEM), "{text}");
    }

    #[test]
    fn quick_matrix_smoke_single_cell() {
        // One tiny native cell end-to-end (not the full matrix — that is
        // the bench binary's job, not a unit test's).
        let scale = HotScale { native_ops: 64, sim_ops: 8, samples: 1, seed: 1 };
        let t = run_cell("transfer", "NZSTM", 1, &scale);
        assert!(t.commits >= t.ops, "every op commits at least once");
    }
}
