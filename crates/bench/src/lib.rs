//! # nztm-bench — the evaluation harness
//!
//! Regenerates every figure and scalar claim of the paper's §4:
//!
//! * `fig3` — Figure 3 (simulator): LogTM-SE vs NZTM/ATMTP vs NZSTM on
//!   the 11 workloads at 1/3/7/15 threads, throughput normalized to
//!   1-thread LogTM-SE.
//! * `fig4` — Figure 4 ("Rock machine" → native threads): DSTM2-SF vs
//!   BZSTM vs SCSS vs NZSTM, 1..16 threads, normalized to a 1-thread
//!   single global lock.
//! * `stats` — the §4.4 scalar claims S1–S7 (abort rates, capacity-abort
//!   shares, HTM success rates, NZSTM-vs-BZSTM overhead, ...).
//!
//! Shapes — who wins, by roughly what factor, where the crossovers are —
//! are the reproduction target; absolute numbers live in a different
//! universe (the authors' Simics cluster and pre-production Rock
//! silicon vs this crate's deterministic simulator and host threads).

pub mod attrib;
pub mod hotpath;
pub mod microbench;
pub mod registry;
pub mod report;
pub mod suite;

pub use report::{Cell, FigureReport, Series};
pub use suite::{
    fig3_systems, fig4_systems, run_workload_native, run_workload_sim, SimSystem, Workload,
    WorkloadScale, ALL_WORKLOADS,
};
