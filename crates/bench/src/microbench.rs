//! Criterion-free micro-benchmark harness.
//!
//! Wall-clock timing with warmup and median-of-samples reporting —
//! enough to compare per-operation TM costs within the workspace without
//! an external benchmarking framework. Output format is one line per
//! benchmark: `<group>/<name>  <median> ns/op  (n=<samples>)`.

use std::time::{Duration, Instant};

/// Time `f` (one op per call): warm up, then sample `samples` batches of
/// `batch` calls and report the median per-op cost.
pub fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    const WARMUP: Duration = Duration::from_millis(100);
    const SAMPLES: usize = 15;

    // Warmup + batch-size calibration: grow the batch until one batch
    // takes ≥ ~1ms, so timer overhead stays negligible.
    let mut batch: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let d = t.elapsed();
        if d >= Duration::from_millis(1) || batch >= 1 << 20 {
            if warm_start.elapsed() >= WARMUP {
                break;
            }
        } else {
            batch *= 2;
        }
    }

    let mut per_op: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.total_cmp(b));
    let median = per_op[per_op.len() / 2];
    println!("{group}/{name}  {median:>10.1} ns/op  (n={SAMPLES}, batch={batch})");
}

/// Time a whole-run benchmark: `f(iters)` must perform `iters` runs and
/// return the total elapsed time. Reports the median per-run cost over
/// `samples` samples of `iters_per_sample` runs each.
pub fn bench_runs(
    group: &str,
    name: &str,
    samples: usize,
    iters_per_sample: u64,
    mut f: impl FnMut(u64) -> Duration,
) {
    // One warmup run.
    let _ = f(1);
    let mut per_run: Vec<f64> = (0..samples.max(1))
        .map(|_| f(iters_per_sample).as_nanos() as f64 / iters_per_sample.max(1) as f64)
        .collect();
    per_run.sort_by(|a, b| a.total_cmp(b));
    let median = per_run[per_run.len() / 2];
    println!(
        "{group}/{name}  {:>10.3} ms/run  (n={}, iters={iters_per_sample})",
        median / 1e6,
        samples.max(1)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_reports_without_panicking() {
        bench_runs("t", "noop", 3, 2, |iters| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(0u64);
            }
            t.elapsed()
        });
    }
}
