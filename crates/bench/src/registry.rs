//! The backend registry: one enumeration of the workspace's TM systems.
//!
//! Conformance (`tests/conformance.rs`), differential
//! (`tests/cross_system.rs`), and bench code all need "run X against
//! every backend". Before this module each kept its own hand-maintained
//! list, and adding a backend meant finding every list. Now
//! [`for_each_software_backend`] walks [`BackendKind::ALL`] (the same
//! constant the builder exports and the API snapshot pins), and
//! [`for_each_reference_backend`] walks the non-NZTM reference systems,
//! so a new backend is picked up by every battery the moment it joins
//! the enum — or fails the count check below by name.
//!
//! `TmSys` is not object-safe (generic `read`/`write`, GAT object
//! handles), so enumeration is visitor-shaped rather than
//! `Vec<Box<dyn TmSys>>`: the registry hands each visitor a *constructor*
//! and lets the visitor pick platform shape (thread count, registration
//! order) before building. That keeps one registry serving
//! single-threaded batteries, multi-threaded native runs, and
//! simulator-hosted differentials alike.
//!
//! Two systems stay outside: the NZTM hybrid needs a simulated
//! best-effort HTM installed/uninstalled around the run, and LogTM-SE is
//! simulator-hardware-only. Both have dedicated sim-hosted tests; the
//! count check accounts for the hybrid explicitly.

use nztm_core::{BackendKind, NzBuilder, TmSys};
use nztm_dstm::{Dstm, GlobalLockTm, ShadowStm};
use nztm_sim::Platform;
use std::sync::Arc;

/// What a backend opts in/out of; batteries adapt rather than fail.
#[derive(Clone, Copy, Debug)]
pub struct BackendCaps {
    /// The closure may return `Err(Abort)` and the system aborts the
    /// attempt and retries. `GlobalLockTm` cannot abort by construction.
    pub explicit_abort: bool,
    /// The system has a flight recorder (the NZTM-family engines);
    /// reference systems keep the no-op tracing defaults.
    pub records_events: bool,
    /// The system forwards [`TmSys::note_adt_op`] into its stats.
    pub counts_adt_ops: bool,
    /// The system may commit transactions on a hardware path (real RTM
    /// or the simulated best-effort model). True only for the hybrid
    /// compositions, which live outside the software registry — every
    /// backend the registry visits is pure software.
    pub hardware_txns: bool,
}

impl BackendCaps {
    /// Full-featured NZTM-family engine.
    pub const ENGINE: BackendCaps = BackendCaps {
        explicit_abort: true,
        records_events: true,
        counts_adt_ops: true,
        hardware_txns: false,
    };
    /// Reference STM: aborts but no recorder, no ADT-op accounting.
    pub const REFERENCE: BackendCaps = BackendCaps {
        explicit_abort: true,
        records_events: false,
        counts_adt_ops: false,
        hardware_txns: false,
    };
    /// Single-global-lock reference: cannot abort at all.
    pub const NO_ABORT: BackendCaps = BackendCaps {
        explicit_abort: false,
        records_events: false,
        counts_adt_ops: false,
        hardware_txns: false,
    };
}

/// One comma-free line describing the native-HTM path compiled into
/// this binary — recorded in every bench report (and CI log) so a run
/// always states which path its hybrid cells exercised instead of
/// silently skipping. Comma-free because the flat JSON reader in
/// [`crate::hotpath`] stops a field at the first comma.
pub fn native_htm_status() -> String {
    #[cfg(feature = "htm-native")]
    {
        use nztm_htm::native::NativeHtm;
        let htm = NativeHtm::new(nztm_core::NativeHtmPolicy::Auto);
        format!("htm-native built; auto decision: {}", htm.decision().describe())
    }
    #[cfg(not(feature = "htm-native"))]
    {
        "htm-native not built (simulated ATMTP model only)".to_string()
    }
}

/// The non-NZTM software reference systems (the comparison bars of
/// Fig. 3/4 that are not compositions of the core engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReferenceKind {
    /// DSTM2-style shallow-faithful locator STM.
    Dstm,
    /// Shadow-copy STM.
    Shadow,
    /// Coarse global-lock "TM".
    GlobalLock,
}

impl ReferenceKind {
    pub const ALL: [ReferenceKind; 3] =
        [ReferenceKind::Dstm, ReferenceKind::Shadow, ReferenceKind::GlobalLock];

    pub fn name(self) -> &'static str {
        match self {
            ReferenceKind::Dstm => "DSTM2-SF",
            ReferenceKind::Shadow => "shadow",
            ReferenceKind::GlobalLock => "global-lock",
        }
    }
}

/// A visitor over the software compositions of [`BackendKind::ALL`].
///
/// The registry passes a constructor rather than a built system so the
/// visitor controls the platform (thread count, registration) — and so
/// each visit gets a *fresh* engine of a distinct concrete type.
pub trait BackendVisitor<P: Platform> {
    fn visit<S, F>(&mut self, kind: BackendKind, caps: BackendCaps, build: F)
    where
        S: TmSys,
        F: FnOnce(Arc<P>) -> Arc<S>;
}

/// A visitor over [`ReferenceKind::ALL`].
pub trait ReferenceVisitor<P: Platform> {
    fn visit<S, F>(&mut self, kind: ReferenceKind, caps: BackendCaps, build: F)
    where
        S: TmSys,
        F: FnOnce(Arc<P>) -> Arc<S>;
}

/// Visit every pure-software composition in [`BackendKind::ALL`] with
/// paper-default knobs: BZSTM, NZSTM, SCSS, and NOrec. The hybrid is the
/// one member skipped (it is not a software composition: it wraps NZSTM
/// around a simulated best-effort HTM whose install/uninstall bracketing
/// the caller must own); `software_backend_count` counts what this
/// visits.
pub fn for_each_software_backend<P, V>(v: &mut V)
where
    P: Platform,
    V: BackendVisitor<P>,
{
    for kind in BackendKind::ALL {
        match kind {
            BackendKind::Bzstm => {
                v.visit(kind, BackendCaps::ENGINE, |p| NzBuilder::new(p).build_bzstm())
            }
            BackendKind::Nzstm => {
                v.visit(kind, BackendCaps::ENGINE, |p| NzBuilder::new(p).build_nzstm())
            }
            BackendKind::Scss => {
                v.visit(kind, BackendCaps::ENGINE, |p| NzBuilder::new(p).build_scss())
            }
            BackendKind::Norec => {
                v.visit(kind, BackendCaps::ENGINE, |p| NzBuilder::new(p).build_norec())
            }
            BackendKind::Hybrid => {}
        }
    }
}

/// Visit every reference system in [`ReferenceKind::ALL`].
pub fn for_each_reference_backend<P, V>(v: &mut V)
where
    P: Platform,
    V: ReferenceVisitor<P>,
{
    for kind in ReferenceKind::ALL {
        match kind {
            ReferenceKind::Dstm => {
                v.visit(kind, BackendCaps::REFERENCE, |p| Dstm::with_defaults(p))
            }
            ReferenceKind::Shadow => {
                v.visit(kind, BackendCaps::REFERENCE, |p| ShadowStm::with_defaults(p))
            }
            ReferenceKind::GlobalLock => {
                v.visit(kind, BackendCaps::NO_ABORT, |p| GlobalLockTm::new(p))
            }
        }
    }
}

/// How many backends [`for_each_software_backend`] visits: every
/// [`BackendKind`] except the HTM-hosted hybrid.
pub fn software_backend_count() -> usize {
    BackendKind::ALL.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::Native;

    struct Collect(Vec<BackendKind>);
    impl BackendVisitor<Native> for Collect {
        fn visit<S, F>(&mut self, kind: BackendKind, _caps: BackendCaps, _build: F)
        where
            S: TmSys,
            F: FnOnce(Arc<Native>) -> Arc<S>,
        {
            self.0.push(kind);
        }
    }

    /// The registry, the builder's `BackendKind::ALL`, and the committed
    /// API snapshot must agree on the number of backends — so adding a
    /// backend without re-blessing the snapshot, or re-blessing without
    /// teaching the registry, fails here by name.
    #[test]
    fn registry_count_matches_the_api_snapshot() {
        let snapshot = include_str!("../../nztm-core/tests/api_surface.txt");
        let line = snapshot
            .lines()
            .find(|l| l.contains("pub const ALL: [BackendKind;"))
            .expect("API snapshot pins BackendKind::ALL");
        let n: usize = line
            .split("[BackendKind;")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("snapshot line carries the array length")
            .trim()
            .parse()
            .expect("array length parses");
        assert_eq!(n, BackendKind::ALL.len(), "code vs snapshot: {line}");

        let mut c = Collect(Vec::new());
        for_each_software_backend(&mut c);
        assert_eq!(c.0.len(), software_backend_count());
        assert_eq!(c.0.len(), n - 1, "registry visits all but the hybrid");
        let mut uniq = c.0.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), c.0.len(), "no backend visited twice");
        assert!(!c.0.contains(&BackendKind::Hybrid));
    }

    /// Each visited constructor really builds the backend it names.
    #[test]
    fn registry_constructors_build_what_they_claim() {
        struct NameCheck;
        impl BackendVisitor<Native> for NameCheck {
            fn visit<S, F>(&mut self, kind: BackendKind, caps: BackendCaps, build: F)
            where
                S: TmSys,
                F: FnOnce(Arc<Native>) -> Arc<S>,
            {
                let p = Native::new(1);
                p.register_thread_as(0);
                let sys = build(p);
                assert_eq!(sys.name(), kind.name());
                assert!(caps.explicit_abort);
                assert!(!caps.hardware_txns, "registry visits software backends only");
            }
        }
        for_each_software_backend(&mut NameCheck);

        struct RefCheck;
        impl ReferenceVisitor<Native> for RefCheck {
            fn visit<S, F>(&mut self, kind: ReferenceKind, _caps: BackendCaps, build: F)
            where
                S: TmSys,
                F: FnOnce(Arc<Native>) -> Arc<S>,
            {
                let p = Native::new(1);
                p.register_thread_as(0);
                let sys = build(p);
                assert!(!sys.name().is_empty(), "{:?}", kind);
            }
        }
        for_each_reference_backend(&mut RefCheck);
    }
}
