//! Figure output: the same rows/series the paper plots, as text tables
//! and machine-readable JSON.

use serde::Serialize;

/// One measured cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    pub threads: usize,
    /// Raw throughput (ops per cycle or per nanosecond).
    pub raw: f64,
    /// Normalized throughput (the figure's y-axis).
    pub norm: f64,
    pub commits: u64,
    pub aborts: u64,
    pub abort_rate: f64,
    /// Hardware-commit share (hybrid systems; 0 otherwise).
    pub htm_share: f64,
    pub inflations: u64,
}

/// One line in a sub-plot: a system measured across thread counts.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    pub system: String,
    pub cells: Vec<Cell>,
}

/// One sub-plot (a workload) of a figure.
#[derive(Clone, Debug, Serialize)]
pub struct Panel {
    pub workload: String,
    pub series: Vec<Series>,
}

/// A whole figure.
#[derive(Clone, Debug, Serialize)]
pub struct FigureReport {
    pub figure: String,
    pub normalization: String,
    pub panels: Vec<Panel>,
}

impl FigureReport {
    /// Render as the text analogue of the paper's figure: one table per
    /// workload panel, columns = thread counts, rows = systems,
    /// values = normalized throughput.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "==== {} (normalized to {}) ====", self.figure, self.normalization).unwrap();
        for p in &self.panels {
            writeln!(out, "\n--- {} ---", p.workload).unwrap();
            let threads: Vec<usize> =
                p.series.first().map(|s| s.cells.iter().map(|c| c.threads).collect()).unwrap_or_default();
            write!(out, "{:<12}", "system").unwrap();
            for t in &threads {
                write!(out, "{t:>9}").unwrap();
            }
            writeln!(out).unwrap();
            for s in &p.series {
                write!(out, "{:<12}", s.system).unwrap();
                for c in &s.cells {
                    write!(out, "{:>9.2}", c.norm).unwrap();
                }
                writeln!(out).unwrap();
            }
            // Abort-rate annotation row per system (the §4.4 text claims).
            for s in &p.series {
                write!(out, "{:<12}", format!("  ar {}", s.system)).unwrap();
                for c in &s.cells {
                    write!(out, "{:>8.1}%", c.abort_rate * 100.0).unwrap();
                }
                writeln!(out).unwrap();
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FigureReport {
        FigureReport {
            figure: "Figure X".into(),
            normalization: "1-thread demo".into(),
            panels: vec![Panel {
                workload: "demo-w".into(),
                series: vec![Series {
                    system: "SYS".into(),
                    cells: vec![Cell {
                        threads: 1,
                        raw: 0.5,
                        norm: 1.0,
                        commits: 10,
                        aborts: 1,
                        abort_rate: 1.0 / 11.0,
                        htm_share: 0.0,
                        inflations: 0,
                    }],
                }],
            }],
        }
    }

    #[test]
    fn text_render_contains_values() {
        let r = demo().render_text();
        assert!(r.contains("demo-w"));
        assert!(r.contains("SYS"));
        assert!(r.contains("1.00"));
        assert!(r.contains("9.1%"));
    }

    #[test]
    fn json_round_trips_structurally() {
        let j = demo().to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["panels"][0]["series"][0]["cells"][0]["threads"], 1);
    }
}
