//! Figure output: the same rows/series the paper plots, as text tables
//! and machine-readable JSON (hand-rolled writer — the schema is four
//! nested structs; a serialization framework would be the only external
//! dependency in the workspace).

use nztm_core::ObjectHeat;

/// One measured cell.
#[derive(Clone, Debug)]
pub struct Cell {
    pub threads: usize,
    /// Raw throughput (ops per cycle or per nanosecond).
    pub raw: f64,
    /// Normalized throughput (the figure's y-axis).
    pub norm: f64,
    pub commits: u64,
    pub aborts: u64,
    pub abort_rate: f64,
    /// Hardware-commit share (hybrid systems; 0 otherwise).
    pub htm_share: f64,
    pub inflations: u64,
    /// Per-object contention attribution from the flight recorder
    /// (empty unless built with `--features trace` and tracing armed,
    /// e.g. `NZTM_BENCH_TRACE=1`).
    pub hotspots: Vec<ObjectHeat>,
}

/// One line in a sub-plot: a system measured across thread counts.
#[derive(Clone, Debug)]
pub struct Series {
    pub system: String,
    pub cells: Vec<Cell>,
}

/// One sub-plot (a workload) of a figure.
#[derive(Clone, Debug)]
pub struct Panel {
    pub workload: String,
    pub series: Vec<Series>,
}

/// A whole figure.
#[derive(Clone, Debug)]
pub struct FigureReport {
    pub figure: String,
    pub normalization: String,
    pub panels: Vec<Panel>,
}

/// Minimal JSON string escaping (the only non-trivial JSON the writer
/// needs; all other values are numbers).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats print as-is; non-finite map to null (JSON
/// has no NaN/Inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

impl Cell {
    fn to_json(&self, out: &mut String, indent: &str) {
        use std::fmt::Write;
        write!(
            out,
            "{indent}{{ \"threads\": {}, \"raw\": {}, \"norm\": {}, \"commits\": {}, \
             \"aborts\": {}, \"abort_rate\": {}, \"htm_share\": {}, \"inflations\": {}",
            self.threads,
            json_f64(self.raw),
            json_f64(self.norm),
            self.commits,
            self.aborts,
            json_f64(self.abort_rate),
            json_f64(self.htm_share),
            self.inflations
        )
        .unwrap();
        if !self.hotspots.is_empty() {
            write!(out, ", \"hotspots\": [").unwrap();
            for (i, h) in self.hotspots.iter().enumerate() {
                write!(
                    out,
                    "{}{{ \"addr\": {}, \"conflicts\": {}, \"waits\": {}, \
                     \"inflations\": {}, \"acquires\": {}, \"reader_scans\": {} }}",
                    if i > 0 { ", " } else { "" },
                    h.addr,
                    h.conflicts,
                    h.waits,
                    h.inflations,
                    h.acquires,
                    h.reader_scans
                )
                .unwrap();
            }
            write!(out, "]").unwrap();
        }
        write!(out, " }}").unwrap();
    }
}

impl FigureReport {
    /// Render as the text analogue of the paper's figure: one table per
    /// workload panel, columns = thread counts, rows = systems,
    /// values = normalized throughput.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "==== {} (normalized to {}) ====", self.figure, self.normalization).unwrap();
        for p in &self.panels {
            writeln!(out, "\n--- {} ---", p.workload).unwrap();
            let threads: Vec<usize> =
                p.series.first().map(|s| s.cells.iter().map(|c| c.threads).collect()).unwrap_or_default();
            write!(out, "{:<12}", "system").unwrap();
            for t in &threads {
                write!(out, "{t:>9}").unwrap();
            }
            writeln!(out).unwrap();
            for s in &p.series {
                write!(out, "{:<12}", s.system).unwrap();
                for c in &s.cells {
                    write!(out, "{:>9.2}", c.norm).unwrap();
                }
                writeln!(out).unwrap();
            }
            // Abort-rate annotation row per system (the §4.4 text claims).
            for s in &p.series {
                write!(out, "{:<12}", format!("  ar {}", s.system)).unwrap();
                for c in &s.cells {
                    write!(out, "{:>8.1}%", c.abort_rate * 100.0).unwrap();
                }
                writeln!(out).unwrap();
            }
            // Per-object contention attribution from the flight
            // recorder, taken at each system's highest thread count
            // (present only when tracing was armed).
            for s in &p.series {
                let Some(c) = s.cells.last().filter(|c| !c.hotspots.is_empty()) else {
                    continue;
                };
                writeln!(out, "  hottest objects, {} @ {} threads:", s.system, c.threads)
                    .unwrap();
                for h in &c.hotspots {
                    // Stripe lines of a striped reader indicator show up as
                    // their own addresses with non-zero reader_scans — the
                    // per-stripe writer-scan attribution at >64 threads.
                    if h.reader_scans > 0 {
                        writeln!(
                            out,
                            "    stripe@{:#x}: {} reader scans, {} conflicts",
                            h.addr, h.reader_scans, h.conflicts
                        )
                        .unwrap();
                    } else {
                        writeln!(
                            out,
                            "    obj@{:#x}: {} conflicts, {} waits, {} inflations, {} acquires",
                            h.addr, h.conflicts, h.waits, h.inflations, h.acquires
                        )
                        .unwrap();
                    }
                }
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"figure\": {},", json_str(&self.figure)).unwrap();
        writeln!(out, "  \"normalization\": {},", json_str(&self.normalization)).unwrap();
        writeln!(out, "  \"panels\": [").unwrap();
        for (pi, p) in self.panels.iter().enumerate() {
            writeln!(out, "    {{").unwrap();
            writeln!(out, "      \"workload\": {},", json_str(&p.workload)).unwrap();
            writeln!(out, "      \"series\": [").unwrap();
            for (si, s) in p.series.iter().enumerate() {
                writeln!(out, "        {{").unwrap();
                writeln!(out, "          \"system\": {},", json_str(&s.system)).unwrap();
                writeln!(out, "          \"cells\": [").unwrap();
                for (ci, c) in s.cells.iter().enumerate() {
                    c.to_json(&mut out, "            ");
                    writeln!(out, "{}", if ci + 1 < s.cells.len() { "," } else { "" }).unwrap();
                }
                writeln!(out, "          ]").unwrap();
                writeln!(out, "        }}{}", if si + 1 < p.series.len() { "," } else { "" })
                    .unwrap();
            }
            writeln!(out, "      ]").unwrap();
            writeln!(out, "    }}{}", if pi + 1 < self.panels.len() { "," } else { "" }).unwrap();
        }
        writeln!(out, "  ]").unwrap();
        write!(out, "}}").unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FigureReport {
        FigureReport {
            figure: "Figure X".into(),
            normalization: "1-thread demo".into(),
            panels: vec![Panel {
                workload: "demo-w".into(),
                series: vec![Series {
                    system: "SYS".into(),
                    cells: vec![Cell {
                        threads: 1,
                        raw: 0.5,
                        norm: 1.0,
                        commits: 10,
                        aborts: 1,
                        abort_rate: 1.0 / 11.0,
                        htm_share: 0.0,
                        inflations: 0,
                        hotspots: vec![ObjectHeat {
                            addr: 0x40,
                            conflicts: 3,
                            waits: 2,
                            inflations: 1,
                            deflations: 0,
                            acquires: 7,
                            reader_scans: 0,
                        }],
                    }],
                }],
            }],
        }
    }

    #[test]
    fn text_render_contains_values() {
        let r = demo().render_text();
        assert!(r.contains("demo-w"));
        assert!(r.contains("SYS"));
        assert!(r.contains("1.00"));
        assert!(r.contains("9.1%"));
        assert!(r.contains("hottest objects, SYS @ 1 threads:"));
        assert!(r.contains("obj@0x40: 3 conflicts"));
    }

    #[test]
    fn json_contains_structure() {
        let j = demo().to_json();
        assert!(j.contains("\"figure\": \"Figure X\""));
        assert!(j.contains("\"workload\": \"demo-w\""));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"commits\": 10"));
        assert!(j.contains("\"hotspots\": [{ \"addr\": 64, \"conflicts\": 3"));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_strings_and_nonfinite() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
