//! Workload × system × platform matrix used by the figure binaries.

use nztm_core::cm::KarmaDeadlock;
use nztm_core::{Bzstm, NzBuilder, NzConfig, Nzstm, NzstmScss, TmSys};
use nztm_dstm::{GlobalLockTm, ShadowStm};
use nztm_htm::{AtmtpConfig, BestEffortHtm, HybridConfig, LogTmSe, NztmHybrid};
use nztm_sim::{Machine, MachineConfig, Native, SimPlatform};
use nztm_workloads::driver::{
    run_genome_native, run_genome_sim, run_kmeans_native, run_kmeans_sim, run_set_native,
    run_set_sim, run_vacation_native, run_vacation_sim, BenchResult, SetBenchConfig, SetKind,
};
use nztm_workloads::stamp::genome::GenomeConfig;
use nztm_workloads::stamp::kmeans::KmeansConfig;
use nztm_workloads::stamp::vacation::VacationConfig;
use nztm_workloads::Contention;
use std::sync::Arc;

/// The paper's eleven workloads (§4.2, Figures 3 & 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    HashtableHigh,
    HashtableLow,
    RedblackHigh,
    RedblackLow,
    LinkedlistHigh,
    LinkedlistLow,
    Genome,
    KmeansHigh,
    KmeansLow,
    VacationHigh,
    VacationLow,
}

pub const ALL_WORKLOADS: &[Workload] = &[
    Workload::HashtableHigh,
    Workload::HashtableLow,
    Workload::RedblackHigh,
    Workload::RedblackLow,
    Workload::LinkedlistHigh,
    Workload::LinkedlistLow,
    Workload::Genome,
    Workload::KmeansHigh,
    Workload::KmeansLow,
    Workload::VacationHigh,
    Workload::VacationLow,
];

impl Workload {
    pub fn name(self) -> &'static str {
        match self {
            Workload::HashtableHigh => "hashtable-high",
            Workload::HashtableLow => "hashtable-low",
            Workload::RedblackHigh => "redblack-high",
            Workload::RedblackLow => "redblack-low",
            Workload::LinkedlistHigh => "linkedlist-high",
            Workload::LinkedlistLow => "linkedlist-low",
            Workload::Genome => "genome",
            Workload::KmeansHigh => "kmeans-high",
            Workload::KmeansLow => "kmeans-low",
            Workload::VacationHigh => "vacation-high",
            Workload::VacationLow => "vacation-low",
        }
    }

    pub fn from_name(s: &str) -> Option<Workload> {
        ALL_WORKLOADS.iter().copied().find(|w| w.name() == s)
    }
}

/// Problem sizes, tunable so the deterministic simulator finishes a full
/// figure in minutes (`quick`) or with more statistical weight (`full`).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadScale {
    /// Set-microbenchmark operations per thread.
    pub set_ops: u64,
    /// kmeans points (split across threads) and iterations.
    pub kmeans_points: usize,
    pub kmeans_iters: usize,
    /// genome length in bases.
    pub genome_len: usize,
    /// vacation transactions per thread and relations per table.
    pub vacation_txns: u64,
    pub vacation_relations: usize,
    pub seed: u64,
}

impl WorkloadScale {
    pub fn quick() -> Self {
        WorkloadScale {
            set_ops: 200,
            kmeans_points: 384,
            kmeans_iters: 2,
            genome_len: 384,
            vacation_txns: 60,
            vacation_relations: 48,
            seed: 0xF1C,
        }
    }

    pub fn full() -> Self {
        WorkloadScale {
            set_ops: 1_000,
            kmeans_points: 1_024,
            kmeans_iters: 3,
            genome_len: 1_024,
            vacation_txns: 250,
            vacation_relations: 64,
            seed: 0xF1C,
        }
    }
}

/// Whether bench cells should arm the engine flight recorder
/// (`NZTM_BENCH_TRACE=1`). With the `trace` cargo feature off,
/// `set_tracing` is a no-op and reports simply carry no hotspots.
pub fn trace_requested() -> bool {
    std::env::var_os("NZTM_BENCH_TRACE").is_some_and(|v| v == "1")
}

/// Run one workload on the simulated machine with system `sys`.
pub fn run_workload_sim<S: TmSys>(
    machine: &Arc<Machine>,
    platform: &Arc<SimPlatform>,
    sys: &Arc<S>,
    w: Workload,
    scale: &WorkloadScale,
) -> BenchResult {
    if trace_requested() {
        sys.set_tracing(true);
    }
    let threads = machine.config().n_cores;
    let set = |kind, contention| SetBenchConfig {
        kind,
        contention,
        threads,
        ops_per_thread: scale.set_ops,
        seed: scale.seed,
    };
    match w {
        Workload::HashtableHigh => {
            run_set_sim(machine, platform, sys, &set(SetKind::HashTable, Contention::High))
        }
        Workload::HashtableLow => {
            run_set_sim(machine, platform, sys, &set(SetKind::HashTable, Contention::Low))
        }
        Workload::RedblackHigh => {
            run_set_sim(machine, platform, sys, &set(SetKind::RedBlack, Contention::High))
        }
        Workload::RedblackLow => {
            run_set_sim(machine, platform, sys, &set(SetKind::RedBlack, Contention::Low))
        }
        Workload::LinkedlistHigh => {
            run_set_sim(machine, platform, sys, &set(SetKind::LinkedList, Contention::High))
        }
        Workload::LinkedlistLow => {
            run_set_sim(machine, platform, sys, &set(SetKind::LinkedList, Contention::Low))
        }
        Workload::Genome => run_genome_sim(
            machine,
            platform,
            sys,
            GenomeConfig { genome_len: scale.genome_len, seed: scale.seed },
        ),
        Workload::KmeansHigh => run_kmeans_sim(
            machine,
            platform,
            sys,
            KmeansConfig::high(scale.kmeans_points, scale.kmeans_iters),
        ),
        Workload::KmeansLow => run_kmeans_sim(
            machine,
            platform,
            sys,
            KmeansConfig::low(scale.kmeans_points, scale.kmeans_iters),
        ),
        Workload::VacationHigh => run_vacation_sim(
            machine,
            platform,
            sys,
            VacationConfig::high(scale.vacation_relations, 16),
            scale.vacation_txns,
        ),
        Workload::VacationLow => run_vacation_sim(
            machine,
            platform,
            sys,
            VacationConfig::low(scale.vacation_relations, 16),
            scale.vacation_txns,
        ),
    }
}

/// Run one workload natively with system `sys` across `threads` threads.
pub fn run_workload_native<S: TmSys>(
    platform: &Arc<Native>,
    sys: &Arc<S>,
    w: Workload,
    threads: usize,
    scale: &WorkloadScale,
) -> BenchResult {
    if trace_requested() {
        sys.set_tracing(true);
    }
    let set = |kind, contention| SetBenchConfig {
        kind,
        contention,
        threads,
        ops_per_thread: scale.set_ops,
        seed: scale.seed,
    };
    match w {
        Workload::HashtableHigh => {
            run_set_native(platform, sys, &set(SetKind::HashTable, Contention::High))
        }
        Workload::HashtableLow => {
            run_set_native(platform, sys, &set(SetKind::HashTable, Contention::Low))
        }
        Workload::RedblackHigh => {
            run_set_native(platform, sys, &set(SetKind::RedBlack, Contention::High))
        }
        Workload::RedblackLow => {
            run_set_native(platform, sys, &set(SetKind::RedBlack, Contention::Low))
        }
        Workload::LinkedlistHigh => {
            run_set_native(platform, sys, &set(SetKind::LinkedList, Contention::High))
        }
        Workload::LinkedlistLow => {
            run_set_native(platform, sys, &set(SetKind::LinkedList, Contention::Low))
        }
        Workload::Genome => run_genome_native(
            platform,
            sys,
            GenomeConfig { genome_len: scale.genome_len, seed: scale.seed },
        ),
        Workload::KmeansHigh => run_kmeans_native(
            platform,
            sys,
            KmeansConfig::high(scale.kmeans_points, scale.kmeans_iters),
        ),
        Workload::KmeansLow => run_kmeans_native(
            platform,
            sys,
            KmeansConfig::low(scale.kmeans_points, scale.kmeans_iters),
        ),
        Workload::VacationHigh => run_vacation_native(
            platform,
            sys,
            VacationConfig::high(scale.vacation_relations, 16),
            scale.vacation_txns,
        ),
        Workload::VacationLow => run_vacation_native(
            platform,
            sys,
            VacationConfig::low(scale.vacation_relations, 16),
            scale.vacation_txns,
        ),
    }
}

/// Figure 3's simulated systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimSystem {
    LogTmSe,
    NztmAtmtp,
    Nzstm,
    Norec,
}

impl SimSystem {
    pub fn name(self) -> &'static str {
        match self {
            SimSystem::LogTmSe => "LogTM-SE",
            SimSystem::NztmAtmtp => "NZTM/ATMTP",
            SimSystem::Nzstm => "NZSTM",
            SimSystem::Norec => "NOREC",
        }
    }
}

pub fn fig3_systems() -> Vec<SimSystem> {
    vec![SimSystem::LogTmSe, SimSystem::NztmAtmtp, SimSystem::Nzstm, SimSystem::Norec]
}

/// Figure 4's native systems (plus the normalization baseline).
pub fn fig4_systems() -> Vec<&'static str> {
    vec!["DSTM2-SF", "BZSTM", "SCSS", "NZSTM", "NOREC"]
}

/// Build a fresh simulated machine with the paper's configuration.
pub fn paper_machine(threads: usize) -> (Arc<Machine>, Arc<SimPlatform>) {
    let machine = Machine::new(MachineConfig::paper(threads));
    let platform = SimPlatform::new(Arc::clone(&machine));
    (machine, platform)
}

/// Like [`fig3_cell`] for the hybrid, with a custom ATMTP configuration
/// (used by the S3 resource-abort claim: our scaled-down transactions
/// need ATMTP's *real* default store-queue depth to feel the paper's
/// resource pressure).
pub fn fig3_hybrid_cell_with_atmtp(
    w: Workload,
    threads: usize,
    scale: &WorkloadScale,
    atmtp: AtmtpConfig,
) -> BenchResult {
    let (machine, platform) = paper_machine(threads);
    let stm = Nzstm::new(
        Arc::clone(&platform),
        Arc::new(KarmaDeadlock::default()),
        NzConfig::default(),
    );
    let htm = BestEffortHtm::new(Arc::clone(&platform), atmtp);
    htm.install();
    let s = NztmHybrid::new(stm, htm, HybridConfig::default());
    let r = run_workload_sim(&machine, &platform, &s, w, scale);
    s.htm().uninstall();
    r
}

/// Run one (workload, system, thread-count) cell of Figure 3.
pub fn fig3_cell(sys: SimSystem, w: Workload, threads: usize, scale: &WorkloadScale) -> BenchResult {
    let (machine, platform) = paper_machine(threads);
    match sys {
        SimSystem::LogTmSe => {
            let s = LogTmSe::new(Arc::clone(&platform));
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        SimSystem::Nzstm => {
            let s = Nzstm::new(
                Arc::clone(&platform),
                Arc::new(KarmaDeadlock::default()),
                NzConfig::default(),
            );
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        SimSystem::Norec => {
            let s = NzBuilder::new(Arc::clone(&platform)).build_norec();
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        SimSystem::NztmAtmtp => {
            let stm = Nzstm::new(
                Arc::clone(&platform),
                Arc::new(KarmaDeadlock::default()),
                NzConfig::default(),
            );
            let htm = BestEffortHtm::new(Arc::clone(&platform), AtmtpConfig::default());
            htm.install();
            let s = NztmHybrid::new(stm, htm, HybridConfig::default());
            let r = run_workload_sim(&machine, &platform, &s, w, scale);
            s.htm().uninstall();
            r
        }
    }
}

/// Run one (workload, system, thread-count) cell of Figure 4 **on the
/// deterministic simulator** — the configuration the §4.4.2 software
/// comparisons (S4–S6) use here, since host caches are far too large to
/// reproduce Rock-era coherence effects natively.
pub fn fig4_sim_cell(
    sys_name: &str,
    w: Workload,
    threads: usize,
    scale: &WorkloadScale,
) -> BenchResult {
    let (machine, platform) = paper_machine(threads);
    match sys_name {
        "GlobalLock" => {
            let s = GlobalLockTm::new(Arc::clone(&platform) as Arc<SimPlatform>);
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        "DSTM2-SF" => {
            let s = ShadowStm::with_defaults(Arc::clone(&platform));
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        "BZSTM" => {
            let s: Arc<Bzstm<SimPlatform>> = NzBuilder::new(Arc::clone(&platform)).build_bzstm();
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        "SCSS" => {
            let s: Arc<NzstmScss<SimPlatform>> = NzBuilder::new(Arc::clone(&platform)).build_scss();
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        "NZSTM" => {
            let s: Arc<Nzstm<SimPlatform>> = NzBuilder::new(Arc::clone(&platform)).build_nzstm();
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        "NOREC" => {
            let s = NzBuilder::new(Arc::clone(&platform)).build_norec();
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        "DSTM" => {
            let s = nztm_dstm::Dstm::with_defaults(Arc::clone(&platform));
            run_workload_sim(&machine, &platform, &s, w, scale)
        }
        other => panic!("unknown system {other:?}"),
    }
}

/// Run one (workload, system, thread-count) cell of Figure 4, including
/// the "GlobalLock" baseline row.
pub fn fig4_cell(sys_name: &str, w: Workload, threads: usize, scale: &WorkloadScale) -> BenchResult {
    let platform = Native::new(threads.max(1));
    match sys_name {
        "GlobalLock" => {
            let s = GlobalLockTm::new(Arc::clone(&platform));
            run_workload_native(&platform, &s, w, threads, scale)
        }
        "DSTM2-SF" => {
            let s = ShadowStm::with_defaults(Arc::clone(&platform));
            run_workload_native(&platform, &s, w, threads, scale)
        }
        "BZSTM" => {
            let s: Arc<Bzstm<Native>> = NzBuilder::new(Arc::clone(&platform)).build_bzstm();
            run_workload_native(&platform, &s, w, threads, scale)
        }
        "SCSS" => {
            let s: Arc<NzstmScss<Native>> = NzBuilder::new(Arc::clone(&platform)).build_scss();
            run_workload_native(&platform, &s, w, threads, scale)
        }
        "NZSTM" => {
            let s: Arc<Nzstm<Native>> = NzBuilder::new(Arc::clone(&platform)).build_nzstm();
            run_workload_native(&platform, &s, w, threads, scale)
        }
        "NOREC" => {
            let s = NzBuilder::new(Arc::clone(&platform)).build_norec();
            run_workload_native(&platform, &s, w, threads, scale)
        }
        "DSTM" => {
            let s = nztm_dstm::Dstm::with_defaults(Arc::clone(&platform));
            run_workload_native(&platform, &s, w, threads, scale)
        }
        other => panic!("unknown system {other:?}"),
    }
}
