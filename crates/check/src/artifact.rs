//! Failure shrinking and replayable artifacts.
//!
//! A failure found by exploration is a `(config, forced-choice prefix)`
//! pair. The shrinker binary-searches the shortest prefix that still
//! fails with the same kind (replaying a truncated prefix continues
//! under the deterministic min-clock rule, so every candidate is a
//! complete, reproducible run). The artifact is a self-contained
//! line-based text file under `results/`; `check_replay` re-runs it and
//! reports whether the failure reproduces.

use crate::explore::{judge, CheckError, Failure};
use crate::harness::{run_config, Backend, CheckConfig, CmKind, Workload};
use nztm_sim::SchedPolicy;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A self-contained, replayable failure.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The failing configuration (its `policy` field is ignored; the
    /// schedule is `choices`).
    pub cfg: CheckConfig,
    pub kind: String,
    pub detail: String,
    pub choices: Vec<u32>,
}

impl Artifact {
    /// Package a (possibly shrunk) failure with the config it fails on.
    pub fn new(base: &CheckConfig, failure: &Failure) -> Artifact {
        Artifact {
            cfg: base.clone(),
            kind: failure.kind.clone(),
            detail: failure.detail.clone(),
            choices: failure.choices.clone(),
        }
    }
}

fn fails_with_kind(base: &CheckConfig, choices: &[u32], kind: &str) -> Option<CheckError> {
    let mut cfg = base.clone();
    cfg.policy = SchedPolicy::Replay { choices: Arc::new(choices.to_vec()) };
    let out = run_config(&cfg);
    judge(&cfg, &out).err().filter(|e| e.kind() == kind)
}

/// Shrink a failure to the shortest forced-choice prefix that still
/// fails with the same kind. Failure reproduction is not perfectly
/// monotone in prefix length (truncation changes the continuation), so
/// the binary-search result is verified and the original kept on a
/// non-monotone miss.
pub fn shrink(base: &CheckConfig, failure: &Failure) -> Failure {
    let (mut lo, mut hi) = (0usize, failure.choices.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails_with_kind(base, &failure.choices[..mid], &failure.kind).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    match fails_with_kind(base, &failure.choices[..hi], &failure.kind) {
        Some(e) => Failure {
            kind: failure.kind.clone(),
            detail: e.detail(),
            choices: failure.choices[..hi].to_vec(),
        },
        None => failure.clone(),
    }
}

fn opt_pair<T: std::fmt::Display>(v: &Option<(T, T)>) -> String {
    match v {
        Some((a, b)) => format!("{a}:{b}"),
        None => "none".into(),
    }
}

/// Serialize an artifact to its line-based text form.
pub fn to_text(art: &Artifact) -> String {
    let c = &art.cfg;
    let stall = match c.stall {
        Some((t, n)) => format!("{t}:{n}"),
        None => "none".into(),
    };
    let crash = match c.crash_tid {
        Some(t) => t.to_string(),
        None => "none".into(),
    };
    let choices =
        art.choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
    format!(
        "nztm-check failure artifact v1\n\
         backend={}\nworkload={}\ncm={}\nthreads={}\nhw_cores={}\nobjects={}\nops_per_thread={}\n\
         initial={}\npatience={}\nseed={}\nmax_cycles={}\ncrash_tid={}\nstall={}\n\
         inject_handshake_bug={}\npause={}\nyield_points={}\n\
         kind={}\ndetail={}\nchoices={}\n",
        c.backend.name(),
        c.workload.name(),
        c.cm.name(),
        c.threads,
        c.hw_cores,
        c.objects,
        c.ops_per_thread,
        c.initial,
        c.patience,
        c.seed,
        c.max_cycles,
        crash,
        stall,
        c.inject_handshake_bug,
        opt_pair(&c.pause),
        c.yield_points,
        art.kind,
        art.detail.replace('\n', " "),
        choices,
    )
}

/// Parse the text form back into an artifact.
pub fn from_text(text: &str) -> Result<Artifact, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty artifact")?;
    if header != "nztm-check failure artifact v1" {
        return Err(format!("unrecognized artifact header: {header:?}"));
    }
    let mut fields = std::collections::HashMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (k, v) = line.split_once('=').ok_or_else(|| format!("bad line: {line:?}"))?;
        fields.insert(k.to_string(), v.to_string());
    }
    let get = |k: &str| fields.get(k).cloned().ok_or_else(|| format!("missing field {k}"));
    let num = |k: &str| -> Result<u64, String> {
        get(k)?.parse().map_err(|e| format!("field {k}: {e}"))
    };
    let opt_num = |k: &str| -> Result<Option<u64>, String> {
        let v = get(k)?;
        if v == "none" {
            Ok(None)
        } else {
            v.parse().map(Some).map_err(|e| format!("field {k}: {e}"))
        }
    };
    let pair = |k: &str| -> Result<Option<(u64, u64)>, String> {
        let v = get(k)?;
        if v == "none" {
            return Ok(None);
        }
        let (a, b) = v.split_once(':').ok_or_else(|| format!("field {k}: want a:b"))?;
        Ok(Some((
            a.parse().map_err(|e| format!("field {k}: {e}"))?,
            b.parse().map_err(|e| format!("field {k}: {e}"))?,
        )))
    };
    let backend =
        Backend::parse(&get("backend")?).ok_or_else(|| "unknown backend".to_string())?;
    let workload =
        Workload::parse(&get("workload")?).ok_or_else(|| "unknown workload".to_string())?;
    let choices_raw = get("choices")?;
    let choices: Vec<u32> = if choices_raw.is_empty() {
        Vec::new()
    } else {
        choices_raw
            .split(',')
            .map(|c| c.parse().map_err(|e| format!("choices: {e}")))
            .collect::<Result<_, String>>()?
    };
    // Absent in artifacts written before policy selection existed:
    // those all ran the Karma default.
    let cm = match fields.get("cm") {
        None => CmKind::Karma,
        Some(v) => CmKind::parse(v).ok_or_else(|| format!("unknown cm {v:?}"))?,
    };
    let cfg = CheckConfig {
        backend,
        workload,
        cm,
        threads: num("threads")? as usize,
        // Absent in artifacts written before oversubscription existed:
        // those ran on dedicated machines.
        hw_cores: fields.get("hw_cores").map_or(Ok(0), |v| {
            v.parse().map_err(|e| format!("field hw_cores: {e}"))
        })? as usize,
        objects: num("objects")? as usize,
        ops_per_thread: num("ops_per_thread")? as usize,
        initial: num("initial")?,
        patience: num("patience")?,
        seed: num("seed")?,
        policy: SchedPolicy::Replay { choices: Arc::new(choices.clone()) },
        max_cycles: num("max_cycles")?,
        crash_tid: opt_num("crash_tid")?.map(|t| t as usize),
        stall: pair("stall")?.map(|(t, n)| (t as usize, n)),
        inject_handshake_bug: get("inject_handshake_bug")? == "true",
        pause: pair("pause")?,
        yield_points: get("yield_points")? == "true",
        // Tracing is a replay-time choice, not part of the failure
        // identity, so it is never serialized.
        trace: false,
    };
    Ok(Artifact { cfg, kind: get("kind")?, detail: get("detail")?, choices })
}

/// Write an artifact under `dir`, returning its path.
pub fn write_artifact(dir: &Path, art: &Artifact) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = format!(
        "nztm_check_{}_{}_{}_seed{}_len{}.txt",
        art.kind,
        art.cfg.backend.name(),
        art.cfg.workload.name(),
        art.cfg.seed,
        art.choices.len()
    );
    let path = dir.join(name);
    std::fs::write(&path, to_text(art))?;
    Ok(path)
}

/// Read an artifact file.
pub fn read_artifact(path: &Path) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_text(&text)
}

/// The result of replaying an artifact.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// The replay failed with the artifact's kind.
    pub reproduced: bool,
    /// What the replay actually produced ("ok" when it passed).
    pub kind: String,
    pub detail: String,
}

/// Re-run an artifact's schedule and judge it.
pub fn replay(art: &Artifact) -> Result<ReplayReport, String> {
    let mut cfg = art.cfg.clone();
    if cfg.requires_sanitize() && !cfg!(feature = "sanitize") {
        return Err(
            "artifact needs fault injection / pause schedules / protocol-edge yield points: \
             rebuild with `--features sanitize`"
                .into(),
        );
    }
    cfg.policy = SchedPolicy::Replay { choices: Arc::new(art.choices.clone()) };
    let out = run_config(&cfg);
    Ok(match judge(&cfg, &out) {
        Ok(()) => ReplayReport { reproduced: false, kind: "ok".into(), detail: String::new() },
        Err(e) => ReplayReport {
            reproduced: e.kind() == art.kind,
            kind: e.kind().into(),
            detail: e.detail(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_text_round_trips() {
        let cfg = CheckConfig {
            crash_tid: Some(2),
            stall: Some((1, 5000)),
            pause: Some((9, 4)),
            hw_cores: 2,
            ..CheckConfig::transfer(Backend::Scss)
        };
        let art = Artifact {
            cfg,
            kind: "linearizability".into(),
            detail: "no linearization of 7 ops".into(),
            choices: vec![0, 2, 1, 1, 0],
        };
        let back = from_text(&to_text(&art)).unwrap();
        assert_eq!(to_text(&back), to_text(&art));
        assert_eq!(back.choices, art.choices);
        assert_eq!(back.cfg.crash_tid, Some(2));
        assert_eq!(back.cfg.stall, Some((1, 5000)));
        assert_eq!(back.cfg.pause, Some((9, 4)));
        assert_eq!(back.cfg.hw_cores, 2);
    }

    #[test]
    fn artifacts_without_hw_cores_parse_as_dedicated() {
        let art = Artifact {
            cfg: CheckConfig::transfer(Backend::Nzstm),
            kind: "sanitizer".into(),
            detail: "d".into(),
            choices: vec![1],
        };
        let text = to_text(&art)
            .lines()
            .filter(|l| !l.starts_with("hw_cores="))
            .collect::<Vec<_>>()
            .join("\n");
        let back = from_text(&text).unwrap();
        assert_eq!(back.cfg.hw_cores, 0, "pre-oversubscription artifacts ran dedicated");
    }

    #[test]
    fn cm_field_round_trips_and_defaults_to_karma() {
        let art = Artifact {
            cfg: CheckConfig { cm: CmKind::Adaptive, ..CheckConfig::transfer(Backend::Nzstm) },
            kind: "conservation".into(),
            detail: "d".into(),
            choices: vec![],
        };
        let back = from_text(&to_text(&art)).unwrap();
        assert_eq!(back.cfg.cm, CmKind::Adaptive);
        // Artifacts from before policy selection carry no cm= line and
        // must replay under the Karma default they were found with.
        let text = to_text(&art)
            .lines()
            .filter(|l| !l.starts_with("cm="))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(from_text(&text).unwrap().cfg.cm, CmKind::Karma);
        assert!(from_text(&to_text(&art).replace("cm=adaptive", "cm=bogus")).is_err());
    }

    #[test]
    fn unknown_header_is_rejected() {
        assert!(from_text("something else\n").is_err());
    }
}
