//! Replay a failure artifact produced by `nztm-check`.
//!
//! ```text
//! check_replay results/nztm_check_linearizability_NZSTM_transfer_seed1_len12.txt
//! check_replay --timeline artifact.txt
//! check_replay --perfetto trace.json artifact.txt
//! ```
//!
//! `--timeline` re-runs the schedule with the engine flight recorder
//! armed and prints an annotated timeline naming the conflicting
//! transactions and objects. `--perfetto <out.json>` additionally
//! writes the trace in Chrome `trace_event` format (load it at
//! <https://ui.perfetto.dev>). Both need the binary built with
//! `--features trace` to capture events.
//!
//! Exit status: 0 if the artifact's failure reproduces, 1 if the run
//! passes or fails differently, 2 on usage or parse errors.

use nztm_check::{read_artifact, render_artifact, replay};

fn usage() -> ! {
    eprintln!("usage: check_replay [--timeline] [--perfetto <out.json>] <artifact.txt>");
    std::process::exit(2);
}

fn main() {
    let mut timeline = false;
    let mut perfetto: Option<String> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeline" => timeline = true,
            "--perfetto" => match args.next() {
                Some(p) => perfetto = Some(p),
                None => usage(),
            },
            _ if path.is_none() => path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let art = match read_artifact(std::path::Path::new(&path)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("check_replay: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "replaying {} {} ({} forced choices), expecting {}",
        art.cfg.backend.name(),
        art.cfg.workload.name(),
        art.choices.len(),
        art.kind
    );
    let reproduced = if timeline || perfetto.is_some() {
        match render_artifact(&art) {
            Ok(rep) => {
                if timeline {
                    print!("{}", rep.timeline);
                }
                if let Some(out) = perfetto {
                    match std::fs::write(&out, rep.outcome.trace.to_chrome_trace()) {
                        Ok(()) => println!("wrote Chrome trace to {out}"),
                        Err(e) => {
                            eprintln!("check_replay: write {out}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                if rep.reproduced {
                    println!("REPRODUCED: {} — {}", rep.kind, rep.detail);
                } else {
                    println!("NOT reproduced: got {} — {}", rep.kind, rep.detail);
                }
                rep.reproduced
            }
            Err(e) => {
                eprintln!("check_replay: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match replay(&art) {
            Ok(rep) => {
                if rep.reproduced {
                    println!("REPRODUCED: {} — {}", rep.kind, rep.detail);
                } else {
                    println!("NOT reproduced: got {} — {}", rep.kind, rep.detail);
                }
                rep.reproduced
            }
            Err(e) => {
                eprintln!("check_replay: {e}");
                std::process::exit(2);
            }
        }
    };
    if !reproduced {
        std::process::exit(1);
    }
}
