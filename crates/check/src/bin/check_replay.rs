//! Replay a failure artifact produced by `nztm-check`.
//!
//! ```text
//! check_replay results/nztm_check_linearizability_NZSTM_transfer_seed1_len12.txt
//! ```
//!
//! Exit status: 0 if the artifact's failure reproduces, 1 if the run
//! passes or fails differently, 2 on usage or parse errors.

use nztm_check::{read_artifact, replay};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) => p,
        _ => {
            eprintln!("usage: check_replay <artifact.txt>");
            std::process::exit(2);
        }
    };
    let art = match read_artifact(std::path::Path::new(&path)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("check_replay: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "replaying {} {} ({} forced choices), expecting {}",
        art.cfg.backend.name(),
        art.cfg.workload.name(),
        art.choices.len(),
        art.kind
    );
    match replay(&art) {
        Ok(rep) if rep.reproduced => {
            println!("REPRODUCED: {} — {}", rep.kind, rep.detail);
        }
        Ok(rep) => {
            println!("NOT reproduced: got {} — {}", rep.kind, rep.detail);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("check_replay: {e}");
            std::process::exit(2);
        }
    }
}
