//! Time-boxed exploration driver for CI (`check-smoke` job).
//!
//! Fixed seeds, a wall-clock budget, and a fail-fast contract: on the
//! first judged failure the shrunk artifact is written under `--out`
//! (default `results/`) and the process exits nonzero. The campaign
//! interleaves, per backend: a small bounded-exhaustive sweep, a
//! random-walk fuzzing block, and the targeted adversarial presets.
//!
//! ```text
//! check_smoke [--budget-secs 120] [--out results] [--deep] [--tds]
//! ```
//!
//! `--tds` runs *only* the transactional-data-structure campaign (the
//! `tds-check` CI job): the hash map, skiplist and MPMC queue on every
//! backend under bounded-exhaustive, PCT-random and abort-storm
//! exploration, judged by the ADT-level Wing-Gong specs.
//!
//! `--deep` appends the nightly campaign: deeper bounded-exhaustive
//! enumeration, long PCT-style random blocks, bounded-exhaustive at a
//! higher thread count, and wide abort storms past the 64-thread flat
//! reader-bitmap boundary on an oversubscribed machine. The wall-clock
//! budget still applies — stages that don't fit are skipped, not
//! overrun — so the nightly job sets `--budget-secs` to its time box.

use nztm_check::{
    explore_exhaustive, explore_random, shrink, write_artifact, Artifact, Backend,
    CheckConfig, ExploreReport, Failure, Workload, BACKENDS,
};
use std::time::Instant;

struct Campaign {
    start: Instant,
    budget_secs: u64,
    out_dir: std::path::PathBuf,
    schedules: u64,
    stages: u64,
}

impl Campaign {
    fn over_budget(&self) -> bool {
        self.start.elapsed().as_secs() >= self.budget_secs
    }

    /// Run one stage unless the budget is gone; on failure, shrink,
    /// write the artifact and exit nonzero.
    fn stage(
        &mut self,
        name: &str,
        base: &CheckConfig,
        explore: impl FnOnce(&CheckConfig) -> ExploreReport,
    ) {
        if self.over_budget() {
            println!("[skip] {name}: budget exhausted");
            return;
        }
        let t = Instant::now();
        let report = explore(base);
        self.schedules += report.schedules;
        self.stages += 1;
        println!(
            "[{:>5.1}s] {name}: {} schedules ({} distinct), {} inflations, {} aborts in {:.1}s",
            self.start.elapsed().as_secs_f64(),
            report.schedules,
            report.distinct,
            report.inflations,
            report.aborts,
            t.elapsed().as_secs_f64(),
        );
        if let Some(failure) = report.failure {
            self.fail(name, base, failure);
        }
    }

    fn fail(&mut self, name: &str, base: &CheckConfig, failure: Failure) -> ! {
        eprintln!("FAILURE in {name}: {} — {}", failure.kind, failure.detail);
        eprintln!("shrinking {} forced choices...", failure.choices.len());
        let small = shrink(base, &failure);
        let art = Artifact::new(base, &small);
        match write_artifact(&self.out_dir, &art) {
            Ok(path) => eprintln!(
                "artifact ({} choices) written to {}\nreplay with: check_replay {}",
                art.choices.len(),
                path.display(),
                path.display()
            ),
            Err(e) => eprintln!("could not write artifact: {e}"),
        }
        std::process::exit(1);
    }
}

/// The transactional-data-structure campaign (PR 8): all three `nztm-tds`
/// structures on every backend, under bounded-exhaustive enumeration,
/// PCT-style random walks and the abort-storm adversary. `deep` scales
/// the per-stage schedule caps up for the nightly time box.
fn tds_campaign(c: &mut Campaign, deep: bool) {
    let (exh_cap, rand_seeds, storm_seeds) =
        if deep { (2_000, 600, 300) } else { (300, 100, 60) };
    for backend in BACKENDS {
        let name = backend.name();
        for wl in [Workload::MapHash, Workload::MapSkip, Workload::Queue] {
            c.stage(
                &format!("{name} exhaustive {}", wl.name()),
                &CheckConfig::tds(backend, wl),
                |b| explore_exhaustive(b, 6, exh_cap),
            );
            c.stage(
                &format!("{name} random {}", wl.name()),
                &CheckConfig::tds(backend, wl),
                |b| explore_random(b, rand_seeds, 4),
            );
            c.stage(
                &format!("{name} {} abort storm", wl.name()),
                &CheckConfig::tds_abort_storm(backend, wl),
                |b| explore_random(b, storm_seeds, 4),
            );
        }
    }
}

fn main() {
    let mut budget_secs = 120u64;
    let mut out_dir = std::path::PathBuf::from("results");
    let mut deep = false;
    let mut tds_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget-secs" => {
                budget_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--budget-secs needs a number"));
            }
            "--out" => {
                out_dir = args.next().map(Into::into).unwrap_or_else(|| usage("--out needs a path"));
            }
            "--deep" => deep = true,
            "--tds" => tds_only = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let mut c = Campaign {
        start: Instant::now(),
        budget_secs,
        out_dir,
        schedules: 0,
        stages: 0,
    };
    println!(
        "nztm-check {}: budget {budget_secs}s, artifacts to {} (sanitize: {})",
        if tds_only {
            "tds"
        } else if deep {
            "deep"
        } else {
            "smoke"
        },
        c.out_dir.display(),
        cfg!(feature = "sanitize"),
    );

    if tds_only {
        tds_campaign(&mut c, deep);
        println!(
            "tds PASS: {} stages, {} schedules in {:.1}s",
            c.stages,
            c.schedules,
            c.start.elapsed().as_secs_f64()
        );
        return;
    }

    for backend in BACKENDS {
        let name = backend.name();
        c.stage(&format!("{name} exhaustive transfer"), &CheckConfig::transfer(backend), |b| {
            explore_exhaustive(b, 7, 1_200)
        });
        c.stage(&format!("{name} random transfer"), &CheckConfig::transfer(backend), |b| {
            explore_random(b, 250, 4)
        });
        c.stage(&format!("{name} abort storm"), &CheckConfig::abort_storm(backend), |b| {
            explore_random(b, 150, 4)
        });
        c.stage(&format!("{name} pause owner"), &CheckConfig::pause_owner(backend), |b| {
            explore_random(b, 60, 8)
        });
        if backend == Backend::Nzstm || backend == Backend::Scss {
            c.stage(&format!("{name} crash owner"), &CheckConfig::crash_owner(backend), |b| {
                explore_exhaustive(b, 4, 60)
            });
        }
        #[cfg(feature = "sanitize")]
        {
            let mut yp = CheckConfig::transfer(backend);
            yp.yield_points = true;
            c.stage(&format!("{name} yield-point exhaustive"), &yp, |b| {
                explore_exhaustive(b, 6, 600)
            });
        }
    }

    // The tds structures ride in the smoke pass at reduced caps; the
    // dedicated tds-check job (--tds) runs the full campaign.
    tds_campaign(&mut c, false);

    if deep {
        // The wide storms run first: they are the coverage the smoke pass
        // lacks entirely (past the 64-thread flat reader-bitmap boundary,
        // multiplexed onto 8 simulated cores, so every visible read lands
        // in the striped indicator while token oversubscription shuffles
        // which contexts make progress). The hybrid backend stays on
        // narrow machines — its HTM model is tuned for them.
        for backend in BACKENDS {
            if backend == Backend::Hybrid {
                continue;
            }
            let name = backend.name();
            for threads in [68usize, 96, 128] {
                c.stage(
                    &format!("{name} wide abort storm x{threads}"),
                    &CheckConfig::abort_storm_wide(backend, threads),
                    |b| explore_random(b, 25, 4),
                );
            }
        }
        for backend in BACKENDS {
            let name = backend.name();
            // Deeper enumeration of the §3 transfer config than the smoke
            // pass affords: two more forced decisions, 16x the schedule cap.
            c.stage(&format!("{name} deep exhaustive transfer"), &CheckConfig::transfer(backend), |b| {
                explore_exhaustive(b, 9, 20_000)
            });
            // Long PCT-style random-walk block (priority-perturbed seeds).
            c.stage(&format!("{name} deep random transfer"), &CheckConfig::transfer(backend), |b| {
                explore_random(b, 2_000, 4)
            });
            // Bounded-exhaustive at a higher thread count: more runnable
            // cores per decision, so the branching factor — not the depth —
            // carries the coverage.
            let six = CheckConfig {
                threads: 6,
                objects: 3,
                ..CheckConfig::transfer(backend)
            };
            c.stage(&format!("{name} exhaustive 6-thread transfer"), &six, |b| {
                explore_exhaustive(b, 5, 4_000)
            });
        }
    }

    println!(
        "{} PASS: {} stages, {} schedules in {:.1}s",
        if deep { "deep" } else { "smoke" },
        c.stages,
        c.schedules,
        c.start.elapsed().as_secs_f64()
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("check_smoke: {msg}\nusage: check_smoke [--budget-secs N] [--out DIR] [--deep] [--tds]");
    std::process::exit(2);
}
