//! Schedule exploration: random-walk fuzzing, bounded-exhaustive
//! enumeration, and the shared run judge.
//!
//! Bounded-exhaustive enumeration is the stateless-DFS scheme of
//! CHESS-style model checkers: run a forced choice prefix to completion
//! under the default (min-clock) continuation, then branch a child for
//! every *alternative* runnable core at every decision index past the
//! prefix (up to `depth`). Each complete run corresponds to exactly one
//! choice sequence, so every executed schedule is distinct and the whole
//! tree of the first `depth` decisions is covered without duplicates.

use crate::harness::{run_config, CheckConfig, RunOutcome, Workload};
use crate::lin::{linearizable, BankSpec, CounterSpec, MapSpec, QueueSpec};
use nztm_sim::SchedPolicy;
use std::collections::HashSet;
use std::sync::Arc;

/// Why a run was rejected.
#[derive(Clone, Debug)]
pub enum CheckError {
    Lin(String),
    Sanitizer(String),
    Conservation(String),
    Watchdog,
}

impl CheckError {
    pub fn kind(&self) -> &'static str {
        match self {
            CheckError::Lin(_) => "linearizability",
            CheckError::Sanitizer(_) => "sanitizer",
            CheckError::Conservation(_) => "conservation",
            CheckError::Watchdog => "watchdog",
        }
    }

    pub fn detail(&self) -> String {
        match self {
            CheckError::Lin(d) | CheckError::Sanitizer(d) | CheckError::Conservation(d) => {
                d.clone()
            }
            CheckError::Watchdog => "simulator watchdog (livelock or deadlock)".into(),
        }
    }
}

/// The Wing–Gong checker's linearized-set bitmask is a `u64`, so only
/// histories of at most this many completed operations get the full
/// permutation search. Wider runs (the >64-thread adversaries) are
/// judged by value conservation instead.
const LIN_MAX_OPS: usize = 64;

/// Judge one run: watchdog, then history linearizability, then value
/// conservation, then sanitizer findings. Linearizability is checked
/// before sanitizer findings so an end-to-end data corruption is
/// reported as such even when the invariant mirror also flagged it.
/// Histories wider than `LIN_MAX_OPS` skip the permutation search and
/// rely on the conservation checks (the sum of bank balances, or the
/// count of committed increments), which remain exact at any width.
pub fn judge(cfg: &CheckConfig, out: &RunOutcome) -> Result<(), CheckError> {
    if out.watchdog {
        return Err(CheckError::Watchdog);
    }
    assert!(
        out.crashed_ops <= usize::from(cfg.crash_tid.is_some()),
        "only the crashed thread may leave a pending operation"
    );
    match cfg.workload {
        Workload::Transfer => {
            if out.ops.len() <= LIN_MAX_OPS {
                let spec = BankSpec { accounts: cfg.objects, initial: cfg.initial };
                linearizable(&spec, &out.ops).map_err(|e| CheckError::Lin(e.0))?;
            }
            if !out.final_values.is_empty() {
                let total: u64 = out.final_values.iter().sum();
                let expect = cfg.initial * cfg.objects as u64;
                if total != expect {
                    return Err(CheckError::Conservation(format!(
                        "final balances {:?} sum to {total}, expected {expect}",
                        out.final_values
                    )));
                }
            }
        }
        Workload::Increment => {
            if out.ops.len() <= LIN_MAX_OPS {
                let spec = CounterSpec { objects: cfg.objects };
                linearizable(&spec, &out.ops).map_err(|e| CheckError::Lin(e.0))?;
            } else if !out.final_values.is_empty() {
                use nztm_workloads::history::HistOp;
                let incs = out
                    .ops
                    .iter()
                    .filter(|o| matches!(o.op, HistOp::Increment { .. }))
                    .count() as u64;
                let total: u64 = out.final_values.iter().sum();
                if total != incs {
                    return Err(CheckError::Conservation(format!(
                        "counters sum to {total}, but {incs} increments committed"
                    )));
                }
            }
        }
        Workload::MapHash | Workload::MapSkip => {
            if out.ops.len() <= LIN_MAX_OPS {
                let spec = MapSpec { keys: (0..cfg.objects as u64).collect() };
                linearizable(&spec, &out.ops).map_err(|e| CheckError::Lin(e.0))?;
            }
            // Exact at any width: every value present at the end (encoded
            // val + 1 per key) must have been the argument of a committed
            // insert of that key.
            use nztm_workloads::history::HistOp;
            let inserted: HashSet<(u64, u64)> = out
                .ops
                .iter()
                .filter_map(|o| match o.op {
                    HistOp::MapInsert(k, v) => Some((k, v)),
                    _ => None,
                })
                .collect();
            for (k, enc) in out.final_values.iter().enumerate() {
                if *enc != 0 && !inserted.contains(&(k as u64, enc - 1)) {
                    return Err(CheckError::Conservation(format!(
                        "final map binding {k} -> {} was never inserted",
                        enc - 1
                    )));
                }
            }
        }
        Workload::Queue => {
            if out.ops.len() <= LIN_MAX_OPS {
                let spec = QueueSpec { capacity: cfg.objects };
                linearizable(&spec, &out.ops).map_err(|e| CheckError::Lin(e.0))?;
            }
            // Exact at any width: committed enqueues and dequeues must
            // balance against the final contents (values are unique per
            // (thread, op), so multisets are sets here).
            use nztm_workloads::history::{HistOp, HistRet};
            let enqueued: HashSet<u64> = out
                .ops
                .iter()
                .filter_map(|o| match (&o.op, &o.ret) {
                    (HistOp::Enqueue(v), HistRet::Bool(true)) => Some(*v),
                    _ => None,
                })
                .collect();
            let mut dequeued: HashSet<u64> = HashSet::new();
            for o in &out.ops {
                if let (HistOp::Dequeue, HistRet::OptVal(Some(v))) = (&o.op, &o.ret) {
                    if !enqueued.contains(v) {
                        return Err(CheckError::Conservation(format!(
                            "dequeued {v} which no committed enqueue produced"
                        )));
                    }
                    if !dequeued.insert(*v) {
                        return Err(CheckError::Conservation(format!("{v} dequeued twice")));
                    }
                }
            }
            if !out.final_values.is_empty() || out.ops.iter().any(|o| o.op == HistOp::ReadAll)
            {
                let mut remaining: Vec<u64> =
                    enqueued.difference(&dequeued).copied().collect();
                remaining.sort_unstable();
                let mut finals = out.final_values.clone();
                finals.sort_unstable();
                if finals != remaining {
                    return Err(CheckError::Conservation(format!(
                        "final queue contents {finals:?} != enqueued-minus-dequeued \
                         {remaining:?}"
                    )));
                }
            }
        }
    }
    if !out.violations.is_empty() {
        return Err(CheckError::Sanitizer(out.violations.join("; ")));
    }
    Ok(())
}

/// A failing schedule, as found (pre-shrink): the forced-choice prefix
/// that reproduces it under `SchedPolicy::Replay`.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: String,
    pub detail: String,
    pub choices: Vec<u32>,
}

/// Aggregate exploration statistics.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct full decision traces observed (equals `schedules` for
    /// bounded-exhaustive enumeration; asserted by the tier-1 test).
    pub distinct: u64,
    /// Sum of engine inflations across all runs.
    pub inflations: u64,
    /// Sum of engine aborts across all runs.
    pub aborts: u64,
    /// First failure, if any (exploration stops there).
    pub failure: Option<Failure>,
}

fn trace_hash(out: &RunOutcome) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in &out.decisions {
        // Fold chosen and the (64-bit) runnable mask as separate words so
        // wide-machine masks are not truncated into the hash.
        h ^= u64::from(d.chosen);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= d.runnable;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounded-exhaustive enumeration of the first `depth` scheduling
/// decisions, with a custom judge.
pub fn explore_exhaustive_with(
    base: &CheckConfig,
    depth: usize,
    limit: u64,
    judge_fn: impl Fn(&CheckConfig, &RunOutcome) -> Result<(), CheckError>,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut seen = HashSet::new();
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if report.schedules >= limit {
            break;
        }
        let mut cfg = base.clone();
        cfg.policy = SchedPolicy::Replay { choices: Arc::new(prefix.clone()) };
        let out = run_config(&cfg);
        report.schedules += 1;
        report.inflations += out.stats.inflations;
        // The hybrid backend's contention aborts land on the HTM side.
        report.aborts += out.stats.aborts() + out.stats.htm_aborts;
        if seen.insert(trace_hash(&out)) {
            report.distinct += 1;
        }
        if let Err(e) = judge_fn(&cfg, &out) {
            report.failure =
                Some(Failure { kind: e.kind().into(), detail: e.detail(), choices: prefix });
            break;
        }
        // Branch a child for every alternative runnable core at every
        // decision past the prefix; the child's prefix replays the
        // parent's actual choices up to the deviation point.
        for i in prefix.len()..depth.min(out.decisions.len()) {
            let d = out.decisions[i];
            for c in 0..64u32 {
                if d.runnable & (1u64 << c) != 0 && c != d.chosen {
                    let mut child: Vec<u32> =
                        out.decisions[..i].iter().map(|x| x.chosen).collect();
                    child.push(c);
                    stack.push(child);
                }
            }
        }
    }
    report
}

/// Bounded-exhaustive enumeration under the standard [`judge`].
pub fn explore_exhaustive(base: &CheckConfig, depth: usize, limit: u64) -> ExploreReport {
    explore_exhaustive_with(base, depth, limit, judge)
}

/// Seeded random-walk schedule fuzzing with a custom judge: `n_seeds`
/// runs under [`SchedPolicy::Random`] with PCT-style priority
/// perturbation. A failure's choices are the run's full recorded
/// decision trace, which replays it exactly.
pub fn explore_random_with(
    base: &CheckConfig,
    n_seeds: u64,
    change_denom: u64,
    judge_fn: impl Fn(&CheckConfig, &RunOutcome) -> Result<(), CheckError>,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut seen = HashSet::new();
    for i in 0..n_seeds {
        let sched_seed = base.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1);
        let mut cfg = base.clone();
        cfg.policy = SchedPolicy::Random { seed: sched_seed, change_denom };
        let out = run_config(&cfg);
        report.schedules += 1;
        report.inflations += out.stats.inflations;
        report.aborts += out.stats.aborts() + out.stats.htm_aborts;
        if seen.insert(trace_hash(&out)) {
            report.distinct += 1;
        }
        if let Err(e) = judge_fn(&cfg, &out) {
            let choices = out.decisions.iter().map(|d| d.chosen).collect();
            report.failure = Some(Failure { kind: e.kind().into(), detail: e.detail(), choices });
            break;
        }
    }
    report
}

/// Seeded random-walk fuzzing under the standard [`judge`].
pub fn explore_random(base: &CheckConfig, n_seeds: u64, change_denom: u64) -> ExploreReport {
    explore_random_with(base, n_seeds, change_denom, judge)
}
