//! Backend-generic run harness: one `CheckConfig` in, one `RunOutcome`
//! out, on a fresh deterministic machine every time.
//!
//! Every run builds a fresh [`Machine`] + engine, so identical configs
//! (including the schedule policy) reproduce identical decision traces,
//! histories and statistics — across processes, which is what makes
//! failure artifacts replayable by `check_replay`.

use nztm_core::cm::{
    Adaptive, AdaptiveConfig, Aggressive, ContentionManager, Greedy, KarmaDeadlock, Polite,
    Timestamp,
};
use nztm_core::{
    Blocking, ModePolicy, Nonblocking, NorecMode, NzConfig, NzStm, ScssMode, TmStats, TmSys,
};
use nztm_htm::{AtmtpConfig, BestEffortHtm, HybridConfig, NztmHybrid};
use nztm_sim::sync::Mutex;
use nztm_sim::{Decision, DetRng, Machine, MachineConfig, Platform, SchedPolicy, SimPlatform};
use nztm_tds::{TdsHashMap, TdsQueue, TdsSkipList};
use nztm_workloads::history::{complete_ops, HistOp, HistRet, HistoryLog, OpRecord};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The five systems under check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    Bzstm,
    Nzstm,
    Scss,
    Hybrid,
    Norec,
}

/// All five backends, in presentation order.
pub const BACKENDS: [Backend; 5] =
    [Backend::Bzstm, Backend::Nzstm, Backend::Scss, Backend::Hybrid, Backend::Norec];

impl Backend {
    pub fn name(self) -> &'static str {
        match self {
            Backend::Bzstm => "BZSTM",
            Backend::Nzstm => "NZSTM",
            Backend::Scss => "SCSS",
            Backend::Hybrid => "HYBRID",
            Backend::Norec => "NOREC",
        }
    }

    pub fn parse(s: &str) -> Option<Backend> {
        BACKENDS.iter().copied().find(|b| b.name() == s)
    }
}

/// The contention-management policy a run builds its engine with.
/// Part of the replayable configuration (serialized into artifacts, with
/// absent-field backward compatibility defaulting to [`CmKind::Karma`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmKind {
    /// The paper's §4.3 default: Karma + deadlock detection.
    Karma,
    /// Always request the peer's abort (livelock-prone by design).
    Aggressive,
    /// Wait up to a budget, then request.
    Polite,
    /// Older transaction wins (livelock-free given unique serials).
    Timestamp,
    /// Greedy (PODC 2005): elder wins, younger yields to stalled elders.
    Greedy,
    /// Telemetry-driven adaptive wrapper over Karma (PR 6 tentpole).
    Adaptive,
}

/// Every policy the harness can drive, in presentation order.
pub const CM_KINDS: [CmKind; 6] = [
    CmKind::Karma,
    CmKind::Aggressive,
    CmKind::Polite,
    CmKind::Timestamp,
    CmKind::Greedy,
    CmKind::Adaptive,
];

impl CmKind {
    pub fn name(self) -> &'static str {
        match self {
            CmKind::Karma => "karma",
            CmKind::Aggressive => "aggressive",
            CmKind::Polite => "polite",
            CmKind::Timestamp => "timestamp",
            CmKind::Greedy => "greedy",
            CmKind::Adaptive => "adaptive",
        }
    }

    pub fn parse(s: &str) -> Option<CmKind> {
        CM_KINDS.iter().copied().find(|k| k.name() == s)
    }

    /// Construct the policy with its default parameters. Determinism
    /// note: every policy here is either stateless or (Adaptive) seeds
    /// all state from the run's own event stream, so same config + same
    /// schedule still reproduces the same decisions.
    pub fn build(self) -> Arc<dyn ContentionManager> {
        match self {
            CmKind::Karma => Arc::new(KarmaDeadlock::default()),
            CmKind::Aggressive => Arc::new(Aggressive),
            CmKind::Polite => Arc::new(Polite::default()),
            CmKind::Timestamp => Arc::new(Timestamp),
            CmKind::Greedy => Arc::new(Greedy),
            CmKind::Adaptive => Arc::new(Adaptive::new(AdaptiveConfig::default())),
        }
    }
}

/// The workload shape a run executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Bank transfers: each op moves one unit between two random
    /// accounts when the source has funds (checked by [`crate::lin::BankSpec`]).
    Transfer,
    /// Each thread increments each object once, rotated by thread id —
    /// the §3 model's counter workload (checked by [`crate::lin::CounterSpec`]).
    Increment,
    /// Random insert/remove/get/contains on a [`nztm_tds::TdsHashMap`]
    /// over a key universe of `objects` keys (checked by
    /// [`crate::lin::MapSpec`]).
    MapHash,
    /// The same ADT operations on a [`nztm_tds::TdsSkipList`].
    MapSkip,
    /// Random enqueue/dequeue on a [`nztm_tds::TdsQueue`] of capacity
    /// `objects` (checked by [`crate::lin::QueueSpec`]).
    Queue,
}

impl Workload {
    pub fn name(self) -> &'static str {
        match self {
            Workload::Transfer => "transfer",
            Workload::Increment => "increment",
            Workload::MapHash => "map-hash",
            Workload::MapSkip => "map-skip",
            Workload::Queue => "queue",
        }
    }

    pub fn parse(s: &str) -> Option<Workload> {
        [
            Workload::Transfer,
            Workload::Increment,
            Workload::MapHash,
            Workload::MapSkip,
            Workload::Queue,
        ]
        .into_iter()
        .find(|w| w.name() == s)
    }

    /// Whether this workload drives a `nztm-tds` structure through ADT
    /// operations (rather than raw word transactions).
    pub fn is_tds(self) -> bool {
        matches!(self, Workload::MapHash | Workload::MapSkip | Workload::Queue)
    }
}

/// One fully-specified run.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    pub backend: Backend,
    pub workload: Workload,
    /// Contention-management policy (default [`CmKind::Karma`]).
    pub cm: CmKind,
    pub threads: usize,
    /// Physical cores backing the simulated contexts (0 = dedicated, one
    /// core per thread). Setting this below `threads` makes the simulated
    /// machine oversubscribed: token handoffs charge a context-switch
    /// penalty (see [`nztm_sim::MachineConfig::hw_cores`]).
    pub hw_cores: usize,
    pub objects: usize,
    pub ops_per_thread: usize,
    /// Initial per-account balance (transfer workload only).
    pub initial: u64,
    /// Engine patience before declaring an owner unresponsive.
    pub patience: u64,
    /// Workload seed (operation draws).
    pub seed: u64,
    /// Schedule policy for the run.
    pub policy: SchedPolicy,
    pub max_cycles: u64,
    /// This thread abandons its first operation mid-transaction with
    /// the descriptor left `Active` (crashed owner, §3). NzStm modes only.
    pub crash_tid: Option<usize>,
    /// `(tid, cycles)`: the thread stalls that long inside its first
    /// transaction after acquiring (pause-owner-then-inflate).
    pub stall: Option<(usize, u64)>,
    /// Seeded protocol fault (requires the `sanitize` feature).
    pub inject_handshake_bug: bool,
    /// Sanitizer pause schedule `(seed, max_pause)` (requires `sanitize`).
    pub pause: Option<(u64, u64)>,
    /// Arm protocol-edge yield points (sanitizer schedule with a zero
    /// pause budget; requires `sanitize`).
    pub yield_points: bool,
    /// Arm the engine flight recorder and collect a merged event trace
    /// in [`RunOutcome::trace`] (needs the `trace` cargo feature to
    /// capture anything). Not part of the artifact text format — replay
    /// tooling sets it ad hoc when rendering timelines.
    pub trace: bool,
}

impl CheckConfig {
    /// The §3-scale transfer config: 3 threads × 2 accounts.
    pub fn transfer(backend: Backend) -> Self {
        CheckConfig {
            backend,
            workload: Workload::Transfer,
            cm: CmKind::Karma,
            threads: 3,
            hw_cores: 0,
            objects: 2,
            ops_per_thread: 2,
            initial: 2,
            patience: 16,
            seed: 1,
            policy: SchedPolicy::MinClock,
            max_cycles: 20_000_000,
            crash_tid: None,
            stall: None,
            inject_handshake_bug: false,
            pause: None,
            yield_points: false,
            trace: false,
        }
    }

    /// The §3 model's counter workload: every thread increments every
    /// object once.
    pub fn increment(backend: Backend, threads: usize, objects: usize) -> Self {
        CheckConfig {
            workload: Workload::Increment,
            threads,
            objects,
            ops_per_thread: objects,
            ..CheckConfig::transfer(backend)
        }
    }

    /// A transactional-data-structure run: `threads` threads each doing
    /// `ops_per_thread` random ADT operations on one shared structure
    /// (`objects` = key universe for the maps, capacity for the queue),
    /// ending with one atomic `ReadAll` snapshot. Small enough that
    /// every history fits the Wing–Gong bitmask.
    pub fn tds(backend: Backend, workload: Workload) -> Self {
        assert!(workload.is_tds());
        CheckConfig {
            workload,
            objects: 3,
            ops_per_thread: 2,
            ..CheckConfig::transfer(backend)
        }
    }

    /// Abort-storm variant of [`CheckConfig::tds`]: minimal patience so
    /// the handshake path runs under ADT operations too.
    pub fn tds_abort_storm(backend: Backend, workload: Workload) -> Self {
        CheckConfig { patience: 2, ops_per_thread: 3, ..CheckConfig::tds(backend, workload) }
    }

    /// Targeted adversary: thread 0 stalls mid-transaction long past the
    /// patience bound, so survivors must inflate past it (§2.3.1).
    pub fn pause_owner(backend: Backend) -> Self {
        CheckConfig {
            stall: Some((0, 400_000)),
            patience: 16,
            ..CheckConfig::transfer(backend)
        }
    }

    /// Targeted adversary: thread 0 crashes mid-transaction, holding its
    /// acquisitions forever (§3's crashed-owner counterexample class).
    pub fn crash_owner(backend: Backend) -> Self {
        CheckConfig {
            crash_tid: Some(0),
            patience: 16,
            max_cycles: 2_000_000,
            ..CheckConfig::increment(backend, 3, 2)
        }
    }

    /// Targeted adversary: minimal patience and maximal contention, so
    /// the abort handshake runs constantly.
    pub fn abort_storm(backend: Backend) -> Self {
        CheckConfig {
            patience: 2,
            ops_per_thread: 4,
            ..CheckConfig::transfer(backend)
        }
    }

    /// Wide abort storm: `threads` contexts (possibly past the 64-bit
    /// flat reader-bitmap limit, exercising the striped indicator) on an
    /// oversubscribed 8-core machine, minimal patience, one transfer per
    /// thread. Judged by conservation past 64 history ops (see
    /// [`crate::explore::judge`]).
    pub fn abort_storm_wide(backend: Backend, threads: usize) -> Self {
        CheckConfig {
            threads,
            hw_cores: 8,
            objects: 4,
            ops_per_thread: 1,
            patience: 2,
            initial: 4,
            max_cycles: 400_000_000,
            ..CheckConfig::transfer(backend)
        }
    }

    /// Whether this configuration needs the `sanitize` feature compiled in.
    pub fn requires_sanitize(&self) -> bool {
        self.inject_handshake_bug || self.pause.is_some() || self.yield_points
    }
}

/// Everything one run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Completed operations, paired invocation/response.
    pub ops: Vec<OpRecord>,
    /// Invocations with no response (only the crashed thread's).
    pub crashed_ops: usize,
    /// The full scheduling-decision trace.
    pub decisions: Vec<Decision>,
    /// Final object values from the quiescent `ReadAll` (empty if the
    /// run died on the watchdog).
    pub final_values: Vec<u64>,
    pub stats: TmStats,
    /// Sanitizer violations (always empty without the feature).
    pub violations: Vec<String>,
    /// The run tripped the simulator watchdog (livelock/deadlock).
    pub watchdog: bool,
    /// Merged flight-recorder trace with scheduler decisions interleaved
    /// (empty unless [`CheckConfig::trace`] and the `trace` feature).
    pub trace: nztm_core::Trace,
    /// Object addresses in allocation order — `obj_addrs[i]` is the
    /// trace-event address of workload object `i`.
    pub obj_addrs: Vec<u64>,
}

/// Run one configuration on a fresh machine.
pub fn run_config(cfg: &CheckConfig) -> RunOutcome {
    #[cfg(not(feature = "sanitize"))]
    assert!(
        !cfg.requires_sanitize(),
        "config needs fault injection / pause schedules / protocol-edge yield \
         points: rebuild nztm-check with --features sanitize"
    );
    match cfg.backend {
        Backend::Bzstm => run_on_mode::<Blocking>(cfg),
        Backend::Nzstm => run_on_mode::<Nonblocking>(cfg),
        Backend::Scss => run_on_mode::<ScssMode>(cfg),
        Backend::Hybrid => run_hybrid(cfg),
        Backend::Norec => run_on_mode::<NorecMode>(cfg),
    }
}

fn new_machine(cfg: &CheckConfig) -> (Arc<Machine>, Arc<SimPlatform>) {
    let machine = Machine::new(MachineConfig {
        max_cycles: cfg.max_cycles,
        hw_cores: cfg.hw_cores,
        ..MachineConfig::paper(cfg.threads)
    });
    machine.set_policy(cfg.policy.clone());
    machine.enable_decisions();
    let platform = SimPlatform::new(Arc::clone(&machine));
    (machine, platform)
}

fn nz_config(cfg: &CheckConfig) -> NzConfig {
    #[cfg_attr(not(feature = "sanitize"), allow(unused_mut))]
    let mut nzc = NzConfig { patience: cfg.patience, ..NzConfig::default() };
    #[cfg(feature = "sanitize")]
    {
        nzc.inject_handshake_bug = cfg.inject_handshake_bug;
    }
    nzc
}

#[cfg(feature = "sanitize")]
fn arm_sanitizer<P: nztm_sim::Platform, M: ModePolicy>(stm: &NzStm<P, M>, cfg: &CheckConfig) {
    if let Some((seed, max_pause)) = cfg.pause {
        stm.sanitizer().set_schedule(seed, max_pause);
    } else if cfg.yield_points || cfg.inject_handshake_bug {
        // A zero pause budget turns every protocol edge into a pure
        // scheduling decision (see NzStm::san_point).
        stm.sanitizer().set_schedule(cfg.seed, 0);
    }
}

#[cfg(feature = "sanitize")]
fn collect_violations<P: nztm_sim::Platform, M: ModePolicy>(stm: &NzStm<P, M>) -> Vec<String> {
    stm.sanitizer().violations().iter().map(|v| format!("{}: {}", v.rule, v.detail)).collect()
}

#[cfg(not(feature = "sanitize"))]
fn collect_violations<P: nztm_sim::Platform, M: ModePolicy>(_stm: &NzStm<P, M>) -> Vec<String> {
    Vec::new()
}

/// The thread that performs the quiescent `ReadAll` snapshot.
fn reader_tid(cfg: &CheckConfig) -> usize {
    if cfg.crash_tid == Some(0) {
        1
    } else {
        0
    }
}

/// Worker body shared by every backend (crash bodies are NzStm-specific,
/// see `crash_body`).
#[allow(clippy::too_many_arguments)]
fn worker_body<S: TmSys>(
    sys: Arc<S>,
    platform: Arc<SimPlatform>,
    objs: Arc<Vec<S::Obj<u64>>>,
    log: Arc<HistoryLog>,
    done: Arc<AtomicUsize>,
    finals: Arc<Mutex<Vec<u64>>>,
    cfg: CheckConfig,
    tid: usize,
) -> Box<dyn FnOnce() + Send> {
    Box::new(move || {
        let mut rng = DetRng::new(cfg.seed).split(tid as u64);
        let n = objs.len();
        let mut stall_left = match cfg.stall {
            Some((t, cycles)) if t == tid => Some(cycles),
            _ => None,
        };
        for i in 0..cfg.ops_per_thread {
            match cfg.workload {
                Workload::Transfer => {
                    let from = rng.next_below(n as u64) as usize;
                    let mut to = rng.next_below(n as u64) as usize;
                    if to == from {
                        to = (to + 1) % n;
                    }
                    log.invoke(tid as u32, HistOp::Transfer { from: from as u32, to: to as u32 });
                    let ok = sys.execute(|tx| {
                        let a = S::read(tx, &objs[from])?;
                        let b = S::read(tx, &objs[to])?;
                        if a > 0 {
                            S::write(tx, &objs[from], &(a - 1))?;
                            // Stall while *owning* `from` (reads may be
                            // invisible; only a write pins ownership that
                            // survivors must inflate past).
                            if let Some(cycles) = stall_left.take() {
                                platform.work(cycles);
                                platform.yield_now();
                            }
                            S::write(tx, &objs[to], &(b + 1))?;
                            Ok(true)
                        } else {
                            Ok(false)
                        }
                    });
                    log.ret(tid as u32, HistRet::Bool(ok));
                }
                Workload::Increment => {
                    let obj = (tid + i) % n;
                    log.invoke(tid as u32, HistOp::Increment { obj: obj as u32 });
                    sys.execute(|tx| {
                        let v = S::read(tx, &objs[obj])?;
                        S::write(tx, &objs[obj], &(v + 1))?;
                        if let Some(cycles) = stall_left.take() {
                            platform.work(cycles);
                            platform.yield_now();
                        }
                        Ok(())
                    });
                    log.ret(tid as u32, HistRet::Unit);
                }
                other => unreachable!("{other:?} runs through tds_worker_body"),
            }
        }
        done.fetch_add(1, Ordering::SeqCst);
        if tid == reader_tid(&cfg) {
            // Wait for quiescence, then snapshot every object inside one
            // transaction — the history's final, authoritative read.
            while done.load(Ordering::SeqCst) < cfg.threads {
                platform.spin_wait();
            }
            log.invoke(tid as u32, HistOp::ReadAll);
            let vals = sys.execute(|tx| {
                let mut v = Vec::with_capacity(n);
                for o in objs.iter() {
                    v.push(S::read(tx, o)?);
                }
                Ok(v)
            });
            log.ret(tid as u32, HistRet::Values(vals.clone()));
            *finals.lock() = vals;
        }
    })
}

/// The shared structure behind a tds workload run.
enum TdsStruct<S: TmSys> {
    Map(TdsHashMap<S>),
    Skip(TdsSkipList<S>),
    Queue(TdsQueue<S>),
}

impl<S: TmSys> TdsStruct<S> {
    fn build(sys: &S, cfg: &CheckConfig) -> Self {
        // Every *attempt* of an inserting operation allocates a node, and
        // aborted attempts leave theirs as pool garbage (the DSTM-era
        // idiom the tds crate documents), so abort storms need headroom
        // proportional to the retry count. 200 attempts per operation is
        // far beyond what any schedule inside the watchdog budget
        // produces, and the slots are one `OnceLock` each.
        let cap = cfg.threads * cfg.ops_per_thread * 200;
        match cfg.workload {
            // Two buckets over a 3-key universe: collisions occur, so
            // chain traversal is exercised, without serializing all keys.
            Workload::MapHash => TdsStruct::Map(TdsHashMap::new(sys, 2, cap)),
            Workload::MapSkip => TdsStruct::Skip(TdsSkipList::new(sys, cap)),
            Workload::Queue => TdsStruct::Queue(TdsQueue::new(sys, cfg.objects)),
            other => unreachable!("{other:?} is not a tds workload"),
        }
    }

    fn insert(
        &self,
        sys: &S,
        tx: &mut S::Tx<'_>,
        k: u64,
        v: u64,
    ) -> Result<Option<u64>, nztm_core::txn::Abort> {
        match self {
            TdsStruct::Map(m) => m.insert_tx(sys, tx, k, v),
            TdsStruct::Skip(l) => l.insert_tx(sys, tx, k, v),
            TdsStruct::Queue(_) => unreachable!(),
        }
    }

    fn get(
        &self,
        tx: &mut S::Tx<'_>,
        k: u64,
    ) -> Result<Option<u64>, nztm_core::txn::Abort> {
        match self {
            TdsStruct::Map(m) => m.get_tx(tx, k),
            TdsStruct::Skip(l) => l.get_tx(tx, k),
            TdsStruct::Queue(_) => unreachable!(),
        }
    }

    fn remove(
        &self,
        tx: &mut S::Tx<'_>,
        k: u64,
    ) -> Result<Option<u64>, nztm_core::txn::Abort> {
        match self {
            TdsStruct::Map(m) => m.remove_tx(tx, k),
            TdsStruct::Skip(l) => l.remove_tx(tx, k),
            TdsStruct::Queue(_) => unreachable!(),
        }
    }

    fn contains(&self, tx: &mut S::Tx<'_>, k: u64) -> Result<bool, nztm_core::txn::Abort> {
        match self {
            TdsStruct::Map(m) => m.contains_tx(tx, k),
            TdsStruct::Skip(l) => l.contains_tx(tx, k),
            TdsStruct::Queue(_) => unreachable!(),
        }
    }

}

/// Worker body for the tds workloads: `ops_per_thread` random ADT
/// operations, history-recorded, then the reader thread's quiescent
/// `ReadAll` (for the maps: every key in the universe, encoded
/// `val + 1`, 0 = absent; for the queue: the contents in FIFO order).
#[allow(clippy::too_many_arguments)]
fn tds_worker_body<S: TmSys>(
    sys: Arc<S>,
    platform: Arc<SimPlatform>,
    st: Arc<TdsStruct<S>>,
    log: Arc<HistoryLog>,
    done: Arc<AtomicUsize>,
    finals: Arc<Mutex<Vec<u64>>>,
    cfg: CheckConfig,
    tid: usize,
) -> Box<dyn FnOnce() + Send> {
    Box::new(move || {
        let mut rng = DetRng::new(cfg.seed).split(tid as u64);
        let mut stall_left = match cfg.stall {
            Some((t, cycles)) if t == tid => Some(cycles),
            _ => None,
        };
        for i in 0..cfg.ops_per_thread {
            // Values are unique per (thread, op) so every write is
            // distinguishable in the history.
            let val = (tid * 1000 + i) as u64 + 1;
            // Stall (pause-owner adversary) inside the op's transaction,
            // after the ADT call has performed its writes.
            let mut stall = |platform: &SimPlatform| {
                if let Some(cycles) = stall_left.take() {
                    platform.work(cycles);
                    platform.yield_now();
                }
            };
            match &*st {
                TdsStruct::Map(_) | TdsStruct::Skip(_) => {
                    let key = rng.next_below(cfg.objects as u64);
                    match rng.next_below(4) {
                        0 => {
                            log.invoke(tid as u32, HistOp::MapInsert(key, val));
                            let r = sys.execute(|tx| {
                                let r = st.insert(&sys, tx, key, val)?;
                                stall(&platform);
                                Ok(r)
                            });
                            log.ret(tid as u32, HistRet::OptVal(r));
                        }
                        1 => {
                            log.invoke(tid as u32, HistOp::MapRemove(key));
                            let r = sys.execute(|tx| {
                                let r = st.remove(tx, key)?;
                                stall(&platform);
                                Ok(r)
                            });
                            log.ret(tid as u32, HistRet::OptVal(r));
                        }
                        2 => {
                            log.invoke(tid as u32, HistOp::MapGet(key));
                            let r = sys.execute(|tx| st.get(tx, key));
                            log.ret(tid as u32, HistRet::OptVal(r));
                        }
                        _ => {
                            log.invoke(tid as u32, HistOp::Contains(key));
                            let r = sys.execute(|tx| st.contains(tx, key));
                            log.ret(tid as u32, HistRet::Bool(r));
                        }
                    }
                }
                TdsStruct::Queue(q) => {
                    if rng.chance(1, 2) {
                        log.invoke(tid as u32, HistOp::Enqueue(val));
                        let ok = sys.execute(|tx| {
                            let r = q.enqueue_tx(tx, val)?;
                            stall(&platform);
                            Ok(r)
                        });
                        log.ret(tid as u32, HistRet::Bool(ok));
                    } else {
                        log.invoke(tid as u32, HistOp::Dequeue);
                        let r = sys.execute(|tx| {
                            let r = q.dequeue_tx(tx)?;
                            stall(&platform);
                            Ok(r)
                        });
                        log.ret(tid as u32, HistRet::OptVal(r));
                    }
                }
            }
        }
        done.fetch_add(1, Ordering::SeqCst);
        if tid == reader_tid(&cfg) {
            while done.load(Ordering::SeqCst) < cfg.threads {
                platform.spin_wait();
            }
            log.invoke(tid as u32, HistOp::ReadAll);
            let vals = match &*st {
                TdsStruct::Map(_) | TdsStruct::Skip(_) => sys.execute(|tx| {
                    let mut v = Vec::with_capacity(cfg.objects);
                    for k in 0..cfg.objects as u64 {
                        v.push(st.get(tx, k)?.map_or(0, |x| x + 1));
                    }
                    Ok(v)
                }),
                TdsStruct::Queue(q) => sys.execute(|tx| q.contents_tx(tx)),
            };
            log.ret(tid as u32, HistRet::Values(vals.clone()));
            *finals.lock() = vals;
        }
    })
}

/// Build the bodies for a tds workload run (crash bodies are raw-object
/// NzStm constructs and do not apply to ADT workloads).
fn tds_bodies<S: TmSys>(
    sys: &Arc<S>,
    platform: &Arc<SimPlatform>,
    cfg: &CheckConfig,
    log: &Arc<HistoryLog>,
    done: &Arc<AtomicUsize>,
    finals: &Arc<Mutex<Vec<u64>>>,
) -> Vec<Box<dyn FnOnce() + Send>> {
    assert!(cfg.crash_tid.is_none(), "crash bodies are word-workload-specific");
    let st = Arc::new(TdsStruct::build(&**sys, cfg));
    (0..cfg.threads)
        .map(|tid| {
            tds_worker_body(
                Arc::clone(sys),
                Arc::clone(platform),
                Arc::clone(&st),
                Arc::clone(log),
                Arc::clone(done),
                Arc::clone(finals),
                cfg.clone(),
                tid,
            )
        })
        .collect()
}

/// Crash body: performs the thread's first operation via
/// [`NzStm::run_until_crash`], abandoning the attempt with its
/// acquisitions held forever, then retires.
fn crash_body<M: ModePolicy>(
    stm: Arc<NzStm<SimPlatform, M>>,
    objs: Arc<Vec<std::sync::Arc<nztm_core::NZObject<u64>>>>,
    log: Arc<HistoryLog>,
    done: Arc<AtomicUsize>,
    cfg: CheckConfig,
    tid: usize,
) -> Box<dyn FnOnce() + Send> {
    Box::new(move || {
        let mut rng = DetRng::new(cfg.seed).split(tid as u64);
        let n = objs.len();
        match cfg.workload {
            Workload::Transfer => {
                let from = rng.next_below(n as u64) as usize;
                let mut to = rng.next_below(n as u64) as usize;
                if to == from {
                    to = (to + 1) % n;
                }
                log.invoke(tid as u32, HistOp::Transfer { from: from as u32, to: to as u32 });
                stm.run_until_crash(|tx| {
                    let a = tx.read(&objs[from])?;
                    let b = tx.read(&objs[to])?;
                    if a > 0 {
                        tx.write(&objs[from], &(a - 1))?;
                        tx.write(&objs[to], &(b + 1))?;
                    }
                    Ok(None::<bool>)
                });
            }
            Workload::Increment => {
                let obj = tid % n;
                log.invoke(tid as u32, HistOp::Increment { obj: obj as u32 });
                stm.run_until_crash(|tx| {
                    let v = tx.read(&objs[obj])?;
                    tx.write(&objs[obj], &(v + 1))?;
                    Ok(None::<()>)
                });
            }
            other => unreachable!("{other:?} has no crash body"),
        }
        done.fetch_add(1, Ordering::SeqCst);
    })
}

/// Run the bodies, mapping a watchdog panic to an outcome instead of
/// unwinding (a crashed owner under BZSTM *must* end there).
fn run_bodies(machine: &Arc<Machine>, bodies: Vec<Box<dyn FnOnce() + Send>>) -> bool {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        machine.run(bodies);
    }));
    match res {
        Ok(()) => false,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied())
                .unwrap_or("");
            if msg.contains("watchdog") {
                true
            } else {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn outcome(
    machine: &Arc<Machine>,
    log: &HistoryLog,
    finals: &Mutex<Vec<u64>>,
    stats: TmStats,
    violations: Vec<String>,
    watchdog: bool,
    mut trace: nztm_core::Trace,
    obj_addrs: Vec<u64>,
) -> RunOutcome {
    let (ops, crashed_ops) = complete_ops(&log.events());
    let decisions = machine.decisions().unwrap_or_default();
    if !trace.is_empty() {
        // Decision clocks live in the same logical-cycle domain as the
        // engine events, so the scheduler timeline interleaves exactly.
        trace.merge_schedule(decisions.iter().map(|d| (d.clock, d.chosen)));
    }
    RunOutcome {
        ops,
        crashed_ops,
        decisions,
        final_values: finals.lock().clone(),
        stats,
        violations,
        watchdog,
        trace,
        obj_addrs,
    }
}

fn run_on_mode<M: ModePolicy>(cfg: &CheckConfig) -> RunOutcome {
    let (machine, platform) = new_machine(cfg);
    let stm: Arc<NzStm<SimPlatform, M>> =
        NzStm::new(Arc::clone(&platform), cfg.cm.build(), nz_config(cfg));
    #[cfg(feature = "sanitize")]
    arm_sanitizer(&stm, cfg);
    let init = match cfg.workload {
        Workload::Transfer => cfg.initial,
        _ => 0,
    };
    // tds workloads allocate their structure's objects themselves.
    let n_word_objs = if cfg.workload.is_tds() { 0 } else { cfg.objects };
    let objs = Arc::new((0..n_word_objs).map(|_| stm.new_obj(init)).collect::<Vec<_>>());
    let obj_addrs: Vec<u64> = objs.iter().map(|o| o.header().addr() as u64).collect();
    if cfg.trace {
        stm.set_tracing(true);
    }
    let log = Arc::new(HistoryLog::new());
    let done = Arc::new(AtomicUsize::new(0));
    let finals = Arc::new(Mutex::new(Vec::new()));
    let bodies: Vec<Box<dyn FnOnce() + Send>> = if cfg.workload.is_tds() {
        tds_bodies(&stm, &platform, cfg, &log, &done, &finals)
    } else {
        (0..cfg.threads)
            .map(|tid| {
                if cfg.crash_tid == Some(tid) {
                    crash_body(
                        Arc::clone(&stm),
                        Arc::clone(&objs),
                        Arc::clone(&log),
                        Arc::clone(&done),
                        cfg.clone(),
                        tid,
                    )
                } else {
                    worker_body(
                        Arc::clone(&stm),
                        Arc::clone(&platform),
                        Arc::clone(&objs),
                        Arc::clone(&log),
                        Arc::clone(&done),
                        Arc::clone(&finals),
                        cfg.clone(),
                        tid,
                    )
                }
            })
            .collect()
    };
    let watchdog = run_bodies(&machine, bodies);
    let trace = if cfg.trace { stm.take_trace() } else { nztm_core::Trace::default() };
    outcome(
        &machine,
        &log,
        &finals,
        stm.stats_snapshot(),
        collect_violations(&stm),
        watchdog,
        trace,
        obj_addrs,
    )
}

fn run_hybrid(cfg: &CheckConfig) -> RunOutcome {
    assert!(cfg.crash_tid.is_none(), "crash bodies are NzStm-specific");
    let (machine, platform) = new_machine(cfg);
    let stm = NzStm::<SimPlatform, Nonblocking>::new(
        Arc::clone(&platform),
        cfg.cm.build(),
        nz_config(cfg),
    );
    #[cfg(feature = "sanitize")]
    arm_sanitizer(&stm, cfg);
    let htm = BestEffortHtm::new(Arc::clone(&platform), AtmtpConfig::default());
    htm.install();
    // Capability gate: schedule exploration replays recorded scheduling
    // decisions, so the HTM backend's attempts must interleave under the
    // deterministic sim scheduler. The native RTM backend (htm-native)
    // is sim_schedulable() == false and must never be explored here —
    // its commits are invisible to the scheduler and histories would be
    // unreproducible.
    {
        use nztm_htm::backend::HtmBackend;
        assert!(
            htm.sim_schedulable(),
            "nztm-check requires a sim-schedulable HTM backend (got {})",
            htm.backend_name()
        );
    }
    let hybrid = NztmHybrid::new(Arc::clone(&stm), Arc::clone(&htm), HybridConfig::default());
    let init = match cfg.workload {
        Workload::Transfer => cfg.initial,
        _ => 0,
    };
    let n_word_objs = if cfg.workload.is_tds() { 0 } else { cfg.objects };
    let objs = Arc::new((0..n_word_objs).map(|_| hybrid.alloc(init)).collect::<Vec<_>>());
    let obj_addrs: Vec<u64> = objs.iter().map(|o| o.header().addr() as u64).collect();
    if cfg.trace {
        hybrid.set_tracing(true);
    }
    let log = Arc::new(HistoryLog::new());
    let done = Arc::new(AtomicUsize::new(0));
    let finals = Arc::new(Mutex::new(Vec::new()));
    let bodies: Vec<Box<dyn FnOnce() + Send>> = if cfg.workload.is_tds() {
        tds_bodies(&hybrid, &platform, cfg, &log, &done, &finals)
    } else {
        (0..cfg.threads)
            .map(|tid| {
                worker_body(
                    Arc::clone(&hybrid),
                    Arc::clone(&platform),
                    Arc::clone(&objs),
                    Arc::clone(&log),
                    Arc::clone(&done),
                    Arc::clone(&finals),
                    cfg.clone(),
                    tid,
                )
            })
            .collect()
    };
    let watchdog = run_bodies(&machine, bodies);
    let trace = if cfg.trace { hybrid.take_trace() } else { nztm_core::Trace::default() };
    let out = outcome(
        &machine,
        &log,
        &finals,
        hybrid.stats_snapshot(),
        collect_violations(&stm),
        watchdog,
        trace,
        obj_addrs,
    );
    htm.uninstall();
    out
}
