//! # nztm-check — schedule exploration + linearizability checking of the
//! # real engine
//!
//! The paper validates the NZTM protocol on an abstract Promela model
//! (§3, ≤3 threads × ≤3 objects); `crates/modelcheck` mirrors that. This
//! crate closes the remaining gap: it drives the **real** `nztm-core`
//! engine — all four backends (BZSTM, NZSTM, NZSTM+SCSS, hybrid) — under
//! the deterministic `crates/sim` scheduler with *controlled*
//! interleavings, records per-thread operation histories, and checks
//! them with a Wing–Gong-style linearizability checker.
//!
//! Three exploration modes (see [`explore`]):
//!
//! * **Random walk** — seeded PCT-style priority fuzzing over scheduling
//!   decisions ([`nztm_sim::SchedPolicy::Random`]).
//! * **Bounded-exhaustive** — CHESS-style stateless DFS over the first
//!   `depth` scheduling decisions ([`nztm_sim::SchedPolicy::Replay`]),
//!   at the §3 model's scale (2–3 threads × 2–3 objects).
//! * **Targeted adversaries** — pause-owner-then-inflate, crash-owner
//!   ([`nztm_core::NzStm::run_until_crash`]), abort-storm presets on
//!   [`harness::CheckConfig`].
//!
//! Failures shrink ([`artifact::shrink`]) to a minimal forced-choice
//! prefix and are written as self-contained text artifacts under
//! `results/`, replayable with the `check_replay` bin.
//!
//! Build with `--features sanitize` to additionally run the protocol
//! invariant mirror, arm protocol-edge yield points, inject seeded
//! pause schedules, and enable fault injection
//! (`inject_handshake_bug`).

pub mod artifact;
pub mod explore;
pub mod harness;
pub mod lin;
pub mod timeline;

pub use artifact::{replay, read_artifact, shrink, write_artifact, Artifact, ReplayReport};
pub use timeline::{render_artifact, render_timeline, TimelineReport};
pub use explore::{
    explore_exhaustive, explore_exhaustive_with, explore_random, explore_random_with, judge,
    CheckError, ExploreReport, Failure,
};
pub use harness::{run_config, Backend, CheckConfig, CmKind, RunOutcome, Workload, BACKENDS, CM_KINDS};
pub use lin::{
    check_set_history, linearizable, BankSpec, CounterSpec, KeySpec, LinError, MapSpec,
    QueueSpec, SeqSpec,
};
