//! Wing–Gong-style linearizability checking.
//!
//! A recorded history (see [`nztm_workloads::history`]) is linearizable
//! iff there is a permutation of its completed operations that (a)
//! respects real-time order — an operation that returned before another
//! was invoked must precede it — and (b) is accepted by a sequential
//! specification with exactly the recorded return values. The checker is
//! the classic Wing–Gong permutation search, memoized on the pair
//! (set of linearized operations, specification state): two search paths
//! that linearized the same subset and reached the same abstract state
//! are interchangeable, which is what keeps the search tractable.
//!
//! Histories here are small (tens of operations), so the linearized set
//! is a `u64` bitmask.

use nztm_workloads::history::{HistOp, HistRet, OpRecord};
use std::collections::HashSet;
use std::hash::Hash;

/// A sequential specification.
pub trait SeqSpec {
    type State: Clone + Eq + Hash;
    fn init(&self) -> Self::State;
    /// Apply `op` to `st`; return the successor state and the return
    /// value the specification mandates.
    fn apply(&self, st: &Self::State, op: &HistOp) -> (Self::State, HistRet);
}

/// A bank of `accounts` accounts, each starting at `initial`.
/// `Transfer{from,to}` moves one unit and returns `Bool(true)` iff the
/// source balance is positive; `ReadAll` snapshots every balance.
pub struct BankSpec {
    pub accounts: usize,
    pub initial: u64,
}

impl SeqSpec for BankSpec {
    type State = Vec<u64>;

    fn init(&self) -> Vec<u64> {
        vec![self.initial; self.accounts]
    }

    fn apply(&self, st: &Vec<u64>, op: &HistOp) -> (Vec<u64>, HistRet) {
        match op {
            HistOp::Transfer { from, to } => {
                let (from, to) = (*from as usize, *to as usize);
                let mut st = st.clone();
                if st[from] > 0 {
                    st[from] -= 1;
                    st[to] += 1;
                    (st, HistRet::Bool(true))
                } else {
                    (st, HistRet::Bool(false))
                }
            }
            HistOp::ReadAll => (st.clone(), HistRet::Values(st.clone())),
            other => panic!("BankSpec cannot apply {other:?}"),
        }
    }
}

/// An array of `objects` counters starting at zero. `Increment{obj}`
/// adds one and returns `Unit`; `ReadAll` snapshots every counter.
pub struct CounterSpec {
    pub objects: usize,
}

impl SeqSpec for CounterSpec {
    type State = Vec<u64>;

    fn init(&self) -> Vec<u64> {
        vec![0; self.objects]
    }

    fn apply(&self, st: &Vec<u64>, op: &HistOp) -> (Vec<u64>, HistRet) {
        match op {
            HistOp::Increment { obj } => {
                let mut st = st.clone();
                st[*obj as usize] += 1;
                (st, HistRet::Unit)
            }
            HistOp::ReadAll => (st.clone(), HistRet::Values(st.clone())),
            other => panic!("CounterSpec cannot apply {other:?}"),
        }
    }
}

/// Membership of a single set key: `Insert` returns whether the key was
/// absent, `Delete` whether it was present, `Contains` whether it is
/// present. Used through the per-key decomposition in
/// [`check_set_history`].
pub struct KeySpec {
    pub initially_present: bool,
}

impl SeqSpec for KeySpec {
    type State = bool;

    fn init(&self) -> bool {
        self.initially_present
    }

    fn apply(&self, st: &bool, op: &HistOp) -> (bool, HistRet) {
        match op {
            HistOp::Insert(_) => (true, HistRet::Bool(!*st)),
            HistOp::Delete(_) => (false, HistRet::Bool(*st)),
            HistOp::Contains(_) => (*st, HistRet::Bool(*st)),
            other => panic!("KeySpec cannot apply {other:?}"),
        }
    }
}

/// A `u64 → u64` map (the `nztm-tds` hash map and skiplist both refine
/// it). `MapInsert`/`MapRemove`/`MapGet` return the previous/removed/
/// current value as `OptVal`; `Contains` returns `Bool`; `ReadAll`
/// snapshots the value of every key in `keys` encoded as `val + 1`
/// (0 = absent), in `keys` order.
pub struct MapSpec {
    /// The key universe the workload draws from (fixes the `ReadAll`
    /// encoding width).
    pub keys: Vec<u64>,
}

impl SeqSpec for MapSpec {
    type State = std::collections::BTreeMap<u64, u64>;

    fn init(&self) -> Self::State {
        Default::default()
    }

    fn apply(&self, st: &Self::State, op: &HistOp) -> (Self::State, HistRet) {
        match op {
            HistOp::MapInsert(k, v) => {
                let mut st = st.clone();
                let prev = st.insert(*k, *v);
                (st, HistRet::OptVal(prev))
            }
            HistOp::MapRemove(k) => {
                let mut st = st.clone();
                let prev = st.remove(k);
                (st, HistRet::OptVal(prev))
            }
            HistOp::MapGet(k) => (st.clone(), HistRet::OptVal(st.get(k).copied())),
            HistOp::Contains(k) => (st.clone(), HistRet::Bool(st.contains_key(k))),
            HistOp::ReadAll => {
                let vals =
                    self.keys.iter().map(|k| st.get(k).map_or(0, |v| v + 1)).collect();
                (st.clone(), HistRet::Values(vals))
            }
            other => panic!("MapSpec cannot apply {other:?}"),
        }
    }
}

/// A bounded FIFO queue of at most `capacity` values (the `nztm-tds`
/// MPMC queue refines it). `Enqueue` returns whether the value fit,
/// `Dequeue` pops the head as `OptVal`, `ReadAll` snapshots the contents
/// in FIFO order.
pub struct QueueSpec {
    pub capacity: usize,
}

impl SeqSpec for QueueSpec {
    type State = std::collections::VecDeque<u64>;

    fn init(&self) -> Self::State {
        Default::default()
    }

    fn apply(&self, st: &Self::State, op: &HistOp) -> (Self::State, HistRet) {
        match op {
            HistOp::Enqueue(v) => {
                if st.len() == self.capacity {
                    (st.clone(), HistRet::Bool(false))
                } else {
                    let mut st = st.clone();
                    st.push_back(*v);
                    (st, HistRet::Bool(true))
                }
            }
            HistOp::Dequeue => {
                let mut st = st.clone();
                let v = st.pop_front();
                (st, HistRet::OptVal(v))
            }
            HistOp::ReadAll => (st.clone(), HistRet::Values(st.iter().copied().collect())),
            other => panic!("QueueSpec cannot apply {other:?}"),
        }
    }
}

/// A failed linearizability check.
#[derive(Clone, Debug)]
pub struct LinError(pub String);

impl std::fmt::Display for LinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Wing–Gong search over the completed operations of one history.
pub fn linearizable<S: SeqSpec>(spec: &S, ops: &[OpRecord]) -> Result<(), LinError> {
    assert!(ops.len() <= 64, "history too large for the bitmask checker");
    let n = ops.len();
    if n == 0 {
        return Ok(());
    }
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    let mut visited: HashSet<(u64, S::State)> = HashSet::new();
    let mut stack = vec![(0u64, spec.init())];
    while let Some((taken, st)) = stack.pop() {
        if taken == full {
            return Ok(());
        }
        if !visited.insert((taken, st.clone())) {
            continue;
        }
        // An op may linearize next only if no *untaken* op returned
        // before it was invoked. Log positions are unique, so comparing
        // against the minimum untaken return index is exact.
        let frontier = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| taken & (1 << i) == 0)
            .map(|(_, o)| o.return_at)
            .min()
            .expect("taken != full");
        for (i, o) in ops.iter().enumerate() {
            if taken & (1 << i) != 0 || o.invoke_at > frontier {
                continue;
            }
            let (st2, ret) = spec.apply(&st, &o.op);
            if ret == o.ret {
                stack.push((taken | (1 << i), st2));
            }
        }
    }
    Err(LinError(format!(
        "no linearization of {n} ops exists; history: {:?}",
        ops.iter().map(|o| (o.tid, &o.op, &o.ret)).collect::<Vec<_>>()
    )))
}

/// Check a set history by per-key decomposition (linearizability is
/// compositional: a history over independent keys is linearizable iff
/// each key's subhistory is).
pub fn check_set_history(
    ops: &[OpRecord],
    initially_present: &HashSet<u64>,
) -> Result<(), LinError> {
    let keys: HashSet<u64> = ops.iter().filter_map(|o| o.op.set_key()).collect();
    for key in keys {
        let sub: Vec<OpRecord> =
            ops.iter().filter(|o| o.op.set_key() == Some(key)).cloned().collect();
        let spec = KeySpec { initially_present: initially_present.contains(&key) };
        linearizable(&spec, &sub)
            .map_err(|e| LinError(format!("key {key}: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tid: u32, op: HistOp, ret: HistRet, invoke_at: u64, return_at: u64) -> OpRecord {
        OpRecord { tid, op, ret, invoke_at, return_at }
    }

    #[test]
    fn sequential_bank_history_passes() {
        let spec = BankSpec { accounts: 2, initial: 1 };
        let ops = vec![
            rec(0, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(true), 0, 1),
            rec(1, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(false), 2, 3),
            rec(0, HistOp::ReadAll, HistRet::Values(vec![0, 2]), 4, 5),
        ];
        linearizable(&spec, &ops).unwrap();
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // Both transfers overlap; only one can succeed from a 1-unit
        // account, and either order is a valid linearization.
        let spec = BankSpec { accounts: 2, initial: 1 };
        let ops = vec![
            rec(0, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(false), 0, 3),
            rec(1, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(true), 1, 2),
        ];
        linearizable(&spec, &ops).unwrap();
    }

    #[test]
    fn lost_update_is_rejected() {
        // Two sequential successful transfers out of a 1-unit account:
        // the second *observed* the first's debit undone. Not linearizable.
        let spec = BankSpec { accounts: 2, initial: 1 };
        let ops = vec![
            rec(0, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(true), 0, 1),
            rec(1, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(true), 2, 3),
        ];
        assert!(linearizable(&spec, &ops).is_err());
    }

    #[test]
    fn real_time_order_is_respected() {
        // A read that completed *before* the only successful transfer
        // began must not observe its effect.
        let spec = BankSpec { accounts: 2, initial: 1 };
        let ops = vec![
            rec(0, HistOp::ReadAll, HistRet::Values(vec![0, 2]), 0, 1),
            rec(1, HistOp::Transfer { from: 0, to: 1 }, HistRet::Bool(true), 2, 3),
        ];
        assert!(linearizable(&spec, &ops).is_err());
    }

    #[test]
    fn map_spec_accepts_overlapping_inserts_in_either_order() {
        // Two concurrent inserts to the same key: one must see None, the
        // other the first's value — both assignments linearize.
        let spec = MapSpec { keys: vec![5] };
        let ops = vec![
            rec(0, HistOp::MapInsert(5, 10), HistRet::OptVal(Some(20)), 0, 3),
            rec(1, HistOp::MapInsert(5, 20), HistRet::OptVal(None), 1, 2),
            rec(0, HistOp::ReadAll, HistRet::Values(vec![11]), 4, 5),
        ];
        linearizable(&spec, &ops).unwrap();
    }

    #[test]
    fn map_spec_rejects_lost_remove() {
        // A remove that returned the value, yet a later sequential get
        // still sees it: the remove's effect was lost.
        let spec = MapSpec { keys: vec![5] };
        let ops = vec![
            rec(0, HistOp::MapInsert(5, 10), HistRet::OptVal(None), 0, 1),
            rec(1, HistOp::MapRemove(5), HistRet::OptVal(Some(10)), 2, 3),
            rec(0, HistOp::MapGet(5), HistRet::OptVal(Some(10)), 4, 5),
        ];
        assert!(linearizable(&spec, &ops).is_err());
    }

    #[test]
    fn queue_spec_enforces_fifo_and_capacity() {
        let spec = QueueSpec { capacity: 2 };
        let ops = vec![
            rec(0, HistOp::Enqueue(1), HistRet::Bool(true), 0, 1),
            rec(0, HistOp::Enqueue(2), HistRet::Bool(true), 2, 3),
            rec(1, HistOp::Enqueue(3), HistRet::Bool(false), 4, 5),
            rec(1, HistOp::Dequeue, HistRet::OptVal(Some(1)), 6, 7),
            rec(0, HistOp::ReadAll, HistRet::Values(vec![2]), 8, 9),
        ];
        linearizable(&spec, &ops).unwrap();
        // LIFO observation is rejected.
        let bad = vec![
            rec(0, HistOp::Enqueue(1), HistRet::Bool(true), 0, 1),
            rec(0, HistOp::Enqueue(2), HistRet::Bool(true), 2, 3),
            rec(1, HistOp::Dequeue, HistRet::OptVal(Some(2)), 4, 5),
        ];
        assert!(linearizable(&spec, &bad).is_err());
    }

    #[test]
    fn set_decomposition_checks_each_key() {
        let ops = vec![
            rec(0, HistOp::Insert(3), HistRet::Bool(true), 0, 1),
            rec(1, HistOp::Contains(7), HistRet::Bool(false), 2, 3),
            rec(1, HistOp::Contains(3), HistRet::Bool(true), 4, 5),
            rec(0, HistOp::Delete(3), HistRet::Bool(true), 6, 7),
        ];
        check_set_history(&ops, &HashSet::new()).unwrap();
        // A contains that "sees" a never-inserted key fails on that key.
        let bad = vec![rec(0, HistOp::Contains(9), HistRet::Bool(true), 0, 1)];
        let err = check_set_history(&bad, &HashSet::new()).unwrap_err();
        assert!(err.0.contains("key 9"));
        // ... but passes if the key was initially present.
        check_set_history(&bad, &HashSet::from([9])).unwrap();
    }
}
