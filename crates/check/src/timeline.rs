//! Annotated failure timelines from flight-recorder traces.
//!
//! A failure artifact names a config and a forced-choice schedule; this
//! module re-runs it with the engine flight recorder armed and renders
//! the merged trace as a human-readable timeline — every line names the
//! transactions (`t<thread>#<serial>`) and objects (`obj#<i>`) involved,
//! with scheduler decisions interleaved in the same logical-clock
//! column. The same trace exports to Chrome `trace_event` JSON for
//! Perfetto via [`nztm_core::Trace::to_chrome_trace`].
//!
//! Capturing events needs the `trace` cargo feature; without it the
//! replay still runs but the timeline is empty and [`render_artifact`]
//! says so rather than producing a blank report.

use crate::artifact::Artifact;
use crate::explore::judge;
use crate::harness::{run_config, RunOutcome};
use nztm_sim::SchedPolicy;
use std::fmt::Write as _;
use std::sync::Arc;

/// Map a trace-event object address to `obj#<i>` using the run's
/// allocation-order address table (falls back to the raw address for
/// objects outside the workload set).
pub fn object_namer(obj_addrs: &[u64]) -> impl FnMut(u64) -> String + '_ {
    move |addr: u64| match obj_addrs.iter().position(|&a| a == addr) {
        Some(i) => format!("obj#{i}"),
        None => format!("obj@{addr:#x}"),
    }
}

/// Render a run's merged trace as one annotated line per event:
/// `clock  [thread]  description`. Returns an explanatory placeholder
/// when the trace is empty (feature off or tracing disarmed).
pub fn render_timeline(out: &RunOutcome) -> String {
    if out.trace.is_empty() {
        return "(no trace events captured — build with --features trace)\n".to_string();
    }
    let mut s = String::with_capacity(out.trace.events.len() * 48);
    if out.trace.overwritten > 0 {
        let _ = writeln!(
            s,
            "# {} older events lost to ring overwrite — timeline starts mid-run",
            out.trace.overwritten
        );
    }
    let mut namer = object_namer(&out.obj_addrs);
    for e in &out.trace.events {
        let _ = writeln!(s, "{:>10}  [t{}]  {}", e.clock, e.thread, e.describe(&mut namer));
    }
    let hot = out.trace.hottest_objects(4);
    if !hot.is_empty() {
        let _ = writeln!(s, "#\n# hottest objects:");
        for h in hot {
            let _ = writeln!(
                s,
                "#   {}: {} conflicts, {} waits, {} inflations, {} acquires",
                namer(h.addr),
                h.conflicts,
                h.waits,
                h.inflations,
                h.acquires
            );
        }
    }
    s
}

/// A replayed artifact with its annotated timeline.
#[derive(Clone, Debug)]
pub struct TimelineReport {
    /// The replay failed with the artifact's kind.
    pub reproduced: bool,
    /// What the replay produced ("ok" when it passed).
    pub kind: String,
    pub detail: String,
    /// The annotated text timeline (see [`render_timeline`]).
    pub timeline: String,
    /// The full run outcome, for Perfetto export
    /// (`outcome.trace.to_chrome_trace()`) or further digging.
    pub outcome: RunOutcome,
}

/// Re-run an artifact's forced-choice schedule with the flight recorder
/// armed and render the result as an annotated timeline.
pub fn render_artifact(art: &Artifact) -> Result<TimelineReport, String> {
    let mut cfg = art.cfg.clone();
    if cfg.requires_sanitize() && !cfg!(feature = "sanitize") {
        return Err(
            "artifact needs fault injection / pause schedules / protocol-edge yield points: \
             rebuild with `--features sanitize`"
                .into(),
        );
    }
    cfg.policy = SchedPolicy::Replay { choices: Arc::new(art.choices.clone()) };
    cfg.trace = true;
    let out = run_config(&cfg);
    let (kind, detail) = match judge(&cfg, &out) {
        Ok(()) => ("ok".to_string(), String::new()),
        Err(e) => (e.kind().to_string(), e.detail()),
    };
    Ok(TimelineReport {
        reproduced: kind == art.kind,
        kind,
        detail,
        timeline: render_timeline(&out),
        outcome: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Backend, CheckConfig};

    #[test]
    fn traced_replay_produces_a_consistent_outcome() {
        // Arming the recorder must not change the run itself: same
        // history and finals as the untraced run of the same config.
        let base = CheckConfig::transfer(Backend::Nzstm);
        let plain = run_config(&base);
        let traced = run_config(&CheckConfig { trace: true, ..base.clone() });
        assert_eq!(plain.final_values, traced.final_values);
        assert_eq!(plain.ops.len(), traced.ops.len());
        assert_eq!(traced.obj_addrs.len(), base.objects);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn timeline_names_transactions_and_objects() {
        let cfg = CheckConfig { trace: true, ..CheckConfig::transfer(Backend::Nzstm) };
        let out = run_config(&cfg);
        assert!(!out.trace.is_empty(), "trace feature is on and tracing was armed");
        out.trace.check_well_formed().expect("merged trace is well-formed");
        // Scheduler decisions landed in the same timeline.
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| e.kind == nztm_core::EventKind::SchedSwitch));
        let text = render_timeline(&out);
        assert!(text.contains("t0#"), "transaction names rendered: {text}");
        assert!(text.contains("commit"), "commits rendered: {text}");
        // The Chrome export is loadable JSON with balanced spans.
        let json = out.trace.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn all_four_backends_emit_merged_traces() {
        for b in crate::harness::BACKENDS {
            let cfg = CheckConfig { trace: true, ..CheckConfig::transfer(b) };
            let out = run_config(&cfg);
            assert!(!out.trace.is_empty(), "{}: no events", b.name());
            out.trace
                .check_well_formed()
                .unwrap_or_else(|e| panic!("{}: malformed trace: {e}", b.name()));
            for w in out.trace.events.windows(2) {
                assert!(w[0].clock <= w[1].clock, "{}: out of time order", b.name());
            }
        }
    }
}
