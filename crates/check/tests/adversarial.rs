//! Targeted adversarial schedules (tentpole mode (c)) and random-walk
//! fuzzing on the real engine.

use nztm_check::{
    explore_random, judge, run_config, Backend, CheckConfig, BACKENDS,
};

/// Pause-owner-then-inflate: thread 0 stalls mid-transaction far past
/// the patience bound. Plain NZSTM must inflate past it (§2.3.1) and
/// still produce a linearizable history.
#[test]
fn paused_owner_forces_inflation_on_nzstm() {
    let cfg = CheckConfig::pause_owner(Backend::Nzstm);
    let out = run_config(&cfg);
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(
        out.stats.inflations > 0,
        "survivors had to inflate past the stalled owner: {:?}",
        out.stats
    );
}

/// The same schedule with SCSS: safe concurrent status stores abort the
/// unresponsive owner directly (§2.3.2), so nobody inflates at all —
/// the optimization this mode exists for.
#[test]
fn paused_owner_is_absorbed_by_scss_without_inflation() {
    let cfg = CheckConfig::pause_owner(Backend::Scss);
    let out = run_config(&cfg);
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(out.stats.scss_stores > 0, "SCSS stores resolved the stall: {:?}", out.stats);
    assert_eq!(
        out.stats.inflations, 0,
        "SCSS sidesteps inflation entirely: {:?}",
        out.stats
    );
}

/// The same schedule on BZSTM: survivors simply wait the stall out.
/// Slower, never inflated, still correct.
#[test]
fn paused_owner_is_waited_out_by_blocking_mode() {
    let cfg = CheckConfig::pause_owner(Backend::Bzstm);
    let out = run_config(&cfg);
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert_eq!(out.stats.inflations, 0, "BZSTM never inflates");
    assert!(out.stats.wait_steps > 0, "survivors waited on the stalled owner");
}

/// Abort-storm: minimal patience + maximal contention under random-walk
/// schedule fuzzing. The handshake must hammer constantly and every
/// history must stay linearizable on every backend.
#[test]
fn abort_storm_fuzzing_stays_linearizable_on_all_backends() {
    for backend in BACKENDS {
        let base = CheckConfig::abort_storm(backend);
        let report = explore_random(&base, 40, 4);
        assert!(
            report.failure.is_none(),
            "{}: {:?}",
            backend.name(),
            report.failure
        );
        assert_eq!(report.schedules, 40, "{}", backend.name());
        assert!(
            report.aborts > 0,
            "{}: the storm must actually abort transactions",
            backend.name()
        );
    }
}

/// Wide abort-storm: 68 simulated contexts — past the 64-thread flat
/// reader-bitmap limit, so every visible read registers in the striped
/// indicator — multiplexed onto an oversubscribed 8-core machine with
/// minimal patience. Judged by conservation (the history is too wide for
/// the Wing–Gong bitmask); no violation may surface on either NZSTM mode.
#[test]
fn wide_abort_storm_past_64_threads_finds_no_violation() {
    for backend in [Backend::Nzstm, Backend::Scss] {
        let base = CheckConfig::abort_storm_wide(backend, 68);
        let report = explore_random(&base, 3, 4);
        assert!(
            report.failure.is_none(),
            "{}: {:?}",
            backend.name(),
            report.failure
        );
        assert_eq!(report.schedules, 3, "{}", backend.name());
        assert!(
            report.aborts > 0,
            "{}: the storm must actually abort transactions",
            backend.name()
        );
    }
}

/// Random-walk fuzzing explores genuinely different interleavings:
/// distinct seeds produce many distinct decision traces.
#[test]
fn random_walk_seeds_diversify_schedules() {
    let base = CheckConfig::transfer(Backend::Nzstm);
    let report = explore_random(&base, 30, 3);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 25,
        "30 seeds produced only {} distinct traces",
        report.distinct
    );
}
