//! Contention-management policies driven through the exploration
//! harness on the real engine (ISSUE 6): every policy must keep
//! histories linearizable under the abort-storm adversary, the
//! classically risky ones must uphold their specific guarantees
//! (Aggressive: no livelock past the engine's backoff; Timestamp:
//! progress), and the adaptive policy's mode transitions must replay
//! deterministically from (seed, schedule).

use nztm_check::{
    explore_random, judge, run_config, Backend, CheckConfig, CmKind, CM_KINDS,
};

/// Every policy, including Adaptive, keeps the abort-storm adversary
/// linearizable under random-walk schedule fuzzing on both nonblocking
/// modes.
#[test]
fn all_policies_stay_linearizable_under_abort_storm() {
    for backend in [Backend::Nzstm, Backend::Scss] {
        for cm in CM_KINDS {
            let base = CheckConfig { cm, ..CheckConfig::abort_storm(backend) };
            let report = explore_random(&base, 8, 4);
            assert!(
                report.failure.is_none(),
                "{}/{}: {:?}",
                backend.name(),
                cm.name(),
                report.failure
            );
            assert_eq!(report.schedules, 8, "{}/{}", backend.name(), cm.name());
        }
    }
}

/// Livelock probe: Aggressive always requests the peer's abort, the
/// textbook mutual-abort livelock shape. The engine's randomized
/// exponential backoff must break the symmetry — the run completes
/// (no watchdog), the history judges clean, and the storm really
/// stormed (abort requests flowed).
#[test]
fn aggressive_survives_abort_storm_without_livelock() {
    let cfg = CheckConfig { cm: CmKind::Aggressive, ..CheckConfig::abort_storm(Backend::Nzstm) };
    let out = run_config(&cfg);
    assert!(!out.watchdog, "aggressive CM livelocked the abort storm");
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(out.stats.abort_requests_sent > 0, "the storm must exercise the handshake");
    assert!(out.stats.aborts() > 0, "aggressive must actually abort peers: {:?}", out.stats);
}

/// Timestamp orders conflicts by (serial, thread) — older wins — which
/// is livelock-free by construction. Under the storm every thread must
/// finish its operations (progress), not merely stay safe.
#[test]
fn timestamp_guarantees_progress_under_abort_storm() {
    let cfg = CheckConfig { cm: CmKind::Timestamp, ..CheckConfig::abort_storm(Backend::Nzstm) };
    let out = run_config(&cfg);
    assert!(!out.watchdog, "timestamp CM failed to make progress");
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    // All workload operations completed (the log also holds the final
    // quiescent ReadAll, hence >=).
    assert!(
        out.ops.len() >= cfg.threads * cfg.ops_per_thread,
        "every operation must complete: {} < {}",
        out.ops.len(),
        cfg.threads * cfg.ops_per_thread
    );
    // AbortSelf is Timestamp's signature move (the younger yields).
    assert!(out.stats.aborts_self > 0, "the younger side must have yielded: {:?}", out.stats);
}

/// A contention shape hot enough to trip Adaptive's escalation
/// threshold: one object, many short increments, minimal patience.
fn escalation_storm() -> CheckConfig {
    CheckConfig {
        cm: CmKind::Adaptive,
        patience: 2,
        ..CheckConfig::increment(Backend::Nzstm, 6, 1)
    }
}

/// Adaptive's mode transitions are pure functions of the run: replaying
/// the same (seed, schedule policy) on the deterministic machine must
/// reproduce identical statistics — including the escalation and
/// de-escalation counters — and an identical mode-transition event
/// sequence in the flight recorder. This is what makes adaptive-CM
/// failures shrinkable and artifact-replayable like any other.
#[test]
fn adaptive_mode_transitions_replay_deterministically() {
    let mut cfg = escalation_storm();
    cfg.trace = true;
    let a = run_config(&cfg);
    let b = run_config(&cfg);
    judge(&cfg, &a).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(!a.watchdog && !b.watchdog);
    assert_eq!(a.stats, b.stats, "same seed + schedule must reproduce identical stats");
    assert_eq!(
        a.stats.cm_escalations, b.stats.cm_escalations,
        "mode transitions are part of the replayable state"
    );
    // With the `trace` feature the CmMode events must match one-for-one
    // (kind 15: a = object address, b = mode code). The raw address is
    // a heap pointer and differs run to run, so compare modulo address
    // renaming: each distinct object becomes its first-appearance index
    // — same threads, same mode codes, same objects in the same order.
    // Without the feature both sequences are empty and the assertion is
    // vacuous.
    let cm_events = |out: &nztm_check::RunOutcome| {
        let mut ids = std::collections::HashMap::new();
        out.trace
            .events
            .iter()
            .filter(|e| e.kind == nztm_core::EventKind::CmMode)
            .map(|e| {
                let next = ids.len();
                let id = *ids.entry(e.a).or_insert(next);
                (e.thread, id, e.b)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(cm_events(&a), cm_events(&b), "CmMode event sequences must replay");
}

/// The escalation storm actually escalates: the adaptive policy
/// observes the abort pile-up on the single shared object and switches
/// it to queued-ownership mode at least once (counted by the engine's
/// `cm_escalations`, so the full policy→engine→stats loop is live), and
/// the run still judges clean.
#[test]
fn adaptive_escalates_under_a_single_object_storm() {
    let cfg = escalation_storm();
    let out = run_config(&cfg);
    assert!(!out.watchdog, "adaptive CM must keep the storm live");
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(out.stats.aborts() > 0, "the storm must produce aborts: {:?}", out.stats);
    assert!(
        out.stats.cm_escalations > 0,
        "a single-object abort storm must trip hot-object escalation: {:?}",
        out.stats
    );
}

/// Karma vs Adaptive on the same storm: Adaptive is Karma plus bounded
/// waiting, so it must not *lose* safety or progress anywhere the
/// baseline succeeds (same schedules, same judge).
#[test]
fn adaptive_matches_karma_safety_on_fuzzed_schedules() {
    for cm in [CmKind::Karma, CmKind::Adaptive] {
        let base = CheckConfig { cm, ..escalation_storm() };
        let report = explore_random(&base, 6, 4);
        assert!(report.failure.is_none(), "{}: {:?}", cm.name(), report.failure);
        assert!(report.aborts > 0, "{}: storm must abort", cm.name());
    }
}
