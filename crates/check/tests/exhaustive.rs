//! Bounded-exhaustive schedule enumeration on the real engine — the
//! tier-1 face of nztm-check, and the acceptance gate for this crate:
//! at least 10k distinct schedules of the 3-thread × 2-object transfer config
//! across the four backends, every history linearizable.

use nztm_check::{
    explore_exhaustive, judge, run_config, Backend, CheckConfig, BACKENDS,
};
use nztm_sim::SchedPolicy;
use std::sync::Arc;

#[test]
fn single_minclock_run_passes_on_all_backends() {
    for backend in BACKENDS {
        let cfg = CheckConfig::transfer(backend);
        let out = run_config(&cfg);
        judge(&cfg, &out).unwrap_or_else(|e| {
            panic!("{}: {} — {}", backend.name(), e.kind(), e.detail())
        });
        assert!(!out.ops.is_empty(), "{}: history recorded", backend.name());
        assert!(!out.decisions.is_empty(), "{}: decisions recorded", backend.name());
        assert_eq!(
            out.final_values.iter().sum::<u64>(),
            cfg.initial * cfg.objects as u64,
            "{}: money conserved",
            backend.name()
        );
    }
}

#[test]
fn identical_replay_prefixes_reproduce_identical_runs() {
    let base = CheckConfig::transfer(Backend::Nzstm);
    let run = |prefix: Vec<u32>| {
        let mut cfg = base.clone();
        cfg.policy = SchedPolicy::Replay { choices: Arc::new(prefix) };
        let out = run_config(&cfg);
        let trace: Vec<u32> = out.decisions.iter().map(|d| d.chosen).collect();
        (trace, out.final_values, out.stats.commits, out.stats.aborts())
    };
    let prefix = vec![2, 0, 1, 1, 2, 0];
    assert_eq!(run(prefix.clone()), run(prefix), "fresh machines, identical outcomes");
}

/// The acceptance criterion: >= 10k distinct schedules for the
/// 3-thread × 2-object transfer config, all linearizable, across all
/// four backends, in < 60 s (enforced by CI wall-clock budgets; the
/// assertion here is coverage and correctness).
#[test]
fn ten_thousand_distinct_schedules_all_linearizable() {
    // Depth 8 yields far more than 2,650 prefixes per backend; the
    // limit caps wall clock (~2.5 ms/run) while the four backends sum
    // past 10k schedules.
    let mut total = 0u64;
    for backend in BACKENDS {
        let base = CheckConfig::transfer(backend);
        let report = explore_exhaustive(&base, 8, 2_650);
        assert!(
            report.failure.is_none(),
            "{}: {:?}",
            backend.name(),
            report.failure
        );
        assert_eq!(
            report.distinct, report.schedules,
            "{}: exhaustive enumeration must not repeat schedules",
            backend.name()
        );
        assert!(report.schedules > 0, "{}: explored", backend.name());
        total += report.schedules;
    }
    assert!(total >= 10_000, "covered {total} schedules, want >= 10k");
}
