//! Fault injection end-to-end (requires `--features sanitize`): prove
//! the checker actually *catches* protocol bugs, and that a failure
//! shrinks to a minimal artifact that replays deterministically.

use nztm_check::{
    explore_exhaustive, explore_random, explore_random_with, judge, read_artifact, replay,
    run_config, shrink, write_artifact, Artifact, Backend, CheckConfig,
};

/// Protocol-edge yield points multiply the scheduling decisions at
/// exactly the spots the protocol is most sensitive to. With the real
/// (unbroken) engine every explored schedule must still pass.
#[test]
fn yield_point_exploration_is_clean() {
    let mut base = CheckConfig::transfer(Backend::Nzstm);
    base.yield_points = true;
    let report = explore_exhaustive(&base, 5, 200);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.schedules > 0);
}

/// The acceptance gate: re-enable the seeded handshake bug (the victim
/// misses its forced abort and keeps writing an object it no longer
/// owns), fuzz until the linearizability checker catches the corruption,
/// shrink the failure, write it as an artifact, read it back, and replay
/// it — deterministically reproducing the same verdict.
#[test]
fn injected_handshake_bug_is_caught_shrunk_and_replayed() {
    let mut base = CheckConfig::abort_storm(Backend::Nzstm);
    base.inject_handshake_bug = true;

    // Ignore the invariant mirror's (immediate) detection of the forced
    // status: the point here is that the *end-to-end* linearizability
    // check catches the resulting data corruption on its own. The large
    // change_denom keeps PCT priorities stable long enough for a
    // requester to complete a full steal while the forced-aborted victim
    // sits parked at the eager-write yield point.
    let report = explore_random_with(&base, 600, 16, |cfg, out| match judge(cfg, out) {
        Err(e) if e.kind() == "sanitizer" => Ok(()),
        r => r,
    });
    let failure = report.failure.expect("the injected bug must be caught");
    assert_eq!(
        failure.kind, "linearizability",
        "the bug corrupts committed data: {}",
        failure.detail
    );

    // The failing schedule is pinned by the recorded decision trace;
    // shrinking trims it to the smallest still-failing prefix.
    let small = shrink(&base, &failure);
    assert!(small.choices.len() <= failure.choices.len());
    let art = Artifact::new(&base, &small);
    assert_eq!(art.kind, "linearizability");

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("nztm-check-artifacts");
    let path = write_artifact(&dir, &art).expect("artifact written");
    let back = read_artifact(&path).expect("artifact parsed");
    assert_eq!(back.choices, art.choices);

    // Replay twice: deterministic reproduction, both times.
    for _ in 0..2 {
        let rep = replay(&back).expect("replay ran");
        assert!(rep.reproduced, "replay verdict: {} — {}", rep.kind, rep.detail);
        assert_eq!(rep.kind, "linearizability");
    }
}

/// The same end-to-end gate through the transactional data structures
/// (PR 8): the seeded handshake bug corrupts a `nztm-tds` queue run —
/// every enqueue/dequeue writes the shared head/tail words, so the
/// stolen-object write lands in data the FIFO spec observes — the
/// ADT-level checker ([`nztm_check::QueueSpec`] via the judge) catches
/// it, and the failure shrinks to an artifact that replays. This proves
/// the tds battery detects real protocol bugs, not just word-level ones.
#[test]
fn injected_bug_is_caught_through_the_tds_queue() {
    use nztm_check::Workload;
    let mut base = CheckConfig::tds_abort_storm(Backend::Nzstm, Workload::Queue);
    base.inject_handshake_bug = true;

    let report = explore_random_with(&base, 400, 16, |cfg, out| match judge(cfg, out) {
        Err(e) if e.kind() == "sanitizer" => Ok(()),
        r => r,
    });
    let failure = report.failure.expect("the injected bug must corrupt the queue");
    assert_eq!(failure.kind, "linearizability", "{}", failure.detail);

    let small = shrink(&base, &failure);
    assert!(small.choices.len() <= failure.choices.len());
    let art = Artifact::new(&base, &small);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("nztm-check-artifacts");
    let path = write_artifact(&dir, &art).expect("artifact written");
    let back = read_artifact(&path).expect("artifact parsed");
    assert_eq!(back.cfg.workload, Workload::Queue);
    let rep = replay(&back).expect("replay ran");
    assert!(rep.reproduced, "replay verdict: {} — {}", rep.kind, rep.detail);
}

/// The same campaign with the fault compiled out (flag off, same yield
/// points) passes clean — the catch above is the bug, not the harness.
#[test]
fn unbroken_engine_passes_the_same_campaign() {
    let mut base = CheckConfig::abort_storm(Backend::Nzstm);
    base.yield_points = true; // same schedule surface, no fault
    let report = explore_random(&base, 100, 4);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    let out = run_config(&base);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}
