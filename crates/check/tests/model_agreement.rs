//! Modelcheck ⇄ real-engine agreement (satellite 4).
//!
//! `crates/modelcheck` explores the §3 Promela-style abstract model and
//! proves, among other things, that a crashed owner deadlocks the
//! Blocking variant but not Nzstm / Nzstm+SCSS, and that the abort
//! handshake race resolves safely. These tests reach the *equivalent
//! terminal states on the real engine* under bounded-exhaustive
//! schedule enumeration, so the abstract verdicts and the concrete
//! implementation can't silently drift apart.

use nztm_check::{explore_exhaustive_with, judge, Backend, CheckConfig, CheckError};

/// Crashed owner, nonblocking modes: every explored schedule terminates,
/// is linearizable, and reaches the model's terminal state — both
/// counters incremented once per *surviving* thread (threads 1 and 2;
/// the crashed thread's in-flight increment must be invisible). NZSTM
/// gets there by inflating past the dead owner (§2.3.1); SCSS aborts it
/// directly with safe concurrent status stores (§2.3.2).
#[test]
fn crashed_owner_is_tolerated_by_nonblocking_modes() {
    for backend in [Backend::Nzstm, Backend::Scss] {
        let base = CheckConfig::crash_owner(backend);
        let scss_stores = std::cell::Cell::new(0u64);
        let report = explore_exhaustive_with(&base, 5, 60, |cfg, out| {
            scss_stores.set(scss_stores.get() + out.stats.scss_stores);
            judge(cfg, out)?;
            // 3 threads, crash_tid 0, ops_per_thread == objects == 2:
            // survivors contribute exactly 2 increments per object.
            if out.final_values != vec![2, 2] {
                return Err(CheckError::Conservation(format!(
                    "terminal state {:?}, model says [2, 2]",
                    out.final_values
                )));
            }
            Ok(())
        });
        assert!(report.failure.is_none(), "{}: {:?}", backend.name(), report.failure);
        assert_eq!(report.schedules, 60, "{}", backend.name());
        match backend {
            Backend::Nzstm => assert!(
                report.inflations > 0,
                "NZSTM: some schedule must inflate past the crashed owner"
            ),
            _ => assert!(
                scss_stores.get() > 0,
                "SCSS: safe stores must have aborted the crashed owner"
            ),
        }
    }
}

/// Crashed owner, Blocking variant: the model deadlocks, and so must the
/// real engine — every explored schedule ends on the simulator watchdog
/// with the survivors stuck behind the dead owner.
#[test]
fn crashed_owner_deadlocks_blocking_mode() {
    let mut base = CheckConfig::crash_owner(Backend::Bzstm);
    // Every run burns the full cycle budget spinning; keep it small so
    // a handful of schedules stays cheap. A live run of this workload
    // finishes well under 100k cycles, so 400k only traps deadlocks.
    base.max_cycles = 400_000;
    let report = explore_exhaustive_with(&base, 2, 6, |_cfg, out| {
        if out.watchdog {
            Ok(())
        } else {
            Err(CheckError::Conservation(format!(
                "BZSTM survived a crashed owner (finals {:?}) — the §3 model \
                 says the Blocking variant deadlocks",
                out.final_values
            )))
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.schedules > 0, "explored at least one schedule");
}

/// Abort-handshake race: both threads run transfers spanning the same
/// two accounts with hair-trigger patience, so abort requests fly in
/// both directions. The model says the handshake always resolves; the
/// real engine must terminate on every explored schedule with a
/// linearizable history and the money conserved, on every mode.
#[test]
fn abort_handshake_race_reaches_model_terminal_state() {
    for backend in [Backend::Bzstm, Backend::Nzstm, Backend::Scss] {
        let mut base = CheckConfig::transfer(backend);
        base.threads = 2;
        base.ops_per_thread = 3;
        base.patience = 2; // hair-trigger handshake
        let requests = std::cell::Cell::new(0u64);
        let report = explore_exhaustive_with(&base, 8, 400, |cfg, out| {
            requests.set(requests.get() + out.stats.abort_requests_sent);
            judge(cfg, out)
        });
        assert!(report.failure.is_none(), "{}: {:?}", backend.name(), report.failure);
        assert_eq!(report.distinct, report.schedules, "{}", backend.name());
        assert!(
            requests.get() > 0,
            "{}: the race must actually exercise the abort handshake",
            backend.name()
        );
        assert!(
            report.aborts > 0,
            "{}: some schedule must resolve the race by aborting",
            backend.name()
        );
    }
}
