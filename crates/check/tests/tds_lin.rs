//! Linearizability battery for the `nztm-tds` structures (PR 8): the
//! hash map, skiplist and MPMC queue driven through the check harness on
//! every backend, judged by the Wing–Gong checker against [`MapSpec`] /
//! [`QueueSpec`], under PCT-style random walks, bounded-exhaustive
//! enumeration, and the abort-storm adversary.

use nztm_check::artifact::{from_text, to_text};
use nztm_check::{
    explore_exhaustive, explore_random, judge, run_config, Artifact, Backend, CheckConfig,
    Workload, BACKENDS,
};
use nztm_sim::SchedPolicy;
use std::sync::Arc;

const TDS_WORKLOADS: [Workload; 3] = [Workload::MapHash, Workload::MapSkip, Workload::Queue];

#[test]
fn single_minclock_run_passes_on_all_backends_and_structures() {
    for backend in BACKENDS {
        for wl in TDS_WORKLOADS {
            let cfg = CheckConfig::tds(backend, wl);
            let out = run_config(&cfg);
            judge(&cfg, &out).unwrap_or_else(|e| {
                panic!("{} {}: {} — {}", backend.name(), wl.name(), e.kind(), e.detail())
            });
            assert!(!out.ops.is_empty(), "{} {}: history recorded", backend.name(), wl.name());
            assert!(
                out.ops.iter().any(|o| o.op == nztm_workloads::history::HistOp::ReadAll),
                "{} {}: quiescent snapshot recorded",
                backend.name(),
                wl.name()
            );
        }
    }
}

/// PCT-style random-walk fuzzing on the two nonblocking software
/// backends the acceptance gate names.
#[test]
fn pct_random_walks_are_linearizable_on_nzstm_and_scss() {
    for backend in [Backend::Nzstm, Backend::Scss] {
        for wl in TDS_WORKLOADS {
            let base = CheckConfig::tds(backend, wl);
            let report = explore_random(&base, 120, 4);
            assert!(
                report.failure.is_none(),
                "{} {}: {:?}",
                backend.name(),
                wl.name(),
                report.failure
            );
            assert!(report.schedules == 120, "{}: all seeds ran", wl.name());
        }
    }
}

/// Bounded-exhaustive enumeration: every distinct schedule of the first
/// 6 decisions, CHESS-style, with no duplicate schedules.
#[test]
fn bounded_exhaustive_enumeration_is_linearizable() {
    for backend in [Backend::Nzstm, Backend::Scss] {
        for wl in TDS_WORKLOADS {
            let base = CheckConfig::tds(backend, wl);
            let report = explore_exhaustive(&base, 6, 400);
            assert!(
                report.failure.is_none(),
                "{} {}: {:?}",
                backend.name(),
                wl.name(),
                report.failure
            );
            assert_eq!(
                report.distinct, report.schedules,
                "{} {}: exhaustive enumeration must not repeat schedules",
                backend.name(),
                wl.name()
            );
            assert!(report.schedules > 0);
        }
    }
}

/// The abort-storm adversary (minimal patience, more ops) keeps the
/// handshake path hot under ADT operations. The aggregate abort counter
/// across the campaign proves the adversary actually bites.
#[test]
fn abort_storm_adversary_is_linearizable() {
    let mut total_aborts = 0;
    for backend in [Backend::Nzstm, Backend::Scss] {
        for wl in TDS_WORKLOADS {
            let base = CheckConfig::tds_abort_storm(backend, wl);
            let report = explore_random(&base, 80, 4);
            assert!(
                report.failure.is_none(),
                "{} {}: {:?}",
                backend.name(),
                wl.name(),
                report.failure
            );
            total_aborts += report.aborts;
        }
    }
    assert!(total_aborts > 0, "the storm must provoke contention aborts");
}

/// Identical replay prefixes reproduce identical tds runs — the property
/// that makes shrunk artifacts replayable.
#[test]
fn tds_replay_is_deterministic() {
    for wl in TDS_WORKLOADS {
        let base = CheckConfig::tds(Backend::Nzstm, wl);
        let run = |prefix: Vec<u32>| {
            let mut cfg = base.clone();
            cfg.policy = SchedPolicy::Replay { choices: Arc::new(prefix) };
            let out = run_config(&cfg);
            let trace: Vec<u32> = out.decisions.iter().map(|d| d.chosen).collect();
            let hist: Vec<_> =
                out.ops.iter().map(|o| (o.tid, o.op.clone(), o.ret.clone())).collect();
            (trace, hist, out.final_values)
        };
        let prefix = vec![1, 2, 0, 0, 1, 2];
        assert_eq!(run(prefix.clone()), run(prefix), "{}: deterministic", wl.name());
    }
}

/// The artifact text format round-trips the new workload names, so tds
/// failures shrink to the same replayable `(config, choices)` artifacts
/// as the word workloads.
#[test]
fn tds_artifacts_round_trip() {
    for wl in TDS_WORKLOADS {
        assert_eq!(Workload::parse(wl.name()), Some(wl), "{} parses", wl.name());
        let art = Artifact {
            cfg: CheckConfig::tds_abort_storm(Backend::Scss, wl),
            kind: "linearizability".into(),
            detail: "no linearization of 9 ops".into(),
            choices: vec![2, 0, 1, 1],
        };
        let back = from_text(&to_text(&art)).unwrap();
        assert_eq!(to_text(&back), to_text(&art));
        assert_eq!(back.cfg.workload, wl);
        assert_eq!(back.choices, art.choices);
    }
}

/// A deliberately wrong spec parameter is caught: judging the queue
/// against a capacity-1 spec rejects real capacity-3 histories. This is
/// the checker-checks-something test — the judge is not vacuously green.
#[test]
fn queue_checker_rejects_wrong_capacity_histories() {
    let base = CheckConfig::tds(Backend::Nzstm, Workload::Queue);
    // Find a schedule whose history actually holds 2+ values at once.
    let mut caught = false;
    for seed in 0..40u64 {
        let mut cfg = base.clone();
        cfg.seed = seed;
        let out = run_config(&cfg);
        judge(&cfg, &out).unwrap();
        let mut narrow = cfg.clone();
        narrow.objects = 1; // judge pretends the capacity were 1
        if judge(&narrow, &out).is_err() {
            caught = true;
            break;
        }
    }
    assert!(caught, "a capacity-1 spec must reject some capacity-3 history");
}
