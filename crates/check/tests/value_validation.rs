//! NOrec value-validation edge cases.
//!
//! Value-based validation deliberately accepts A→B→A histories: a
//! concurrent writer may take an object through any sequence of values,
//! and as long as the value the reader logged is back in place when the
//! reader validates, the read is still consistent (the reader's snapshot
//! is equivalent to one where the writer ran entirely before or after
//! it). Version-clock STMs abort here; NOrec must not. The counter-case
//! — the value is *not* restored — must abort with
//! [`AbortCause::ValueValidation`], counted exactly once.

use nztm_check::{explore_random, judge, run_config, Backend, CheckConfig};
use nztm_core::NzBuilder;
use nztm_sim::Native;
use std::sync::{mpsc, Arc};

/// Reader logs X=1; writer commits X=2 then X=1 (A→B→A) before the
/// reader's next read forces a snapshot extension. The restored value
/// passes validation: the reader commits on its first attempt, the
/// extension is counted, and no value-validation abort happens.
#[test]
fn aba_restored_value_passes_norec_validation() {
    let p = Native::new(2);
    let stm = NzBuilder::new(Arc::clone(&p)).build_norec();
    p.register_thread_as(0);
    let x = stm.new_obj(1u64);
    let y = stm.new_obj(10u64);

    let (to_writer, writer_gate) = mpsc::channel::<()>();
    let (to_reader, reader_gate) = mpsc::channel::<()>();

    std::thread::scope(|s| {
        let stm2 = Arc::clone(&stm);
        let p2 = Arc::clone(&p);
        let x2 = &x;
        s.spawn(move || {
            p2.register_thread_as(1);
            writer_gate.recv().unwrap();
            stm2.run(|tx| tx.write(x2, &2)); // X: A -> B
            stm2.run(|tx| tx.write(x2, &1)); // X: B -> A
            to_reader.send(()).unwrap();
        });

        let mut attempts = 0u32;
        let got = stm.run(|tx| {
            attempts += 1;
            let a = tx.read(&x)?;
            if attempts == 1 {
                // Let the writer run its A->B->A pair mid-transaction.
                to_writer.send(()).unwrap();
                reader_gate.recv().unwrap();
            }
            // Fresh read under a moved clock: forces validate + extend.
            let b = tx.read(&y)?;
            tx.write(&y, &(a + b))?;
            Ok((a, b))
        });
        assert_eq!(got, (1, 10), "reader saw the original values");
        assert_eq!(attempts, 1, "A->B->A must not cost the reader an attempt");
    });

    let st = stm.stats_snapshot();
    assert_eq!(
        st.aborts_value_validation, 0,
        "restored value passes value validation by design: {st:?}"
    );
    assert!(st.norec_validations >= 1, "the moved clock forced a validation: {st:?}");
    assert!(st.norec_extensions >= 1, "passing validation extends the snapshot: {st:?}");
    assert_eq!(x.read_untracked(), 1);
    assert_eq!(y.read_untracked(), 11);
}

/// The same handshake without the restore: the writer leaves X=2, so the
/// reader's validation sees a different value than it logged and the
/// attempt dies with exactly one `ValueValidation` abort; the retry then
/// reads the new value and commits.
#[test]
fn unrestored_value_aborts_with_value_validation_counted_once() {
    let p = Native::new(2);
    let stm = NzBuilder::new(Arc::clone(&p)).build_norec();
    p.register_thread_as(0);
    let x = stm.new_obj(1u64);
    let y = stm.new_obj(10u64);

    let (to_writer, writer_gate) = mpsc::channel::<()>();
    let (to_reader, reader_gate) = mpsc::channel::<()>();

    std::thread::scope(|s| {
        let stm2 = Arc::clone(&stm);
        let p2 = Arc::clone(&p);
        let x2 = &x;
        s.spawn(move || {
            p2.register_thread_as(1);
            writer_gate.recv().unwrap();
            stm2.run(|tx| tx.write(x2, &2)); // X: A -> B, never restored
            to_reader.send(()).unwrap();
        });

        let mut attempts = 0u32;
        let got = stm.run(|tx| {
            attempts += 1;
            let a = tx.read(&x)?;
            if attempts == 1 {
                to_writer.send(()).unwrap();
                reader_gate.recv().unwrap();
            }
            let b = tx.read(&y)?;
            tx.write(&y, &(a + b))?;
            Ok((a, b))
        });
        assert_eq!(got, (2, 10), "the retry saw the overwritten value");
        assert_eq!(attempts, 2, "the stale first attempt had to die");
    });

    let st = stm.stats_snapshot();
    assert_eq!(
        st.aborts_value_validation, 1,
        "exactly one value-validation abort: {st:?}"
    );
    assert_eq!(st.aborts(), 1, "no other abort cause fired: {st:?}");
    assert_eq!(y.read_untracked(), 12);
}

/// NOrec under the §3 transfer config on the simulator: the history is
/// linearizable (Wing–Gong verdict via `judge`) and the conflicts the
/// run provokes surface as value-validation aborts with validation
/// passes counted.
#[test]
fn norec_transfer_history_is_linearizable_with_value_validation_accounting() {
    let cfg = CheckConfig::transfer(Backend::Norec);
    let out = run_config(&cfg);
    judge(&cfg, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(out.stats.norec_validations > 0, "transfers validate: {:?}", out.stats);
}

/// Abort-storm fuzzing on NOrec: every schedule stays linearizable, and
/// the storm's aborts are (at least partly) value-validation aborts —
/// the cause every other backend reports as `Validation` instead.
#[test]
fn norec_abort_storm_aborts_are_value_validation() {
    let base = CheckConfig::abort_storm(Backend::Norec);
    let report = explore_random(&base, 40, 4);
    assert!(report.failure.is_none(), "NOREC: {:?}", report.failure);
    assert_eq!(report.schedules, 40);
    assert!(report.aborts > 0, "the storm must actually abort: {report:?}");

    let out = run_config(&base);
    judge(&base, &out).unwrap_or_else(|e| panic!("{} — {}", e.kind(), e.detail()));
    assert!(
        out.stats.aborts_value_validation > 0,
        "NOrec's conflicts are value-validation aborts: {:?}",
        out.stats
    );
    assert_eq!(
        out.stats.aborts_validation, 0,
        "the indicator-read validation cause never fires on NOrec: {:?}",
        out.stats
    );
}
