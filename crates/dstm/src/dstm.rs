//! Classic DSTM (Herlihy et al., PODC 2003).
//!
//! Every object is a `TMObject`: **one word** pointing at a locator,
//! which in turn points at old/new data buffers — so reaching the data
//! costs two dependent loads ("each level of indirection is a potential
//! cache miss"). Writers acquire by building a replacement locator and
//! CAS-ing the object's start word; readers here are *visible* (a reader
//! indicator beside the start word — flat bitmap up to 64 threads, striped
//! above that), matching the read-sharing extension the paper gives all
//! its software systems.
//!
//! Aborting a peer uses the same polite AbortNowPlease handshake as the
//! rest of this workspace — but, as in real DSTM, the requester does
//! **not** wait for an acknowledgement: a locator owner's speculative
//! stores land in its private `new_data` buffer, so once its commit is
//! impossible it is as good as aborted. That is why DSTM is nonblocking
//! without any inflation machinery, and what it pays for with
//! indirection.

use nztm_epoch::Guard;
use nztm_core::cm::{ContentionManager, KarmaDeadlock, Resolution};
use nztm_core::data::{snapshot_words, write_words, TmData};
use nztm_core::registry::ThreadRegistry;
use nztm_core::stats::{ThreadStats, TmStats};
use nztm_core::txn::{Abort, AbortCause, Status, TxnDesc};
use nztm_core::util::{Backoff, PerCore};
use nztm_core::{ReaderIndicator, ReaderVisit, TmSys, WordBuf};
use nztm_sim::{AccessKind, DetRng, Platform};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A DSTM locator: owner + old/new data buffers.
struct DstmLocator {
    owner: Arc<TxnDesc>,
    old_data: Arc<WordBuf>,
    new_data: Arc<WordBuf>,
    /// Synthetic address: the locator is the *first* level of
    /// indirection, a separate cache line from the object.
    synth: usize,
}

impl DstmLocator {
    /// The buffer holding the logical value under the DSTM rule.
    fn current(&self) -> &Arc<WordBuf> {
        match self.owner.status() {
            Status::Committed => &self.new_data,
            _ => &self.old_data,
        }
    }
}

/// Type-erased DSTM object internals.
struct DstmHeader {
    /// Pointer to the current `DstmLocator` (one strong count).
    start: AtomicU64,
    /// Visible-reader indicator: flat bitmap ≤ 64 threads, striped above.
    readers: ReaderIndicator,
    /// Synthetic address of the TMObject word.
    synth: usize,
}

impl DstmHeader {
    fn addr(&self) -> usize {
        self.synth
    }

    fn locator<'g>(&self, _guard: &'g Guard) -> (&'g DstmLocator, u64) {
        let raw = self.start.load(Ordering::SeqCst);
        debug_assert_ne!(raw, 0);
        (unsafe { &*(raw as *const DstmLocator) }, raw)
    }

    fn cas_locator(&self, expected: u64, new: &Arc<DstmLocator>, guard: &Guard) -> bool {
        let new_raw = Arc::into_raw(Arc::clone(new)) as u64;
        match self.start.compare_exchange(expected, new_raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                let ptr = expected as *const DstmLocator;
                unsafe {
                    guard.defer_unchecked(move || drop(Arc::from_raw(ptr)));
                }
                true
            }
            Err(_) => {
                unsafe { drop(Arc::from_raw(new_raw as *const DstmLocator)) };
                false
            }
        }
    }
}

impl Drop for DstmHeader {
    fn drop(&mut self) {
        let raw = *self.start.get_mut();
        if raw != 0 {
            unsafe { drop(Arc::from_raw(raw as *const DstmLocator)) };
        }
    }
}

/// A transactional object managed by [`Dstm`].
pub struct DstmObject<T: TmData> {
    header: DstmHeader,
    _marker: std::marker::PhantomData<T>,
}

impl<T: TmData> DstmObject<T> {
    fn new(init: T, reader_capacity: usize) -> Arc<Self> {
        let buf = WordBuf::zeroed(T::n_words());
        let mut scratch = vec![0u64; T::n_words()];
        init.encode(&mut scratch);
        write_words(buf.words(), &scratch);
        // Initial locator: a committed pseudo-transaction owning `init`.
        let committed = Arc::new(TxnDesc::new(u32::MAX, 0));
        assert!(committed.try_commit());
        let loc = Arc::new(DstmLocator {
            owner: committed,
            old_data: Arc::clone(&buf),
            new_data: buf,
            synth: nztm_sim::synth_alloc_as(64, nztm_sim::StructClass::Locators),
        });
        // Header line first, then (striped mode only) the stripe lines, so
        // ≤ 64-thread address sequences are byte-identical to the flat-bitmap
        // layout.
        let synth = nztm_sim::synth_alloc_as(64, nztm_sim::StructClass::ObjHeaders);
        Arc::new(DstmObject {
            header: DstmHeader {
                start: AtomicU64::new(Arc::into_raw(loc) as u64),
                readers: ReaderIndicator::new(reader_capacity, synth),
                synth,
            },
            _marker: std::marker::PhantomData,
        })
    }

    /// Non-transactional read of the logical value (setup/verification).
    pub fn read_untracked(&self) -> T {
        let guard = nztm_epoch::pin();
        let (loc, _) = self.header.locator(&guard);
        let mut scratch = vec![0u64; T::n_words()];
        snapshot_words(loc.current().words(), &mut scratch);
        T::decode(&scratch)
    }
}

struct WriteEntry {
    header: *const DstmHeader,
    loc: Arc<DstmLocator>,
    /// Keeps the object (hence `header`) alive for the entry's lifetime;
    /// never read, only held.
    #[allow(dead_code)]
    keepalive: Arc<dyn Send + Sync>,
}

struct ReadEntry {
    header: *const DstmHeader,
    /// See `WriteEntry::keepalive`.
    #[allow(dead_code)]
    keepalive: Arc<dyn Send + Sync>,
}

// Safety: the raw header pointers are kept valid by the `keepalive`
// Arcs stored alongside them, and `DstmHeader` is Sync.
unsafe impl Send for WriteEntry {}
unsafe impl Send for ReadEntry {}

struct ThreadCtx {
    current: Option<Arc<TxnDesc>>,
    serial: u64,
    write_set: Vec<WriteEntry>,
    read_set: Vec<ReadEntry>,
    rng: DetRng,
    backoff: Backoff,
    stats: Arc<ThreadStats>,
    scratch: Vec<u64>,
}

impl ThreadCtx {
    fn new(tid: usize, stats: Arc<ThreadStats>) -> Self {
        ThreadCtx {
            current: None,
            serial: 0,
            write_set: Vec::with_capacity(64),
            read_set: Vec::with_capacity(64),
            rng: DetRng::new(0xD5D5_0000 + tid as u64),
            backoff: Backoff::new(),
            stats,
            scratch: Vec::with_capacity(64),
        }
    }
}

/// The DSTM engine.
pub struct Dstm<P: Platform> {
    platform: Arc<P>,
    cm: Arc<dyn ContentionManager>,
    registry: ThreadRegistry,
    threads: PerCore<ThreadCtx>,
    /// Shared view of the per-thread counters (single-writer atomics),
    /// so snapshots never alias the owners' `&mut ThreadCtx`.
    thread_stats: Box<[Arc<ThreadStats>]>,
}

impl<P: Platform> Dstm<P> {
    pub fn new(platform: Arc<P>, cm: Arc<dyn ContentionManager>) -> Arc<Self> {
        let n = platform.n_cores();
        let thread_stats: Box<[Arc<ThreadStats>]> =
            (0..n).map(|_| Arc::new(ThreadStats::default())).collect();
        Arc::new(Dstm {
            platform,
            cm,
            registry: ThreadRegistry::new(n),
            threads: PerCore::new(n, |tid| {
                ThreadCtx::new(tid, Arc::clone(&thread_stats[tid]))
            }),
            thread_stats,
        })
    }

    pub fn with_defaults(platform: Arc<P>) -> Arc<Self> {
        Dstm::new(platform, Arc::new(KarmaDeadlock::default()))
    }

    pub fn run<R>(&self, mut f: impl FnMut(&mut DstmTx<'_, P>) -> Result<R, Abort>) -> R {
        let tid = self.platform.core_id();
        let ctx = unsafe { self.threads.get(tid) };
        loop {
            self.begin(ctx, tid);
            let mut tx = DstmTx { sys: self, ctx, tid };
            match f(&mut tx) {
                Ok(r) => {
                    if self.commit(ctx, tid) {
                        ctx.backoff.reset();
                        return r;
                    }
                }
                Err(Abort(cause)) => self.abort_txn(ctx, tid, cause),
            }
            let steps = ctx.backoff.steps(ctx.rng.next_u64());
            for _ in 0..steps {
                self.platform.spin_wait();
            }
        }
    }

    fn begin(&self, ctx: &mut ThreadCtx, tid: usize) {
        ctx.serial += 1;
        let desc = Arc::new(TxnDesc::new(tid as u32, ctx.serial));
        let guard = nztm_epoch::pin();
        self.registry.publish(tid, &desc, &guard);
        self.platform.mem(self.registry.slot_addr(tid), 8, AccessKind::Write);
        ctx.current = Some(desc);
        ctx.read_set.clear();
        ctx.write_set.clear();
    }

    fn me(ctx: &ThreadCtx) -> &Arc<TxnDesc> {
        ctx.current.as_ref().expect("no transaction in flight")
    }

    fn validate(&self, ctx: &ThreadCtx) -> Result<(), Abort> {
        let me = Self::me(ctx);
        self.platform.mem_nb(me.addr(), 8, AccessKind::Read);
        if me.abort_requested() {
            Err(Abort(AbortCause::Requested))
        } else {
            Ok(())
        }
    }

    fn commit(&self, ctx: &mut ThreadCtx, tid: usize) -> bool {
        let me = Self::me(ctx);
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        if me.try_commit() {
            self.clear_reader_bits(ctx, tid);
            ctx.write_set.clear();
            ctx.stats.commits.bump();
            true
        } else {
            self.abort_txn(ctx, tid, AbortCause::Requested);
            false
        }
    }

    fn abort_txn(&self, ctx: &mut ThreadCtx, tid: usize, cause: AbortCause) {
        let me = Self::me(ctx);
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        me.acknowledge_abort();
        self.clear_reader_bits(ctx, tid);
        ctx.write_set.clear();
        match cause {
            AbortCause::Requested => ctx.stats.aborts_requested.bump(),
            AbortCause::SelfAbort => ctx.stats.aborts_self.bump(),
            AbortCause::Validation => ctx.stats.aborts_validation.bump(),
            AbortCause::Explicit => ctx.stats.aborts_explicit.bump(),
            AbortCause::Htm => ctx.stats.aborts_htm.bump(),
            AbortCause::ValueValidation => ctx.stats.aborts_value_validation.bump(),
        }
    }

    fn clear_reader_bits(&self, ctx: &mut ThreadCtx, tid: usize) {
        for r in ctx.read_set.drain(..) {
            // Safety: keepalive holds the object.
            let h = unsafe { &*r.header };
            self.platform.mem_nb(h.readers.word_addr(tid), 8, AccessKind::Rmw);
            h.readers.remove(tid);
        }
    }

    /// Resolve a conflict with the active owner of a locator. Never waits
    /// for an acknowledgement (see module docs).
    fn resolve(&self, ctx: &mut ThreadCtx, owner: &TxnDesc) -> Result<(), Abort> {
        let me = Arc::clone(Self::me(ctx));
        ctx.stats.conflicts.bump();
        let mut waited = 0u64;
        loop {
            self.validate(ctx)?;
            self.platform.mem(owner.addr(), 8, AccessKind::Read);
            if owner.status() != Status::Active {
                me.set_waiting(false);
                return Ok(());
            }
            match self.cm.resolve(&me, owner, waited) {
                Resolution::Wait => {
                    me.set_waiting(true);
                    self.platform.spin_wait();
                    ctx.stats.wait_steps.bump();
                    waited += 1;
                }
                Resolution::AbortSelf => {
                    me.set_waiting(false);
                    return Err(Abort(AbortCause::SelfAbort));
                }
                Resolution::RequestAbort => {
                    me.set_waiting(false);
                    ctx.stats.abort_requests_sent.bump();
                    self.platform.mem(owner.addr(), 8, AccessKind::Rmw);
                    owner.request_abort();
                    self.validate(ctx)?;
                    return Ok(());
                }
            }
        }
    }

    fn request_readers(&self, ctx: &mut ThreadCtx, h: &DstmHeader, tid: usize, guard: &Guard) -> Result<(), Abort> {
        self.platform.mem(h.addr(), 8, AccessKind::Read);
        let me = Arc::as_ptr(Self::me(ctx));
        h.readers.visit_readers(tid, |step| match step {
            ReaderVisit::Stripe { addr, .. } => {
                self.platform.mem(addr, 8, AccessKind::Read);
            }
            ReaderVisit::Reader { tid: t } => {
                self.platform.mem(self.registry.slot_addr(t), 8, AccessKind::Read);
                if let Some(d) = self.registry.current(t, guard) {
                    if !std::ptr::eq(d, me) && d.status() == Status::Active {
                        self.platform.mem(d.addr(), 8, AccessKind::Rmw);
                        d.request_abort();
                        ctx.stats.abort_requests_sent.bump();
                    }
                }
            }
        });
        self.validate(ctx)
    }

    /// Acquire for writing: install a locator owned by us; returns its
    /// write-set index.
    fn acquire<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<DstmObject<T>>,
    ) -> Result<usize, Abort> {
        self.validate(ctx)?;
        let me = Arc::clone(Self::me(ctx));
        let h = &obj.header;
        if let Some(i) = ctx.write_set.iter().position(|w| std::ptr::eq(w.header, h)) {
            return Ok(i);
        }
        loop {
            let guard = nztm_epoch::pin();
            // Two dependent loads to reach the data: start word, then the
            // locator, then (below) the buffer.
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            let (loc, raw) = h.locator(&guard);
            self.platform.mem(loc.synth, 8, AccessKind::Read);
            let (st, anp) = loc.owner.state_snapshot();
            if st == Status::Active && !anp {
                self.resolve(ctx, &loc.owner)?;
                continue;
            }
            let value = loc.current();
            let n = value.len();
            let new = WordBuf::from_words(value.words());
            self.platform.mem_nb(value.addr(), n * 8, AccessKind::Read);
            self.platform.mem_nb(new.addr(), n * 8, AccessKind::Write);
            let mine = Arc::new(DstmLocator {
                owner: Arc::clone(&me),
                old_data: Arc::clone(value),
                new_data: new,
                synth: nztm_sim::synth_alloc_as(64, nztm_sim::StructClass::Locators),
            });
            self.platform.mem(h.addr(), 8, AccessKind::Rmw);
            if h.cas_locator(raw, &mine, &guard) {
                me.gained_object();
                ctx.stats.acquires.bump();
                self.request_readers(ctx, h, tid, &guard)?;
                let keepalive: Arc<dyn Send + Sync> = obj.clone();
                ctx.write_set.push(WriteEntry { header: h, loc: mine, keepalive });
                self.validate(ctx)?;
                return Ok(ctx.write_set.len() - 1);
            }
        }
    }

    fn read_value<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<DstmObject<T>>,
    ) -> Result<T, Abort> {
        self.validate(ctx)?;
        ctx.stats.reads.bump();
        let me_ptr = Arc::as_ptr(Self::me(ctx));
        let h = &obj.header;
        let n = T::n_words();
        let mut registered = false;
        loop {
            let guard = nztm_epoch::pin();
            if !registered {
                self.platform.mem(h.readers.word_addr(tid), 8, AccessKind::Rmw);
                if h.readers.add(tid) {
                    self.platform.mem_nb(h.addr(), 8, AccessKind::Rmw);
                }
                let keepalive: Arc<dyn Send + Sync> = obj.clone();
                ctx.read_set.push(ReadEntry { header: h, keepalive });
                registered = true;
            }
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            let (loc, raw) = h.locator(&guard);
            self.platform.mem(loc.synth, 8, AccessKind::Read);
            let src = if std::ptr::eq(loc.owner.as_ref(), me_ptr) {
                &loc.new_data
            } else {
                let (st, anp) = loc.owner.state_snapshot();
                if st == Status::Active && !anp {
                    self.resolve(ctx, &loc.owner)?;
                    continue;
                }
                loc.current()
            };
            ctx.scratch.clear();
            ctx.scratch.resize(n, 0);
            self.platform.mem_nb(src.addr(), n * 8, AccessKind::Read);
            snapshot_words(src.words(), &mut ctx.scratch);
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            if h.start.load(Ordering::SeqCst) != raw {
                continue;
            }
            self.validate(ctx)?;
            return Ok(T::decode(&ctx.scratch));
        }
    }

    fn write_value<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<DstmObject<T>>,
        v: &T,
    ) -> Result<(), Abort> {
        let i = self.acquire(ctx, tid, obj)?;
        let n = T::n_words();
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        v.encode(&mut ctx.scratch);
        let buf = Arc::clone(&ctx.write_set[i].loc.new_data);
        self.platform.mem_nb(buf.addr(), n * 8, AccessKind::Write);
        write_words(buf.words(), &ctx.scratch);
        self.validate(ctx)
    }
}

/// In-flight DSTM transaction.
pub struct DstmTx<'s, P: Platform> {
    sys: &'s Dstm<P>,
    ctx: *mut ThreadCtx,
    tid: usize,
}

impl<'s, P: Platform> DstmTx<'s, P> {
    fn ctx(&mut self) -> &mut ThreadCtx {
        unsafe { &mut *self.ctx }
    }

    pub fn read<T: TmData>(&mut self, obj: &Arc<DstmObject<T>>) -> Result<T, Abort> {
        let (sys, tid) = (self.sys, self.tid);
        sys.read_value(self.ctx(), tid, obj)
    }

    pub fn write<T: TmData>(&mut self, obj: &Arc<DstmObject<T>>, v: &T) -> Result<(), Abort> {
        let (sys, tid) = (self.sys, self.tid);
        sys.write_value(self.ctx(), tid, obj, v)
    }
}

impl<P: Platform> TmSys for Dstm<P> {
    type Obj<T: TmData> = Arc<DstmObject<T>>;
    type Tx<'t> = DstmTx<'t, P>;

    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T> {
        DstmObject::new(init, self.registry.len())
    }

    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T {
        obj.read_untracked()
    }

    fn execute<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R {
        self.run(f)
    }

    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort> {
        tx.read(obj)
    }

    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort> {
        tx.write(obj, v)
    }

    fn stats_snapshot(&self) -> TmStats {
        ThreadStats::merge_all(self.thread_stats.iter().map(Arc::as_ref))
    }

    fn reset_stats(&self) {
        for s in self.thread_stats.iter() {
            s.reset();
        }
    }

    fn name(&self) -> &'static str {
        "DSTM"
    }
}

// Safety: raw header pointers in read/write sets are kept alive by the
// `keepalive` Arcs stored alongside them.
unsafe impl<'s, P: Platform> Send for DstmTx<'s, P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::Native;

    fn sys() -> (Arc<Native>, Arc<Dstm<Native>>) {
        let p = Native::new(1);
        p.register_thread();
        let s = Dstm::with_defaults(Arc::clone(&p));
        (p, s)
    }

    #[test]
    fn initial_value_readable() {
        let (_p, s) = sys();
        let o = s.alloc(41u64);
        assert_eq!(Dstm::<Native>::peek(&o), 41);
    }

    #[test]
    fn read_write_commit() {
        let (_p, s) = sys();
        let o = s.alloc(1u64);
        let r = s.run(|tx| {
            let v = tx.read(&o)?;
            tx.write(&o, &(v + 9))?;
            Ok(v)
        });
        assert_eq!(r, 1);
        assert_eq!(o.read_untracked(), 10);
        assert_eq!(s.stats_snapshot().commits, 1);
    }

    #[test]
    fn read_own_write() {
        let (_p, s) = sys();
        let o = s.alloc(1u64);
        s.run(|tx| {
            tx.write(&o, &5)?;
            assert_eq!(tx.read(&o)?, 5, "must see own speculative write");
            Ok(())
        });
    }

    #[test]
    fn aborted_speculation_is_invisible() {
        let (_p, s) = sys();
        let o = s.alloc(1u64);
        let mut attempts = 0;
        s.run(|tx| {
            attempts += 1;
            tx.write(&o, &99)?;
            if attempts == 1 {
                // Simulate an abort request landing on us.
                return Err(Abort(AbortCause::Explicit));
            }
            Ok(())
        });
        assert_eq!(o.read_untracked(), 99);
        assert_eq!(attempts, 2);
        let st = s.stats_snapshot();
        assert_eq!(st.aborts_explicit, 1);
        assert_eq!(st.commits, 1);
    }

    #[test]
    fn two_threads_increment() {
        let p = Native::new(2);
        let s = Dstm::with_defaults(Arc::clone(&p));
        let o = s.alloc(0u64);
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let p = Arc::clone(&p);
                let s = Arc::clone(&s);
                let o = Arc::clone(&o);
                std::thread::spawn(move || {
                    p.register_thread_as(i);
                    for _ in 0..2_000 {
                        s.run(|tx| {
                            let v = tx.read(&o)?;
                            tx.write(&o, &(v + 1))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(o.read_untracked(), 4_000);
    }
}
