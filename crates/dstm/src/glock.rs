//! Single-global-lock "transactional memory".
//!
//! Figure 4 normalizes every system to "the throughput of a single global
//! lock ... running on a single processor", because a global lock offers
//! "the same level of programming complexity as using transactions" with
//! zero instrumentation. Transactions never abort; they simply serialize.
//!
//! The lock is a test-and-test-and-set spinlock built on the `Platform`
//! hooks rather than an OS mutex, for two reasons: (a) the simulated
//! platform's cooperative scheduler must never block an OS thread that
//! holds the run token, and (b) TATAS-with-backoff is what the era's
//! lock-based baselines actually used.

use nztm_core::data::{snapshot_words, write_words, TmData, WordArray};
use nztm_core::stats::{ThreadStats, TmStats};
use nztm_core::txn::Abort;
use nztm_core::util::PerCore;
use nztm_core::TmSys;
use nztm_sim::{AccessKind, Platform};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A plain data object: no transactional metadata at all.
pub struct PlainObject<T: TmData> {
    data: T::Words,
    synth: usize,
}

impl<T: TmData> PlainObject<T> {
    fn new(init: T) -> Arc<Self> {
        let obj: PlainObject<T> = PlainObject {
            data: T::Words::new_zeroed(),
            synth: nztm_sim::synth_alloc_as(T::n_words() * 8, nztm_sim::StructClass::ObjData),
        };
        let mut scratch = vec![0u64; T::n_words()];
        init.encode(&mut scratch);
        write_words(obj.data.words(), &scratch);
        Arc::new(obj)
    }

    pub fn read_untracked(&self) -> T {
        let mut scratch = vec![0u64; T::n_words()];
        snapshot_words(self.data.words(), &mut scratch);
        T::decode(&scratch)
    }
}

struct ThreadCtx {
    stats: Arc<ThreadStats>,
    scratch: Vec<u64>,
}

/// The global-lock TM.
pub struct GlobalLockTm<P: Platform> {
    platform: Arc<P>,
    lock: AtomicU64,
    lock_synth: usize,
    threads: PerCore<ThreadCtx>,
    /// Shared view of the per-thread counters (single-writer atomics),
    /// so snapshots never alias the owners' `&mut ThreadCtx`.
    thread_stats: Box<[Arc<ThreadStats>]>,
}

impl<P: Platform> GlobalLockTm<P> {
    pub fn new(platform: Arc<P>) -> Arc<Self> {
        let n = platform.n_cores();
        let thread_stats: Box<[Arc<ThreadStats>]> =
            (0..n).map(|_| Arc::new(ThreadStats::default())).collect();
        Arc::new(GlobalLockTm {
            platform,
            lock: AtomicU64::new(0),
            lock_synth: nztm_sim::synth_alloc(64),
            threads: PerCore::new(n, |tid| ThreadCtx {
                stats: Arc::clone(&thread_stats[tid]),
                scratch: Vec::new(),
            }),
            thread_stats,
        })
    }

    fn lock_addr(&self) -> usize {
        self.lock_synth
    }

    fn acquire(&self) {
        loop {
            // Test...
            self.platform.mem(self.lock_addr(), 8, AccessKind::Read);
            while self.lock.load(Ordering::Relaxed) != 0 {
                self.platform.spin_wait();
            }
            // ...and test-and-set.
            self.platform.mem(self.lock_addr(), 8, AccessKind::Rmw);
            if self
                .lock
                .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    fn release(&self) {
        self.platform.mem(self.lock_addr(), 8, AccessKind::Write);
        self.lock.store(0, Ordering::Release);
    }

    pub fn run<R>(&self, mut f: impl FnMut(&mut GlockTx<'_, P>) -> Result<R, Abort>) -> R {
        let tid = self.platform.core_id();
        let ctx = unsafe { self.threads.get(tid) };
        self.acquire();
        let mut tx = GlockTx { sys: self, ctx };
        let r = f(&mut tx);
        self.release();
        ctx.stats.commits.bump();
        match r {
            Ok(v) => v,
            Err(_) => unreachable!("global-lock transactions cannot abort"),
        }
    }
}

/// "Transaction" under the global lock: plain reads and writes.
pub struct GlockTx<'s, P: Platform> {
    sys: &'s GlobalLockTm<P>,
    ctx: *mut ThreadCtx,
}

impl<'s, P: Platform> GlockTx<'s, P> {
    fn ctx(&mut self) -> &mut ThreadCtx {
        unsafe { &mut *self.ctx }
    }

    pub fn read<T: TmData>(&mut self, obj: &Arc<PlainObject<T>>) -> Result<T, Abort> {
        let sys = self.sys;
        let ctx = self.ctx();
        ctx.stats.reads.bump();
        let n = T::n_words();
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        sys.platform.mem(obj.synth, n * 8, AccessKind::Read);
        snapshot_words(obj.data.words(), &mut ctx.scratch);
        Ok(T::decode(&ctx.scratch))
    }

    pub fn write<T: TmData>(&mut self, obj: &Arc<PlainObject<T>>, v: &T) -> Result<(), Abort> {
        let sys = self.sys;
        let ctx = self.ctx();
        ctx.stats.acquires.bump();
        let n = T::n_words();
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        v.encode(&mut ctx.scratch);
        sys.platform.mem(obj.synth, n * 8, AccessKind::Write);
        write_words(obj.data.words(), &ctx.scratch);
        Ok(())
    }
}

impl<P: Platform> TmSys for GlobalLockTm<P> {
    type Obj<T: TmData> = Arc<PlainObject<T>>;
    type Tx<'t> = GlockTx<'t, P>;

    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T> {
        PlainObject::new(init)
    }

    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T {
        obj.read_untracked()
    }

    fn execute<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R {
        self.run(f)
    }

    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort> {
        tx.read(obj)
    }

    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort> {
        tx.write(obj, v)
    }

    fn stats_snapshot(&self) -> TmStats {
        ThreadStats::merge_all(self.thread_stats.iter().map(Arc::as_ref))
    }

    fn reset_stats(&self) {
        for s in self.thread_stats.iter() {
            s.reset();
        }
    }

    fn name(&self) -> &'static str {
        "GlobalLock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::Native;

    #[test]
    fn single_thread_read_write() {
        let p = Native::new(1);
        p.register_thread();
        let s = GlobalLockTm::new(p);
        let o = s.alloc(1u64);
        let v = s.run(|tx| {
            let v = tx.read(&o)?;
            tx.write(&o, &(v + 1))?;
            Ok(v)
        });
        assert_eq!(v, 1);
        assert_eq!(o.read_untracked(), 2);
        assert_eq!(s.stats_snapshot().commits, 1);
    }

    #[test]
    fn four_threads_serialize() {
        let p = Native::new(4);
        let s = GlobalLockTm::new(Arc::clone(&p));
        let o = s.alloc(0u64);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let p = Arc::clone(&p);
                let s = Arc::clone(&s);
                let o = Arc::clone(&o);
                std::thread::spawn(move || {
                    p.register_thread_as(i);
                    for _ in 0..5_000 {
                        s.run(|tx| {
                            let v = tx.read(&o)?;
                            tx.write(&o, &(v + 1))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(o.read_untracked(), 20_000);
        assert_eq!(s.stats_snapshot().commits, 20_000);
        assert_eq!(s.stats_snapshot().aborts(), 0);
    }
}
