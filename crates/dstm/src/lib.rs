//! # nztm-dstm — baseline transactional memories
//!
//! The three comparison systems the paper's evaluation depends on:
//!
//! * [`Dstm`] — the classic locator-based nonblocking object STM of
//!   Herlihy, Luchangco, Moir & Scherer (PODC 2003). **Two levels of
//!   indirection** on every data access (object → locator → data buffer):
//!   the cost NZSTM exists to avoid. NZSTM's inflated mode is exactly
//!   this algorithm, so this crate doubles as the reference for it.
//! * [`ShadowStm`] — DSTM2's *Shadow Factory* (Herlihy, Luchangco, Moir —
//!   OOPSLA 2006), the blocking zero-indirection STM of Figure 4:
//!   data in place, but the shadow (backup) copy is allocated **in place
//!   with the object**, doubling the object footprint — the cache effect
//!   behind NZSTM's kmeans win (§4.4.2). As in the paper, it uses "the
//!   same visible reads and contention management extensions as NZSTM".
//! * [`GlobalLockTm`] — a single global test-and-test-and-set lock
//!   protecting every "transaction"; Figure 4's normalization baseline
//!   ("the performance that can be achieved in systems with no HTM
//!   support, with the same level of programming complexity").
//!
//! All three implement [`nztm_core::TmSys`], so every workload runs
//! unmodified on them.

pub mod dstm;
pub mod glock;
pub mod shadow;

pub use dstm::{Dstm, DstmObject};
pub use glock::GlobalLockTm;
pub use shadow::{ShadowObject, ShadowStm};
