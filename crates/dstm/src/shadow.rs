//! DSTM2 Shadow Factory (blocking, zero-indirection).
//!
//! "We use the Shadow Factory because it is a blocking object-based STM
//! designed from the ground up as a blocking algorithm" (§4.3). Its
//! defining layout choice, and the one the paper's kmeans analysis hinges
//! on (§4.4.2): the backup ("shadow") copy of each object is allocated
//! **in place with the object, which incurs 100% space overhead** — a
//! padded kmeans object needs four cache lines here versus two under
//! NZSTM, and the shadow lines are touched on every acquisition whether
//! or not they were recently used.
//!
//! Algorithmically this is the blocking acquire/backup/restore scheme of
//! NZSTM's §2.2 base (per the paper, "our implementation of DSTM2-SF uses
//! the same visible reads and contention management extensions as
//! NZSTM"), so the measured differences against [`crate::Dstm`]-style
//! systems and BZSTM come down to layout, exactly as in the paper.

use nztm_epoch::Guard;
use nztm_core::cm::{ContentionManager, KarmaDeadlock, Resolution};
use nztm_core::data::{copy_words, snapshot_words, write_words, TmData, WordArray};
use nztm_core::registry::ThreadRegistry;
use nztm_core::stats::{ThreadStats, TmStats};
use nztm_core::txn::{Abort, AbortCause, Status, TxnDesc};
use nztm_core::util::{Backoff, PerCore};
use nztm_core::{ReaderIndicator, ReaderVisit, TmSys};
use nztm_sim::{AccessKind, DetRng, Platform};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Type-erased shadow-object metadata: owner word + reader indicator.
struct ShadowHeader {
    /// Raw pointer to the owning `TxnDesc` (one strong count); 0 = none.
    owner: AtomicU64,
    /// Visible readers: flat bitmap up to 64 threads, striped above.
    readers: ReaderIndicator,
    /// Synthetic base of the object: metadata at `synth`, data at
    /// `synth+32`, the collocated shadow right after the data — the
    /// 100% space overhead is visible to the cache model.
    synth: usize,
}

impl ShadowHeader {
    fn addr(&self) -> usize {
        self.synth
    }

    fn owner_desc<'g>(&self, _guard: &'g Guard) -> Option<(&'g TxnDesc, u64)> {
        let raw = self.owner.load(Ordering::SeqCst);
        if raw == 0 {
            None
        } else {
            Some((unsafe { &*(raw as *const TxnDesc) }, raw))
        }
    }

    fn cas_owner(&self, expected: u64, new: &Arc<TxnDesc>, guard: &Guard) -> bool {
        let new_raw = Arc::into_raw(Arc::clone(new)) as u64;
        match self.owner.compare_exchange(expected, new_raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                if expected != 0 {
                    let ptr = expected as *const TxnDesc;
                    unsafe {
                        guard.defer_unchecked(move || drop(Arc::from_raw(ptr)));
                    }
                }
                true
            }
            Err(_) => {
                unsafe { drop(Arc::from_raw(new_raw as *const TxnDesc)) };
                false
            }
        }
    }
}

impl Drop for ShadowHeader {
    fn drop(&mut self) {
        let raw = *self.owner.get_mut();
        if raw != 0 {
            unsafe { drop(Arc::from_raw(raw as *const TxnDesc)) };
        }
    }
}

/// A transactional object with its shadow copy collocated — the 100%
/// space overhead of the Shadow Factory.
pub struct ShadowObject<T: TmData> {
    header: ShadowHeader,
    data: T::Words,
    /// The in-place shadow (backup) copy. Restorable iff the recorded
    /// installer did not commit (see `shadow_installer`).
    shadow: T::Words,
    /// Raw pointer (one strong `Arc` count) to the transaction that
    /// installed the shadow; 0 = never installed. The shadow is *stale*
    /// once its installer commits (the committed value lives in `data`),
    /// which closes the stale-shadow window between a new acquirer's
    /// owner CAS and its shadow refresh — the same race the NZSTM engine
    /// guards with `WordBuf::usable_as_backup`.
    shadow_installer: AtomicU64,
}

impl<T: TmData> ShadowObject<T> {
    fn new(init: T, reader_capacity: usize) -> Arc<Self> {
        // Metadata + data + collocated shadow: double the payload
        // footprint, as in DSTM2-SF.
        let bytes = 32 + 2 * T::n_words() * 8;
        let synth = nztm_sim::synth_alloc(bytes);
        nztm_sim::tag_synth_range(synth, bytes.min(64), nztm_sim::StructClass::ObjHeaders);
        if bytes > 64 {
            nztm_sim::tag_synth_range(synth + 64, bytes - 64, nztm_sim::StructClass::ObjData);
        }
        let obj: ShadowObject<T> = ShadowObject {
            header: ShadowHeader {
                owner: AtomicU64::new(0),
                readers: ReaderIndicator::new(reader_capacity, synth),
                synth,
            },
            data: T::Words::new_zeroed(),
            shadow: T::Words::new_zeroed(),
            shadow_installer: AtomicU64::new(0),
        };
        let mut scratch = vec![0u64; T::n_words()];
        init.encode(&mut scratch);
        write_words(obj.data.words(), &scratch);
        Arc::new(obj)
    }

    pub fn read_untracked(&self) -> T {
        let guard = nztm_epoch::pin();
        let mut scratch = vec![0u64; T::n_words()];
        let src = match self.header.owner_desc(&guard) {
            Some((d, _)) if d.status() == Status::Aborted && self.shadow_usable(&guard) => {
                self.shadow.words()
            }
            _ => self.data.words(),
        };
        snapshot_words(src, &mut scratch);
        T::decode(&scratch)
    }

    fn shadow_usable(&self, _guard: &Guard) -> bool {
        let raw = self.shadow_installer.load(Ordering::SeqCst);
        if raw == 0 {
            return false;
        }
        unsafe { &*(raw as *const TxnDesc) }.status() != Status::Committed
    }

    fn adopt_shadow(&self, me: &Arc<TxnDesc>, guard: &Guard) {
        let new_raw = Arc::into_raw(Arc::clone(me)) as u64;
        let old = self.shadow_installer.swap(new_raw, Ordering::SeqCst);
        if old != 0 {
            let ptr = old as *const TxnDesc;
            unsafe {
                guard.defer_unchecked(move || drop(Arc::from_raw(ptr)));
            }
        }
    }
}

impl<T: TmData> Drop for ShadowObject<T> {
    fn drop(&mut self) {
        let raw = *self.shadow_installer.get_mut();
        if raw != 0 {
            unsafe { drop(Arc::from_raw(raw as *const TxnDesc)) };
        }
    }
}

/// Type-erased view for read/write sets.
trait ShadowAny: Send + Sync {
    fn header(&self) -> &ShadowHeader;
    fn data_words(&self) -> &[AtomicU64];
    fn shadow_words(&self) -> &[AtomicU64];
    fn shadow_usable_dyn(&self, guard: &Guard) -> bool;
    fn adopt_shadow_dyn(&self, me: &Arc<TxnDesc>, guard: &Guard);
    fn data_addr(&self) -> usize;
    fn shadow_addr(&self) -> usize;
}

impl<T: TmData> ShadowAny for ShadowObject<T> {
    fn header(&self) -> &ShadowHeader {
        &self.header
    }
    fn data_words(&self) -> &[AtomicU64] {
        self.data.words()
    }
    fn shadow_words(&self) -> &[AtomicU64] {
        self.shadow.words()
    }
    fn shadow_usable_dyn(&self, guard: &Guard) -> bool {
        self.shadow_usable(guard)
    }
    fn adopt_shadow_dyn(&self, me: &Arc<TxnDesc>, guard: &Guard) {
        self.adopt_shadow(me, guard)
    }
    fn data_addr(&self) -> usize {
        self.header.synth + 32
    }
    fn shadow_addr(&self) -> usize {
        self.header.synth + 32 + self.data.words().len() * 8
    }
}

struct ThreadCtx {
    current: Option<Arc<TxnDesc>>,
    serial: u64,
    write_set: Vec<Arc<dyn ShadowAny>>,
    read_set: Vec<Arc<dyn ShadowAny>>,
    rng: DetRng,
    backoff: Backoff,
    stats: Arc<ThreadStats>,
    scratch: Vec<u64>,
}

impl ThreadCtx {
    fn new(tid: usize, stats: Arc<ThreadStats>) -> Self {
        ThreadCtx {
            current: None,
            serial: 0,
            write_set: Vec::with_capacity(64),
            read_set: Vec::with_capacity(64),
            rng: DetRng::new(0x5AD0_0000 + tid as u64),
            backoff: Backoff::new(),
            stats,
            scratch: Vec::with_capacity(64),
        }
    }
}

/// The DSTM2 Shadow Factory engine (blocking).
pub struct ShadowStm<P: Platform> {
    platform: Arc<P>,
    cm: Arc<dyn ContentionManager>,
    registry: ThreadRegistry,
    threads: PerCore<ThreadCtx>,
    /// Shared view of the per-thread counters (single-writer atomics),
    /// so snapshots never alias the owners' `&mut ThreadCtx`.
    thread_stats: Box<[Arc<ThreadStats>]>,
}

impl<P: Platform> ShadowStm<P> {
    pub fn new(platform: Arc<P>, cm: Arc<dyn ContentionManager>) -> Arc<Self> {
        let n = platform.n_cores();
        let thread_stats: Box<[Arc<ThreadStats>]> =
            (0..n).map(|_| Arc::new(ThreadStats::default())).collect();
        Arc::new(ShadowStm {
            platform,
            cm,
            registry: ThreadRegistry::new(n),
            threads: PerCore::new(n, |tid| {
                ThreadCtx::new(tid, Arc::clone(&thread_stats[tid]))
            }),
            thread_stats,
        })
    }

    pub fn with_defaults(platform: Arc<P>) -> Arc<Self> {
        ShadowStm::new(platform, Arc::new(KarmaDeadlock::default()))
    }

    pub fn run<R>(&self, mut f: impl FnMut(&mut ShadowTx<'_, P>) -> Result<R, Abort>) -> R {
        let tid = self.platform.core_id();
        let ctx = unsafe { self.threads.get(tid) };
        loop {
            self.begin(ctx, tid);
            let mut tx = ShadowTx { sys: self, ctx, tid };
            match f(&mut tx) {
                Ok(r) => {
                    if self.commit(ctx, tid) {
                        ctx.backoff.reset();
                        return r;
                    }
                }
                Err(Abort(cause)) => self.abort_txn(ctx, tid, cause),
            }
            let steps = ctx.backoff.steps(ctx.rng.next_u64());
            for _ in 0..steps {
                self.platform.spin_wait();
            }
        }
    }

    fn begin(&self, ctx: &mut ThreadCtx, tid: usize) {
        ctx.serial += 1;
        let desc = Arc::new(TxnDesc::new(tid as u32, ctx.serial));
        let guard = nztm_epoch::pin();
        self.registry.publish(tid, &desc, &guard);
        self.platform.mem(self.registry.slot_addr(tid), 8, AccessKind::Write);
        ctx.current = Some(desc);
        ctx.read_set.clear();
        ctx.write_set.clear();
    }

    fn me(ctx: &ThreadCtx) -> &Arc<TxnDesc> {
        ctx.current.as_ref().expect("no transaction in flight")
    }

    fn validate(&self, ctx: &ThreadCtx) -> Result<(), Abort> {
        let me = Self::me(ctx);
        self.platform.mem_nb(me.addr(), 8, AccessKind::Read);
        if me.abort_requested() {
            Err(Abort(AbortCause::Requested))
        } else {
            Ok(())
        }
    }

    fn commit(&self, ctx: &mut ThreadCtx, tid: usize) -> bool {
        let me = Self::me(ctx);
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        if me.try_commit() {
            ctx.write_set.clear();
            self.clear_reader_bits(ctx, tid);
            ctx.stats.commits.bump();
            true
        } else {
            self.abort_txn(ctx, tid, AbortCause::Requested);
            false
        }
    }

    fn abort_txn(&self, ctx: &mut ThreadCtx, tid: usize, cause: AbortCause) {
        let me = Self::me(ctx);
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        me.acknowledge_abort();
        self.clear_reader_bits(ctx, tid);
        ctx.write_set.clear();
        match cause {
            AbortCause::Requested => ctx.stats.aborts_requested.bump(),
            AbortCause::SelfAbort => ctx.stats.aborts_self.bump(),
            AbortCause::Validation => ctx.stats.aborts_validation.bump(),
            AbortCause::Explicit => ctx.stats.aborts_explicit.bump(),
            AbortCause::Htm => ctx.stats.aborts_htm.bump(),
            AbortCause::ValueValidation => ctx.stats.aborts_value_validation.bump(),
        }
    }

    fn clear_reader_bits(&self, ctx: &mut ThreadCtx, tid: usize) {
        for r in ctx.read_set.drain(..) {
            self.platform.mem_nb(r.header().readers.word_addr(tid), 8, AccessKind::Rmw);
            r.header().readers.remove(tid);
        }
    }

    /// Blocking conflict resolution: request the peer's abort and wait
    /// (indefinitely) for the acknowledgement.
    fn resolve(&self, ctx: &mut ThreadCtx, h: &ShadowHeader, raw: u64, other: &TxnDesc) -> Result<(), Abort> {
        let me = Arc::clone(Self::me(ctx));
        ctx.stats.conflicts.bump();
        let mut waited = 0u64;
        loop {
            self.validate(ctx)?;
            self.platform.mem(other.addr(), 8, AccessKind::Read);
            if other.status() != Status::Active || h.owner.load(Ordering::SeqCst) != raw {
                me.set_waiting(false);
                return Ok(());
            }
            match self.cm.resolve(&me, other, waited) {
                Resolution::Wait => {
                    me.set_waiting(true);
                    self.platform.spin_wait();
                    ctx.stats.wait_steps.bump();
                    waited += 1;
                }
                Resolution::AbortSelf => {
                    me.set_waiting(false);
                    return Err(Abort(AbortCause::SelfAbort));
                }
                Resolution::RequestAbort => {
                    me.set_waiting(false);
                    ctx.stats.abort_requests_sent.bump();
                    self.platform.mem(other.addr(), 8, AccessKind::Rmw);
                    other.request_abort();
                    self.validate(ctx)?;
                    // Blocking: wait for the acknowledgement.
                    loop {
                        self.platform.mem(other.addr(), 8, AccessKind::Read);
                        if other.status() != Status::Active {
                            return Ok(());
                        }
                        self.validate(ctx)?;
                        self.platform.spin_wait();
                        ctx.stats.wait_steps.bump();
                    }
                }
            }
        }
    }

    fn request_readers(&self, ctx: &mut ThreadCtx, h: &ShadowHeader, tid: usize, guard: &Guard) -> Result<(), Abort> {
        self.platform.mem(h.addr(), 8, AccessKind::Read);
        let me = Arc::as_ptr(Self::me(ctx));
        h.readers.visit_readers(tid, |step| match step {
            ReaderVisit::Stripe { addr, .. } => {
                self.platform.mem(addr, 8, AccessKind::Read);
            }
            ReaderVisit::Reader { tid: t } => {
                self.platform.mem(self.registry.slot_addr(t), 8, AccessKind::Read);
                if let Some(d) = self.registry.current(t, guard) {
                    if !std::ptr::eq(d, me) && d.status() == Status::Active {
                        self.platform.mem(d.addr(), 8, AccessKind::Rmw);
                        d.request_abort();
                        ctx.stats.abort_requests_sent.bump();
                    }
                }
            }
        });
        self.validate(ctx)
    }

    fn acquire(&self, ctx: &mut ThreadCtx, tid: usize, obj: &Arc<dyn ShadowAny>) -> Result<(), Abort> {
        self.validate(ctx)?;
        let me = Arc::clone(Self::me(ctx));
        let h = obj.header();
        if ctx.write_set.iter().any(|w| std::ptr::eq(w.header(), h)) {
            return Ok(());
        }
        loop {
            let guard = nztm_epoch::pin();
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            let (prev_aborted, raw) = match h.owner_desc(&guard) {
                None => (false, 0),
                Some((t, raw)) => {
                    let st = t.status();
                    if st == Status::Active {
                        assert!(
                            !std::ptr::eq(t, Arc::as_ptr(&me)),
                            "active self-owned object must be in the write set"
                        );
                        self.resolve(ctx, h, raw, t)?;
                        continue;
                    }
                    (st == Status::Aborted, raw)
                }
            };
            self.platform.mem(h.addr(), 8, AccessKind::Rmw);
            if !h.cas_owner(raw, &me, &guard) {
                continue;
            }
            me.gained_object();
            ctx.stats.acquires.bump();
            self.request_readers(ctx, h, tid, &guard)?;

            let n = obj.data_words().len();
            if prev_aborted && obj.shadow_usable_dyn(&guard) {
                // Restore the shadow (lazy undo); it remains our shadow —
                // it already equals the pre-transaction value. Adopt it
                // first so an abort mid-restore leaves it usable.
                obj.adopt_shadow_dyn(&me, &guard);
                self.platform.mem_nb(obj.shadow_addr(), n * 8, AccessKind::Read);
                self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Write);
                copy_words(obj.data_words(), obj.shadow_words());
            } else {
                // Copy data into the collocated shadow — this is the
                // always-touch-the-shadow-lines cost the paper measures.
                // Publish (adopt) only after the copy completes, so a
                // torn shadow is never marked usable.
                self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Read);
                self.platform.mem_nb(obj.shadow_addr(), n * 8, AccessKind::Write);
                copy_words(obj.shadow_words(), obj.data_words());
                obj.adopt_shadow_dyn(&me, &guard);
            }
            ctx.write_set.push(Arc::clone(obj));
            return self.validate(ctx);
        }
    }

    fn read_value<T: TmData>(&self, ctx: &mut ThreadCtx, tid: usize, obj: &Arc<ShadowObject<T>>) -> Result<T, Abort> {
        self.validate(ctx)?;
        ctx.stats.reads.bump();
        let me_ptr = Arc::as_ptr(Self::me(ctx));
        let h = &obj.header;
        let n = T::n_words();
        let mut registered = false;
        loop {
            let guard = nztm_epoch::pin();
            if !registered {
                self.platform.mem(h.readers.word_addr(tid), 8, AccessKind::Rmw);
                if h.readers.add(tid) {
                    self.platform.mem_nb(h.addr(), 8, AccessKind::Rmw);
                }
                let any: Arc<dyn ShadowAny> = obj.clone();
                ctx.read_set.push(any);
                registered = true;
            }
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            let raw1 = h.owner.load(Ordering::SeqCst);
            let src = match h.owner_desc(&guard) {
                None => obj.data.words(),
                Some((t, raw)) => {
                    if std::ptr::eq(t, me_ptr) {
                        obj.data.words()
                    } else {
                        match t.status() {
                            Status::Active => {
                                self.resolve(ctx, h, raw, t)?;
                                continue;
                            }
                            Status::Committed => obj.data.words(),
                            Status::Aborted => {
                                if obj.shadow_usable(&guard) {
                                    obj.shadow.words()
                                } else {
                                    obj.data.words()
                                }
                            }
                        }
                    }
                }
            };
            let src_is_shadow = std::ptr::eq(src.as_ptr(), obj.shadow.words().as_ptr());
            let src_addr = if src_is_shadow {
                obj.header.synth + 32 + n * 8
            } else {
                obj.header.synth + 32
            };
            ctx.scratch.clear();
            ctx.scratch.resize(n, 0);
            self.platform.mem_nb(src_addr, n * 8, AccessKind::Read);
            snapshot_words(src, &mut ctx.scratch);
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            if h.owner.load(Ordering::SeqCst) != raw1 {
                continue;
            }
            self.validate(ctx)?;
            return Ok(T::decode(&ctx.scratch));
        }
    }

    fn write_value<T: TmData>(&self, ctx: &mut ThreadCtx, tid: usize, obj: &Arc<ShadowObject<T>>, v: &T) -> Result<(), Abort> {
        let any: Arc<dyn ShadowAny> = obj.clone();
        self.acquire(ctx, tid, &any)?;
        let n = T::n_words();
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        v.encode(&mut ctx.scratch);
        self.platform.mem_nb(obj.header.synth + 32, n * 8, AccessKind::Write);
        write_words(obj.data.words(), &ctx.scratch);
        self.validate(ctx)
    }
}

/// In-flight Shadow Factory transaction.
pub struct ShadowTx<'s, P: Platform> {
    sys: &'s ShadowStm<P>,
    ctx: *mut ThreadCtx,
    tid: usize,
}

impl<'s, P: Platform> ShadowTx<'s, P> {
    fn ctx(&mut self) -> &mut ThreadCtx {
        unsafe { &mut *self.ctx }
    }

    pub fn read<T: TmData>(&mut self, obj: &Arc<ShadowObject<T>>) -> Result<T, Abort> {
        let (sys, tid) = (self.sys, self.tid);
        sys.read_value(self.ctx(), tid, obj)
    }

    pub fn write<T: TmData>(&mut self, obj: &Arc<ShadowObject<T>>, v: &T) -> Result<(), Abort> {
        let (sys, tid) = (self.sys, self.tid);
        sys.write_value(self.ctx(), tid, obj, v)
    }
}

impl<P: Platform> TmSys for ShadowStm<P> {
    type Obj<T: TmData> = Arc<ShadowObject<T>>;
    type Tx<'t> = ShadowTx<'t, P>;

    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T> {
        ShadowObject::new(init, self.registry.len())
    }

    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T {
        obj.read_untracked()
    }

    fn execute<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R {
        self.run(f)
    }

    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort> {
        tx.read(obj)
    }

    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort> {
        tx.write(obj, v)
    }

    fn stats_snapshot(&self) -> TmStats {
        ThreadStats::merge_all(self.thread_stats.iter().map(Arc::as_ref))
    }

    fn reset_stats(&self) {
        for s in self.thread_stats.iter() {
            s.reset();
        }
    }

    fn name(&self) -> &'static str {
        "DSTM2-SF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::Native;

    fn sys() -> Arc<ShadowStm<Native>> {
        let p = Native::new(1);
        p.register_thread();
        ShadowStm::with_defaults(p)
    }

    #[test]
    fn read_write_commit() {
        let s = sys();
        let o = s.alloc(3u64);
        s.run(|tx| {
            let v = tx.read(&o)?;
            tx.write(&o, &(v + 4))
        });
        assert_eq!(o.read_untracked(), 7);
    }

    #[test]
    fn shadow_restores_on_abort() {
        let s = sys();
        let o = s.alloc(10u64);
        let mut attempts = 0;
        s.run(|tx| {
            attempts += 1;
            tx.write(&o, &999)?;
            if attempts == 1 {
                return Err(Abort(AbortCause::Explicit));
            }
            tx.write(&o, &20)
        });
        assert_eq!(o.read_untracked(), 20);
        // The aborted write of 999 never became the logical value: peek
        // between attempts would have returned 10 via the shadow.
        assert_eq!(s.stats_snapshot().aborts_explicit, 1);
    }

    #[test]
    fn object_footprint_doubles() {
        // 100% space overhead: object with an N-word payload carries 2N
        // words of payload storage.
        let size1 = std::mem::size_of::<ShadowObject<u64>>();
        let size4 = std::mem::size_of::<ShadowObject<(u64, u64)>>();
        // Payload grew by 1 word but storage by 2 words.
        assert_eq!(size4 - size1, 16);
    }

    #[test]
    fn two_threads_increment() {
        let p = Native::new(2);
        let s = ShadowStm::with_defaults(Arc::clone(&p));
        let o = s.alloc(0u64);
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let p = Arc::clone(&p);
                let s = Arc::clone(&s);
                let o = Arc::clone(&o);
                std::thread::spawn(move || {
                    p.register_thread_as(i);
                    for _ in 0..2_000 {
                        s.run(|tx| {
                            let v = tx.read(&o)?;
                            tx.write(&o, &(v + 1))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(o.read_untracked(), 4_000);
    }
}
