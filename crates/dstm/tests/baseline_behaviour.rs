//! Behavioural tests for the baseline TMs: DSTM's locator semantics,
//! DSTM2-SF's blocking + shadow semantics, and the global lock's
//! serialization — the properties Figures 3/4 implicitly rely on.

use nztm_core::txn::{Abort, AbortCause};
use nztm_core::TmSys;
use nztm_dstm::{Dstm, GlobalLockTm, ShadowStm};
use nztm_sim::{DetRng, Native};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn dstm_concurrent_bank_conserves() {
    let p = Native::new(4);
    let s = Dstm::with_defaults(Arc::clone(&p));
    let accounts: Arc<Vec<_>> = Arc::new((0..8).map(|_| s.alloc(100u64)).collect());
    std::thread::scope(|scope| {
        for tid in 0..4usize {
            let p = Arc::clone(&p);
            let s = Arc::clone(&s);
            let accounts = Arc::clone(&accounts);
            scope.spawn(move || {
                p.register_thread_as(tid);
                let mut rng = DetRng::new(tid as u64 + 9);
                for _ in 0..1_500 {
                    let a = rng.next_below(8) as usize;
                    let b = rng.next_below(8) as usize;
                    if a == b {
                        continue;
                    }
                    s.run(|tx| {
                        let va = tx.read(&accounts[a])?;
                        let vb = tx.read(&accounts[b])?;
                        if va > 0 {
                            tx.write(&accounts[a], &(va - 1))?;
                            tx.write(&accounts[b], &(vb + 1))?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    let total: u64 = accounts.iter().map(|a| a.read_untracked()).sum();
    assert_eq!(total, 800);
}

/// DSTM is nonblocking: a transaction stalled mid-flight cannot stop a
/// peer — the peer aborts it (no acknowledgement needed, since locator
/// writes are private) and proceeds.
#[test]
fn dstm_progresses_past_stalled_owner() {
    let p = Native::new(2);
    let s = Dstm::with_defaults(Arc::clone(&p));
    let obj = s.alloc(1u64);
    let stalled = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let (p, s, obj) = (Arc::clone(&p), Arc::clone(&s), Arc::clone(&obj));
            let (st, rel) = (Arc::clone(&stalled), Arc::clone(&release));
            scope.spawn(move || {
                p.register_thread_as(0);
                let mut first = true;
                s.run(|tx| {
                    tx.write(&obj, &99)?;
                    if first {
                        first = false;
                        st.store(true, Ordering::SeqCst);
                        while !rel.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    Ok(())
                });
            });
        }
        {
            let (p, s, obj) = (Arc::clone(&p), Arc::clone(&s), Arc::clone(&obj));
            let (st, rel) = (Arc::clone(&stalled), Arc::clone(&release));
            scope.spawn(move || {
                p.register_thread_as(1);
                while !st.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                // Must finish while the owner is still stalled.
                let start = std::time::Instant::now();
                for _ in 0..25 {
                    s.run(|tx| {
                        let v = tx.read(&obj)?;
                        tx.write(&obj, &(v + 1))
                    });
                }
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "DSTM peer must not block on the stalled owner"
                );
                rel.store(true, Ordering::SeqCst);
            });
        }
    });
    let st = s.stats_snapshot();
    assert!(st.abort_requests_sent > 0, "{st:?}");
}

#[test]
fn shadow_read_sees_pre_abort_value() {
    let p = Native::new(1);
    p.register_thread_as(0);
    let s = ShadowStm::with_defaults(p);
    let obj = s.alloc(7u64);
    // Abort once after dirtying; the logical value between attempts is
    // served from the collocated shadow.
    let mut n = 0;
    s.run(|tx| {
        n += 1;
        tx.write(&obj, &1_000)?;
        if n == 1 {
            assert_eq!(obj.read_untracked(), 1_000, "in-place dirty value visible to peek…");
            Err(Abort(AbortCause::Explicit))
        } else {
            Ok(())
        }
    });
    assert_eq!(obj.read_untracked(), 1_000);
    assert_eq!(s.stats_snapshot().aborts_explicit, 1);
}

#[test]
fn shadow_peek_during_aborted_ownership_reads_shadow() {
    let p = Native::new(1);
    p.register_thread_as(0);
    let s = ShadowStm::with_defaults(p);
    let obj = s.alloc(7u64);
    // Make an attempt that dirties the object and leaves it aborted by
    // committing a second transaction later: between abort-ack and the
    // next acquisition, read_untracked must report the shadow (7), not
    // the dirty 1000.
    let mut first = true;
    let observed = std::cell::Cell::new(0u64);
    s.run(|tx| {
        tx.write(&obj, &1_000)?;
        if first {
            first = false;
            return Err(Abort(AbortCause::Explicit));
        }
        Ok(())
    });
    let _ = observed;
    // After the retry committed, the logical value is 1000.
    assert_eq!(obj.read_untracked(), 1_000);
    // New transactional read agrees.
    assert_eq!(s.run(|tx| tx.read(&obj)), 1_000);
}

#[test]
fn global_lock_has_no_aborts_ever() {
    let p = Native::new(4);
    let s = GlobalLockTm::new(Arc::clone(&p));
    let obj = s.alloc(0u64);
    std::thread::scope(|scope| {
        for tid in 0..4usize {
            let p = Arc::clone(&p);
            let s = Arc::clone(&s);
            let obj = Arc::clone(&obj);
            scope.spawn(move || {
                p.register_thread_as(tid);
                for _ in 0..2_500 {
                    s.run(|tx| {
                        let v = tx.read(&obj)?;
                        tx.write(&obj, &(v + 1))
                    });
                }
            });
        }
    });
    assert_eq!(obj.read_untracked(), 10_000);
    let st = s.stats_snapshot();
    assert_eq!(st.aborts(), 0);
    assert_eq!(st.commits, 10_000);
}

/// The indirection count is visible in the type structure: a DSTM read
/// must traverse object → locator → buffer even when uncontended, while
/// DSTM2-SF/NZSTM-style objects read in place. This test pins the
/// *semantic* part: repeated writes to a DSTM object produce fresh
/// locator generations, and stale reads are revalidated.
#[test]
fn dstm_locator_replacement_is_linearizable() {
    let p = Native::new(2);
    let s = Dstm::with_defaults(Arc::clone(&p));
    let obj = s.alloc(0u64);
    let pairs = Arc::new(nztm_sim::sync::Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        {
            let (p, s, obj) = (Arc::clone(&p), Arc::clone(&s), Arc::clone(&obj));
            scope.spawn(move || {
                p.register_thread_as(0);
                for i in 1..=2_000u64 {
                    s.run(|tx| tx.write(&obj, &i));
                }
            });
        }
        {
            let (p, s, obj) = (Arc::clone(&p), Arc::clone(&s), Arc::clone(&obj));
            let pairs = Arc::clone(&pairs);
            scope.spawn(move || {
                p.register_thread_as(1);
                let mut last = 0;
                for _ in 0..2_000 {
                    let v = s.run(|tx| tx.read(&obj));
                    assert!(v >= last, "monotone writer ⇒ monotone reads: {v} < {last}");
                    last = v;
                }
                pairs.lock().push(last);
            });
        }
    });
}
