//! Minimal epoch-based memory reclamation.
//!
//! In-repo replacement for the subset of `crossbeam-epoch` this workspace
//! uses: [`pin`] and [`Guard::defer_unchecked`]. The engines unlink raw
//! pointers (each carrying one strong `Arc` count) from shared words by
//! CAS and defer the count's release until every thread that might still
//! hold the pointer has passed through an unpinned state.
//!
//! ## Scheme
//!
//! Classic three-epoch EBR. A global epoch counter advances only when
//! every *pinned* participant has observed the current epoch. Garbage
//! deferred while the global epoch was `e` may be freed once the global
//! epoch reaches `e + 2`: the two intervening advances prove that every
//! thread pinned at defer time has unpinned since, and a pointer CAS'd
//! out of a shared word can never be re-loaded by a later pin.
//!
//! Orderings are deliberately all `SeqCst`: this is the correctness
//! backbone of a test- and simulation-grade STM, not a throughput-
//! critical allocator. The fast paths that matter touch only
//! thread-local state: re-entrant pin is a thread-local counter, and
//! deferred destructors accumulate in a private per-thread batch that
//! is handed to the global garbage list in bulk at a high watermark
//! (see `BATCH_HIWAT`) instead of locking the global list per defer.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Low bit of a participant's `local` word: set while pinned; the
/// remaining bits hold the epoch observed at pin time.
const PINNED: usize = 1;

/// Line-aligned (two lines, for adjacent-line prefetchers): each
/// participant's `local` word is stored on every outermost pin/unpin of
/// its owning thread, and participants are separate small heap
/// allocations the allocator is otherwise free to pack onto one cache
/// line — which would make every thread's pin invalidate its
/// neighbours' lines.
#[repr(align(128))]
struct Participant {
    /// `(epoch << 1) | PINNED` while pinned, `0` while unpinned.
    local: AtomicUsize,
    /// Cleared when the owning thread exits; reaped by `try_advance`.
    active: AtomicBool,
}

/// A deferred destructor. The closures deferred here capture raw
/// pointers, so they are not `Send`; executing them on another thread is
/// exactly what epoch reclamation makes sound (the pointer is unlinked
/// and unreachable by the time the closure runs).
///
/// The `Fn` variant is the allocation-free fast path: the STM engines
/// defer millions of `Arc`-count releases, and boxing a closure for each
/// would put a heap allocation on the transactional fast path. A plain
/// `(fn ptr, word)` pair covers every such site.
enum DeferredOp {
    Boxed(Box<dyn FnOnce()>),
    Fn { f: unsafe fn(u64), arg: u64 },
}

struct Deferred {
    epoch: usize,
    op: DeferredOp,
}

impl Deferred {
    fn run(self) {
        match self.op {
            DeferredOp::Boxed(f) => f(),
            // Safety: the `defer_fn` caller vouched for (f, arg) being
            // runnable once the epoch condition holds — same contract as
            // `defer_unchecked`.
            DeferredOp::Fn { f, arg } => unsafe { f(arg) },
        }
    }
}

unsafe impl Send for Deferred {}

/// Local-batch high watermark: once a thread has this many deferred
/// destructors batched privately, the next outermost unpin flushes the
/// batch into the global garbage list (one lock acquisition for the
/// whole batch) and runs a collection round. Batching only delays
/// *reclamation*, never safety — each item carries the epoch observed
/// when it was deferred, and `flush()` still collects eagerly for
/// quiescent teardown/tests.
///
/// Before the batch existed, every `defer_fn` locked the global garbage
/// mutex and every 32nd outermost unpin took both global mutexes — on
/// the STM read path (one defer per `begin` for the registry publish)
/// that shared-counter traffic dominated 8-thread read-heavy cells.
const BATCH_HIWAT: usize = 64;

/// Hard cap on the local batch while a guard stays pinned (a pinned
/// thread cannot collect past itself, but a defer storm inside one long
/// pin must not grow the batch unboundedly): past this, the batch is
/// pushed to the global list without a collection round.
const BATCH_HARD_CAP: usize = 256;

/// The global epoch word is read by every outermost pin on every
/// thread; the two mutex lock words next to it are RMW'd on every batch
/// flush and collection round. [`Pad`] separates them so lock traffic
/// never invalidates the pin path's epoch reads.
struct Global {
    epoch: Pad<AtomicUsize>,
    participants: Pad<Mutex<Vec<Arc<Participant>>>>,
    garbage: Pad<Mutex<Vec<Deferred>>>,
}

/// Minimal local cache-line pad (this crate deliberately has no deps,
/// so it cannot borrow `nztm-core`'s `CachePadded`). Two lines, same
/// rationale as there: adjacent-line prefetchers pull pairs.
#[repr(align(128))]
struct Pad<T>(T);

impl<T> std::ops::Deref for Pad<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: Pad(AtomicUsize::new(0)),
        participants: Pad(Mutex::new(Vec::new())),
        garbage: Pad(Mutex::new(Vec::new())),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Global {
    /// Advance the epoch if every active pinned participant has observed
    /// the current one, then free sufficiently old garbage. Returns
    /// whether any garbage was freed.
    fn collect(&self) -> bool {
        {
            let mut parts = lock(&self.participants);
            let cur = self.epoch.load(Ordering::SeqCst);
            let mut can_advance = true;
            parts.retain(|p| {
                let l = p.local.load(Ordering::SeqCst);
                if l & PINNED != 0 {
                    if l >> 1 != cur {
                        can_advance = false;
                    }
                    true
                } else {
                    p.active.load(Ordering::SeqCst)
                }
            });
            if can_advance {
                // Single writer per advance is not required: a lost race
                // just means someone else advanced, which is fine too.
                let _ = self.epoch.compare_exchange(
                    cur,
                    cur + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
        }
        let ge = self.epoch.load(Ordering::SeqCst);
        let ready: Vec<Deferred> = {
            let mut g = lock(&self.garbage);
            if g.is_empty() {
                return false;
            }
            let mut ready = Vec::new();
            g.retain_mut(|d| {
                if d.epoch + 2 <= ge {
                    let op = std::mem::replace(&mut d.op, DeferredOp::Boxed(Box::new(|| {})));
                    ready.push(Deferred { epoch: d.epoch, op });
                    false
                } else {
                    true
                }
            });
            ready
        };
        let freed = !ready.is_empty();
        for d in ready {
            d.run();
        }
        freed
    }
}

struct Handle {
    participant: Arc<Participant>,
    depth: Cell<usize>,
    /// Private deferred-destructor batch; flushed to the global list at
    /// [`BATCH_HIWAT`] on an outermost unpin (see the const docs).
    batch: RefCell<Vec<Deferred>>,
}

impl Drop for Handle {
    fn drop(&mut self) {
        // Thread exit: the private batch must reach the global list or
        // its destructors would leak with the thread.
        let batch = std::mem::take(&mut *self.batch.borrow_mut());
        if !batch.is_empty() {
            lock(&global().garbage).extend(batch);
        }
        self.participant.active.store(false, Ordering::SeqCst);
        self.participant.local.store(0, Ordering::SeqCst);
    }
}

thread_local! {
    static HANDLE: Handle = {
        let p = Arc::new(Participant {
            local: AtomicUsize::new(0),
            active: AtomicBool::new(true),
        });
        lock(&global().participants).push(Arc::clone(&p));
        Handle {
            participant: p,
            depth: Cell::new(0),
            batch: RefCell::new(Vec::with_capacity(BATCH_HIWAT)),
        }
    };
}

/// Append to the thread-local batch; past [`BATCH_HARD_CAP`] spill to
/// the global list (no collection — the caller may still be pinned).
fn defer_push(d: Deferred) {
    HANDLE.with(|h| {
        let mut b = h.batch.borrow_mut();
        b.push(d);
        if b.len() >= BATCH_HARD_CAP {
            lock(&global().garbage).append(&mut b);
        }
    });
}

/// A pinned epoch scope. While any `Guard` is alive on a thread, memory
/// deferred *after* the pin began will not be freed, so raw pointers
/// loaded from shared words under the guard remain dereferenceable.
pub struct Guard {
    /// Guards are thread-bound (they reference thread-local pin state).
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pin the current thread. Re-entrant: nested pins share the outermost
/// pin's epoch.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        if h.depth.get() == 0 {
            let g = global();
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                h.participant.local.store((e << 1) | PINNED, Ordering::SeqCst);
                // SeqCst store + re-check closes the race with a
                // concurrent advance between the load and the store.
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        h.depth.set(h.depth.get() + 1);
    });
    Guard { _not_send: std::marker::PhantomData }
}

impl Guard {
    /// Defer `f` until no pinned thread can still hold pointers it frees.
    ///
    /// # Safety
    /// The caller must guarantee that by the time two epoch advances have
    /// happened, running `f` is sound — in this workspace: the pointer
    /// `f` releases has been atomically unlinked from every shared word,
    /// so only threads pinned *now* may still dereference it.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        let run: Box<dyn FnOnce() + '_> = Box::new(move || {
            let _ = f();
        });
        // Erase the lifetime: deferred closures capture raw pointers whose
        // validity the caller vouches for (that is this fn's contract), and
        // everything they borrow otherwise must in fact be 'static.
        let run: Box<dyn FnOnce()> = unsafe { std::mem::transmute(run) };
        defer_push(Deferred { epoch, op: DeferredOp::Boxed(run) });
    }

    /// Allocation-free variant of [`Guard::defer_unchecked`]: defer
    /// `f(arg)` until no pinned thread can still hold pointers it frees.
    /// No boxing — the pair is stored inline in the garbage list.
    ///
    /// # Safety
    /// Same contract as [`Guard::defer_unchecked`]: once two epoch
    /// advances have happened, calling `f(arg)` must be sound. `arg` is
    /// typically a raw pointer smuggled as a word (e.g. an `Arc` count to
    /// release); `f` must tolerate running on any thread.
    pub unsafe fn defer_fn(&self, f: unsafe fn(u64), arg: u64) {
        let epoch = global().epoch.load(Ordering::SeqCst);
        defer_push(Deferred { epoch, op: DeferredOp::Fn { f, arg } });
    }

    /// Compatibility no-op (crossbeam's `Guard::flush`).
    pub fn flush(&self) {}
}

impl Drop for Guard {
    fn drop(&mut self) {
        HANDLE.with(|h| {
            let d = h.depth.get();
            debug_assert!(d > 0, "guard drop without pin");
            h.depth.set(d - 1);
            if d == 1 {
                h.participant.local.store(0, Ordering::SeqCst);
                // High-watermark flush: hand the whole private batch to
                // the global list under one lock and collect, now that
                // this thread is unpinned and cannot hold the epoch
                // back. Threads that defer nothing never touch the
                // shared state here.
                if h.batch.borrow().len() >= BATCH_HIWAT {
                    let g = global();
                    lock(&g.garbage).append(&mut h.batch.borrow_mut());
                    g.collect();
                }
            }
        });
    }
}

/// Aggressively advance the epoch and run every deferred destructor that
/// becomes safe. Call from quiescent code (tests, teardown) that asserts
/// on `Arc::strong_count`s; with all guards dropped, three rounds suffice
/// to drain everything deferred so far.
pub fn flush() {
    let g = global();
    // Drain the calling thread's private batch first so its own garbage
    // is visible to the collection rounds below. Other threads' batches
    // drain at their next watermark crossing or thread exit.
    let _ = HANDLE.try_with(|h| {
        let mut b = h.batch.borrow_mut();
        if !b.is_empty() {
            lock(&g.garbage).append(&mut b);
        }
    });
    for _ in 0..4 {
        g.collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn deferred_runs_after_unpin_and_flush() {
        static RAN: Counter = Counter::new(0);
        {
            let g = pin();
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
            // Still pinned: must not have run.
            flush();
            assert_eq!(RAN.load(Ordering::SeqCst), 0);
        }
        flush();
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn defer_fn_releases_arc_count_without_boxing() {
        unsafe fn release(arg: u64) {
            unsafe { drop(Arc::from_raw(arg as *const u64)) };
        }
        let held = Arc::new(7u64);
        let raw = Arc::into_raw(Arc::clone(&held));
        {
            let g = pin();
            unsafe { g.defer_fn(release, raw as u64) };
            flush();
            assert_eq!(Arc::strong_count(&held), 2, "deferred while pinned");
        }
        flush();
        assert_eq!(Arc::strong_count(&held), 1);
    }

    #[test]
    fn nested_pins_share_the_outer_scope() {
        let outer = pin();
        let inner = pin();
        drop(inner);
        // Outer still pinned: epoch cannot advance past us twice.
        let held = Arc::new(());
        let probe = Arc::clone(&held);
        let raw = Arc::into_raw(probe);
        unsafe { outer.defer_unchecked(move || drop(Arc::from_raw(raw))) };
        flush();
        assert_eq!(Arc::strong_count(&held), 2, "deferred drop must wait for outer unpin");
        drop(outer);
        flush();
        assert_eq!(Arc::strong_count(&held), 1);
    }

    #[test]
    fn batched_defers_drain_at_the_watermark() {
        // More defers than the watermark, each in its own pin scope: the
        // periodic flush+collect must free all but a bounded tail, and a
        // final flush() drains the rest.
        static FREED: Counter = Counter::new(0);
        unsafe fn bump(_: u64) {
            FREED.fetch_add(1, Ordering::SeqCst);
        }
        let before = FREED.load(Ordering::SeqCst);
        let n = super::BATCH_HIWAT * 4;
        for _ in 0..n {
            let g = pin();
            unsafe { g.defer_fn(bump, 0) };
        }
        assert!(
            FREED.load(Ordering::SeqCst) > before,
            "watermark crossings must have collected some garbage"
        );
        flush();
        flush();
        assert_eq!(FREED.load(Ordering::SeqCst), before + n, "flush drains the private batch");
    }

    #[test]
    fn thread_exit_flushes_the_private_batch() {
        static FREED: Counter = Counter::new(0);
        unsafe fn bump(_: u64) {
            FREED.fetch_add(1, Ordering::SeqCst);
        }
        let before = FREED.load(Ordering::SeqCst);
        std::thread::spawn(|| {
            // Stay below the watermark so nothing drains until exit.
            for _ in 0..3 {
                let g = pin();
                unsafe { g.defer_fn(bump, 0) };
            }
        })
        .join()
        .unwrap();
        // The exiting thread pushed its batch to the global list; a few
        // collection rounds from this thread free it.
        flush();
        flush();
        assert_eq!(FREED.load(Ordering::SeqCst), before + 3);
    }

    #[test]
    fn cross_thread_reader_is_protected() {
        // One thread repeatedly swaps an Arc-carrying word and defers the
        // old value; readers pin, load, and dereference. Miri-style UAF
        // would crash; under normal execution we just check the counts
        // come back down.
        let word = Arc::new(AtomicUsize::new(Arc::into_raw(Arc::new(0u64)) as usize));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let word = Arc::clone(&word);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _g = pin();
                        let raw = word.load(Ordering::SeqCst) as *const u64;
                        let v = unsafe { *raw };
                        assert!(v < 10_000);
                    }
                })
            })
            .collect();
        for i in 1..500u64 {
            let g = pin();
            let new = Arc::into_raw(Arc::new(i)) as usize;
            let old = word.swap(new, Ordering::SeqCst) as *const u64;
            unsafe { g.defer_unchecked(move || drop(Arc::from_raw(old))) };
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        let last = word.swap(0, Ordering::SeqCst) as *const u64;
        unsafe { drop(Arc::from_raw(last)) };
        flush();
    }
}
