//! Minimal epoch-based memory reclamation.
//!
//! In-repo replacement for the subset of `crossbeam-epoch` this workspace
//! uses: [`pin`] and [`Guard::defer_unchecked`]. The engines unlink raw
//! pointers (each carrying one strong `Arc` count) from shared words by
//! CAS and defer the count's release until every thread that might still
//! hold the pointer has passed through an unpinned state.
//!
//! ## Scheme
//!
//! Classic three-epoch EBR. A global epoch counter advances only when
//! every *pinned* participant has observed the current epoch. Garbage
//! deferred while the global epoch was `e` may be freed once the global
//! epoch reaches `e + 2`: the two intervening advances prove that every
//! thread pinned at defer time has unpinned since, and a pointer CAS'd
//! out of a shared word can never be re-loaded by a later pin.
//!
//! Orderings are deliberately all `SeqCst`: this is the correctness
//! backbone of a test- and simulation-grade STM, not a throughput-
//! critical allocator. The one fast path that matters (re-entrant pin)
//! touches only a thread-local counter.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Low bit of a participant's `local` word: set while pinned; the
/// remaining bits hold the epoch observed at pin time.
const PINNED: usize = 1;

struct Participant {
    /// `(epoch << 1) | PINNED` while pinned, `0` while unpinned.
    local: AtomicUsize,
    /// Cleared when the owning thread exits; reaped by `try_advance`.
    active: AtomicBool,
}

/// A deferred destructor. The closures deferred here capture raw
/// pointers, so they are not `Send`; executing them on another thread is
/// exactly what epoch reclamation makes sound (the pointer is unlinked
/// and unreachable by the time the closure runs).
///
/// The `Fn` variant is the allocation-free fast path: the STM engines
/// defer millions of `Arc`-count releases, and boxing a closure for each
/// would put a heap allocation on the transactional fast path. A plain
/// `(fn ptr, word)` pair covers every such site.
enum DeferredOp {
    Boxed(Box<dyn FnOnce()>),
    Fn { f: unsafe fn(u64), arg: u64 },
}

struct Deferred {
    epoch: usize,
    op: DeferredOp,
}

impl Deferred {
    fn run(self) {
        match self.op {
            DeferredOp::Boxed(f) => f(),
            // Safety: the `defer_fn` caller vouched for (f, arg) being
            // runnable once the epoch condition holds — same contract as
            // `defer_unchecked`.
            DeferredOp::Fn { f, arg } => unsafe { f(arg) },
        }
    }
}

unsafe impl Send for Deferred {}

/// Collect (advance the epoch + free old garbage) every this many
/// outermost unpins per thread. Collection takes two global mutexes; at
/// interval 1 that cost lands on every transactional operation. The
/// interval only delays *reclamation*, never safety — and `flush()`
/// still collects eagerly for quiescent teardown/tests.
const COLLECT_INTERVAL: u64 = 32;

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<Deferred>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Global {
    /// Advance the epoch if every active pinned participant has observed
    /// the current one, then free sufficiently old garbage. Returns
    /// whether any garbage was freed.
    fn collect(&self) -> bool {
        {
            let mut parts = lock(&self.participants);
            let cur = self.epoch.load(Ordering::SeqCst);
            let mut can_advance = true;
            parts.retain(|p| {
                let l = p.local.load(Ordering::SeqCst);
                if l & PINNED != 0 {
                    if l >> 1 != cur {
                        can_advance = false;
                    }
                    true
                } else {
                    p.active.load(Ordering::SeqCst)
                }
            });
            if can_advance {
                // Single writer per advance is not required: a lost race
                // just means someone else advanced, which is fine too.
                let _ = self.epoch.compare_exchange(
                    cur,
                    cur + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
        }
        let ge = self.epoch.load(Ordering::SeqCst);
        let ready: Vec<Deferred> = {
            let mut g = lock(&self.garbage);
            if g.is_empty() {
                return false;
            }
            let mut ready = Vec::new();
            g.retain_mut(|d| {
                if d.epoch + 2 <= ge {
                    let op = std::mem::replace(&mut d.op, DeferredOp::Boxed(Box::new(|| {})));
                    ready.push(Deferred { epoch: d.epoch, op });
                    false
                } else {
                    true
                }
            });
            ready
        };
        let freed = !ready.is_empty();
        for d in ready {
            d.run();
        }
        freed
    }
}

struct Handle {
    participant: Arc<Participant>,
    depth: Cell<usize>,
    /// Outermost-unpin counter driving the throttled collect.
    unpins: Cell<u64>,
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.participant.active.store(false, Ordering::SeqCst);
        self.participant.local.store(0, Ordering::SeqCst);
    }
}

thread_local! {
    static HANDLE: Handle = {
        let p = Arc::new(Participant {
            local: AtomicUsize::new(0),
            active: AtomicBool::new(true),
        });
        lock(&global().participants).push(Arc::clone(&p));
        Handle { participant: p, depth: Cell::new(0), unpins: Cell::new(0) }
    };
}

/// A pinned epoch scope. While any `Guard` is alive on a thread, memory
/// deferred *after* the pin began will not be freed, so raw pointers
/// loaded from shared words under the guard remain dereferenceable.
pub struct Guard {
    /// Guards are thread-bound (they reference thread-local pin state).
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pin the current thread. Re-entrant: nested pins share the outermost
/// pin's epoch.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        if h.depth.get() == 0 {
            let g = global();
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                h.participant.local.store((e << 1) | PINNED, Ordering::SeqCst);
                // SeqCst store + re-check closes the race with a
                // concurrent advance between the load and the store.
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        h.depth.set(h.depth.get() + 1);
    });
    Guard { _not_send: std::marker::PhantomData }
}

impl Guard {
    /// Defer `f` until no pinned thread can still hold pointers it frees.
    ///
    /// # Safety
    /// The caller must guarantee that by the time two epoch advances have
    /// happened, running `f` is sound — in this workspace: the pointer
    /// `f` releases has been atomically unlinked from every shared word,
    /// so only threads pinned *now* may still dereference it.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        let run: Box<dyn FnOnce() + '_> = Box::new(move || {
            let _ = f();
        });
        // Erase the lifetime: deferred closures capture raw pointers whose
        // validity the caller vouches for (that is this fn's contract), and
        // everything they borrow otherwise must in fact be 'static.
        let run: Box<dyn FnOnce()> = unsafe { std::mem::transmute(run) };
        lock(&g.garbage).push(Deferred { epoch, op: DeferredOp::Boxed(run) });
    }

    /// Allocation-free variant of [`Guard::defer_unchecked`]: defer
    /// `f(arg)` until no pinned thread can still hold pointers it frees.
    /// No boxing — the pair is stored inline in the garbage list.
    ///
    /// # Safety
    /// Same contract as [`Guard::defer_unchecked`]: once two epoch
    /// advances have happened, calling `f(arg)` must be sound. `arg` is
    /// typically a raw pointer smuggled as a word (e.g. an `Arc` count to
    /// release); `f` must tolerate running on any thread.
    pub unsafe fn defer_fn(&self, f: unsafe fn(u64), arg: u64) {
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        lock(&g.garbage).push(Deferred { epoch, op: DeferredOp::Fn { f, arg } });
    }

    /// Compatibility no-op (crossbeam's `Guard::flush`).
    pub fn flush(&self) {}
}

impl Drop for Guard {
    fn drop(&mut self) {
        HANDLE.with(|h| {
            let d = h.depth.get();
            debug_assert!(d > 0, "guard drop without pin");
            h.depth.set(d - 1);
            if d == 1 {
                h.participant.local.store(0, Ordering::SeqCst);
                let n = h.unpins.get().wrapping_add(1);
                h.unpins.set(n);
                if n % COLLECT_INTERVAL == 0 {
                    global().collect();
                }
            }
        });
    }
}

/// Aggressively advance the epoch and run every deferred destructor that
/// becomes safe. Call from quiescent code (tests, teardown) that asserts
/// on `Arc::strong_count`s; with all guards dropped, three rounds suffice
/// to drain everything deferred so far.
pub fn flush() {
    let g = global();
    for _ in 0..4 {
        g.collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn deferred_runs_after_unpin_and_flush() {
        static RAN: Counter = Counter::new(0);
        {
            let g = pin();
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
            // Still pinned: must not have run.
            flush();
            assert_eq!(RAN.load(Ordering::SeqCst), 0);
        }
        flush();
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn defer_fn_releases_arc_count_without_boxing() {
        unsafe fn release(arg: u64) {
            unsafe { drop(Arc::from_raw(arg as *const u64)) };
        }
        let held = Arc::new(7u64);
        let raw = Arc::into_raw(Arc::clone(&held));
        {
            let g = pin();
            unsafe { g.defer_fn(release, raw as u64) };
            flush();
            assert_eq!(Arc::strong_count(&held), 2, "deferred while pinned");
        }
        flush();
        assert_eq!(Arc::strong_count(&held), 1);
    }

    #[test]
    fn nested_pins_share_the_outer_scope() {
        let outer = pin();
        let inner = pin();
        drop(inner);
        // Outer still pinned: epoch cannot advance past us twice.
        let held = Arc::new(());
        let probe = Arc::clone(&held);
        let raw = Arc::into_raw(probe);
        unsafe { outer.defer_unchecked(move || drop(Arc::from_raw(raw))) };
        flush();
        assert_eq!(Arc::strong_count(&held), 2, "deferred drop must wait for outer unpin");
        drop(outer);
        flush();
        assert_eq!(Arc::strong_count(&held), 1);
    }

    #[test]
    fn cross_thread_reader_is_protected() {
        // One thread repeatedly swaps an Arc-carrying word and defers the
        // old value; readers pin, load, and dereference. Miri-style UAF
        // would crash; under normal execution we just check the counts
        // come back down.
        let word = Arc::new(AtomicUsize::new(Arc::into_raw(Arc::new(0u64)) as usize));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let word = Arc::clone(&word);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _g = pin();
                        let raw = word.load(Ordering::SeqCst) as *const u64;
                        let v = unsafe { *raw };
                        assert!(v < 10_000);
                    }
                })
            })
            .collect();
        for i in 1..500u64 {
            let g = pin();
            let new = Arc::into_raw(Arc::new(i)) as usize;
            let old = word.swap(new, Ordering::SeqCst) as *const u64;
            unsafe { g.defer_unchecked(move || drop(Arc::from_raw(old))) };
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        let last = word.swap(0, Ordering::SeqCst) as *const u64;
        unsafe { drop(Arc::from_raw(last)) };
        flush();
    }
}
