//! The best-effort HTM backend trait the hybrid composes over.
//!
//! NZTM's hybrid (§2.4) is written against an *interface* to a
//! best-effort HTM — begin, tracked accesses, buffered stores, commit,
//! and a CPS-style abort-reason register — not against any particular
//! implementation. Two implementations ship:
//!
//! * [`crate::BestEffortHtm`] — the ATMTP/Rock model on the
//!   deterministic simulated machine (§4.1). Conflicts with software
//!   traffic arrive through the machine's coherence snoop; capacity is
//!   a modeled store buffer and L1; spurious aborts stand in for TLB
//!   misses and interrupts. Sim-schedulable: attempts interleave under
//!   the cooperative scheduler, so `nztm-check` can explore and replay
//!   them.
//! * `NativeHtm` (`htm-native` feature) — real x86_64 RTM through
//!   `core::arch` intrinsics. Tracking is implicit (every line a
//!   hardware transaction touches joins its read/write set), stores are
//!   buffered by the hardware, and the abort status word maps onto the
//!   same [`CpsReason`] taxonomy. Not sim-schedulable: a real hardware
//!   transaction commits atomically with respect to the host's cores,
//!   invisible to the simulated scheduler.
//!
//! The hybrid ([`crate::NztmHybrid`]) is generic over this trait, so
//! the retry policy, the §2.4 software-conflict checks, statistics, and
//! flight-recorder events are shared verbatim between the simulated and
//! the native hardware paths.

use crate::cps::CpsReason;
use std::sync::atomic::AtomicU64;

/// Unit sentinel: "this hardware attempt is aborting". Produced by the
/// tracked-access operations when the transaction is doomed and by
/// [`HtmTxnOps::explicit_abort`]; consumed by [`HtmBackend::attempt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwAbort;

/// Why a hardware attempt failed, plus the backend's raw status word.
///
/// `raw_status` is the native RTM abort status (`_xbegin`'s return
/// value) on the native backend and `0` on the simulated model, whose
/// CPS register *is* the [`CpsReason`] — carried so flight-recorder
/// events can preserve the unmapped hardware word next to the taxonomy
/// class.
#[derive(Debug, Clone, Copy)]
pub struct HtmAbortInfo {
    /// The abort reason, mapped onto the CPS taxonomy (§4.3 retry
    /// policy input).
    pub reason: CpsReason,
    /// Backend-specific raw status (native RTM status bits; 0 on the
    /// simulated model).
    pub raw_status: u32,
}

/// Operations available to code running inside one hardware attempt.
///
/// The simulated model implements these against its explicit read/write
/// line sets and store buffer; the native backend's accesses are
/// tracked by the hardware itself, so its tracking methods are no-ops
/// and its reads/stores are plain (transactionally buffered) memory
/// operations.
pub trait HtmTxnOps {
    /// Add `[addr, addr+bytes)` to the transactional read set. Fails if
    /// the attempt is already doomed or the read set overflows.
    fn track_read(&mut self, addr: usize, bytes: usize) -> Result<(), HwAbort>;

    /// Add `[addr, addr+bytes)` to the transactional write set.
    fn track_write(&mut self, addr: usize, bytes: usize) -> Result<(), HwAbort>;

    /// Transactional read of one word (the address is the synthetic
    /// cost-model address on the simulated machine).
    fn read_word(&mut self, word: &AtomicU64, addr: usize) -> Result<u64, HwAbort>;

    /// Transactional store of one word, buffered until commit.
    fn buffered_store(
        &mut self,
        word: &AtomicU64,
        addr: usize,
        value: u64,
    ) -> Result<(), HwAbort>;

    /// Abort this attempt deliberately (§2.4: the hardware transaction
    /// that observes a conflicting software transaction aborts
    /// *itself*). On the native backend this executes `_xabort` and
    /// control re-enters `_xbegin`; the returned sentinel is for the
    /// simulated model and the not-in-transaction edge case.
    fn explicit_abort(&mut self) -> HwAbort;
}

/// A best-effort hardware TM: bounded, may fail for environmental
/// reasons, reports *why* through the CPS taxonomy.
pub trait HtmBackend: Send + Sync + 'static {
    /// Handle passed to the attempt closure.
    type Txn: HtmTxnOps;

    /// Run `f` as one hardware transaction attempt. `Ok(v)` means the
    /// attempt committed (all buffered stores became visible
    /// atomically); `Err` reports the abort reason for the retry
    /// policy.
    fn attempt<R>(
        &self,
        f: impl FnOnce(&mut Self::Txn) -> Result<R, HwAbort>,
    ) -> Result<R, HtmAbortInfo>;

    /// Whether hardware attempts can succeed at all. The hybrid skips
    /// the hardware loop entirely (straight to the software path) when
    /// this is `false` — the native backend on a host without RTM, or
    /// with the native path forced off by policy.
    fn hw_available(&self) -> bool;

    /// Whether attempts interleave under the deterministic simulated
    /// scheduler. `nztm-check` requires this: exploration replays
    /// recorded scheduling decisions, and a backend whose commits are
    /// invisible to the scheduler (native RTM) would make histories
    /// unreproducible. The check harness asserts it.
    fn sim_schedulable(&self) -> bool;

    /// Short backend name for reports and probes.
    fn backend_name(&self) -> &'static str;
}
