//! Best-effort HTM: the ATMTP model of Sun Rock (§4.1).
//!
//! Versioning is a **write buffer**: transactional stores are buffered
//! (one word per entry, at most `store_buffer_entries` of them) and
//! drained to memory atomically at commit. Read sets are bounded by the
//! L1: when a line in the transaction's read set is evicted from the
//! executing core's L1 (size/associativity pressure), the transaction
//! takes a *capacity* abort — exactly ATMTP's rule. Conflict resolution
//! is **requester wins**: whichever core touches a line second kills the
//! other transaction's claim, the policy the paper blames for NZTM's gap
//! to LogTM-SE under contention (§4.4.1). Environmental aborts (TLB
//! miss, interrupt, context switch) are modelled as deterministic
//! pseudo-random "spurious" aborts with a configurable rate.
//!
//! Conflicts with *software* memory traffic arrive through the machine's
//! coherence snoop: any write by another core to a tracked line — or any
//! access to a buffered-store line — dooms the transaction.

use crate::cps::CpsReason;
use nztm_core::util::PerCore;
use nztm_sim::{AccessKind, DetRng, Machine, Platform, SimPlatform};
use nztm_sim::sync::Mutex;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Set while this thread executes an HTM-internal memory charge, so
    /// the snoop skips self-traffic (the HTM resolves its own conflicts
    /// in `track`).
    static IN_HTM_OP: Cell<bool> = const { Cell::new(false) };
}

/// Sentinel error unwinding a doomed hardware transaction out of user
/// code (the reason lives in the CPS flag). Shared with every other
/// [`HtmBackend`](crate::backend::HtmBackend) implementation.
pub use crate::backend::HwAbort;

/// ATMTP configuration (§4.1 defaults).
#[derive(Clone, Debug)]
pub struct AtmtpConfig {
    /// Write-buffer capacity; "the size of the ATMTP write buffer \[is\]
    /// 256 entries; each entry represents a single store and is
    /// typically one word".
    pub store_buffer_entries: usize,
    /// Per-access probability (numerator/denominator) of an
    /// environmental abort (TLB miss / interrupt / context switch).
    pub spurious_num: u64,
    pub spurious_den: u64,
    /// Seed for the deterministic spurious-abort draws.
    pub seed: u64,
}

impl Default for AtmtpConfig {
    fn default() -> Self {
        AtmtpConfig { store_buffer_entries: 256, spurious_num: 1, spurious_den: 20_000, seed: 0xA7A7 }
    }
}

/// Which transactions currently claim a line.
#[derive(Default)]
struct LineUse {
    readers: u64, // core bitmask
    writers: u64, // core bitmask (buffered stores)
}

struct CoreTxn {
    active: bool,
    read_lines: HashSet<u64>,
    write_lines: HashSet<u64>,
    /// Buffered stores in program order: (host word ptr, synth addr, value).
    wbuf: Vec<(usize, usize, u64)>,
    /// host word ptr -> index in `wbuf` (own-read forwarding).
    wmap: HashMap<usize, usize>,
    rng: DetRng,
}

impl CoreTxn {
    fn new(tid: usize, seed: u64) -> Self {
        CoreTxn {
            active: false,
            read_lines: HashSet::new(),
            write_lines: HashSet::new(),
            wbuf: Vec::new(),
            wmap: HashMap::new(),
            rng: DetRng::new(seed).split(tid as u64),
        }
    }
}

/// The best-effort HTM device. One per machine; register its snoop with
/// [`BestEffortHtm::install`].
pub struct BestEffortHtm {
    platform: Arc<SimPlatform>,
    cfg: AtmtpConfig,
    /// Line claim table (shared; guards `readers`/`writers` masks only).
    table: Mutex<HashMap<u64, LineUse>>,
    /// Per-core doom flags (CPS encoding; 0 = healthy). Written by any
    /// core (requester wins, snoop), read by the owner.
    doomed: Vec<AtomicU64>,
    /// Per-core transaction state (owner thread only).
    cores: PerCore<CoreTxn>,
}

impl BestEffortHtm {
    pub fn new(platform: Arc<SimPlatform>, cfg: AtmtpConfig) -> Arc<Self> {
        let n = platform.n_cores();
        let seed = cfg.seed;
        Arc::new(BestEffortHtm {
            platform,
            cfg,
            table: Mutex::new(HashMap::new()),
            doomed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            cores: PerCore::new(n, |tid| CoreTxn::new(tid, seed)),
        })
    }

    /// Register this HTM's conflict snoop with the machine. Call once
    /// after construction (and pair with [`BestEffortHtm::uninstall`]
    /// when tearing down, since the machine holds the closure).
    pub fn install(self: &Arc<Self>) {
        let htm = Arc::downgrade(self);
        self.machine().set_snoop(Some(Arc::new(move |core, line, is_write| {
            if IN_HTM_OP.with(|c| c.get()) {
                return;
            }
            if let Some(htm) = htm.upgrade() {
                htm.snoop(core, line, is_write);
            }
        })));
    }

    pub fn uninstall(&self) {
        self.machine().set_snoop(None);
    }

    pub fn machine(&self) -> &Arc<Machine> {
        self.platform.machine()
    }

    pub fn platform(&self) -> &Arc<SimPlatform> {
        &self.platform
    }

    /// Software traffic observed on the coherence fabric: doom hardware
    /// transactions per the requester-wins rule.
    fn snoop(&self, core: usize, line: u64, is_write: bool) {
        let table = self.table.lock();
        let Some(u) = table.get(&line) else { return };
        let me = 1u64 << core;
        // A software *write* kills every transactional claim on the
        // line; a software *read* kills buffered writers (their commit
        // would retroactively invalidate the read).
        let victims = if is_write { u.readers | u.writers } else { u.writers };
        let victims = victims & !me;
        drop(table);
        for v in BitIter(victims) {
            self.doom(v, CpsReason::Conflict);
        }
    }

    fn doom(&self, core: usize, reason: CpsReason) {
        let _ = self.doomed[core].compare_exchange(
            0,
            reason.encode(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    fn my_doom(&self, core: usize) -> Option<CpsReason> {
        CpsReason::decode(self.doomed[core].load(Ordering::SeqCst))
    }

    /// Run `f` as one hardware transaction attempt.
    ///
    /// `Ok(v)` ⇒ committed (buffered stores drained atomically).
    /// `Err(reason)` ⇒ aborted; reason from the CPS model.
    pub fn attempt<R>(
        &self,
        f: impl FnOnce(&mut HwTxn) -> Result<R, HwAbort>,
    ) -> Result<R, CpsReason> {
        let core = self.platform.core_id();
        // Safety: `core` is this thread's own slot.
        let st = unsafe { self.cores.get(core) };
        assert!(!st.active, "hardware transactions do not nest");
        st.active = true;
        st.read_lines.clear();
        st.write_lines.clear();
        st.wbuf.clear();
        st.wmap.clear();
        self.doomed[core].store(0, Ordering::SeqCst);
        self.platform.work(self.machine().config().costs.htm_begin);

        let mut tx = HwTxn { htm: self as *const BestEffortHtm, core, st: st as *mut CoreTxn };
        let result = f(&mut tx);

        match result {
            Ok(v) => match self.commit(core) {
                Ok(()) => Ok(v),
                Err(reason) => Err(reason),
            },
            Err(HwAbort) => {
                let reason = self.my_doom(core).unwrap_or(CpsReason::Explicit);
                self.rollback(core);
                Err(reason)
            }
        }
    }

    fn commit(&self, core: usize) -> Result<(), CpsReason> {
        let st = unsafe { self.cores.get(core) };
        let costs = self.machine().config().costs.clone();
        // Decide-then-drain without yielding: the check and the drain
        // form one atomic step with respect to other simulated cores.
        if let Some(reason) = self.my_doom(core) {
            self.rollback(core);
            return Err(reason);
        }
        self.platform.work(costs.htm_commit);
        IN_HTM_OP.with(|c| c.set(true));
        for &(word_ptr, addr, value) in &st.wbuf {
            // Safety: tracked words belong to objects the caller keeps
            // alive for the duration of the attempt (pool/Arc-owned).
            unsafe { (*(word_ptr as *const AtomicU64)).store(value, Ordering::SeqCst) };
            self.platform.mem_atomic(addr, 8, AccessKind::Write);
            self.platform.work(costs.htm_commit_per_store);
        }
        IN_HTM_OP.with(|c| c.set(false));
        self.release(core);
        st.active = false;
        Ok(())
    }

    fn rollback(&self, core: usize) {
        let st = unsafe { self.cores.get(core) };
        self.platform.work(self.machine().config().costs.htm_abort);
        self.release(core);
        st.active = false;
    }

    fn release(&self, core: usize) {
        let st = unsafe { self.cores.get(core) };
        let mut table = self.table.lock();
        let me = 1u64 << core;
        for line in st.read_lines.iter().chain(&st.write_lines) {
            if let Some(u) = table.get_mut(line) {
                u.readers &= !me;
                u.writers &= !me;
                if u.readers == 0 && u.writers == 0 {
                    table.remove(line);
                }
            }
        }
    }
}

/// Handle used by code running inside a hardware transaction.
///
/// Holds raw pointers so it carries no lifetime parameter (the hybrid
/// wraps it in an enum). Only constructed by [`BestEffortHtm::attempt`],
/// only valid for the attempt closure's duration, and `!Send` — it never
/// leaves the owning core's thread.
pub struct HwTxn {
    htm: *const BestEffortHtm,
    core: usize,
    st: *mut CoreTxn,
}

impl HwTxn {
    fn htm(&self) -> &BestEffortHtm {
        // Safety: `attempt` keeps the device alive across the closure.
        unsafe { &*self.htm }
    }

    #[allow(clippy::mut_from_ref)]
    fn st(&self) -> &mut CoreTxn {
        // Safety: this core's slot, only touched from this thread.
        unsafe { &mut *self.st }
    }

    fn check(&self) -> Result<(), HwAbort> {
        if self.htm().my_doom(self.core).is_some() {
            Err(HwAbort)
        } else {
            Ok(())
        }
    }

    fn spurious(&mut self) -> Result<(), HwAbort> {
        let htm = self.htm();
        if htm.cfg.spurious_num > 0
            && self.st().rng.chance(htm.cfg.spurious_num, htm.cfg.spurious_den)
        {
            htm.doom(self.core, CpsReason::Other);
            return Err(HwAbort);
        }
        Ok(())
    }

    /// Charge + track a transactional read of `bytes` at `addr`.
    pub fn track_read(&mut self, addr: usize, bytes: usize) -> Result<(), HwAbort> {
        self.access(addr, bytes, false)
    }

    /// Charge + track a transactional write *claim* of `bytes` at `addr`
    /// (data still goes through [`HwTxn::buffered_store`]).
    pub fn track_write(&mut self, addr: usize, bytes: usize) -> Result<(), HwAbort> {
        self.access(addr, bytes, true)
    }

    fn access(&mut self, addr: usize, bytes: usize, is_write: bool) -> Result<(), HwAbort> {
        self.check()?;
        self.spurious()?;
        let me = 1u64 << self.core;
        let machine = Arc::clone(self.htm().machine());
        let first = addr >> 6;
        let last = (addr + bytes.max(1) - 1) >> 6;
        for l in first..=last {
            let host_line_addr = l << 6;
            // Charge through the cache (snoop skipped: self-traffic).
            IN_HTM_OP.with(|c| c.set(true));
            let res = machine.mem_access(
                host_line_addr,
                if is_write { AccessKind::Write } else { AccessKind::Read },
            );
            IN_HTM_OP.with(|c| c.set(false));
            let line = res.line.0;

            // ATMTP read-set capacity: a tracked line evicted from our
            // own L1 ends the transaction.
            if let Some(ev) = res.evicted {
                if self.st().read_lines.contains(&ev.0) || self.st().write_lines.contains(&ev.0)
                {
                    self.htm().doom(self.core, CpsReason::Capacity);
                    return Err(HwAbort);
                }
            }

            // Requester wins: claim the line, dooming whoever holds it.
            let mut table = self.htm().table.lock();
            let u = table.entry(line).or_default();
            let others = if is_write { u.readers | u.writers } else { u.writers } & !me;
            if is_write {
                u.writers |= me;
                self.st().write_lines.insert(line);
            } else {
                u.readers |= me;
                self.st().read_lines.insert(line);
            }
            drop(table);
            for v in BitIter(others) {
                self.htm().doom(v, CpsReason::Conflict);
            }
            // We might ourselves have been doomed while charging.
            self.check()?;
        }
        Ok(())
    }

    /// Read one word transactionally, forwarding from the write buffer
    /// when we already stored to it.
    pub fn read_word(&mut self, word: &AtomicU64, addr: usize) -> Result<u64, HwAbort> {
        self.track_read(addr, 8)?;
        if let Some(&i) = self.st().wmap.get(&(word as *const AtomicU64 as usize)) {
            return Ok(self.st().wbuf[i].2);
        }
        Ok(word.load(Ordering::SeqCst))
    }

    /// Buffer one word store (drained at commit). Fails with a capacity
    /// abort when the store buffer is full.
    pub fn buffered_store(
        &mut self,
        word: &AtomicU64,
        addr: usize,
        value: u64,
    ) -> Result<(), HwAbort> {
        self.track_write(addr, 8)?;
        let key = word as *const AtomicU64 as usize;
        let cap = self.htm().cfg.store_buffer_entries;
        let st = self.st();
        if let Some(&i) = st.wmap.get(&key) {
            st.wbuf[i].2 = value;
            return Ok(());
        }
        if st.wbuf.len() >= cap {
            self.htm().doom(self.core, CpsReason::Capacity);
            return Err(HwAbort);
        }
        let st = self.st();
        st.wbuf.push((key, addr, value));
        st.wmap.insert(key, st.wbuf.len() - 1);
        Ok(())
    }

    /// Abort this transaction explicitly (§2.4: on detecting a conflict
    /// with a software transaction).
    pub fn explicit_abort(&mut self) -> HwAbort {
        self.htm().doom(self.core, CpsReason::Explicit);
        HwAbort
    }

    /// Number of buffered stores so far.
    pub fn stores(&self) -> usize {
        self.st().wbuf.len()
    }
}

impl crate::backend::HtmTxnOps for HwTxn {
    fn track_read(&mut self, addr: usize, bytes: usize) -> Result<(), HwAbort> {
        HwTxn::track_read(self, addr, bytes)
    }

    fn track_write(&mut self, addr: usize, bytes: usize) -> Result<(), HwAbort> {
        HwTxn::track_write(self, addr, bytes)
    }

    fn read_word(&mut self, word: &AtomicU64, addr: usize) -> Result<u64, HwAbort> {
        HwTxn::read_word(self, word, addr)
    }

    fn buffered_store(&mut self, word: &AtomicU64, addr: usize, value: u64) -> Result<(), HwAbort> {
        HwTxn::buffered_store(self, word, addr, value)
    }

    fn explicit_abort(&mut self) -> HwAbort {
        HwTxn::explicit_abort(self)
    }
}

impl crate::backend::HtmBackend for BestEffortHtm {
    type Txn = HwTxn;

    fn attempt<R>(
        &self,
        f: impl FnOnce(&mut HwTxn) -> Result<R, HwAbort>,
    ) -> Result<R, crate::backend::HtmAbortInfo> {
        // The simulated CPS register *is* the taxonomy: there is no raw
        // hardware status word to preserve.
        BestEffortHtm::attempt(self, f)
            .map_err(|reason| crate::backend::HtmAbortInfo { reason, raw_status: 0 })
    }

    fn hw_available(&self) -> bool {
        true
    }

    fn sim_schedulable(&self) -> bool {
        true
    }

    fn backend_name(&self) -> &'static str {
        "atmtp-sim"
    }
}

/// Iterate set bits.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::{CacheConfig, CostModel, MachineConfig};

    fn setup(cores: usize) -> (Arc<Machine>, Arc<SimPlatform>, Arc<BestEffortHtm>) {
        let m = Machine::new(MachineConfig {
            n_cores: cores,
            hw_cores: 0,
            costs: CostModel::default(),
            l1: CacheConfig::tiny(64, 2),
            l2: CacheConfig::tiny(4096, 8),
            max_cycles: 1_000_000_000,
        });
        let p = SimPlatform::new(Arc::clone(&m));
        let htm = BestEffortHtm::new(
            Arc::clone(&p),
            AtmtpConfig { spurious_num: 0, ..AtmtpConfig::default() },
        );
        htm.install();
        (m, p, htm)
    }

    fn word() -> (Arc<AtomicU64>, usize) {
        (Arc::new(AtomicU64::new(0)), nztm_sim::synth_alloc(64))
    }

    #[test]
    fn commit_publishes_buffered_stores() {
        let (m, _p, htm) = setup(1);
        let (w, a) = word();
        let (w2, h) = (Arc::clone(&w), Arc::clone(&htm));
        m.run(vec![Box::new(move || {
            let r = h.attempt(|tx| {
                tx.buffered_store(&w2, a, 42)?;
                // Invisible before commit.
                assert_eq!(w2.load(Ordering::SeqCst), 0);
                // But forwarded to our own reads.
                assert_eq!(tx.read_word(&w2, a)?, 42);
                Ok(())
            });
            assert!(r.is_ok());
            assert_eq!(w2.load(Ordering::SeqCst), 42);
        })]);
        htm.uninstall();
    }

    #[test]
    fn aborted_txn_publishes_nothing() {
        let (m, _p, htm) = setup(1);
        let (w, a) = word();
        let (w2, h) = (Arc::clone(&w), Arc::clone(&htm));
        m.run(vec![Box::new(move || {
            let r: Result<(), CpsReason> = h.attempt(|tx| {
                tx.buffered_store(&w2, a, 42)?;
                Err(tx.explicit_abort())
            });
            assert_eq!(r, Err(CpsReason::Explicit));
            assert_eq!(w2.load(Ordering::SeqCst), 0);
        })]);
        htm.uninstall();
    }

    #[test]
    fn store_buffer_overflow_is_capacity() {
        let (m, p, _) = setup(1);
        let htm = BestEffortHtm::new(
            Arc::clone(&p),
            AtmtpConfig { store_buffer_entries: 4, spurious_num: 0, ..AtmtpConfig::default() },
        );
        htm.install();
        let words: Vec<(Arc<AtomicU64>, usize)> = (0..8).map(|_| word()).collect();
        let h = Arc::clone(&htm);
        m.run(vec![Box::new(move || {
            let r: Result<(), CpsReason> = h.attempt(|tx| {
                for (w, a) in &words {
                    tx.buffered_store(w, *a, 1)?;
                }
                Ok(())
            });
            assert_eq!(r, Err(CpsReason::Capacity));
        })]);
        htm.uninstall();
    }

    #[test]
    fn software_write_dooms_reader() {
        let (m, p, htm) = setup(2);
        let (w, a) = word();
        let flag = Arc::new(AtomicU64::new(0));
        let (w1, h1, f1, p1) = (Arc::clone(&w), Arc::clone(&htm), Arc::clone(&flag), Arc::clone(&p));
        let (f2, p2) = (Arc::clone(&flag), Arc::clone(&p));
        let r_holder = Arc::new(Mutex::new(None));
        let rh = Arc::clone(&r_holder);
        m.run(vec![
            Box::new(move || {
                let r: Result<(), CpsReason> = h1.attempt(|tx| {
                    tx.read_word(&w1, a)?;
                    // Signal the peer, then wait for its software write.
                    f1.store(1, Ordering::SeqCst);
                    while f1.load(Ordering::SeqCst) == 1 {
                        p1.work(5);
                        p1.yield_now();
                    }
                    tx.read_word(&w1, a)?;
                    Ok(())
                });
                *rh.lock() = Some(r);
            }),
            Box::new(move || {
                while f2.load(Ordering::SeqCst) == 0 {
                    p2.work(5);
                    p2.yield_now();
                }
                // Ordinary software write to the tracked line.
                p2.mem(a, 8, AccessKind::Write);
                f2.store(2, Ordering::SeqCst);
            }),
        ]);
        assert_eq!(*r_holder.lock(), Some(Err(CpsReason::Conflict)));
        htm.uninstall();
    }

    #[test]
    fn requester_wins_between_hw_txns() {
        let (m, p, htm) = setup(2);
        let (w, a) = word();
        let stage = Arc::new(AtomicU64::new(0));
        let results = Arc::new(Mutex::new(vec![None, None]));
        let mk = |tid: usize| {
            let htm = Arc::clone(&htm);
            let w = Arc::clone(&w);
            let stage = Arc::clone(&stage);
            let p = Arc::clone(&p);
            let results = Arc::clone(&results);
            Box::new(move || {
                let r: Result<(), CpsReason> = htm.attempt(|tx| {
                    if tid == 0 {
                        // Claim the line first, then wait for the peer.
                        tx.buffered_store(&w, a, 7)?;
                        stage.store(1, Ordering::SeqCst);
                        while stage.load(Ordering::SeqCst) == 1 {
                            p.work(5);
                            p.yield_now();
                            // Keep validating so we notice the doom.
                            tx.read_word(&w, a)?;
                        }
                    } else {
                        while stage.load(Ordering::SeqCst) == 0 {
                            p.work(5);
                            p.yield_now();
                        }
                        // Requester: touch the claimed line; we win.
                        tx.read_word(&w, a)?;
                        stage.store(2, Ordering::SeqCst);
                    }
                    Ok(())
                });
                results.lock()[tid] = Some(r);
            }) as Box<dyn FnOnce() + Send>
        };
        m.run(vec![mk(0), mk(1)]);
        let res = results.lock();
        assert_eq!(res[1], Some(Ok(())), "requester wins");
        assert_eq!(res[0], Some(Err(CpsReason::Conflict)), "holder is doomed");
        htm.uninstall();
    }

    #[test]
    fn read_set_eviction_is_capacity_abort() {
        // L1 = 64 lines: a read set of 100 distinct lines cannot fit, so
        // some tracked line must be evicted — ATMTP's capacity rule
        // ("read sets limited by the size and associativity of the L1").
        let (m, _p, htm) = setup(1);
        let h = Arc::clone(&htm);
        m.run(vec![Box::new(move || {
            let lines: Vec<usize> = (0..100).map(|_| nztm_sim::synth_alloc(64)).collect();
            let r: Result<(), CpsReason> = h.attempt(|tx| {
                for a in &lines {
                    tx.track_read(*a, 8)?;
                }
                Ok(())
            });
            assert_eq!(r, Err(CpsReason::Capacity));
        })]);
        htm.uninstall();
    }

    #[test]
    fn spurious_aborts_fire_at_configured_rate() {
        let (m, p, _) = setup(1);
        let htm = BestEffortHtm::new(
            Arc::clone(&p),
            AtmtpConfig { spurious_num: 1, spurious_den: 10, ..AtmtpConfig::default() },
        );
        htm.install();
        let h = Arc::clone(&htm);
        let aborts = Arc::new(AtomicU64::new(0));
        let ab = Arc::clone(&aborts);
        let (w, a) = word();
        m.run(vec![Box::new(move || {
            for _ in 0..200 {
                let r: Result<(), CpsReason> = h.attempt(|tx| {
                    tx.read_word(&w, a)?;
                    Ok(())
                });
                if r == Err(CpsReason::Other) {
                    ab.fetch_add(1, Ordering::Relaxed);
                }
            }
        })]);
        let n = aborts.load(Ordering::Relaxed);
        assert!(n > 2 && n < 80, "spurious abort count plausible: {n}");
        htm.uninstall();
    }
}
