//! RTM capability probe (`htm-native` builds).
//!
//! Prints the CPUID decision, the backend selection for each policy,
//! and — when the host has RTM — commits one real hardware transaction
//! as a smoke check. Exit status 0 either way: the probe *reports*; CI
//! asserts on its output so the decision is logged, never silently
//! skipped. `--require-native` / `--require-fallback` flip that into a
//! hard assertion for matrix rows that know what the runner should be.

use nztm_core::NativeHtmPolicy;
use nztm_htm::backend::{HtmBackend, HtmTxnOps};
use nztm_htm::native::{rtm_supported, HtmDecision, NativeHtm};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_native = args.iter().any(|a| a == "--require-native");
    let require_fallback = args.iter().any(|a| a == "--require-fallback");

    let supported = rtm_supported();
    println!("rtm_supported: {supported}");
    println!("target_arch: {}", std::env::consts::ARCH);

    let auto = NativeHtm::new(NativeHtmPolicy::Auto);
    println!("policy Auto     -> {}", auto.decision().describe());
    let off = NativeHtm::new(NativeHtmPolicy::ForceOff);
    println!("policy ForceOff -> {}", off.decision().describe());

    if auto.hw_available() {
        // One real transaction, end to end.
        let word = AtomicU64::new(41);
        let mut committed = false;
        for _ in 0..10_000 {
            if auto
                .attempt(|t| {
                    let v = t.read_word(&word, 0)?;
                    t.buffered_store(&word, 0, v + 1)
                })
                .is_ok()
            {
                committed = true;
                break;
            }
        }
        println!(
            "smoke txn: {} (word = {})",
            if committed { "committed" } else { "never committed in 10000 tries" },
            word.load(Ordering::SeqCst)
        );
        if !committed {
            eprintln!("warning: RTM reported but no transaction committed (heavy noisy host?)");
        }
    } else {
        println!("smoke txn: skipped (no native path)");
    }

    let is_native = auto.decision() == HtmDecision::Native;
    if require_native && !is_native {
        eprintln!("FAIL: --require-native but decision was {}", auto.decision().describe());
        std::process::exit(1);
    }
    if require_fallback && is_native {
        eprintln!("FAIL: --require-fallback but native RTM was selected");
        std::process::exit(1);
    }
    println!("decision: {}", auto.decision().describe());
}
