//! The CPS (Checkpoint Status) register model.
//!
//! Rock reports *why* a hardware transaction failed through the CPS
//! register; ATMTP models the same interface, and NZTM's retry policy
//! reads it: "NZTM retries the transaction in hardware ... only if the
//! reason for aborting was due to a transactional (coherence) conflict
//! as determined by the CPS register" (§4.3).

/// The architectural x86 RTM abort-status bits (the EAX value `_xbegin`
/// returns on an abort). Defined here — unconditionally, on every
/// target — so the status → [`CpsReason`] mapping is a pure function
/// with table-driven tests that run on any host; a feature-gated test
/// in the native backend cross-checks these constants against
/// `core::arch::x86_64`'s `_XABORT_*` exports on x86_64 builds.
pub mod rtm_status {
    /// Set when the abort was caused by `xabort` (the 8-bit immediate
    /// is in bits 31:24 — see [`code`]).
    pub const EXPLICIT: u32 = 1 << 0;
    /// The hardware believes a retry may succeed (typically set with
    /// [`CONFLICT`], clear on capacity overflows).
    pub const RETRY: u32 = 1 << 1;
    /// Another logical processor conflicted with a line in this
    /// transaction's read or write set.
    pub const CONFLICT: u32 = 1 << 2;
    /// An internal buffer (read set / store buffer) overflowed.
    pub const CAPACITY: u32 = 1 << 3;
    /// A debug breakpoint was hit inside the transaction.
    pub const DEBUG: u32 = 1 << 4;
    /// The abort happened inside a nested transaction.
    pub const NESTED: u32 = 1 << 5;

    /// Extract the `xabort` immediate (valid only when [`EXPLICIT`] is
    /// set).
    pub const fn code(status: u32) -> u8 {
        (status >> 24) as u8
    }
}

/// Why a hardware transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpsReason {
    /// Coherence conflict with another transaction or ordinary store —
    /// worth retrying in hardware.
    Conflict,
    /// Resource exhaustion: read set exceeded the L1, or the store
    /// buffer overflowed. Retrying in hardware cannot succeed.
    Capacity,
    /// Environmental failure: TLB miss, interrupt, context switch, ...
    /// (ATMTP aborts on these events, §4.1).
    Other,
    /// The transaction aborted itself (e.g. §2.4's explicit self-abort on
    /// detecting a conflicting software transaction).
    Explicit,
}

impl CpsReason {
    /// Whether NZTM's retry policy considers another hardware attempt
    /// worthwhile.
    pub fn hw_retry_worthwhile(self) -> bool {
        matches!(self, CpsReason::Conflict | CpsReason::Explicit)
    }

    /// Map a native RTM abort status word (`_xbegin`'s EAX on abort)
    /// onto the CPS taxonomy. Pure and target-independent so the
    /// mapping itself is unit-testable on non-RTM hosts.
    ///
    /// Priority order, mirroring how Rock's CPS register would have
    /// classified the same events:
    ///
    /// 1. [`rtm_status::EXPLICIT`] → [`CpsReason::Explicit`]: we asked
    ///    for the abort (§2.4's self-abort on detecting a live software
    ///    transaction). Retry-worthwhile — the software owner usually
    ///    settles.
    /// 2. [`rtm_status::CAPACITY`] → [`CpsReason::Capacity`]: a
    ///    resource overflow cannot succeed on retry, even when the
    ///    hardware also reports a coincident conflict.
    /// 3. [`rtm_status::CONFLICT`] → [`CpsReason::Conflict`]: coherence
    ///    conflict, the retry policy's bread and butter.
    /// 4. A bare [`rtm_status::RETRY`] bit → [`CpsReason::Conflict`]:
    ///    the hardware itself says a retry may succeed, which is the
    ///    CPS coherence-conflict contract.
    /// 5. Anything else (status 0, `DEBUG`, `NESTED`) →
    ///    [`CpsReason::Other`]: environmental, fall back to software.
    pub fn from_rtm_status(status: u32) -> CpsReason {
        if status & rtm_status::EXPLICIT != 0 {
            CpsReason::Explicit
        } else if status & rtm_status::CAPACITY != 0 {
            CpsReason::Capacity
        } else if status & (rtm_status::CONFLICT | rtm_status::RETRY) != 0 {
            // A CONFLICT, or a bare RETRY hint: either way the hardware
            // says trying again may succeed — the CPS coherence-conflict
            // contract.
            CpsReason::Conflict
        } else {
            CpsReason::Other
        }
    }

    /// Encoding used in the per-core doom flag (0 = not doomed).
    pub(crate) fn encode(self) -> u64 {
        match self {
            CpsReason::Conflict => 1,
            CpsReason::Capacity => 2,
            CpsReason::Other => 3,
            CpsReason::Explicit => 4,
        }
    }

    pub(crate) fn decode(v: u64) -> Option<Self> {
        match v {
            1 => Some(CpsReason::Conflict),
            2 => Some(CpsReason::Capacity),
            3 => Some(CpsReason::Other),
            4 => Some(CpsReason::Explicit),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for r in [CpsReason::Conflict, CpsReason::Capacity, CpsReason::Other, CpsReason::Explicit]
        {
            assert_eq!(CpsReason::decode(r.encode()), Some(r));
        }
        assert_eq!(CpsReason::decode(0), None);
    }

    #[test]
    fn retry_policy_follows_paper() {
        assert!(CpsReason::Conflict.hw_retry_worthwhile());
        assert!(!CpsReason::Capacity.hw_retry_worthwhile());
        assert!(!CpsReason::Other.hw_retry_worthwhile());
    }

    /// Exhaustive table over every combination of the six architectural
    /// status bits (64 rows): the mapping must follow the documented
    /// priority chain for all of them, not just the common singles.
    #[test]
    fn rtm_status_mapping_is_total_over_all_bit_combinations() {
        use rtm_status::*;
        for bits in 0u32..64 {
            let status = bits; // the six low bits are exactly the flags
            let got = CpsReason::from_rtm_status(status);
            let want = if status & EXPLICIT != 0 {
                CpsReason::Explicit
            } else if status & CAPACITY != 0 {
                CpsReason::Capacity
            } else if status & (CONFLICT | RETRY) != 0 {
                CpsReason::Conflict
            } else {
                CpsReason::Other
            };
            assert_eq!(got, want, "status {status:#08b}");
        }
    }

    #[test]
    fn rtm_status_mapping_named_rows() {
        use rtm_status::*;
        // The rows a real RTM implementation actually produces.
        let table: &[(u32, CpsReason)] = &[
            // Spurious abort (interrupt, page fault): all bits clear.
            (0, CpsReason::Other),
            // xabort from the §2.4 software-conflict check, code 0xCA.
            (EXPLICIT | RETRY | (0xCA << 24), CpsReason::Explicit),
            // Plain coherence conflict, retry advised.
            (CONFLICT | RETRY, CpsReason::Conflict),
            // Conflict where the hardware advises against retrying —
            // still a coherence conflict to the CPS taxonomy (the §4.3
            // policy bounds retries by count, not by the hint).
            (CONFLICT, CpsReason::Conflict),
            // Read-set/store-buffer overflow; retry can never succeed.
            (CAPACITY, CpsReason::Capacity),
            // Overflow with a coincident conflict stays capacity.
            (CAPACITY | CONFLICT | RETRY, CpsReason::Capacity),
            // Bare retry hint (no cause bit): transient, treat as
            // conflict so the bounded retry policy applies.
            (RETRY, CpsReason::Conflict),
            (DEBUG, CpsReason::Other),
            (NESTED, CpsReason::Other),
            (DEBUG | NESTED, CpsReason::Other),
        ];
        for &(status, want) in table {
            assert_eq!(CpsReason::from_rtm_status(status), want, "status {status:#x}");
        }
    }

    #[test]
    fn rtm_explicit_code_extraction() {
        use rtm_status::*;
        let status = EXPLICIT | RETRY | (0xCAu32 << 24);
        assert_eq!(code(status), 0xCA);
        assert_eq!(code(CONFLICT), 0);
        // The immediate does not disturb classification.
        assert_eq!(CpsReason::from_rtm_status(status), CpsReason::Explicit);
    }
}
