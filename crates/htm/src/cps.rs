//! The CPS (Checkpoint Status) register model.
//!
//! Rock reports *why* a hardware transaction failed through the CPS
//! register; ATMTP models the same interface, and NZTM's retry policy
//! reads it: "NZTM retries the transaction in hardware ... only if the
//! reason for aborting was due to a transactional (coherence) conflict
//! as determined by the CPS register" (§4.3).

/// Why a hardware transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpsReason {
    /// Coherence conflict with another transaction or ordinary store —
    /// worth retrying in hardware.
    Conflict,
    /// Resource exhaustion: read set exceeded the L1, or the store
    /// buffer overflowed. Retrying in hardware cannot succeed.
    Capacity,
    /// Environmental failure: TLB miss, interrupt, context switch, ...
    /// (ATMTP aborts on these events, §4.1).
    Other,
    /// The transaction aborted itself (e.g. §2.4's explicit self-abort on
    /// detecting a conflicting software transaction).
    Explicit,
}

impl CpsReason {
    /// Whether NZTM's retry policy considers another hardware attempt
    /// worthwhile.
    pub fn hw_retry_worthwhile(self) -> bool {
        matches!(self, CpsReason::Conflict | CpsReason::Explicit)
    }

    /// Encoding used in the per-core doom flag (0 = not doomed).
    pub(crate) fn encode(self) -> u64 {
        match self {
            CpsReason::Conflict => 1,
            CpsReason::Capacity => 2,
            CpsReason::Other => 3,
            CpsReason::Explicit => 4,
        }
    }

    pub(crate) fn decode(v: u64) -> Option<Self> {
        match v {
            1 => Some(CpsReason::Conflict),
            2 => Some(CpsReason::Capacity),
            3 => Some(CpsReason::Other),
            4 => Some(CpsReason::Explicit),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for r in [CpsReason::Conflict, CpsReason::Capacity, CpsReason::Other, CpsReason::Explicit]
        {
            assert_eq!(CpsReason::decode(r.encode()), Some(r));
        }
        assert_eq!(CpsReason::decode(0), None);
    }

    #[test]
    fn retry_policy_follows_paper() {
        assert!(CpsReason::Conflict.hw_retry_worthwhile());
        assert!(!CpsReason::Capacity.hw_retry_worthwhile());
        assert!(!CpsReason::Other.hw_retry_worthwhile());
    }
}
