//! NZTM: the hybrid TM (§2.4).
//!
//! "Like the HyTM system presented by Damron et al., NZTM attempts
//! transactions using HTM and if (repeatedly) unsuccessful, transactions
//! are run using NZSTM software transactions."
//!
//! The hardware path operates on the **same `NZObject`s** as the
//! software path — that is the point of zero indirection: a hardware
//! transaction reads the collocated owner word (adding its line to the
//! transaction's conflict set), applies the §2.4 checks from
//! [`nztm_core::hybrid::hw_examine_and_clean`] (abort on live software
//! ownership/readers; repair settled owners: restore, deflate, NULL),
//! and then accesses the data in place with no copying.
//!
//! Retry policy (§4.3): "NZTM retries the transaction in hardware a
//! number of times proportional to the total number of running threads,
//! only if the reason for aborting was ... a transactional (coherence)
//! conflict as determined by the CPS register. After all attempts are
//! exhausted, or if the reason ... was something other than a coherence
//! conflict, NZTM falls back onto NZSTM."
//!
//! The hybrid is generic over the best-effort HTM
//! ([`crate::backend::HtmBackend`]): the simulated ATMTP model
//! ([`BestEffortHtm`], the default) and the native x86_64 RTM backend
//! (`htm-native` feature) share this retry policy, the §2.4 conflict
//! checks, the statistics, and the flight-recorder events verbatim.

use crate::backend::{HtmBackend, HtmTxnOps, HwAbort};
use crate::besteffort::BestEffortHtm;
use crate::cps::CpsReason;
use nztm_core::data::TmData;
use nztm_core::hybrid::{hw_examine_and_clean, HwCheck};
use nztm_core::stats::{ThreadStats, TmStats};
use nztm_core::trace::Trace;
use nztm_core::txn::{Abort, AbortCause};
use nztm_core::{NZObject, NzTx, Nzstm, ReadMode, TmSys};
use nztm_sim::{AccessKind, Platform, SimPlatform};
use std::sync::Arc;

/// Hybrid tuning.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Hardware retries = `retries_factor × n_threads` (§4.3's
    /// "proportional to the total number of running threads").
    pub retries_factor: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { retries_factor: 1 }
    }
}

/// Word scratch sized so the common object fits on the stack: a heap
/// allocation inside a *native* hardware transaction would fault or
/// syscall and abort it (the simulated model doesn't care), so data
/// copies for objects up to this many words must not allocate.
const SCRATCH_WORDS: usize = 16;

/// The NZTM hybrid system, generic over the platform and the
/// best-effort HTM backend. Defaults reproduce the paper's simulated
/// configuration, so existing call sites keep working unchanged.
pub struct NztmHybrid<P: Platform = SimPlatform, H: HtmBackend = BestEffortHtm> {
    stm: Arc<Nzstm<P>>,
    htm: Arc<H>,
    platform: Arc<P>,
    cfg: HybridConfig,
    /// Hardware-path counters, one cache-line-isolated cell per core;
    /// single-writer atomics, so snapshots need no quiescence.
    stats: Box<[ThreadStats]>,
    /// Flight-recorder rings for hardware-path events (the software
    /// fallback records into the embedded STM's own rings).
    #[cfg(feature = "trace")]
    rings: nztm_core::util::PerCore<nztm_core::trace::TraceRing>,
    #[cfg(feature = "trace")]
    trace_on: std::sync::atomic::AtomicBool,
}

impl<P: Platform, H: HtmBackend> NztmHybrid<P, H> {
    /// Build a hybrid over an NZSTM software path and a best-effort HTM.
    /// The STM must use visible reads (the §2.4 reader checks rely on
    /// the reader bitmap).
    pub fn new(stm: Arc<Nzstm<P>>, htm: Arc<H>, cfg: HybridConfig) -> Arc<Self> {
        assert_visible_reads(stm.read_mode());
        let platform = Arc::clone(stm.platform());
        let n = platform.n_cores();
        #[cfg(feature = "trace")]
        let trace_on = std::sync::atomic::AtomicBool::new(stm.tracing_enabled());
        Arc::new(NztmHybrid {
            stm,
            htm,
            platform,
            cfg,
            stats: (0..n).map(|_| ThreadStats::default()).collect(),
            #[cfg(feature = "trace")]
            rings: nztm_core::util::PerCore::new(n, |_| {
                nztm_core::trace::TraceRing::new(1 << 16)
            }),
            #[cfg(feature = "trace")]
            trace_on,
        })
    }

    /// Record a hardware-path flight-recorder event (no-op without the
    /// `trace` feature or while disarmed).
    #[cfg(feature = "trace")]
    fn trace_hw(&self, core: usize, kind: nztm_core::trace::EventKind, a: u64, b: u64) {
        if self.trace_on.load(std::sync::atomic::Ordering::Relaxed) {
            let clock = self.platform.now();
            // Safety: `core` is the calling thread's own core id
            // (single-writer ring).
            let ring = unsafe { self.rings.get(core) };
            ring.record(clock, core as u16, kind, a, b);
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_hw(&self, _core: usize, _kind: nztm_core::trace::EventKind, _a: u64, _b: u64) {}

    pub fn stm(&self) -> &Arc<Nzstm<P>> {
        &self.stm
    }

    pub fn htm(&self) -> &Arc<H> {
        &self.htm
    }

    fn hw_read_obj<T: TmData>(
        &self,
        hw: &mut H::Txn,
        core: usize,
        obj: &Arc<NZObject<T>>,
    ) -> Result<T, HwAbort> {
        let h = obj.header();
        // The metadata line joins the hardware read set: any later
        // software acquisition (a CAS on the owner word) dooms us.
        hw.track_read(h.addr(), 8)?;
        let guard = nztm_epoch::pin();
        match hw_examine_and_clean(h, obj.data_words(), false, core, &guard) {
            HwCheck::Clean => {}
            HwCheck::ConflictWithSoftware => return Err(hw.explicit_abort()),
        }
        // If the examine step repaired the object (restore/deflate), the
        // repair stores are ordinary coherence traffic; charge them so
        // other cores' transactions observe the conflict.
        // (The repairs are idempotent and only touch settled state, so
        // they are safe to publish even if we later abort.)
        let n = T::n_words();
        let mut inline = [0u64; SCRATCH_WORDS];
        let mut heap;
        let buf: &mut [u64] = if n <= SCRATCH_WORDS {
            &mut inline[..n]
        } else {
            // Oversized object: the allocation will typically abort a
            // native hardware transaction (→ software fallback); on the
            // simulated model it is free.
            heap = vec![0u64; n];
            &mut heap
        };
        for (i, w) in obj.data_words().iter().enumerate() {
            buf[i] = hw.read_word(w, obj.data_addr() + i * 8)?;
        }
        Ok(T::decode(buf))
    }

    fn hw_write_obj<T: TmData>(
        &self,
        hw: &mut H::Txn,
        core: usize,
        obj: &Arc<NZObject<T>>,
        v: &T,
    ) -> Result<(), HwAbort> {
        let h = obj.header();
        hw.track_write(h.addr(), 8)?;
        let guard = nztm_epoch::pin();
        match hw_examine_and_clean(h, obj.data_words(), true, core, &guard) {
            HwCheck::Clean => {}
            HwCheck::ConflictWithSoftware => return Err(hw.explicit_abort()),
        }
        let n = T::n_words();
        let mut inline = [0u64; SCRATCH_WORDS];
        let mut heap;
        let buf: &mut [u64] = if n <= SCRATCH_WORDS {
            &mut inline[..n]
        } else {
            heap = vec![0u64; n];
            &mut heap
        };
        v.encode(buf);
        for (i, w) in obj.data_words().iter().enumerate() {
            hw.buffered_store(w, obj.data_addr() + i * 8, buf[i])?;
        }
        Ok(())
    }
}

/// A hybrid transaction: hardware attempt or software fallback.
pub enum HybridTx<'a, P: Platform = SimPlatform, H: HtmBackend = BestEffortHtm> {
    Hw { sys: &'a NztmHybrid<P, H>, hw: &'a mut H::Txn, core: usize },
    Sw { sys: &'a NztmHybrid<P, H>, tx: &'a mut NzTx<P, nztm_core::Nonblocking> },
}

impl<P: Platform, H: HtmBackend> TmSys for NztmHybrid<P, H> {
    type Obj<T: TmData> = Arc<NZObject<T>>;
    type Tx<'t> = HybridTx<'t, P, H>;

    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T> {
        self.stm.new_obj(init)
    }

    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T {
        obj.read_untracked()
    }

    fn execute<R>(&self, mut f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R {
        let core = self.platform.core_id();
        // When hardware attempts cannot succeed (native backend on a
        // host without RTM, or the native path forced off by policy),
        // go straight to the software path — and don't count it as a
        // fallback, because nothing fell.
        let max_hw = if self.htm.hw_available() {
            self.cfg.retries_factor * self.platform.n_cores()
        } else {
            0
        };
        let stats = &self.stats[core];

        let mut attempts = 0u64;
        while (attempts as usize) < max_hw {
            attempts += 1;
            self.trace_hw(core, nztm_core::trace::EventKind::HtmAttempt, attempts - 1, 0);
            // Hold the epoch pin *across* the hardware attempt: `pin()`
            // is re-entrant, so the inner pins taken by the §2.4 checks
            // inside the transaction are a thread-local depth bump —
            // no SeqCst participant publication inside a native RTM
            // region (such a store would join the write set and turn
            // every concurrent epoch advance into a spurious abort).
            let outer_pin = nztm_epoch::pin();
            let outcome = self.htm.attempt(|hw| {
                let mut tx = HybridTx::Hw { sys: self, hw, core };
                match f(&mut tx) {
                    Ok(v) => Ok(v),
                    Err(_) => Err(HwAbort),
                }
            });
            drop(outer_pin);
            match outcome {
                Ok(v) => {
                    stats.commits.bump();
                    stats.htm_commits.bump();
                    if attempts > 1 {
                        stats.txns_with_aborts.bump();
                    }
                    self.trace_hw(core, nztm_core::trace::EventKind::HtmCommit, attempts - 1, 0);
                    return v;
                }
                Err(info) => {
                    stats.htm_aborts.bump();
                    let cps_class = match info.reason {
                        CpsReason::Conflict => {
                            stats.htm_conflict_aborts.bump();
                            0u64
                        }
                        CpsReason::Capacity => {
                            stats.htm_capacity_aborts.bump();
                            1
                        }
                        CpsReason::Other => {
                            stats.htm_other_aborts.bump();
                            2
                        }
                        CpsReason::Explicit => {
                            stats.htm_explicit_aborts.bump();
                            3
                        }
                    };
                    // Pack the backend's raw status word (native RTM
                    // abort status; 0 on the simulated model) above the
                    // CPS class so the flight recorder carries both.
                    let b = cps_class | ((info.raw_status as u64) << 8);
                    self.trace_hw(core, nztm_core::trace::EventKind::HtmAbort, attempts - 1, b);
                    if !info.reason.hw_retry_worthwhile() {
                        break;
                    }
                }
            }
        }

        // Software fallback: this logical transaction aborted in hardware
        // at least once (the embedded STM separately counts software
        // retries of its own). With the hardware loop skipped entirely
        // (`max_hw == 0`) this is the primary path, not a fallback.
        if attempts > 0 {
            stats.fallbacks.bump();
            stats.txns_with_aborts.bump();
            self.trace_hw(core, nztm_core::trace::EventKind::HtmFallback, attempts, 0);
        }
        self.stm.run(|tx| {
            let mut htx = HybridTx::Sw { sys: self, tx };
            f(&mut htx)
        })
    }

    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort> {
        match tx {
            HybridTx::Hw { sys, hw, core } => sys
                .hw_read_obj(hw, *core, obj)
                .map_err(|HwAbort| Abort(AbortCause::Htm)),
            HybridTx::Sw { tx, .. } => tx.read(obj),
        }
    }

    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort> {
        match tx {
            HybridTx::Hw { sys, hw, core } => sys
                .hw_write_obj(hw, *core, obj, v)
                .map_err(|HwAbort| Abort(AbortCause::Htm)),
            HybridTx::Sw { tx, .. } => tx.write(obj, v),
        }
    }

    fn note_adt_op(tx: &mut Self::Tx<'_>, desc: nztm_core::adt::AdtOpDesc) {
        match tx {
            // Hardware attempts have no software descriptor; count the
            // announcement on the hybrid's own per-core cell (the trace
            // event would be torn on a hardware abort, so stats only).
            HybridTx::Hw { sys, core, .. } => {
                #[cfg(feature = "stats")]
                sys.stats[*core].adt_ops.bump();
                #[cfg(not(feature = "stats"))]
                let _ = (sys, core);
                let _ = desc;
            }
            HybridTx::Sw { tx, .. } => tx.note_adt_op(desc),
        }
    }

    fn stats_snapshot(&self) -> TmStats {
        // Hardware-path counters live here; software-path commits/aborts
        // come from the embedded STM.
        let mut total = ThreadStats::merge_all(self.stats.iter());
        total.merge(&self.stm.stats_snapshot());
        total
    }

    fn reset_stats(&self) {
        for s in self.stats.iter() {
            s.reset();
        }
        self.stm.reset_stats();
    }

    fn set_tracing(&self, on: bool) {
        #[cfg(feature = "trace")]
        self.trace_on.store(on, std::sync::atomic::Ordering::Relaxed);
        self.stm.set_tracing(on);
    }

    fn take_trace(&self) -> Trace {
        let mut trace = self.stm.take_trace();
        #[cfg(feature = "trace")]
        for core in 0..self.platform.n_cores() {
            // Safety: quiescent-only contract of `take_trace` — no core is
            // running transactions while we drain.
            let ring = unsafe { self.rings.get(core) };
            trace.overwritten += ring.drain_into(&mut trace.events);
        }
        trace.sort();
        trace
    }

    fn name(&self) -> &'static str {
        "NZTM"
    }
}

/// Assert the configuration invariant at construction sites.
pub fn assert_visible_reads(read_mode: ReadMode) {
    assert_eq!(
        read_mode,
        ReadMode::Visible,
        "NZTM's hardware path requires visible software readers (§2.4)"
    );
}

// Suppress the unused-import lint for AccessKind (used in doc examples).
const _: Option<AccessKind> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::besteffort::AtmtpConfig;
    use nztm_core::cm::KarmaDeadlock;
    use nztm_core::NzConfig;
    use nztm_sim::{CacheConfig, CostModel, Machine, MachineConfig};

    fn setup(cores: usize) -> (Arc<Machine>, Arc<SimPlatform>, Arc<NztmHybrid>) {
        let m = Machine::new(MachineConfig {
            n_cores: cores,
            hw_cores: 0,
            costs: CostModel::default(),
            l1: CacheConfig::tiny(1024, 4),
            l2: CacheConfig::tiny(8192, 8),
            max_cycles: 2_000_000_000,
        });
        let p = SimPlatform::new(Arc::clone(&m));
        let stm = Nzstm::new(
            Arc::clone(&p),
            Arc::new(KarmaDeadlock::default()),
            NzConfig::default(),
        );
        let htm = BestEffortHtm::new(
            Arc::clone(&p),
            AtmtpConfig { spurious_num: 0, ..AtmtpConfig::default() },
        );
        htm.install();
        let hy = NztmHybrid::new(stm, htm, HybridConfig::default());
        (m, p, hy)
    }

    #[test]
    fn uncontended_transactions_commit_in_hardware() {
        let (m, _p, hy) = setup(1);
        let o = hy.alloc(10u64);
        let (h2, o2) = (Arc::clone(&hy), Arc::clone(&o));
        m.run(vec![Box::new(move || {
            for _ in 0..50 {
                h2.execute(|tx| {
                    let v = NztmHybrid::read(tx, &o2)?;
                    NztmHybrid::write(tx, &o2, &(v + 1))
                });
            }
        })]);
        assert_eq!(o.read_untracked(), 60);
        let st = hy.stats_snapshot();
        assert_eq!(st.htm_commits, 50, "all hardware, no fallback: {st:?}");
        assert_eq!(st.fallbacks, 0);
        hy.htm().uninstall();
    }

    #[test]
    fn concurrent_increments_conserve() {
        let (m, _p, hy) = setup(4);
        let o = hy.alloc(0u64);
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|_| {
                let hy = Arc::clone(&hy);
                let o = Arc::clone(&o);
                Box::new(move || {
                    for _ in 0..100 {
                        hy.execute(|tx| {
                            let v = NztmHybrid::read(tx, &o)?;
                            NztmHybrid::write(tx, &o, &(v + 1))
                        });
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        m.run(bodies);
        assert_eq!(o.read_untracked(), 400);
        let st = hy.stats_snapshot();
        assert_eq!(st.commits, 400);
        hy.htm().uninstall();
    }

    #[test]
    fn capacity_overflow_falls_back_to_software() {
        let (m, p, _) = setup(1);
        let stm = Nzstm::new(
            Arc::clone(&p),
            Arc::new(KarmaDeadlock::default()),
            NzConfig::default(),
        );
        let htm = BestEffortHtm::new(
            Arc::clone(&p),
            AtmtpConfig { store_buffer_entries: 8, spurious_num: 0, ..AtmtpConfig::default() },
        );
        htm.install();
        let hy = NztmHybrid::new(stm, htm, HybridConfig::default());
        let objs: Arc<Vec<_>> = Arc::new((0..32).map(|i| hy.alloc(i as u64)).collect());
        let (h2, o2) = (Arc::clone(&hy), Arc::clone(&objs));
        m.run(vec![Box::new(move || {
            h2.execute(|tx| {
                for o in o2.iter() {
                    let v = NztmHybrid::read(tx, o)?;
                    NztmHybrid::write(tx, o, &(v + 1))?;
                }
                Ok(())
            });
        })]);
        let st = hy.stats_snapshot();
        assert_eq!(st.fallbacks, 1, "store-buffer overflow must fall back: {st:?}");
        assert!(st.htm_capacity_aborts >= 1);
        assert_eq!(objs[31].read_untracked(), 32);
        hy.htm().uninstall();
    }

    #[test]
    fn native_htm_knob_does_not_perturb_the_simulated_engine() {
        // Conformance for the `NativeHtmPolicy` builder knob: on the
        // deterministic simulator the knob is carried but never
        // consulted (it only selects the backend on native builds), so
        // a hybrid built with the native path forced off must replay
        // bit-identically — same final state, same full stats — as one
        // built with the default policy.
        use nztm_core::NativeHtmPolicy;
        let run = |policy: NativeHtmPolicy| {
            let m = Machine::new(MachineConfig {
                n_cores: 2,
                hw_cores: 0,
                costs: CostModel::default(),
                l1: CacheConfig::tiny(1024, 4),
                l2: CacheConfig::tiny(8192, 8),
                max_cycles: 2_000_000_000,
            });
            let p = SimPlatform::new(Arc::clone(&m));
            let stm = Nzstm::new(
                Arc::clone(&p),
                Arc::new(KarmaDeadlock::default()),
                NzConfig { native_htm: policy, ..NzConfig::default() },
            );
            assert_eq!(stm.native_htm_policy(), policy);
            let htm = BestEffortHtm::new(
                Arc::clone(&p),
                AtmtpConfig { spurious_num: 0, ..AtmtpConfig::default() },
            );
            htm.install();
            let hy = NztmHybrid::new(stm, htm, HybridConfig::default());
            let o = hy.alloc(0u64);
            let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..2)
                .map(|_| {
                    let hy = Arc::clone(&hy);
                    let o = Arc::clone(&o);
                    Box::new(move || {
                        for _ in 0..80 {
                            hy.execute(|tx| {
                                let v = NztmHybrid::read(tx, &o)?;
                                NztmHybrid::write(tx, &o, &(v + 1))
                            });
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            m.run(bodies);
            let st = hy.stats_snapshot();
            let v = o.read_untracked();
            hy.htm().uninstall();
            (v, st)
        };
        let (v_def, st_def) = run(NativeHtmPolicy::Auto);
        let (v_off, st_off) = run(NativeHtmPolicy::ForceOff);
        assert_eq!(v_def, 160);
        assert_eq!(v_off, v_def);
        assert_eq!(st_off, st_def, "knob must be inert on the simulator");
    }

    #[test]
    fn explicit_self_aborts_are_counted_separately() {
        // An object owned by a *live* software transaction triggers the
        // §2.4 self-abort, which must land in htm_explicit_aborts (not
        // the conflict counter) while staying retry-worthwhile.
        use nztm_core::TxnDesc;
        let (m, _p, hy) = setup(1);
        let o = hy.alloc(7u64);
        let live = Arc::new(TxnDesc::new(0, 1));
        {
            let g = nztm_epoch::pin();
            assert!(o.header().cas_owner_to_txn(0, &live, &g));
        }
        let (h2, o2, live2) = (Arc::clone(&hy), Arc::clone(&o), Arc::clone(&live));
        m.run(vec![Box::new(move || {
            let mut first = true;
            let v = h2.execute(|tx| {
                if first {
                    first = false;
                } else {
                    // Unblock the retry (hardware or software fallback —
                    // one core means a single-attempt budget): settle the
                    // blocking owner so the read can proceed.
                    live2.request_abort();
                    live2.acknowledge_abort();
                }
                NztmHybrid::read(tx, &o2)
            });
            assert_eq!(v, 7);
        })]);
        let st = hy.stats_snapshot();
        assert!(st.htm_explicit_aborts >= 1, "self-abort must be explicit: {st:?}");
        assert_eq!(st.htm_conflict_aborts, 0, "no coherence conflict here: {st:?}");
        hy.htm().uninstall();
    }

    #[test]
    fn hardware_repairs_aborted_software_state() {
        // Build an object owned by an aborted (acknowledged) software
        // transaction with a stale in-place value and a valid backup —
        // the state a crashed-and-aborted writer leaves behind — and let
        // a hardware transaction repair and read it.
        use nztm_core::{TxnDesc, WordBuf};
        let (m, _p, hy) = setup(1);
        let o = hy.alloc(5u64);
        {
            let g = nztm_epoch::pin();
            let dead = Arc::new(TxnDesc::new(0, 1));
            assert!(o.header().cas_owner_to_txn(0, &dead, &g));
            let backup = WordBuf::from_words(o.data_words()); // 5
            assert!(o.header().cas_backup(0, Some(&backup), &g));
            o.data_words()[0].store(999, std::sync::atomic::Ordering::SeqCst); // dirty
            dead.request_abort();
            dead.acknowledge_abort();
        }
        let (h2, o2) = (Arc::clone(&hy), Arc::clone(&o));
        m.run(vec![Box::new(move || {
            let v = h2.execute(|tx| NztmHybrid::read(tx, &o2));
            assert_eq!(v, 5, "hardware path restored the backup");
        })]);
        let st = hy.stats_snapshot();
        assert_eq!(st.htm_commits, 1);
        assert_eq!(st.fallbacks, 0);
        // Owner was erased so later hardware transactions skip the checks.
        let g = nztm_epoch::pin();
        assert!(matches!(o.header().owner(&g), nztm_core::object::OwnerRef::None));
        hy.htm().uninstall();
    }
}
