//! # nztm-htm — hardware-transactional-memory substrates
//!
//! Software emulations, on the deterministic simulated machine, of the
//! two HTMs the paper evaluates against:
//!
//! * [`BestEffortHtm`] — the ATMTP model of Sun Rock's best-effort HTM
//!   (§4.1): write-buffer versioning (256 one-word entries), read sets
//!   bounded by the L1's size and associativity, a **requester wins**
//!   conflict policy, spurious aborts standing in for TLB misses /
//!   interrupts / context switches, and a CPS-style abort-reason
//!   register consulted by retry policies.
//! * [`LogTmSe`] — LogTM-SE (§4.1/§4.3): *unbounded* eager HTM with an
//!   undo log, conflict detection on **perfect filters** (exact line
//!   sets — the paper's own upper-bound configuration), requester
//!   stalls with timestamp-ordered deadlock avoidance, and a software
//!   abort handler that unrolls the log.
//!
//! Plus the system they exist to serve:
//!
//! * [`NztmHybrid`] — NZTM itself (§2.4): transactions first attempt the
//!   best-effort hardware path (whose object accesses are instrumented
//!   with the §2.4 software-conflict checks from
//!   [`nztm_core::hybrid`]), retry on coherence conflicts a number of
//!   times proportional to the thread count, and otherwise fall back to
//!   NZSTM software transactions. Implements
//!   [`nztm_core::TmSys`] over the *same* `NZObject`s as the software
//!   engines.
//!
//! Conflicts between emulated hardware transactions and ordinary
//! software memory traffic are detected through the machine's coherence
//! snoop ([`nztm_sim::Machine::set_snoop`]), exactly mirroring the
//! paper's argument that a software acquisition "will modify data that
//! the hardware transaction has accessed, thereby aborting the hardware
//! transaction".

pub mod backend;
pub mod besteffort;
pub mod cps;
pub mod hybrid;
pub mod logtm;
#[cfg(feature = "htm-native")]
pub mod native;
pub mod signatures;

pub use backend::{HtmAbortInfo, HtmBackend, HtmTxnOps, HwAbort};
pub use besteffort::{AtmtpConfig, BestEffortHtm, HwTxn};
pub use cps::CpsReason;
pub use hybrid::{HybridConfig, HybridTx, NztmHybrid};
pub use logtm::{LogObject, LogTmSe};
#[cfg(feature = "htm-native")]
pub use native::{in_rtm_transaction, rtm_supported, HtmDecision, NativeHtm, RtmTxn};
pub use signatures::{Signature, SignatureKind};
