//! LogTM-SE: unbounded eager HTM with perfect filters (§4.1/§4.3).
//!
//! * **Eager versioning**: transactional stores go straight to memory;
//!   the old value is appended to a per-transaction undo log, unrolled
//!   by a *software abort handler* on abort ("LogTM-SE transactions do
//!   not impose software overheads unless they abort, in which case a
//!   software abort handler is invoked").
//! * **Perfect filters**: conflict detection uses exact line sets — the
//!   paper's own upper-bound configuration ("perfect filters, which are
//!   not implementable in hardware ... represent an upper bound of how
//!   well LogTM-SE can perform").
//! * **Requester stalls**: on conflict the requester waits for the
//!   holder; deadlock is avoided by the LogTM rule — a transaction
//!   aborts only when it both could be part of a cycle (it is stalled
//!   and something stalls on it) and is the younger party. Timestamps
//!   are sticky across retries, so the oldest transaction always wins
//!   eventually (no starvation).
//!
//! Unlike the best-effort HTM, nothing here is bounded: no capacity
//! aborts, no environmental aborts — the paper's idealized comparator.

use crate::signatures::{Signature, SignatureKind};
use nztm_core::data::{snapshot_words, write_words, TmData, WordArray};
use nztm_core::stats::{ThreadStats, TmStats};
use nztm_core::txn::Abort;
use nztm_core::util::PerCore;
use nztm_core::TmSys;
use nztm_sim::{AccessKind, DetRng, Machine, Platform, SimPlatform};
use nztm_sim::sync::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transactional object under LogTM: plain data, **no TM metadata at
/// all** — conflict detection lives entirely in the (perfect) signatures.
pub struct LogObject<T: TmData> {
    data: T::Words,
    synth: usize,
}

impl<T: TmData> LogObject<T> {
    fn new(init: T) -> Arc<Self> {
        let obj: LogObject<T> = LogObject {
            data: T::Words::new_zeroed(),
            synth: nztm_sim::synth_alloc(T::n_words() * 8),
        };
        let mut scratch = vec![0u64; T::n_words()];
        init.encode(&mut scratch);
        write_words(obj.data.words(), &scratch);
        Arc::new(obj)
    }

    pub fn read_untracked(&self) -> T {
        let mut scratch = vec![0u64; T::n_words()];
        snapshot_words(self.data.words(), &mut scratch);
        T::decode(&scratch)
    }
}

struct CoreTxn {
    active: bool,
    /// Lines this transaction holds, with the access level (line, write).
    lines: HashSet<(u64, bool)>,
    /// Undo log: (host word ptr, synth addr, old value), program order.
    undo: Vec<(usize, usize, u64)>,
    rng: DetRng,
    backoff: nztm_core::util::Backoff,
    scratch: Vec<u64>,
}

impl CoreTxn {
    fn new(tid: usize) -> Self {
        CoreTxn {
            active: false,
            lines: HashSet::new(),
            undo: Vec::new(),
            rng: DetRng::new(0x106_0000 + tid as u64),
            backoff: nztm_core::util::Backoff::new(),
            scratch: Vec::new(),
        }
    }
}

/// Shared, cross-core view of each core's transaction (for the
/// stall/deadlock protocol).
struct CoreShared {
    /// Timestamp of the active transaction (0 = inactive).
    ts: AtomicU64,
    /// Raised while the core is stalled on a conflict.
    stalling: AtomicU64,
    /// Doom flag: another core decided we must abort (cycle avoidance).
    doomed: AtomicU64,
}

/// Per-core read/write signatures, shared for cross-core checking.
struct SigPair {
    read: Signature,
    write: Signature,
}

/// The LogTM-SE device, usable directly as a [`TmSys`].
pub struct LogTmSe {
    platform: Arc<SimPlatform>,
    /// Per-core signatures (index = core id), guarded together because
    /// conflict checks scan all cores.
    sigs: Mutex<Vec<SigPair>>,
    shared: Vec<CoreShared>,
    cores: PerCore<CoreTxn>,
    /// Single-writer per-core counters, readable without quiescence.
    stats: Box<[ThreadStats]>,
    ts_counter: AtomicU64,
    kind: SignatureKind,
}

impl LogTmSe {
    /// Perfect filters — the paper's upper-bound configuration (§4.3).
    pub fn new(platform: Arc<SimPlatform>) -> Arc<Self> {
        Self::with_signatures(platform, SignatureKind::Perfect)
    }

    /// Choose the signature implementation (Bloom for the ablation that
    /// quantifies what realizable hardware loses to false conflicts).
    pub fn with_signatures(platform: Arc<SimPlatform>, kind: SignatureKind) -> Arc<Self> {
        let n = platform.n_cores();
        Arc::new(LogTmSe {
            platform,
            sigs: Mutex::new(
                (0..n)
                    .map(|_| SigPair { read: Signature::new(kind), write: Signature::new(kind) })
                    .collect(),
            ),
            shared: (0..n)
                .map(|_| CoreShared {
                    ts: AtomicU64::new(0),
                    stalling: AtomicU64::new(0),
                    doomed: AtomicU64::new(0),
                })
                .collect(),
            cores: PerCore::new(n, CoreTxn::new),
            stats: (0..n).map(|_| ThreadStats::default()).collect(),
            ts_counter: AtomicU64::new(1),
            kind,
        })
    }

    /// The signature configuration in use.
    pub fn signature_kind(&self) -> SignatureKind {
        self.kind
    }

    pub fn machine(&self) -> &Arc<Machine> {
        self.platform.machine()
    }

    fn doomed(&self, core: usize) -> bool {
        self.shared[core].doomed.load(Ordering::SeqCst) != 0
    }

    /// Acquire `line` for this core, stalling on conflicts per the LogTM
    /// protocol. Returns Err when this transaction must abort.
    ///
    /// Conflicts are detected against the other cores' signatures — with
    /// Bloom signatures this includes false positives, the cost the
    /// paper's "perfect filters" configuration deliberately excludes.
    fn acquire_line(&self, core: usize, line: u64, is_write: bool) -> Result<(), Abort> {
        let my_ts = self.shared[core].ts.load(Ordering::SeqCst);
        loop {
            if self.doomed(core) {
                return Err(Abort(nztm_core::AbortCause::Requested));
            }
            {
                let mut sigs = self.sigs.lock();
                let mut conflicters = 0u64;
                for (c, pair) in sigs.iter().enumerate() {
                    if c == core || self.shared[c].ts.load(Ordering::SeqCst) == 0 {
                        continue;
                    }
                    let hit = pair.write.maybe_contains(line)
                        || (is_write && pair.read.maybe_contains(line));
                    if hit {
                        conflicters |= 1 << c;
                    }
                }
                if conflicters == 0 {
                    let mine = &mut sigs[core];
                    if is_write {
                        mine.write.insert(line);
                    } else {
                        mine.read.insert(line);
                    }
                    self.shared[core].stalling.store(0, Ordering::SeqCst);
                    return Ok(());
                }
                // Requester stalls ("avoids aborts unless potential
                // deadlock is detected"). Possible-cycle rule: doom
                // stalled holders younger than us.
                self.shared[core].stalling.store(1, Ordering::SeqCst);
                for h in BitIter(conflicters) {
                    let h_ts = self.shared[h].ts.load(Ordering::SeqCst);
                    if h_ts > my_ts && self.shared[h].stalling.load(Ordering::SeqCst) != 0 {
                        self.shared[h].doomed.store(1, Ordering::SeqCst);
                    }
                }
            }
            self.platform.spin_wait();
            self.stats[core].wait_steps.bump();
        }
    }

    /// Software abort handler: unroll the undo log, release lines.
    fn abort_handler(&self, core: usize) {
        let st = unsafe { self.cores.get(core) };
        let costs = self.machine().config().costs.clone();
        self.platform.work(costs.htm_abort);
        for &(word_ptr, addr, old) in st.undo.iter().rev() {
            // Safety: object words outlive the run (pool/Arc-owned).
            unsafe { (*(word_ptr as *const AtomicU64)).store(old, Ordering::SeqCst) };
            self.platform.mem_nb(addr, 8, AccessKind::Write);
            self.platform.work(costs.logtm_unroll_per_word);
        }
        st.undo.clear();
        self.release(core);
        self.stats[core].htm_aborts.bump();
        self.stats[core].htm_conflict_aborts.bump();
    }

    fn release(&self, core: usize) {
        let st = unsafe { self.cores.get(core) };
        st.lines.clear();
        {
            let mut sigs = self.sigs.lock();
            sigs[core].read.clear();
            sigs[core].write.clear();
        }
        self.shared[core].stalling.store(0, Ordering::SeqCst);
        self.shared[core].ts.store(0, Ordering::SeqCst);
    }

    fn access_object(&self, core: usize, synth: usize, bytes: usize, is_write: bool) -> Result<(), Abort> {
        let st = unsafe { self.cores.get(core) };
        let first = synth >> 6;
        let last = (synth + bytes.max(1) - 1) >> 6;
        for l in first..=last {
            let host_addr = l << 6;
            let res = self.machine().mem_access(
                host_addr,
                if is_write { AccessKind::Write } else { AccessKind::Read },
            );
            let line = res.line.0;
            if st.lines.contains(&(line, is_write)) || st.lines.contains(&(line, true)) {
                continue; // already hold sufficient access
            }
            self.acquire_line(core, line, is_write)?;
            st.lines.insert((line, is_write));
        }
        Ok(())
    }
}

/// In-flight LogTM transaction handle.
pub struct LogTx<'s> {
    sys: &'s LogTmSe,
    core: usize,
}

impl<'s> LogTx<'s> {
    pub fn read<T: TmData>(&mut self, obj: &Arc<LogObject<T>>) -> Result<T, Abort> {
        let st = unsafe { self.sys.cores.get(self.core) };
        self.sys.stats[self.core].reads.bump();
        self.sys.access_object(self.core, obj.synth, T::n_words() * 8, false)?;
        let mut scratch = std::mem::take(&mut st.scratch);
        scratch.clear();
        scratch.resize(T::n_words(), 0);
        snapshot_words(obj.data.words(), &mut scratch);
        let v = T::decode(&scratch);
        st.scratch = scratch;
        Ok(v)
    }

    pub fn write<T: TmData>(&mut self, obj: &Arc<LogObject<T>>, v: &T) -> Result<(), Abort> {
        let st = unsafe { self.sys.cores.get(self.core) };
        self.sys.stats[self.core].acquires.bump();
        self.sys.access_object(self.core, obj.synth, T::n_words() * 8, true)?;
        let mut scratch = std::mem::take(&mut st.scratch);
        scratch.clear();
        scratch.resize(T::n_words(), 0);
        v.encode(&mut scratch);
        // Eager: log old values, then store new ones in place.
        for (i, w) in obj.data.words().iter().enumerate() {
            let old = w.load(Ordering::SeqCst);
            st.undo.push((w as *const AtomicU64 as usize, obj.synth + i * 8, old));
            w.store(scratch[i], Ordering::SeqCst);
        }
        self.sys.platform.mem_nb(obj.synth, T::n_words() * 8, AccessKind::Write);
        st.scratch = scratch;
        Ok(())
    }
}

impl TmSys for LogTmSe {
    type Obj<T: TmData> = Arc<LogObject<T>>;
    type Tx<'t> = LogTx<'t>;

    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T> {
        LogObject::new(init)
    }

    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T {
        obj.read_untracked()
    }

    fn execute<R>(&self, mut f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R {
        let core = self.platform.core_id();
        let st = unsafe { self.cores.get(core) };
        assert!(!st.active, "LogTM transactions do not nest");
        // Sticky timestamp: assigned once per logical transaction.
        let ts = self.ts_counter.fetch_add(1, Ordering::SeqCst);
        st.active = true;
        loop {
            self.shared[core].ts.store(ts, Ordering::SeqCst);
            self.shared[core].doomed.store(0, Ordering::SeqCst);
            self.shared[core].stalling.store(0, Ordering::SeqCst);
            st.undo.clear();
            self.platform.work(self.machine().config().costs.htm_begin);

            let mut tx = LogTx { sys: self, core };
            match f(&mut tx) {
                Ok(v) => {
                    // Commit: doom-check and cleanup form one atomic step
                    // (no yield between them).
                    if !self.doomed(core) {
                        let st = unsafe { self.cores.get(core) };
                        self.platform.work(self.machine().config().costs.htm_commit);
                        st.undo.clear();
                        self.release(core);
                        self.stats[core].commits.bump();
                        self.stats[core].htm_commits.bump();
                        st.active = false;
                        st.backoff.reset();
                        return v;
                    }
                    self.abort_handler(core);
                }
                Err(_) => self.abort_handler(core),
            }
            // Backoff between retries.
            let st = unsafe { self.cores.get(core) };
            let steps = st.backoff.steps(st.rng.next_u64());
            for _ in 0..steps {
                self.platform.spin_wait();
            }
        }
    }

    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort> {
        tx.read(obj)
    }

    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort> {
        tx.write(obj, v)
    }

    fn stats_snapshot(&self) -> TmStats {
        ThreadStats::merge_all(self.stats.iter())
    }

    fn reset_stats(&self) {
        for s in self.stats.iter() {
            s.reset();
        }
    }

    fn name(&self) -> &'static str {
        "LogTM-SE"
    }
}

struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::{CacheConfig, CostModel, MachineConfig};

    fn setup(cores: usize) -> (Arc<Machine>, Arc<LogTmSe>) {
        let m = Machine::new(MachineConfig {
            n_cores: cores,
            hw_cores: 0,
            costs: CostModel::default(),
            l1: CacheConfig::tiny(1024, 4),
            l2: CacheConfig::tiny(8192, 8),
            max_cycles: 2_000_000_000,
        });
        let p = SimPlatform::new(Arc::clone(&m));
        let l = LogTmSe::new(p);
        (m, l)
    }

    #[test]
    fn read_write_commit() {
        let (m, l) = setup(1);
        let o = l.alloc(5u64);
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&o));
        m.run(vec![Box::new(move || {
            let v = l2.execute(|tx| {
                let v = tx.read(&o2)?;
                tx.write(&o2, &(v + 1))?;
                Ok(v)
            });
            assert_eq!(v, 5);
        })]);
        assert_eq!(o.read_untracked(), 6);
        assert_eq!(l.stats_snapshot().htm_commits, 1);
    }

    #[test]
    fn concurrent_increments_conserve() {
        let (m, l) = setup(4);
        let o = l.alloc(0u64);
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let o = Arc::clone(&o);
                Box::new(move || {
                    for _ in 0..100 {
                        l.execute(|tx| {
                            let v = tx.read(&o)?;
                            tx.write(&o, &(v + 1))
                        });
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        m.run(bodies);
        assert_eq!(o.read_untracked(), 400);
        let st = l.stats_snapshot();
        assert_eq!(st.htm_commits, 400);
    }

    #[test]
    fn bank_transfers_conserve_money() {
        let (m, l) = setup(3);
        let accounts: Arc<Vec<_>> = Arc::new((0..4).map(|_| l.alloc(100u64)).collect());
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..3)
            .map(|tid| {
                let l = Arc::clone(&l);
                let accounts = Arc::clone(&accounts);
                Box::new(move || {
                    let mut rng = DetRng::new(40 + tid as u64);
                    for _ in 0..100 {
                        let a = rng.next_below(4) as usize;
                        let b = rng.next_below(4) as usize;
                        if a == b {
                            continue;
                        }
                        l.execute(|tx| {
                            let va = tx.read(&accounts[a])?;
                            let vb = tx.read(&accounts[b])?;
                            if va > 0 {
                                tx.write(&accounts[a], &(va - 1))?;
                                tx.write(&accounts[b], &(vb + 1))?;
                            }
                            Ok(())
                        });
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        m.run(bodies);
        let total: u64 = accounts.iter().map(|a| a.read_untracked()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn unbounded_large_write_sets_commit() {
        // No capacity aborts: write far more than any store buffer.
        let (m, l) = setup(1);
        let objs: Arc<Vec<_>> = Arc::new((0..600).map(|i| l.alloc(i as u64)).collect());
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&objs));
        m.run(vec![Box::new(move || {
            l2.execute(|tx| {
                for o in o2.iter() {
                    let v = tx.read(o)?;
                    tx.write(o, &(v + 1))?;
                }
                Ok(())
            });
        })]);
        assert_eq!(objs[599].read_untracked(), 600);
        assert_eq!(l.stats_snapshot().htm_aborts, 0, "nothing to abort single-threaded");
    }

    #[test]
    fn deterministic_execution() {
        let run = || {
            let (m, l) = setup(3);
            let o = l.alloc(0u64);
            let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..3)
                .map(|_| {
                    let l = Arc::clone(&l);
                    let o = Arc::clone(&o);
                    Box::new(move || {
                        for _ in 0..50 {
                            l.execute(|tx| {
                                let v = tx.read(&o)?;
                                tx.write(&o, &(v + 1))
                            });
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let r = m.run(bodies);
            (r.makespan, l.stats_snapshot().htm_aborts)
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod signature_ablation_tests {
    use super::*;
    use crate::signatures::SignatureKind;
    use nztm_sim::{CacheConfig, CostModel, MachineConfig};

    fn run_counter_workload(kind: SignatureKind) -> (u64, u64) {
        let m = Machine::new(MachineConfig {
            n_cores: 4,
            hw_cores: 0,
            costs: CostModel::default(),
            l1: CacheConfig::tiny(1024, 4),
            l2: CacheConfig::tiny(8192, 8),
            max_cycles: 2_000_000_000,
        });
        let p = SimPlatform::new(Arc::clone(&m));
        let l = LogTmSe::with_signatures(p, kind);
        // Disjoint objects per core: perfect filters see zero conflicts;
        // a tiny Bloom filter manufactures false ones.
        let objs: Vec<Vec<_>> =
            (0..4).map(|c| (0..32).map(|i| l.alloc((c * 100 + i) as u64)).collect()).collect();
        let objs = Arc::new(objs);
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|tid| {
                let l = Arc::clone(&l);
                let objs = Arc::clone(&objs);
                Box::new(move || {
                    for round in 0..30 {
                        l.execute(|tx| {
                            for o in &objs[tid] {
                                let v = tx.read(o)?;
                                tx.write(o, &(v + 1))?;
                            }
                            Ok(())
                        });
                        let _ = round;
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let r = m.run(bodies);
        let st = l.stats_snapshot();
        // Correctness regardless of signature kind.
        for (c, per_core) in objs.iter().enumerate() {
            for (i, o) in per_core.iter().enumerate() {
                assert_eq!(o.read_untracked(), (c * 100 + i) as u64 + 30);
            }
        }
        (r.makespan, st.wait_steps)
    }

    #[test]
    fn perfect_filters_see_no_conflicts_on_disjoint_sets() {
        let (_, waits) = run_counter_workload(SignatureKind::Perfect);
        assert_eq!(waits, 0, "disjoint write sets cannot conflict under perfect filters");
    }

    #[test]
    fn tiny_bloom_filters_manufacture_false_conflicts() {
        // 64-bit filters with 32-line write sets are saturated: nearly
        // every cross-core check is a (false) hit.
        let (bloom_makespan, bloom_waits) =
            run_counter_workload(SignatureKind::Bloom { bits: 64, hashes: 2 });
        let (perfect_makespan, _) = run_counter_workload(SignatureKind::Perfect);
        assert!(bloom_waits > 0, "saturated Bloom signatures must stall on false conflicts");
        assert!(
            bloom_makespan > perfect_makespan,
            "false conflicts must cost cycles: bloom={bloom_makespan} perfect={perfect_makespan}"
        );
    }

    #[test]
    fn realistic_bloom_is_close_to_perfect_here() {
        // 2048-bit/4-hash signatures with 32-line sets: FP rate ~2%, so
        // the makespan should sit within a modest factor of perfect.
        let (bloom_makespan, _) = run_counter_workload(SignatureKind::realistic_bloom());
        let (perfect_makespan, _) = run_counter_workload(SignatureKind::Perfect);
        assert!(
            (bloom_makespan as f64) < perfect_makespan as f64 * 1.5,
            "realistic signatures should be near-perfect on small sets: bloom={bloom_makespan} perfect={perfect_makespan}"
        );
    }
}
