//! Arch-native x86_64 RTM backend (`htm-native` feature).
//!
//! Implements [`HtmBackend`] over real hardware transactions via
//! `core::arch::x86_64`'s `_xbegin`/`_xend`/`_xabort` intrinsics, so the
//! hybrid's retry policy, §2.4 software-conflict checks, statistics, and
//! flight-recorder events run unchanged on real silicon.
//!
//! ## Detection and fallback
//!
//! RTM support is probed at runtime ([`rtm_supported`]: CPUID leaf 7,
//! subleaf 0, EBX bit 11 — executing `xbegin` on a CPU without RTM is
//! `#UD`, so the probe gates every native transaction). Backend
//! selection ([`NativeHtm::select`]) combines the probe with the
//! [`NativeHtmPolicy`] knob from `NzConfig`; on any non-RTM host — or
//! any non-x86_64 target, which compiles the portable stub — the
//! decision is a transparent fallback and the hybrid's
//! `hw_available() == false` path routes every transaction to the
//! unmodified NZSTM software engine.
//!
//! ## Why no extra commit fencing
//!
//! Hybrid NOrec (llvm-transmem's `hybrid_norec_two_counter.h`) needs a
//! two-location counter handshake because its software commits publish
//! values *outside* any shared metadata the hardware path reads. NZTM's
//! zero-indirection layout makes that machinery unnecessary: a hardware
//! transaction's first action on every object is a plain load of the
//! collocated owner word (and, for writes, the reader indicator), which
//! joins the transaction's read set. Every software-path acquisition is
//! a CAS on that same owner word and every visible read sets the
//! indicator on the same line, so any software transaction that could
//! overlap a hardware transaction's footprint aborts it through plain
//! cache coherence before either commits. `xend` itself has full-fence
//! semantics, ordering the atomically-published write set against later
//! software loads. This is the paper's own §2.4 argument ("will modify
//! data that the hardware transaction has accessed, thereby aborting
//! the hardware transaction"), carried over verbatim to RTM's strong
//! isolation.
//!
//! ## Abort-status mapping
//!
//! `_xbegin`'s status word maps onto the CPS taxonomy through
//! [`CpsReason::from_rtm_status`] (pure, table-tested in `cps.rs`); the
//! raw word rides along in [`HtmAbortInfo::raw_status`] so the flight
//! recorder keeps the unmapped bits. Two `xabort` codes are used:
//! [`XABORT_SW_CONFLICT`] for the §2.4 self-abort and [`XABORT_USER`]
//! for user-level aborts propagated out of the transaction body.

use crate::backend::{HtmAbortInfo, HtmBackend, HtmTxnOps, HwAbort};
use crate::cps::CpsReason;
use nztm_core::NativeHtmPolicy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `xabort` code for the §2.4 self-abort: the hardware transaction
/// observed a live software transaction (or software readers) on an
/// object it touched.
pub const XABORT_SW_CONFLICT: u32 = 0xCA;

/// `xabort` code for a user-level abort surfaced out of the transaction
/// body (the hybrid retries these on the software path, where the
/// contention manager arbitrates).
pub const XABORT_USER: u32 = 0xAB;

/// Runtime probe: does this CPU implement RTM?
///
/// CPUID leaf 7 (structured extended features), subleaf 0, EBX bit 11.
/// Guarded by the max-supported-leaf check from leaf 0 — pre-2010 CPUs
/// don't implement leaf 7 and may echo the last valid leaf instead.
/// Always `false` off x86_64.
pub fn rtm_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{__cpuid, __cpuid_count};
        // CPUID itself is architectural on x86_64 (no feature probe
        // needed for the probe).
        let max_leaf = __cpuid(0).eax;
        if max_leaf < 7 {
            return false;
        }
        let leaf7 = __cpuid_count(7, 0);
        (leaf7.ebx >> 11) & 1 == 1
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// [`rtm_supported`], probed once and cached. `CPUID` *aborts* a
/// running hardware transaction, so anything that may execute
/// transactionally (e.g. [`in_rtm_transaction`]) must consult the cache
/// instead of re-probing.
fn rtm_supported_cached() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(rtm_supported)
}

/// Is the calling thread currently executing inside a hardware
/// transaction (`xtest`)? `false` on hosts without RTM (where the
/// instruction would be `#UD`).
pub fn in_rtm_transaction() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: gated on the (cached) CPUID probe.
        rtm_supported_cached() && unsafe { imp::test() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend-selection outcome: native RTM or a transparent fallback
/// to the simulated model, with the reason spelled out so harnesses and
/// CI can log the decision instead of silently skipping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HtmDecision {
    /// Real hardware transactions will be issued.
    Native,
    /// The simulated/software path should serve instead; why.
    Fallback(&'static str),
}

impl HtmDecision {
    /// One-line human-readable form for probe output and CI logs.
    pub fn describe(self) -> String {
        match self {
            HtmDecision::Native => "native RTM".to_string(),
            HtmDecision::Fallback(why) => format!("simulated fallback ({why})"),
        }
    }
}

/// Best-effort HTM backed by real x86_64 RTM.
///
/// Construct with [`NativeHtm::new`]; when the policy/probe decision is
/// a fallback the instance still exists but reports
/// `hw_available() == false`, so a hybrid built over it runs every
/// transaction on the software path (bit-identically to the simulated
/// build with a zero-attempt hardware budget).
pub struct NativeHtm {
    active: bool,
    decision: HtmDecision,
}

impl NativeHtm {
    /// Combine the policy knob with the runtime probe.
    pub fn select(policy: NativeHtmPolicy) -> HtmDecision {
        if policy == NativeHtmPolicy::ForceOff {
            return HtmDecision::Fallback("forced off by NativeHtmPolicy::ForceOff");
        }
        if !cfg!(target_arch = "x86_64") {
            return HtmDecision::Fallback("target is not x86_64");
        }
        if !rtm_supported_cached() {
            return HtmDecision::Fallback("host CPU does not report RTM (CPUID.7.0:EBX.11)");
        }
        HtmDecision::Native
    }

    /// Build the backend under `policy`.
    ///
    /// Panics when `policy` is [`NativeHtmPolicy::ForceOn`] but the
    /// build target or host CPU cannot execute RTM — CI probe jobs use
    /// this to make silent fallback impossible.
    pub fn new(policy: NativeHtmPolicy) -> Arc<NativeHtm> {
        let decision = Self::select(policy);
        if policy == NativeHtmPolicy::ForceOn {
            if let HtmDecision::Fallback(why) = decision {
                panic!("NativeHtmPolicy::ForceOn but native RTM is unavailable: {why}");
            }
        }
        Arc::new(NativeHtm { active: decision == HtmDecision::Native, decision })
    }

    /// The selection this instance was built with.
    pub fn decision(&self) -> HtmDecision {
        self.decision
    }
}

/// Handle passed to the transaction body on the native path.
///
/// The hardware tracks every touched cache line implicitly, so the
/// tracking methods are no-ops and reads/stores are plain (and thereby
/// transactional) memory operations. Zero-sized: the whole handle
/// compiles away.
pub struct RtmTxn {
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl HtmTxnOps for RtmTxn {
    #[inline(always)]
    fn track_read(&mut self, _addr: usize, _bytes: usize) -> Result<(), HwAbort> {
        // Implicit: the next load of the line adds it to the read set.
        Ok(())
    }

    #[inline(always)]
    fn track_write(&mut self, _addr: usize, _bytes: usize) -> Result<(), HwAbort> {
        Ok(())
    }

    #[inline(always)]
    fn read_word(&mut self, word: &AtomicU64, _addr: usize) -> Result<u64, HwAbort> {
        // Relaxed compiles to a plain load; the enclosing transaction
        // supplies atomicity and `xend` the ordering.
        Ok(word.load(Ordering::Relaxed))
    }

    #[inline(always)]
    fn buffered_store(&mut self, word: &AtomicU64, _addr: usize, value: u64) -> Result<(), HwAbort> {
        // Plain store into the write set; becomes visible atomically at
        // `xend`, or never.
        word.store(value, Ordering::Relaxed);
        Ok(())
    }

    #[inline]
    fn explicit_abort(&mut self) -> HwAbort {
        // Inside a transaction this never returns: control re-enters
        // `_xbegin` with EXPLICIT | (0xCA << 24). Outside one (the
        // not-in-txn edge case) `xabort` is architecturally a no-op and
        // the sentinel propagates the abort through the Err channel.
        #[cfg(target_arch = "x86_64")]
        // Safety: RtmTxn is only constructed after `_xbegin` succeeded,
        // which implies RTM; `xabort` outside a transaction is a no-op.
        unsafe {
            imp::abort_sw_conflict()
        };
        HwAbort
    }
}

#[cfg(target_arch = "x86_64")]
mod imp {
    //! RTM primitives via stable inline asm.
    //!
    //! `core::arch::x86_64::_xbegin`/`_xend`/`_xabort`/`_xtest` are
    //! nightly-only (`stdarch_x86_rtm`), so the instructions are emitted
    //! by raw encoding, mirroring GCC's `rtmintrin.h` implementation
    //! byte for byte. The soundness argument is the hardware's register
    //! checkpoint: an abort restores every architectural register to
    //! its value at `xbegin` (and rolls memory back), then resumes at
    //! the fallback address — here, the instruction *inside the same
    //! asm block* right after `xbegin`, with only EAX (a declared
    //! output) changed. The compiler therefore observes exactly the
    //! state its model predicts at the block's exit on both the started
    //! and the aborted path; the default memory clobber forbids caching
    //! memory across the block. Callers must runtime-gate on the CPUID
    //! probe: `xbegin`/`xend` raise `#UD` on CPUs without RTM.

    /// `_xbegin`'s "transaction started" sentinel (all-ones; any abort
    /// status has the reserved high bits clear of at least one bit).
    pub const STARTED: u32 = u32::MAX;

    #[inline(always)]
    pub unsafe fn begin() -> u32 {
        let mut ret: u32 = STARTED;
        // xbegin rel32 with fallback displacement 0: on abort, control
        // re-enters at the next instruction with EAX = abort status.
        core::arch::asm!(
            ".byte 0xc7, 0xf8",
            ".long 0",
            inout("eax") ret,
            options(nostack),
        );
        ret
    }

    #[inline(always)]
    pub unsafe fn end() {
        // xend
        core::arch::asm!(".byte 0x0f, 0x01, 0xd5", options(nostack));
    }

    #[inline(always)]
    pub unsafe fn abort_sw_conflict() {
        // xabort 0xCA (== super::XABORT_SW_CONFLICT). The immediate is
        // part of the instruction encoding, hence the two fixed
        // variants instead of a parameter.
        core::arch::asm!(".byte 0xc6, 0xf8, 0xca", options(nostack));
    }

    #[inline(always)]
    pub unsafe fn abort_user() {
        // xabort 0xAB (== super::XABORT_USER).
        core::arch::asm!(".byte 0xc6, 0xf8, 0xab", options(nostack));
    }

    /// `xtest`: are we inside a transaction? `#UD` without RTM/HLE —
    /// runtime-gate like the rest.
    #[inline(always)]
    pub unsafe fn test() -> bool {
        let out: u8;
        core::arch::asm!(
            ".byte 0x0f, 0x01, 0xd6",
            "setnz {0}",
            out(reg_byte) out,
            options(nostack),
        );
        out != 0
    }
}

// The fixed xabort immediates above must track the public constants.
const _: () = assert!(XABORT_SW_CONFLICT == 0xCA && XABORT_USER == 0xAB);

impl HtmBackend for NativeHtm {
    type Txn = RtmTxn;

    fn attempt<R>(
        &self,
        f: impl FnOnce(&mut RtmTxn) -> Result<R, HwAbort>,
    ) -> Result<R, HtmAbortInfo> {
        // The hybrid skips the hardware loop when `hw_available()` is
        // false, so this path is defensive: classify as Other (never
        // retry-worthwhile) and let the caller fall back.
        if !self.active {
            return Err(HtmAbortInfo { reason: CpsReason::Other, raw_status: 0 });
        }
        #[cfg(target_arch = "x86_64")]
        {
            // Safety: `self.active` implies the CPUID probe reported
            // RTM, so the rtm-target-feature trampolines are callable.
            unsafe {
                let status = imp::begin();
                if status == imp::STARTED {
                    let mut txn = RtmTxn { _not_send: std::marker::PhantomData };
                    match f(&mut txn) {
                        Ok(v) => {
                            imp::end();
                            Ok(v)
                        }
                        Err(HwAbort) => {
                            // Still transactional: surface the abort as
                            // EXPLICIT | (0xAB << 24) through _xbegin.
                            // (A doomed attempt that already aborted
                            // architecturally never reaches this line —
                            // execution re-entered _xbegin directly.)
                            imp::abort_user();
                            unreachable!("xabort returned inside a transaction")
                        }
                    }
                } else {
                    Err(HtmAbortInfo {
                        reason: CpsReason::from_rtm_status(status),
                        raw_status: status,
                    })
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            // Unreachable: `active` is never true off x86_64.
            let _ = f;
            Err(HtmAbortInfo { reason: CpsReason::Other, raw_status: 0 })
        }
    }

    fn hw_available(&self) -> bool {
        self.active
    }

    fn sim_schedulable(&self) -> bool {
        // Real hardware transactions commit invisibly to the simulated
        // scheduler; nztm-check must never explore this backend.
        false
    }

    fn backend_name(&self) -> &'static str {
        "x86_64-rtm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_agrees_with_std_feature_detection() {
        #[cfg(target_arch = "x86_64")]
        assert_eq!(rtm_supported(), std::arch::is_x86_feature_detected!("rtm"));
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!rtm_supported());
    }

    #[test]
    fn status_constants_match_the_architecture() {
        // The Intel SDM bit assignments for the xbegin abort status
        // (identical to GCC/Clang's `_XABORT_*` and core::arch's
        // nightly-only constants of the same names).
        use crate::cps::rtm_status;
        assert_eq!(rtm_status::EXPLICIT, 1 << 0);
        assert_eq!(rtm_status::RETRY, 1 << 1);
        assert_eq!(rtm_status::CONFLICT, 1 << 2);
        assert_eq!(rtm_status::CAPACITY, 1 << 3);
        assert_eq!(rtm_status::DEBUG, 1 << 4);
        assert_eq!(rtm_status::NESTED, 1 << 5);
    }

    #[test]
    fn xtest_reports_transactional_state() {
        // Outside any transaction (also exercises the no-RTM stub path).
        assert!(!in_rtm_transaction());
        if !rtm_supported() {
            eprintln!("xtest_reports_transactional_state: no RTM, inside-txn check not run");
            return;
        }
        // Inside one (best-effort: tolerate environmental aborts).
        let htm = NativeHtm::new(NativeHtmPolicy::Auto);
        for _ in 0..1000 {
            if let Ok(in_txn) = htm.attempt(|_| Ok(in_rtm_transaction())) {
                assert!(in_txn, "xtest must report ZF=0 inside a transaction");
                return;
            }
        }
        panic!("no attempt committed in 1000 tries");
    }

    #[test]
    fn force_off_always_falls_back() {
        let htm = NativeHtm::new(NativeHtmPolicy::ForceOff);
        assert!(!htm.hw_available());
        assert!(matches!(htm.decision(), HtmDecision::Fallback(_)));
        // And the defensive attempt path classifies as Other.
        let r = htm.attempt(|_| Ok(1u64));
        assert!(matches!(
            r,
            Err(HtmAbortInfo { reason: CpsReason::Other, raw_status: 0 })
        ));
    }

    #[test]
    fn auto_matches_the_probe() {
        let htm = NativeHtm::new(NativeHtmPolicy::Auto);
        assert_eq!(htm.hw_available(), rtm_supported());
        match htm.decision() {
            HtmDecision::Native => assert!(rtm_supported()),
            HtmDecision::Fallback(_) => assert!(!rtm_supported()),
        }
    }

    #[test]
    fn force_on_panics_without_rtm() {
        if rtm_supported() {
            let htm = NativeHtm::new(NativeHtmPolicy::ForceOn);
            assert!(htm.hw_available());
        } else {
            let r = std::panic::catch_unwind(|| NativeHtm::new(NativeHtmPolicy::ForceOn));
            assert!(r.is_err(), "ForceOn must refuse to build without RTM");
        }
    }

    #[test]
    fn native_transactions_commit_and_abort() {
        let htm = NativeHtm::new(NativeHtmPolicy::Auto);
        if !htm.hw_available() {
            eprintln!("native_transactions_commit_and_abort: no RTM, exercising fallback path");
            return;
        }
        let word = AtomicU64::new(5);
        // Commit: the buffered store becomes visible.
        let mut committed = false;
        for _ in 0..1000 {
            let r = htm.attempt(|t| {
                let v = t.read_word(&word, 0)?;
                t.buffered_store(&word, 0, v + 1)?;
                Ok(v)
            });
            if let Ok(v) = r {
                assert_eq!(v, 5);
                committed = true;
                break;
            }
        }
        assert!(committed, "an uncontended RTM transaction should commit within 1000 tries");
        assert_eq!(word.load(Ordering::SeqCst), 6);

        // User abort: the Err channel surfaces EXPLICIT with code 0xAB
        // and the buffered store rolls back.
        let mut aborted = false;
        for _ in 0..1000 {
            let r: Result<(), HtmAbortInfo> = htm.attempt(|t| {
                t.buffered_store(&word, 0, 999)?;
                Err(HwAbort)
            });
            match r {
                Err(info) if info.raw_status & crate::cps::rtm_status::EXPLICIT != 0 => {
                    assert_eq!(info.reason, CpsReason::Explicit);
                    assert_eq!(crate::cps::rtm_status::code(info.raw_status), XABORT_USER as u8);
                    aborted = true;
                    break;
                }
                // Environmental abort before reaching xabort; retry.
                Err(_) => continue,
                Ok(()) => unreachable!("body always aborts"),
            }
        }
        assert!(aborted, "xabort should surface as an explicit abort");
        assert_eq!(word.load(Ordering::SeqCst), 6, "aborted store must roll back");

        // Self-abort: explicit_abort surfaces code 0xCA.
        let mut self_aborted = false;
        for _ in 0..1000 {
            let r: Result<(), HtmAbortInfo> = htm.attempt(|t| Err(t.explicit_abort()));
            if let Err(info) = r {
                if info.raw_status & crate::cps::rtm_status::EXPLICIT != 0 {
                    assert_eq!(
                        crate::cps::rtm_status::code(info.raw_status),
                        XABORT_SW_CONFLICT as u8
                    );
                    self_aborted = true;
                    break;
                }
            }
        }
        assert!(self_aborted, "explicit_abort should surface code 0xCA");
    }
}
