//! Conflict-detection signatures for LogTM-SE.
//!
//! The paper evaluates "LogTM-SE with perfect filters. Though such
//! filters are not implementable in real hardware, they represent an
//! upper bound of how well LogTM-SE can perform" (§4.3). Real LogTM-SE
//! hardware summarizes read/write sets in **Bloom-filter signatures**
//! (Yen et al., HPCA 2007), which admit false positives: two
//! transactions can "conflict" on lines they never both touched.
//!
//! [`Signature`] provides both: [`Signature::Perfect`] (an exact line
//! set — the paper's configuration) and [`Signature::Bloom`] (m-bit,
//! k-hash) for the ablation that quantifies the gap the paper's
//! upper-bound phrasing implies.

use std::collections::HashSet;

/// Signature configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignatureKind {
    /// Exact line sets ("perfect filters", the paper's upper bound).
    Perfect,
    /// Bloom filter with `bits` bits (power of two) and `hashes` hash
    /// functions — what shipped hardware can actually build.
    Bloom { bits: u32, hashes: u32 },
}

impl SignatureKind {
    /// The configuration used by real LogTM-SE proposals: 2048-bit,
    /// 4-hash per-thread signatures.
    pub fn realistic_bloom() -> Self {
        SignatureKind::Bloom { bits: 2048, hashes: 4 }
    }
}

/// A read- or write-set summary.
#[derive(Clone, Debug)]
pub enum Signature {
    Perfect(HashSet<u64>),
    Bloom { words: Vec<u64>, bits: u32, hashes: u32, inserted: u64 },
}

fn mix(line: u64, i: u64) -> u64 {
    // SplitMix-style mixing per hash index: independent-enough hash
    // functions for a Bloom filter.
    let mut z = line ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Signature {
    pub fn new(kind: SignatureKind) -> Self {
        match kind {
            SignatureKind::Perfect => Signature::Perfect(HashSet::new()),
            SignatureKind::Bloom { bits, hashes } => {
                assert!(bits.is_power_of_two(), "Bloom size must be a power of two");
                Signature::Bloom {
                    words: vec![0; (bits as usize).div_ceil(64)],
                    bits,
                    hashes,
                    inserted: 0,
                }
            }
        }
    }

    /// Add a line to the signature.
    pub fn insert(&mut self, line: u64) {
        match self {
            Signature::Perfect(set) => {
                set.insert(line);
            }
            Signature::Bloom { words, bits, hashes, inserted } => {
                for i in 0..*hashes {
                    let bit = mix(line, i as u64) & (*bits as u64 - 1);
                    words[(bit / 64) as usize] |= 1u64 << (bit % 64);
                }
                *inserted += 1;
            }
        }
    }

    /// Whether the signature (possibly falsely) claims to contain `line`.
    pub fn maybe_contains(&self, line: u64) -> bool {
        match self {
            Signature::Perfect(set) => set.contains(&line),
            Signature::Bloom { words, bits, hashes, .. } => (0..*hashes).all(|i| {
                let bit = mix(line, i as u64) & (*bits as u64 - 1);
                words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
            }),
        }
    }

    /// Clear all entries (transaction end).
    pub fn clear(&mut self) {
        match self {
            Signature::Perfect(set) => set.clear(),
            Signature::Bloom { words, inserted, .. } => {
                words.iter_mut().for_each(|w| *w = 0);
                *inserted = 0;
            }
        }
    }

    /// Number of lines inserted (exact for Perfect; insert count for
    /// Bloom).
    pub fn len_hint(&self) -> u64 {
        match self {
            Signature::Perfect(set) => set.len() as u64,
            Signature::Bloom { inserted, .. } => *inserted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_is_exact() {
        let mut s = Signature::new(SignatureKind::Perfect);
        s.insert(10);
        s.insert(99);
        assert!(s.maybe_contains(10));
        assert!(s.maybe_contains(99));
        assert!(!s.maybe_contains(11));
        s.clear();
        assert!(!s.maybe_contains(10));
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut s = Signature::new(SignatureKind::Bloom { bits: 256, hashes: 3 });
        for line in 0..40u64 {
            s.insert(line * 7);
        }
        for line in 0..40u64 {
            assert!(s.maybe_contains(line * 7), "false negative at {}", line * 7);
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_sane() {
        // 2048 bits, 4 hashes, 64 inserted lines → theoretical FP rate
        // ≈ (1 - e^(-4·64/2048))^4 ≈ 0.018. Allow generous slack.
        let mut s = Signature::new(SignatureKind::realistic_bloom());
        for line in 0..64u64 {
            s.insert(line.wrapping_mul(0x10001));
        }
        let fps = (1_000_000u64..1_010_000)
            .filter(|l| s.maybe_contains(*l))
            .count();
        assert!(fps < 600, "false-positive rate too high: {fps}/10000");
        assert!(fps > 0, "a loaded Bloom filter should show some false positives");
    }

    #[test]
    fn bloom_saturates_towards_all_positive() {
        let mut s = Signature::new(SignatureKind::Bloom { bits: 64, hashes: 2 });
        for line in 0..400u64 {
            s.insert(line);
        }
        let hits = (10_000u64..10_100).filter(|l| s.maybe_contains(*l)).count();
        assert!(hits > 90, "a saturated small filter conflicts with almost everything");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bloom_rejects_non_power_of_two() {
        Signature::new(SignatureKind::Bloom { bits: 100, hashes: 2 });
    }

    #[test]
    fn len_hint_tracks_inserts() {
        let mut p = Signature::new(SignatureKind::Perfect);
        p.insert(1);
        p.insert(1);
        assert_eq!(p.len_hint(), 1, "perfect dedups");
        let mut b = Signature::new(SignatureKind::Bloom { bits: 128, hashes: 2 });
        b.insert(1);
        b.insert(1);
        assert_eq!(b.len_hint(), 2, "bloom counts inserts");
    }
}
