//! Hybrid integration on the deterministic simulator: mixed
//! hardware/software executions and the §2.4 interaction rules.

use nztm_core::cm::KarmaDeadlock;
use nztm_core::{NzConfig, Nzstm, TmSys};
use nztm_htm::{AtmtpConfig, BestEffortHtm, HybridConfig, NztmHybrid};
use nztm_sim::{DetRng, Machine, MachineConfig, Platform, SimPlatform};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn setup(cores: usize, atmtp: AtmtpConfig) -> (Arc<Machine>, Arc<SimPlatform>, Arc<NztmHybrid>) {
    let m = Machine::new(MachineConfig::paper(cores));
    let p = SimPlatform::new(Arc::clone(&m));
    let stm = Nzstm::new(Arc::clone(&p), Arc::new(KarmaDeadlock::default()), NzConfig::default());
    let htm = BestEffortHtm::new(Arc::clone(&p), atmtp);
    htm.install();
    let hy = NztmHybrid::new(stm, htm, HybridConfig::default());
    (m, p, hy)
}

fn no_spurious() -> AtmtpConfig {
    AtmtpConfig { spurious_num: 0, ..AtmtpConfig::default() }
}

/// Hardware transactions and software transactions interleave on the
/// same objects without losing updates: half the cores run through the
/// hybrid (mostly hardware), half run raw NZSTM software transactions.
#[test]
fn hardware_and_software_transactions_interoperate() {
    let (m, _p, hy) = setup(4, no_spurious());
    let obj = hy.alloc(0u64);
    let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..4)
        .map(|tid| {
            let hy = Arc::clone(&hy);
            let obj = Arc::clone(&obj);
            Box::new(move || {
                for _ in 0..120 {
                    if tid % 2 == 0 {
                        // Hybrid path (hardware first).
                        hy.execute(|tx| {
                            let v = NztmHybrid::read(tx, &obj)?;
                            NztmHybrid::write(tx, &obj, &(v + 1))
                        });
                    } else {
                        // Pure software path against the same object.
                        hy.stm().run(|tx| tx.update(&obj, |v| *v += 1));
                    }
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    m.run(bodies);
    assert_eq!(obj.read_untracked(), 480, "no lost updates across paths");
    let st = hy.stats_snapshot();
    assert!(st.htm_commits > 0, "hardware carried some load: {st:?}");
    hy.htm().uninstall();
}

/// §2.4: a hardware *writer* must abort when software readers are
/// registered; software read sharing + hardware writes never produce a
/// torn multi-word read.
#[test]
fn hw_writers_respect_sw_readers_consistency() {
    #[derive(Clone, Debug, PartialEq)]
    struct Pair {
        a: u64,
        b: u64,
    }
    nztm_core::tm_data_struct!(Pair { a: u64, b: u64 });

    let (m, _p, hy) = setup(2, no_spurious());
    let obj = hy.alloc(Pair { a: 0, b: 0 });
    let torn = Arc::new(AtomicU64::new(0));
    let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
        {
            let hy = Arc::clone(&hy);
            let obj = Arc::clone(&obj);
            Box::new(move || {
                for i in 1..=300u64 {
                    hy.execute(|tx| NztmHybrid::write(tx, &obj, &Pair { a: i, b: i }));
                }
            })
        },
        {
            let hy = Arc::clone(&hy);
            let obj = Arc::clone(&obj);
            let torn = Arc::clone(&torn);
            Box::new(move || {
                for _ in 0..300 {
                    // Software visible reader.
                    let v = hy.stm().run(|tx| tx.read(&obj));
                    if v.a != v.b {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        },
    ];
    m.run(bodies);
    assert_eq!(torn.load(Ordering::Relaxed), 0, "no torn pair ever observed");
    assert_eq!(obj.read_untracked(), Pair { a: 300, b: 300 });
    hy.htm().uninstall();
}

/// Environmental (CPS "other") aborts do not retry in hardware — they
/// fall straight back to software (§4.3's retry policy).
#[test]
fn other_aborts_skip_hardware_retries() {
    // Spurious rate of 1-in-3 accesses: nearly every hardware attempt
    // dies environmentally.
    let (m, _p, hy) = setup(1, AtmtpConfig { spurious_num: 1, spurious_den: 3, ..AtmtpConfig::default() });
    let obj = hy.alloc(0u64);
    let (h2, o2) = (Arc::clone(&hy), Arc::clone(&obj));
    m.run(vec![Box::new(move || {
        for _ in 0..60 {
            h2.execute(|tx| {
                let v = NztmHybrid::read(tx, &o2)?;
                NztmHybrid::write(tx, &o2, &(v + 1))
            });
        }
    })]);
    let st = hy.stats_snapshot();
    assert_eq!(obj.read_untracked(), 60);
    assert!(st.htm_other_aborts > 0, "{st:?}");
    assert!(st.fallbacks > 0, "environmental aborts must fall back: {st:?}");
    // Retry policy: an Other abort ends the hardware attempts for that
    // transaction, so other-aborts ≼ fallbacks + commits.
    assert!(st.htm_other_aborts <= st.fallbacks + st.htm_commits, "{st:?}");
    hy.htm().uninstall();
}

/// The whole hybrid execution is deterministic on the simulator.
#[test]
fn hybrid_runs_are_deterministic() {
    fn run() -> (u64, u64, u64, u64) {
        let (m, _p, hy) = setup(3, AtmtpConfig::default());
        let objs: Arc<Vec<_>> = Arc::new((0..8).map(|i| hy.alloc(i as u64)).collect());
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..3)
            .map(|tid| {
                let hy = Arc::clone(&hy);
                let objs = Arc::clone(&objs);
                Box::new(move || {
                    let mut rng = DetRng::new(77).split(tid as u64);
                    for _ in 0..100 {
                        let i = rng.next_below(8) as usize;
                        hy.execute(|tx| {
                            let v = NztmHybrid::read(tx, &objs[i])?;
                            NztmHybrid::write(tx, &objs[i], &(v + 1))
                        });
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let r = m.run(bodies);
        let st = hy.stats_snapshot();
        hy.htm().uninstall();
        (r.makespan, st.htm_commits, st.htm_aborts, st.fallbacks)
    }
    assert_eq!(run(), run());
}

/// Read-set capacity: a hardware transaction reading more lines than the
/// L1 can hold takes a Capacity abort and falls back; the software path
/// completes it.
#[test]
fn big_read_sets_fall_back() {
    let m = Machine::new(MachineConfig {
        n_cores: 1,
        hw_cores: 0,
        l1: nztm_sim::CacheConfig::tiny(64, 2),
        l2: nztm_sim::CacheConfig::tiny(4096, 8),
        costs: nztm_sim::CostModel::default(),
        max_cycles: u64::MAX,
    });
    let p = SimPlatform::new(Arc::clone(&m));
    let stm = Nzstm::new(Arc::clone(&p), Arc::new(KarmaDeadlock::default()), NzConfig::default());
    let htm = BestEffortHtm::new(Arc::clone(&p), no_spurious());
    htm.install();
    let hy = NztmHybrid::new(stm, htm, HybridConfig::default());
    let objs: Arc<Vec<_>> = Arc::new((0..200).map(|i| hy.alloc(i as u64)).collect());
    let (h2, o2) = (Arc::clone(&hy), Arc::clone(&objs));
    m.run(vec![Box::new(move || {
        let total = h2.execute(|tx| {
            let mut sum = 0u64;
            for o in o2.iter() {
                sum += NztmHybrid::read(tx, o)?;
            }
            Ok(sum)
        });
        assert_eq!(total, (0..200u64).sum::<u64>());
    })]);
    let st = hy.stats_snapshot();
    assert!(st.htm_capacity_aborts > 0, "{st:?}");
    assert_eq!(st.fallbacks, 1, "{st:?}");
    hy.htm().uninstall();
    let _ = p.n_cores();
}
