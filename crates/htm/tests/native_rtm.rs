//! The native-HTM battery (`htm-native` feature, `required-features`
//! gated).
//!
//! Runtime-adaptive, never silently skipped: on a host with RTM the
//! hybrid runs real hardware transactions and must commit some of them;
//! on a host without RTM the very same battery runs through the
//! transparent software fallback and must prove the fallback decision
//! was taken. Either way the decision is logged to stderr so CI
//! artifacts show which path a run exercised.

use nztm_core::{NativeHtmPolicy, NzBuilder, TmSys};
use nztm_htm::backend::HtmBackend;
use nztm_htm::native::{rtm_supported, HtmDecision, NativeHtm};
use nztm_htm::{HybridConfig, NztmHybrid};
use nztm_sim::Native;
use std::sync::Arc;

type NativeHybrid = NztmHybrid<Native, NativeHtm>;

fn build_hybrid(policy: NativeHtmPolicy, threads: usize) -> Arc<NativeHybrid> {
    let platform = Native::new(threads);
    platform.register_thread_as(0);
    let stm = NzBuilder::new(Arc::clone(&platform)).native_htm(policy).build_nzstm();
    let htm = NativeHtm::new(stm.native_htm_policy());
    eprintln!(
        "native_rtm battery: policy {policy:?} -> {} ({} threads)",
        htm.decision().describe(),
        threads
    );
    NztmHybrid::new(stm, htm, HybridConfig::default())
}

/// Run `threads × iters` increments of one shared counter and return
/// the stats. The workload is identical on the native and the fallback
/// path — only the backend decision differs.
fn increment_battery(hy: &Arc<NativeHybrid>, threads: usize, iters: u64) -> nztm_core::TmStats {
    let counter = hy.alloc(0u64);
    std::thread::scope(|s| {
        for t in 0..threads {
            let hy = Arc::clone(hy);
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                hy.stm().platform().register_thread_as(t);
                for _ in 0..iters {
                    hy.execute(|tx| {
                        let v = NativeHybrid::read(tx, &counter)?;
                        NativeHybrid::write(tx, &counter, &(v + 1))
                    });
                }
            });
        }
    });
    assert_eq!(counter.read_untracked(), threads as u64 * iters, "conservation");
    hy.stats_snapshot()
}

#[test]
fn auto_policy_battery_native_or_fallback() {
    let threads = 4;
    let hy = build_hybrid(NativeHtmPolicy::Auto, threads);
    let native = hy.htm().hw_available();
    let st = increment_battery(&hy, threads, 500);
    let total = threads as u64 * 500;
    assert_eq!(st.commits, total, "{st:?}");
    if native {
        assert!(rtm_supported());
        // Real silicon: some transactions must land on the hardware
        // path (uncontended increments essentially always do).
        assert!(st.htm_commits > 0, "RTM host but zero hw commits: {st:?}");
        eprintln!(
            "native path: {}/{} hw commits ({} conflict / {} capacity / {} explicit / {} other aborts, {} fallbacks)",
            st.htm_commits, total, st.htm_conflict_aborts, st.htm_capacity_aborts,
            st.htm_explicit_aborts, st.htm_other_aborts, st.fallbacks
        );
    } else {
        assert!(!rtm_supported(), "fallback decision on an RTM-capable host");
        assert!(matches!(hy.htm().decision(), HtmDecision::Fallback(_)));
        // The fallback is transparent: zero hardware activity, zero
        // "fallbacks" (nothing fell — software is the primary path).
        assert_eq!(st.htm_commits, 0, "{st:?}");
        assert_eq!(st.htm_aborts, 0, "{st:?}");
        assert_eq!(st.fallbacks, 0, "{st:?}");
        eprintln!("fallback path proved: all {total} commits software, zero hw attempts");
    }
}

#[test]
fn force_off_is_all_software_even_on_rtm_hosts() {
    let threads = 2;
    let hy = build_hybrid(NativeHtmPolicy::ForceOff, threads);
    assert!(!hy.htm().hw_available());
    let st = increment_battery(&hy, threads, 300);
    assert_eq!(st.commits, 600, "{st:?}");
    assert_eq!(st.htm_commits, 0, "{st:?}");
    assert_eq!(st.htm_aborts, 0, "{st:?}");
    assert_eq!(st.fallbacks, 0, "{st:?}");
}

#[test]
fn force_off_matches_plain_software_engine() {
    // Conformance: the hybrid with the native path forced off must
    // produce the same final state and the same commit count as the
    // bare software engine on the same workload — the fallback is the
    // unmodified NZSTM, not a third algorithm.
    let threads = 2;
    let iters = 250u64;

    let hy = build_hybrid(NativeHtmPolicy::ForceOff, threads);
    let hy_st = increment_battery(&hy, threads, iters);

    let platform = Native::new(threads);
    platform.register_thread_as(0);
    let stm = NzBuilder::new(Arc::clone(&platform)).build_nzstm();
    let counter = stm.new_obj(0u64);
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let counter = Arc::clone(&counter);
            let platform = Arc::clone(&platform);
            s.spawn(move || {
                platform.register_thread_as(t);
                for _ in 0..iters {
                    stm.run(|tx| {
                        let v = tx.read(&counter)?;
                        tx.write(&counter, &(v + 1))
                    });
                }
            });
        }
    });
    assert_eq!(counter.read_untracked(), threads as u64 * iters);
    let sw_st = stm.stats_snapshot();

    assert_eq!(hy_st.commits, sw_st.commits);
    assert_eq!(hy_st.htm_commits, 0);
    assert_eq!(hy_st.fallbacks, 0);
}

#[test]
fn capacity_pressure_falls_back_and_classifies() {
    let hy = build_hybrid(NativeHtmPolicy::Auto, 1);
    if !hy.htm().hw_available() {
        eprintln!("capacity_pressure: no RTM, fallback-only host — nothing to classify");
        return;
    }
    // One transaction touching far more lines than any L1 can buffer:
    // the hardware attempt must die with CAPACITY (or an environmental
    // abort) and the software path must complete it.
    let objs: Vec<_> = (0..8192).map(|i| hy.alloc(i as u64)).collect();
    hy.execute(|tx| {
        for o in objs.iter() {
            let v = NativeHybrid::read(tx, o)?;
            NativeHybrid::write(tx, o, &(v + 1))?;
        }
        Ok(())
    });
    assert_eq!(objs[8191].read_untracked(), 8192);
    let st = hy.stats_snapshot();
    assert_eq!(st.commits, 1, "{st:?}");
    assert!(st.fallbacks >= 1, "oversized txn must fall back: {st:?}");
    assert!(st.htm_aborts >= 1, "{st:?}");
    eprintln!(
        "capacity pressure: {} hw aborts ({} capacity / {} conflict / {} explicit / {} other)",
        st.htm_aborts, st.htm_capacity_aborts, st.htm_conflict_aborts, st.htm_explicit_aborts,
        st.htm_other_aborts
    );
}

#[test]
fn contended_counter_is_conserved_under_native_htm() {
    // The §2.4 mixed-mode safety property on real silicon: heavy
    // same-word contention, every increment must survive whichever
    // path (hw or sw) commits it.
    let threads = 8;
    let hy = build_hybrid(NativeHtmPolicy::Auto, threads);
    let st = increment_battery(&hy, threads, 1000);
    assert_eq!(st.commits, 8000, "{st:?}");
    if hy.htm().hw_available() {
        eprintln!(
            "contended: {} hw commits, {} fallbacks, {} hw aborts",
            st.htm_commits, st.fallbacks, st.htm_aborts
        );
    }
}
