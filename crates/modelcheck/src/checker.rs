//! Generic explicit-state model checker: exhaustive DFS over
//! interleavings with hashed deduplication.
//!
//! The interface mirrors what SPIN provides for Promela models at the
//! scale the paper used it (§3): complete state-space search, deadlock
//! detection ("invalid end states"), terminal-state assertions, and
//! statement-coverage reporting ("unreachable code").

use std::collections::HashSet;
use std::hash::Hash;

/// A model: a state type plus its transition relation.
pub trait Model {
    /// Full system state. Equality/hashing define state identity.
    type State: Clone + Eq + Hash;
    /// Label identifying a transition *kind* (for coverage reports).
    type Label: Clone + Eq + Hash + std::fmt::Debug;

    fn initial(&self) -> Self::State;

    /// All enabled transitions from `s`, as `(label, successor)` pairs.
    /// An empty vector means `s` is terminal.
    fn step(&self, s: &Self::State) -> Vec<(Self::Label, Self::State)>;

    /// Whether a terminal state is a *valid* end state (all work done).
    /// Terminal states failing this are deadlocks.
    fn is_valid_end(&self, s: &Self::State) -> bool;

    /// Safety property checked on **every** reachable state; return
    /// `Err(description)` to report a violation.
    fn check_invariant(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// Property checked on every *valid end* state.
    fn check_end(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }
}

/// Result of an exhaustive search.
#[derive(Debug)]
pub struct CheckOutcome<L> {
    /// Distinct states explored.
    pub states: usize,
    /// Transitions taken (edges).
    pub transitions: usize,
    /// Valid end states found.
    pub end_states: usize,
    /// Deadlocked states (terminal but not valid ends). Empty = pass.
    pub deadlocks: usize,
    /// Transition labels never exercised (from `all_labels`), if the
    /// caller supplied the universe; otherwise empty.
    pub uncovered: Vec<L>,
    /// Labels that were exercised.
    pub covered: HashSet<L>,
    /// First safety violation encountered, if any.
    pub violation: Option<String>,
}

impl<L> CheckOutcome<L> {
    /// Whether the model passed: no deadlock, no violation.
    pub fn passed(&self) -> bool {
        self.deadlocks == 0 && self.violation.is_none()
    }
}

/// The checker. Bounded by `max_states` as a safety net (the paper hit
/// SPIN's memory limits at four threads; we surface the same situation
/// explicitly instead of thrashing).
pub struct Checker {
    pub max_states: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker { max_states: 20_000_000 }
    }
}

impl Checker {
    /// Exhaustively explore `model`'s state space.
    ///
    /// Panics if `max_states` is exceeded (the search is then not a
    /// complete verification, and the caller should shrink the model).
    pub fn run<M: Model>(&self, model: &M) -> CheckOutcome<M::Label> {
        let mut visited: HashSet<M::State> = HashSet::new();
        let mut stack: Vec<M::State> = Vec::new();
        let mut covered: HashSet<M::Label> = HashSet::new();
        let mut transitions = 0usize;
        let mut end_states = 0usize;
        let mut deadlocks = 0usize;
        let mut violation = None;

        let init = model.initial();
        visited.insert(init.clone());
        stack.push(init);

        while let Some(s) = stack.pop() {
            if let Err(e) = model.check_invariant(&s) {
                violation.get_or_insert(e);
                continue;
            }
            let succs = model.step(&s);
            if succs.is_empty() {
                if model.is_valid_end(&s) {
                    end_states += 1;
                    if let Err(e) = model.check_end(&s) {
                        violation.get_or_insert(e);
                    }
                } else {
                    deadlocks += 1;
                }
                continue;
            }
            for (label, succ) in succs {
                transitions += 1;
                covered.insert(label);
                if visited.insert(succ.clone()) {
                    assert!(
                        visited.len() <= self.max_states,
                        "state space exceeds {} states — shrink the model",
                        self.max_states
                    );
                    stack.push(succ);
                }
            }
        }

        CheckOutcome {
            states: visited.len(),
            transitions,
            end_states,
            deadlocks,
            uncovered: Vec::new(),
            covered,
            violation,
        }
    }

    /// Like [`Checker::run`], additionally reporting which of
    /// `all_labels` were never exercised (the paper's "all code paths
    /// are taken at least once").
    pub fn run_with_coverage<M: Model>(
        &self,
        model: &M,
        all_labels: &[M::Label],
    ) -> CheckOutcome<M::Label> {
        let mut out = self.run(model);
        out.uncovered =
            all_labels.iter().filter(|l| !out.covered.contains(l)).cloned().collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: two counters incremented to 2 by two "threads"; a
    /// `blocking` flag makes thread 1 wait for thread 0 forever (to test
    /// deadlock detection).
    struct Toy {
        deadlocky: bool,
    }

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct ToyState {
        a: u8,
        b: u8,
    }

    impl Model for Toy {
        type State = ToyState;
        type Label = &'static str;

        fn initial(&self) -> ToyState {
            ToyState { a: 0, b: 0 }
        }

        fn step(&self, s: &ToyState) -> Vec<(&'static str, ToyState)> {
            let mut v = Vec::new();
            if s.a < 2 {
                v.push(("inc-a", ToyState { a: s.a + 1, b: s.b }));
            }
            // In the deadlocky variant, b may only move after a is done —
            // and never completes (stuck at 1).
            if s.b < 2 {
                let enabled = if self.deadlocky { s.a == 2 && s.b == 0 } else { true };
                if enabled {
                    v.push(("inc-b", ToyState { a: s.a, b: s.b + 1 }));
                }
            }
            v
        }

        fn is_valid_end(&self, s: &ToyState) -> bool {
            s.a == 2 && s.b == 2
        }

        fn check_invariant(&self, s: &ToyState) -> Result<(), String> {
            if s.a > 2 || s.b > 2 {
                Err("counter overflow".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn explores_all_interleavings() {
        let out = Checker::default().run(&Toy { deadlocky: false });
        // States: (a,b) in 0..=2 × 0..=2 = 9.
        assert_eq!(out.states, 9);
        assert_eq!(out.end_states, 1);
        assert_eq!(out.deadlocks, 0);
        assert!(out.passed());
        assert!(out.covered.contains("inc-a") && out.covered.contains("inc-b"));
    }

    #[test]
    fn detects_deadlock() {
        let out = Checker::default().run(&Toy { deadlocky: true });
        assert!(out.deadlocks > 0, "b stuck at 1 must be reported");
        assert!(!out.passed());
    }

    #[test]
    fn coverage_reports_unreachable_labels() {
        let out = Checker::default()
            .run_with_coverage(&Toy { deadlocky: false }, &["inc-a", "inc-b", "never"]);
        assert_eq!(out.uncovered, vec!["never"]);
    }

    #[test]
    #[should_panic(expected = "state space exceeds")]
    fn state_bound_is_enforced() {
        let c = Checker { max_states: 3 };
        c.run(&Toy { deadlocky: false });
    }
}
