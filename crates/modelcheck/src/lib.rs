//! # nztm-modelcheck — explicit-state model checking for NZSTM (§3)
//!
//! The paper: "we created a model of the algorithm in Promela and
//! mechanically checked various useful properties of it using SPIN …
//! complete state-space searches for up to three concurrent threads,
//! each thread accessing up to three objects … all code paths are taken
//! at least once, no deadlocks occur, and no cycles (livelock) occur."
//!
//! SPIN is external tooling; this crate substitutes a small explicit-
//! state checker written directly in Rust:
//!
//! * [`checker`] — a generic exhaustive-DFS engine over interleavings of
//!   atomic steps, with hashed state deduplication, deadlock detection,
//!   terminal-state property checks, and transition-coverage reporting.
//! * [`model`] — a Promela-style model of the NZSTM protocol: the
//!   Status+AbortNowPlease word, exclusive acquisition with backup and
//!   lazy restore, the abort-request handshake, inflation past
//!   unresponsive owners, deflation, and commit — plus a *blocking*
//!   variant (BZSTM) and a *crash* action that makes a thread
//!   permanently unresponsive.
//!
//! The headline result the paper's §3 claims — and tests here verify —
//! is exactly the nonblocking property: with a crashed (unresponsive)
//! owner, the **blocking model deadlocks** and the **NZSTM model does
//! not**, while both are serializable when everyone is responsive.

pub mod checker;
pub mod model;

pub use checker::{CheckOutcome, Checker, Model};
pub use model::{NzModel, NzModelConfig, ProtocolMode};
