//! A Promela-style model of the NZSTM protocol (§2.2–§2.3), checked
//! exhaustively by [`crate::checker`].
//!
//! The model captures the protocol's essential atoms at the granularity
//! the paper's SPIN model used: the Status+AbortNowPlease word, the
//! owner word with its two interpretations, backup creation *as a
//! separate step* from acquisition (so the "became unresponsive in the
//! process of acquiring" footnote-1 case is reachable), lazy restore,
//! the abort-request/acknowledge handshake, **late writes** (a requested
//! transaction may still store before acknowledging — the hazard the
//! whole design revolves around), inflation, SCSS stealing, and commit.
//! Each thread runs one transaction that increments a fixed list of
//! objects; threads may **crash** (become permanently unresponsive)
//! while holding objects.
//!
//! The central invariant is checked on **every reachable state**: each
//! object's *logical value* — derived exactly as the algorithm derives
//! it (locator new/old by owner status; else backup under a live or
//! aborted owner; else the in-place data) — equals the number of
//! committed transactions that wrote it. For this increment workload
//! that is serializability, strengthened to hold at every commit
//! linearization point.
//!
//! Expected verdicts (asserted by the crate's tests):
//!
//! * all three modes are serializable and deadlock-free without crashes;
//! * with a crashed owner, `Blocking` **deadlocks** while `Nzstm` and
//!   `Scss` still reach valid end states with no deadlock — the paper's
//!   nonblocking claim;
//! * turning off SCSS store pairing (`scss_pairing = false`) makes the
//!   checker find a serializability violation — i.e. the model is
//!   strong enough to catch the bug the mechanism exists to prevent.

use crate::checker::Model;

/// Which protocol variant to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMode {
    /// §2.2: wait indefinitely for abort acknowledgements.
    Blocking,
    /// §2.3.1: inflate past unresponsive owners.
    Nzstm,
    /// §2.3.2: SCSS-paired stores; steal after the barrier.
    Scss,
}

/// Generation of a descriptor referenced by an owner word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gen {
    /// The thread's current attempt (descriptor possibly still Active).
    Current,
    OldCommitted,
    OldAborted,
}

/// The owner word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    None,
    Txn { tid: u8, gen: Gen },
    /// Inflated: locator owner + the unresponsive transaction's thread
    /// (`victim`) whose acknowledgement enables deflation.
    Loc { tid: u8, gen: Gen, victim: u8, victim_acked: bool },
}

/// One transactional object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Obj {
    pub owner: Owner,
    pub data: u8,
    pub backup: Option<u8>,
    pub loc_old: u8,
    pub loc_new: u8,
}

/// Thread execution status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TStatus {
    Active { anp: bool },
    Committed,
    /// Acknowledged abort, about to retry (transient).
    Aborted,
    /// Exceeded the retry bound and stopped. Keeps the state space
    /// finite — mirroring the paper's observation that livelocking
    /// retries never revisit a state because descriptors are fresh.
    GaveUp,
}

/// Program counter within the current attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pc {
    /// Examine object `op`'s owner and try to acquire.
    Acquire,
    /// Create the backup copy (separate step: crashing here makes the
    /// footnote-1 no-backup inflation path reachable).
    MakeBackup,
    /// Waiting for an acknowledgement from the requested owner.
    AwaitAck,
    /// Perform the in-place (or locator) write for object `op`.
    Write,
    /// Attempt to commit.
    Commit,
}

/// One thread's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Thr {
    pub status: TStatus,
    pub pc: Pc,
    /// Index into this thread's write list.
    pub op: u8,
    pub attempt: u8,
    pub crashed: bool,
    /// Whether the current op's acquisition went through a locator.
    pub via_locator: bool,
}

/// Full system state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NzState {
    pub objs: Vec<Obj>,
    pub thr: Vec<Thr>,
}

/// Model configuration.
#[derive(Clone, Debug)]
pub struct NzModelConfig {
    pub mode: ProtocolMode,
    /// Per-thread write lists (each thread runs one transaction that
    /// increments these objects in order).
    pub writes: Vec<Vec<u8>>,
    /// Thread allowed to crash (at any Active point), if any.
    pub crash_tid: Option<u8>,
    /// Retry bound per thread.
    pub max_attempts: u8,
    /// Whether SCSS stores are paired with the AbortNowPlease check.
    /// `false` exists only to demonstrate the checker catches the
    /// resulting lost-update bug.
    pub scss_pairing: bool,
}

impl NzModelConfig {
    pub fn new(mode: ProtocolMode, writes: Vec<Vec<u8>>) -> Self {
        NzModelConfig { mode, writes, crash_tid: None, max_attempts: 3, scss_pairing: true }
    }

    pub fn with_crash(mut self, tid: u8) -> Self {
        self.crash_tid = Some(tid);
        self
    }

    pub fn n_objs(&self) -> usize {
        1 + self.writes.iter().flatten().copied().max().unwrap_or(0) as usize
    }
}

/// The NZSTM protocol model.
pub struct NzModel {
    pub cfg: NzModelConfig,
}

/// All transition labels (for coverage reports).
pub const ALL_LABELS: &[&str] = &[
    "acquire",
    "make-backup",
    "restore-and-adopt",
    "request-abort",
    "ack-observed",
    "inflate",
    "acquire-locator",
    "request-abort-locator",
    "scss-steal",
    "write",
    "write-locator",
    "late-write",
    "scss-late-store-fails",
    "deflate",
    "commit",
    "abort-ack",
    "retry",
    "give-up",
    "crash",
];

impl NzModel {
    /// The object's logical value, derived the way the algorithm does.
    fn logical(&self, o: &Obj) -> u8 {
        match o.owner {
            Owner::Loc { gen, .. } => {
                if gen == Gen::OldCommitted {
                    o.loc_new
                } else {
                    o.loc_old
                }
            }
            Owner::Txn { gen: Gen::OldCommitted, .. } | Owner::None => o.data,
            Owner::Txn { .. } => o.backup.unwrap_or(o.data),
        }
    }

    /// Settle all owner-word references to `tid`'s current attempt (the
    /// model's stand-in for the descriptor's status-word transition).
    fn settle(st: &mut NzState, tid: u8, committed: bool) {
        let gen = if committed { Gen::OldCommitted } else { Gen::OldAborted };
        for o in &mut st.objs {
            match &mut o.owner {
                Owner::Txn { tid: t, gen: g } if *t == tid && *g == Gen::Current => *g = gen,
                Owner::Loc { tid: t, gen: g, .. } if *t == tid && *g == Gen::Current => *g = gen,
                _ => {}
            }
        }
    }
}

impl Model for NzModel {
    type State = NzState;
    type Label = &'static str;

    fn initial(&self) -> NzState {
        NzState {
            objs: vec![
                Obj { owner: Owner::None, data: 0, backup: None, loc_old: 0, loc_new: 0 };
                self.cfg.n_objs()
            ],
            thr: vec![
                Thr {
                    status: TStatus::Active { anp: false },
                    pc: Pc::Acquire,
                    op: 0,
                    attempt: 1,
                    crashed: false,
                    via_locator: false,
                };
                self.cfg.writes.len()
            ],
        }
    }

    fn step(&self, s: &NzState) -> Vec<(&'static str, NzState)> {
        let mut out = Vec::new();
        for tid in 0..s.thr.len() as u8 {
            self.thread_steps(s, tid, &mut out);
        }
        out
    }

    fn is_valid_end(&self, s: &NzState) -> bool {
        s.thr
            .iter()
            .all(|t| matches!(t.status, TStatus::Committed | TStatus::GaveUp) || t.crashed)
    }

    fn check_invariant(&self, s: &NzState) -> Result<(), String> {
        for (i, o) in s.objs.iter().enumerate() {
            let committed_writes = self
                .cfg
                .writes
                .iter()
                .enumerate()
                .filter(|(t, ws)| {
                    s.thr[*t].status == TStatus::Committed && ws.contains(&(i as u8))
                })
                .count() as u8;
            let logical = self.logical(o);
            if logical != committed_writes {
                return Err(format!(
                    "object {i}: logical value {logical} != {committed_writes} committed writes"
                ));
            }
        }
        Ok(())
    }
}

impl NzModel {
    #[allow(clippy::too_many_lines)]
    fn thread_steps(&self, s: &NzState, tid: u8, out: &mut Vec<(&'static str, NzState)>) {
        let t = s.thr[tid as usize];
        if t.crashed || matches!(t.status, TStatus::Committed | TStatus::GaveUp) {
            return;
        }

        // Crash: enabled for the configured thread at any active point.
        if self.cfg.crash_tid == Some(tid) && matches!(t.status, TStatus::Active { .. }) {
            let mut n = s.clone();
            n.thr[tid as usize].crashed = true;
            out.push(("crash", n));
        }

        let writes = &self.cfg.writes[tid as usize];
        let oi = writes.get(t.op as usize).copied().unwrap_or(0) as usize;

        // A transaction whose AbortNowPlease flag is set may still issue
        // its pending store (a *late write*) before acknowledging — the
        // hazard window between the request and the acknowledgement.
        if let TStatus::Active { anp: true } = t.status {
            if t.pc == Pc::Write {
                let mut n = s.clone();
                let label;
                if self.cfg.mode == ProtocolMode::Scss && self.cfg.scss_pairing {
                    // SCSS pairs the store with the ANP check: it fails.
                    label = "scss-late-store-fails";
                } else if t.via_locator {
                    // Our store targets *our* locator's private new-data
                    // buffer. If our locator is still installed, that is
                    // the object's loc_new; if it was replaced (a
                    // competitor acquired past us), the buffer is
                    // unreachable garbage and the store hits nothing the
                    // system can observe.
                    if matches!(s.objs[oi].owner, Owner::Loc { tid: lt, gen: Gen::Current, .. } if lt == tid)
                    {
                        n.objs[oi].loc_new = s.objs[oi].loc_new.wrapping_add(1);
                    }
                    label = "late-write";
                } else {
                    // In-place late write: lands in `data`, which is
                    // exactly why waiters must await the ack (blocking),
                    // inflate (NZSTM), or pair stores (SCSS).
                    n.objs[oi].data = s.objs[oi].data.wrapping_add(1);
                    label = "late-write";
                }
                let nt = &mut n.thr[tid as usize];
                nt.op += 1;
                nt.via_locator = false;
                nt.pc = if (nt.op as usize) < writes.len() { Pc::Acquire } else { Pc::Commit };
                out.push((label, n));
            }
            // Acknowledge the abort.
            let mut n = s.clone();
            Self::settle(&mut n, tid, false);
            for o in &mut n.objs {
                if let Owner::Loc { victim, victim_acked, .. } = &mut o.owner {
                    if *victim == tid {
                        *victim_acked = true;
                    }
                }
            }
            n.thr[tid as usize].status = TStatus::Aborted;
            out.push(("abort-ack", n));
            return;
        }

        // Retry / give up after an acknowledged abort.
        if t.status == TStatus::Aborted {
            if t.attempt < self.cfg.max_attempts {
                let mut n = s.clone();
                let nt = &mut n.thr[tid as usize];
                nt.status = TStatus::Active { anp: false };
                nt.pc = Pc::Acquire;
                nt.op = 0;
                nt.attempt += 1;
                nt.via_locator = false;
                out.push(("retry", n));
            } else {
                let mut n = s.clone();
                n.thr[tid as usize].status = TStatus::GaveUp;
                out.push(("give-up", n));
            }
            return;
        }

        let o = s.objs[oi];
        match t.pc {
            Pc::Acquire => match o.owner {
                Owner::None | Owner::Txn { gen: Gen::OldCommitted, .. } => {
                    let mut n = s.clone();
                    n.objs[oi].owner = Owner::Txn { tid, gen: Gen::Current };
                    n.objs[oi].backup = None;
                    n.thr[tid as usize].pc = Pc::MakeBackup;
                    n.thr[tid as usize].via_locator = false;
                    out.push(("acquire", n));
                }
                Owner::Txn { gen: Gen::OldAborted, .. } => {
                    let mut n = s.clone();
                    if let Some(b) = o.backup {
                        // Lazy restore; the restored backup is adopted as
                        // our own (§2.2).
                        n.objs[oi].data = b;
                        n.objs[oi].owner = Owner::Txn { tid, gen: Gen::Current };
                        n.thr[tid as usize].pc = Pc::Write;
                        n.thr[tid as usize].via_locator = false;
                        out.push(("restore-and-adopt", n));
                    } else {
                        n.objs[oi].owner = Owner::Txn { tid, gen: Gen::Current };
                        n.thr[tid as usize].pc = Pc::MakeBackup;
                        n.thr[tid as usize].via_locator = false;
                        out.push(("acquire", n));
                    }
                }
                Owner::Txn { tid: other, gen: Gen::Current } => {
                    debug_assert_ne!(other, tid, "self-owned object mid-acquire");
                    let mut n = s.clone();
                    if let TStatus::Active { anp: false } = s.thr[other as usize].status {
                        n.thr[other as usize].status = TStatus::Active { anp: true };
                    }
                    n.thr[tid as usize].pc = Pc::AwaitAck;
                    out.push(("request-abort", n));
                }
                Owner::Loc { tid: lt, gen, victim, victim_acked } => {
                    debug_assert_eq!(
                        self.cfg.mode,
                        ProtocolMode::Nzstm,
                        "only NZSTM inflates"
                    );
                    if gen == Gen::Current && lt != tid {
                        if let TStatus::Active { anp: false } = s.thr[lt as usize].status {
                            // Live locator owner: request its abort.
                            let mut n = s.clone();
                            n.thr[lt as usize].status = TStatus::Active { anp: true };
                            out.push(("request-abort-locator", n));
                        } else {
                            // ANP'd: as good as aborted — its stores land
                            // in its private new buffer. Replace the
                            // locator (DSTM), carrying the victim.
                            let mut n = s.clone();
                            let value = o.loc_old;
                            n.objs[oi].owner =
                                Owner::Loc { tid, gen: Gen::Current, victim, victim_acked };
                            n.objs[oi].loc_old = value;
                            n.objs[oi].loc_new = value;
                            n.thr[tid as usize].pc = Pc::Write;
                            n.thr[tid as usize].via_locator = true;
                            out.push(("acquire-locator", n));
                        }
                    } else if gen != Gen::Current {
                        let value = if gen == Gen::OldCommitted { o.loc_new } else { o.loc_old };
                        if victim_acked {
                            // Deflate (§2.3.1, collapsed to the observable
                            // atom): backup := valid data, owner := our
                            // transaction in place, data := valid.
                            let mut n = s.clone();
                            n.objs[oi].owner = Owner::Txn { tid, gen: Gen::Current };
                            n.objs[oi].backup = Some(value);
                            n.objs[oi].data = value;
                            n.thr[tid as usize].pc = Pc::Write;
                            n.thr[tid as usize].via_locator = false;
                            out.push(("deflate", n));
                        } else {
                            let mut n = s.clone();
                            n.objs[oi].owner =
                                Owner::Loc { tid, gen: Gen::Current, victim, victim_acked };
                            n.objs[oi].loc_old = value;
                            n.objs[oi].loc_new = value;
                            n.thr[tid as usize].pc = Pc::Write;
                            n.thr[tid as usize].via_locator = true;
                            out.push(("acquire-locator", n));
                        }
                    }
                    // gen == Current && lt == tid cannot happen: our pc
                    // would be Write, not Acquire.
                }
            },
            Pc::MakeBackup => {
                let mut n = s.clone();
                n.objs[oi].backup = Some(o.data);
                n.thr[tid as usize].pc = Pc::Write;
                out.push(("make-backup", n));
            }
            Pc::AwaitAck => match o.owner {
                // §2.3.1 pre-CAS check: "the unresponsive transaction is
                // still unresponsive" — the owner must be Active with its
                // AbortNowPlease set. A Current owner that is *not* ANP'd
                // is a fresh, healthy attempt of the same thread (our
                // victim acknowledged and retried); re-examine instead.
                Owner::Txn { tid: other, gen: Gen::Current }
                    if other != tid
                        && matches!(
                            s.thr[other as usize].status,
                            TStatus::Active { anp: true }
                        ) =>
                {
                    match self.cfg.mode {
                        ProtocolMode::Blocking => { /* blocked until the ack */ }
                        ProtocolMode::Nzstm => {
                            // Inflate: old data = the victim's backup, or
                            // the raw data if it never installed one
                            // (footnote 1).
                            let mut n = s.clone();
                            let old = o.backup.unwrap_or(o.data);
                            n.objs[oi].owner = Owner::Loc {
                                tid,
                                gen: Gen::Current,
                                victim: other,
                                victim_acked: false,
                            };
                            n.objs[oi].loc_old = old;
                            n.objs[oi].loc_new = old;
                            n.thr[tid as usize].pc = Pc::Write;
                            n.thr[tid as usize].via_locator = true;
                            out.push(("inflate", n));
                        }
                        ProtocolMode::Scss => {
                            // Barrier + steal: future victim stores fail.
                            let mut n = s.clone();
                            if let Some(b) = o.backup {
                                n.objs[oi].data = b;
                                n.objs[oi].owner = Owner::Txn { tid, gen: Gen::Current };
                                n.thr[tid as usize].pc = Pc::Write;
                            } else {
                                n.objs[oi].owner = Owner::Txn { tid, gen: Gen::Current };
                                n.thr[tid as usize].pc = Pc::MakeBackup;
                            }
                            n.thr[tid as usize].via_locator = false;
                            out.push(("scss-steal", n));
                        }
                    }
                }
                _ => {
                    let mut n = s.clone();
                    n.thr[tid as usize].pc = Pc::Acquire;
                    out.push(("ack-observed", n));
                }
            },
            Pc::Write => {
                let mut n = s.clone();
                let label = if t.via_locator {
                    n.objs[oi].loc_new = o.loc_new + 1;
                    "write-locator"
                } else {
                    n.objs[oi].data = o.data + 1;
                    "write"
                };
                let nt = &mut n.thr[tid as usize];
                nt.op += 1;
                nt.via_locator = false;
                nt.pc = if (nt.op as usize) < writes.len() { Pc::Acquire } else { Pc::Commit };
                out.push((label, n));
            }
            Pc::Commit => {
                let mut n = s.clone();
                Self::settle(&mut n, tid, true);
                n.thr[tid as usize].status = TStatus::Committed;
                out.push(("commit", n));
            }
        }
    }
}
