//! Randomized model checking: random small protocol configurations
//! must all verify. This widens §3's hand-picked configurations to a
//! seeded-random family (still exhaustively checked per configuration).

use nztm_modelcheck::model::NzModelConfig;
use nztm_modelcheck::{Checker, NzModel, ProtocolMode};

/// SplitMix64 — inlined so this crate keeps zero dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn arb_writes(rng: &mut Rng) -> Vec<Vec<u8>> {
    // 2 threads, each writing 1-2 of 2 objects, arbitrary order, no
    // duplicate objects within a transaction.
    let choices: [&[u8]; 4] = [&[0], &[1], &[0, 1], &[1, 0]];
    (0..2).map(|_| choices[rng.below(4) as usize].to_vec()).collect()
}

fn arb_mode(rng: &mut Rng) -> ProtocolMode {
    match rng.below(3) {
        0 => ProtocolMode::Blocking,
        1 => ProtocolMode::Nzstm,
        _ => ProtocolMode::Scss,
    }
}

/// Without crashes, every mode × write-list combination is
/// serializable and deadlock-free.
#[test]
fn random_configs_verify() {
    // Each case is a full exhaustive model check; keep the count modest.
    let mut rng = Rng(0xF022_0001);
    for case in 0..24 {
        let mode = arb_mode(&mut rng);
        let writes = arb_writes(&mut rng);
        let mut cfg = NzModelConfig::new(mode, writes);
        cfg.max_attempts = 2;
        let out = Checker::default().run(&NzModel { cfg });
        assert!(out.violation.is_none(), "case {case}: violation: {:?}", out.violation);
        assert_eq!(out.deadlocks, 0, "case {case}");
        assert!(out.end_states > 0, "case {case}");
    }
}

/// With a crashing thread, the nonblocking modes stay deadlock-free
/// and serializable (the blocking mode is covered by the directed
/// tests — it deadlocks by design).
#[test]
fn random_crash_configs_stay_nonblocking() {
    let mut rng = Rng(0xF022_0002);
    for case in 0..24 {
        let mode = if rng.below(2) == 0 { ProtocolMode::Nzstm } else { ProtocolMode::Scss };
        let writes = arb_writes(&mut rng);
        let crash = rng.below(2) as u8;
        let mut cfg = NzModelConfig::new(mode, writes).with_crash(crash);
        cfg.max_attempts = 2;
        let out = Checker::default().run(&NzModel { cfg });
        assert!(out.violation.is_none(), "case {case}: violation: {:?}", out.violation);
        assert_eq!(out.deadlocks, 0, "case {case}: nonblocking mode deadlocked");
    }
}
