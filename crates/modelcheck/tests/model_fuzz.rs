//! Property-based model checking: random small protocol configurations
//! must all verify. This widens §3's hand-picked configurations to a
//! fuzzed family (still exhaustively checked per configuration).

use nztm_modelcheck::model::NzModelConfig;
use nztm_modelcheck::{Checker, NzModel, ProtocolMode};
use proptest::prelude::*;

fn arb_writes() -> impl Strategy<Value = Vec<Vec<u8>>> {
    // 2 threads, each writing 1-2 of 2 objects, arbitrary order, no
    // duplicate objects within a transaction.
    proptest::collection::vec(
        prop_oneof![
            Just(vec![0u8]),
            Just(vec![1u8]),
            Just(vec![0u8, 1u8]),
            Just(vec![1u8, 0u8]),
        ],
        2..=2,
    )
}

fn arb_mode() -> impl Strategy<Value = ProtocolMode> {
    prop_oneof![
        Just(ProtocolMode::Blocking),
        Just(ProtocolMode::Nzstm),
        Just(ProtocolMode::Scss),
    ]
}

proptest! {
    // Each case is a full exhaustive model check; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Without crashes, every mode × write-list combination is
    /// serializable and deadlock-free.
    #[test]
    fn random_configs_verify(mode in arb_mode(), writes in arb_writes()) {
        let mut cfg = NzModelConfig::new(mode, writes);
        cfg.max_attempts = 2;
        let out = Checker::default().run(&NzModel { cfg });
        prop_assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        prop_assert_eq!(out.deadlocks, 0);
        prop_assert!(out.end_states > 0);
    }

    /// With a crashing thread, the nonblocking modes stay deadlock-free
    /// and serializable (the blocking mode is covered by the directed
    /// tests — it deadlocks by design).
    #[test]
    fn random_crash_configs_stay_nonblocking(
        mode in prop_oneof![Just(ProtocolMode::Nzstm), Just(ProtocolMode::Scss)],
        writes in arb_writes(),
        crash in 0u8..2,
    ) {
        let mut cfg = NzModelConfig::new(mode, writes).with_crash(crash);
        cfg.max_attempts = 2;
        let out = Checker::default().run(&NzModel { cfg });
        prop_assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        prop_assert_eq!(out.deadlocks, 0, "nonblocking mode deadlocked");
    }
}
