//! Reproduction of the paper's §3 model-checking results (experiment S8
//! in DESIGN.md): exhaustive state-space search of the NZSTM protocol
//! for small configurations — serializability, deadlock freedom, the
//! nonblocking property under a crashed transaction, and code-path
//! coverage. Also includes the mutation check: removing SCSS's
//! store/flag pairing must produce a detectable serializability
//! violation.

use nztm_modelcheck::model::{NzModelConfig, ALL_LABELS};
use nztm_modelcheck::{Checker, NzModel, ProtocolMode};

fn check(cfg: NzModelConfig) -> nztm_modelcheck::CheckOutcome<&'static str> {
    Checker::default().run(&NzModel { cfg })
}

/// Lower the retry bound for the larger configurations: state counts grow
/// roughly geometrically in `max_attempts`, and two retries already
/// exercise every path (the paper hit SPIN's limits the same way at four
/// threads).
fn small(mut cfg: NzModelConfig) -> NzModelConfig {
    cfg.max_attempts = 2;
    cfg
}

// ---------------------------------------------------------------------
// Serializability + deadlock freedom, no crashes
// ---------------------------------------------------------------------

#[test]
fn two_threads_one_object_all_modes() {
    for mode in [ProtocolMode::Blocking, ProtocolMode::Nzstm, ProtocolMode::Scss] {
        let out = check(NzModelConfig::new(mode, vec![vec![0], vec![0]]));
        assert!(out.passed(), "{mode:?}: {:?} deadlocks, violation {:?}", out.deadlocks, out.violation);
        assert!(out.end_states > 0);
    }
}

#[test]
fn two_threads_two_objects_opposite_order() {
    // The classic deadlock-shaped workload: T0 writes [0,1], T1 [1,0].
    for mode in [ProtocolMode::Blocking, ProtocolMode::Nzstm, ProtocolMode::Scss] {
        let out = check(NzModelConfig::new(mode, vec![vec![0, 1], vec![1, 0]]));
        assert!(
            out.passed(),
            "{mode:?}: deadlocks={} violation={:?}",
            out.deadlocks,
            out.violation
        );
    }
}

#[test]
fn three_threads_three_objects_nzstm() {
    // The paper's exhaustive bound: three threads, three objects.
    let out = check(small(NzModelConfig::new(
        ProtocolMode::Nzstm,
        vec![vec![0, 1], vec![1, 2], vec![2, 0]],
    )));
    assert!(out.passed(), "deadlocks={} violation={:?}", out.deadlocks, out.violation);
    assert!(out.states > 10_000, "nontrivial state space: {}", out.states);
}

#[test]
fn three_threads_three_objects_blocking_and_scss() {
    for mode in [ProtocolMode::Blocking, ProtocolMode::Scss] {
        let out = check(small(NzModelConfig::new(mode, vec![vec![0, 1], vec![1, 2], vec![2, 0]])));
        assert!(out.passed(), "{mode:?}: {:?}", out.violation);
    }
}

// ---------------------------------------------------------------------
// The nonblocking property (the paper's core claim)
// ---------------------------------------------------------------------

#[test]
fn blocking_deadlocks_under_a_crashed_owner() {
    let out = check(NzModelConfig::new(ProtocolMode::Blocking, vec![vec![0], vec![0]]).with_crash(0));
    assert!(out.deadlocks > 0, "a crashed owner must deadlock the blocking protocol");
    assert!(out.violation.is_none(), "but never corrupt data: {:?}", out.violation);
}

#[test]
fn nzstm_is_nonblocking_under_a_crashed_owner() {
    let out = check(NzModelConfig::new(ProtocolMode::Nzstm, vec![vec![0], vec![0]]).with_crash(0));
    assert!(out.passed(), "deadlocks={} violation={:?}", out.deadlocks, out.violation);
    assert!(out.end_states > 0, "the survivor must be able to finish");
    assert!(out.covered.contains("inflate"), "progress requires inflation");
}

#[test]
fn scss_is_nonblocking_under_a_crashed_owner() {
    let out = check(NzModelConfig::new(ProtocolMode::Scss, vec![vec![0], vec![0]]).with_crash(0));
    assert!(out.passed(), "deadlocks={} violation={:?}", out.deadlocks, out.violation);
    assert!(out.covered.contains("scss-steal"));
    assert!(!out.covered.contains("inflate"), "SCSS never inflates");
}

#[test]
fn nzstm_nonblocking_with_crash_and_two_survivors() {
    let out = check(small(
        NzModelConfig::new(ProtocolMode::Nzstm, vec![vec![0, 1], vec![0], vec![1, 0]])
            .with_crash(0),
    ));
    assert!(out.passed(), "deadlocks={} violation={:?}", out.deadlocks, out.violation);
}

// ---------------------------------------------------------------------
// Deflation and locator paths
// ---------------------------------------------------------------------

#[test]
fn nzstm_covers_inflation_locator_acquire_and_deflation() {
    // Three threads on one object with retries: inflation (past an
    // unresponsive-but-eventually-acking owner), locator-to-locator
    // acquisition, and deflation after the victim acknowledges.
    let out = check(small(NzModelConfig::new(
        ProtocolMode::Nzstm,
        vec![vec![0], vec![0], vec![0]],
    )));
    assert!(out.passed(), "{:?}", out.violation);
    for label in ["inflate", "acquire-locator", "deflate", "restore-and-adopt", "late-write"] {
        assert!(out.covered.contains(label), "path {label:?} never exercised");
    }
}

// ---------------------------------------------------------------------
// Coverage (the paper: "all code paths are taken at least once")
// ---------------------------------------------------------------------

#[test]
fn all_protocol_paths_covered_across_configurations() {
    let mut covered = std::collections::HashSet::new();
    let configs = [
        NzModelConfig::new(ProtocolMode::Blocking, vec![vec![0, 1], vec![1, 0]]),
        small(NzModelConfig::new(ProtocolMode::Nzstm, vec![vec![0], vec![0], vec![0]])),
        NzModelConfig::new(ProtocolMode::Nzstm, vec![vec![0, 1], vec![1, 0]]).with_crash(0),
        NzModelConfig::new(ProtocolMode::Scss, vec![vec![0], vec![0]]).with_crash(0),
        NzModelConfig::new(ProtocolMode::Scss, vec![vec![0, 1], vec![1, 0]]),
    ];
    for cfg in configs {
        let out = check(cfg);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        covered.extend(out.covered);
    }
    let missing: Vec<_> = ALL_LABELS.iter().filter(|l| !covered.contains(**l)).collect();
    assert!(missing.is_empty(), "unreached protocol paths: {missing:?}");
}

// ---------------------------------------------------------------------
// Mutation: the checker must catch the bug SCSS pairing prevents
// ---------------------------------------------------------------------

#[test]
fn unpaired_scss_stores_break_serializability() {
    let mut cfg = NzModelConfig::new(ProtocolMode::Scss, vec![vec![0], vec![0]]);
    cfg.scss_pairing = false;
    let out = check(cfg);
    assert!(
        out.violation.is_some(),
        "without store/flag pairing a late write must corrupt the logical value"
    );
}
