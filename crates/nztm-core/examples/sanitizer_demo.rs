//! Demo of the protocol sanitizer on the real engine.
//!
//! Run with:
//!
//! ```text
//! cargo run -p nztm-core --features sanitize --example sanitizer_demo [seed]
//! ```
//!
//! First drives BZSTM through an adversarial schedule with the
//! invariant checks armed (expected: clean), then re-runs the same
//! workload with the `inject_handshake_bug` fault enabled and prints
//! the violation plus the replayable schedule dump the sanitizer emits.

use nztm_core::cm::Aggressive;
use nztm_core::{Bzstm, NzConfig};
use nztm_sim::Native;
use std::sync::Arc;

fn drive(stm: &Arc<Bzstm<Native>>, p: &Arc<Native>) -> u64 {
    p.register_thread_as(0);
    let obj = stm.new_obj(0u64);
    let barrier = Arc::new(std::sync::Barrier::new(2));
    std::thread::scope(|scope| {
        for tid in 0..2usize {
            let p = Arc::clone(p);
            let stm = Arc::clone(stm);
            let obj = Arc::clone(&obj);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                p.register_thread_as(tid);
                barrier.wait();
                for _ in 0..100 {
                    stm.run(|tx| tx.update(&obj, |v| *v += 1));
                }
            });
        }
    });
    obj.read_untracked()
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("== clean engine, adversarial schedule (seed {seed}) ==");
    let p = Native::new(2);
    let stm: Arc<Bzstm<Native>> =
        Bzstm::new(Arc::clone(&p), Arc::new(Aggressive), NzConfig::default());
    stm.sanitizer().set_schedule(seed, 5);
    let v = drive(&stm, &p);
    println!(
        "final value {v} (expected 200), decision points hit: {}, digest {:#018x}",
        stm.sanitizer().decision_log().len(),
        stm.sanitizer().schedule_digest(),
    );
    let violations = stm.sanitizer().violations();
    println!("violations: {}", violations.len());
    assert!(violations.is_empty(), "clean engine must sanitize clean: {violations:?}");

    println!("\n== engine with injected handshake bug (requester forces victim status) ==");
    for s in seed.. {
        let p = Native::new(2);
        let stm: Arc<Bzstm<Native>> = Bzstm::new(
            Arc::clone(&p),
            Arc::new(Aggressive),
            NzConfig { inject_handshake_bug: true, ..NzConfig::default() },
        );
        stm.sanitizer().set_schedule(s, 5);
        drive(&stm, &p);
        let violations = stm.sanitizer().violations();
        if let Some(first) = violations.first() {
            println!("caught at schedule seed {s}: rule `{}`", first.rule);
            println!("  {}", first.detail);
            println!("\n--- replay dump ---\n{}", stm.sanitizer().replay_dump());
            return;
        }
        println!("seed {s}: not triggered, advancing");
    }
}
