//! ADT-level operation descriptors.
//!
//! NZTM detects conflicts at *object* granularity, and the `crates/tds`
//! data structures arrange their state so object boundaries coincide with
//! per-key operation footprints (NBTC's design point: operations on
//! disjoint keys never conflict). This module adds the complementary
//! *announcement* side of that discipline: before performing its reads
//! and writes, an ADT operation publishes a one-word descriptor — which
//! structure, which logical operation, which key — through
//! [`crate::TmSys::note_adt_op`].
//!
//! The descriptor is observability plumbing, not a correctness mechanism:
//! engines record it into the per-thread statistics (`adt_ops`) and the
//! flight recorder ([`crate::EventKind::AdtOp`]), so a trace of a
//! contended run attributes conflicts to *logical operations on keys*
//! rather than raw word accesses. Reference systems keep the no-op
//! default.

/// The logical operation kind an ADT announces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AdtOpKind {
    /// Map/set insert (or in-place value update).
    Insert = 0,
    /// Map/set lookup returning the value.
    Get = 1,
    /// Map/set removal.
    Remove = 2,
    /// Membership query.
    Contains = 3,
    /// Queue enqueue at the tail.
    Enqueue = 4,
    /// Queue dequeue at the head.
    Dequeue = 5,
}

impl AdtOpKind {
    /// Stable snake_case name (trace rendering).
    pub fn name(self) -> &'static str {
        match self {
            AdtOpKind::Insert => "insert",
            AdtOpKind::Get => "get",
            AdtOpKind::Remove => "remove",
            AdtOpKind::Contains => "contains",
            AdtOpKind::Enqueue => "enqueue",
            AdtOpKind::Dequeue => "dequeue",
        }
    }

    fn from_code(code: u8) -> AdtOpKind {
        match code {
            0 => AdtOpKind::Insert,
            1 => AdtOpKind::Get,
            2 => AdtOpKind::Remove,
            3 => AdtOpKind::Contains,
            4 => AdtOpKind::Enqueue,
            _ => AdtOpKind::Dequeue,
        }
    }
}

/// A one-word ADT operation descriptor: which structure instance
/// (`adt_id`, assigned by the structure), which logical operation, and
/// which key (queues use the slot index; keyless ops pass 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AdtOpDesc {
    /// Structure-instance id (stable within one structure's lifetime).
    pub adt_id: u32,
    /// The logical operation.
    pub op: AdtOpKind,
    /// The key (or index) the operation targets.
    pub key: u64,
}

impl AdtOpDesc {
    pub fn new(adt_id: u32, op: AdtOpKind, key: u64) -> Self {
        AdtOpDesc { adt_id, op, key }
    }

    /// Pack structure id + op kind into one trace word (the key travels
    /// in the event's `a` word).
    pub fn pack(&self) -> u64 {
        (u64::from(self.adt_id) << 8) | self.op as u64
    }

    /// Inverse of [`AdtOpDesc::pack`].
    pub fn unpack(word: u64) -> (u32, AdtOpKind) {
        ((word >> 8) as u32, AdtOpKind::from_code((word & 0xff) as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_packs_and_unpacks() {
        for (id, op) in [
            (0u32, AdtOpKind::Insert),
            (7, AdtOpKind::Get),
            (u32::MAX, AdtOpKind::Dequeue),
            (3, AdtOpKind::Contains),
        ] {
            let d = AdtOpDesc::new(id, op, 99);
            assert_eq!(AdtOpDesc::unpack(d.pack()), (id, op));
        }
    }

    #[test]
    fn op_kind_names_are_stable() {
        assert_eq!(AdtOpKind::Insert.name(), "insert");
        assert_eq!(AdtOpKind::Enqueue.name(), "enqueue");
    }
}
