//! Algorithm composition axes.
//!
//! An STM algorithm in this engine is a *composition*, not a fork: a
//! [`crate::ModePolicy`] names one type per axis —
//!
//! * [`ReadStrategy`] — how reads are tracked and kept consistent:
//!   per-object reader indicators a writer must consult
//!   ([`VisibleIndicator`], §2's visible reads, with the invisible
//!   version-validation extension as a runtime knob), or a logged value
//!   snapshot re-validated against a global clock ([`ValueValidation`],
//!   NOrec).
//! * [`LogRepr`] — where speculative writes live until commit: eagerly
//!   in place with a zero-indirection undo backup ([`EagerWriteBack`],
//!   §2.2), or in a private redo log written back at commit
//!   ([`RedoLog`]).
//! * [`BackupPolicy`] — whether objects carry the collocated backup /
//!   lazy-restore machinery ([`ZeroIndirectionBackup`]) or need none
//!   because data is never speculatively dirtied ([`NoBackup`]).
//! * [`CommitProtocol`] — how commit serializes against conflicting
//!   peers: per-object ownership CAS plus the AbortNowPlease handshake
//!   ([`OwnerCas`]), or one global sequence lock taken for the
//!   write-back window ([`GlobalSeqLock`], NOrec).
//!
//! Each trait exposes a `const` discriminator so the engine can gate
//! per-axis code paths at compile time: a composition that does not use
//! an axis pays nothing for it — the property behind BZSTM's measured
//! 2–5% edge over NZSTM (§4.4.2), preserved here for every axis.
//!
//! The shipped compositions (see [`crate::ModePolicy`] impls):
//!
//! | Mode | Reads | Log | Backup | Commit |
//! |---|---|---|---|---|
//! | `Blocking` (BZSTM) | `VisibleIndicator` | `EagerWriteBack` | `ZeroIndirectionBackup` | `OwnerCas` |
//! | `Nonblocking` (NZSTM) | `VisibleIndicator` | `EagerWriteBack` | `ZeroIndirectionBackup` | `OwnerCas` |
//! | `ScssMode` (SCSS) | `VisibleIndicator` | `EagerWriteBack` | `ZeroIndirectionBackup` | `OwnerCas` |
//! | `NorecMode` (NOrec) | `ValueValidation` | `RedoLog` | `NoBackup` | `GlobalSeqLock` |

/// How transactional reads are tracked and revalidated.
pub trait ReadStrategy: Send + Sync + 'static {
    /// Reads log the observed *values* and revalidate them against a
    /// global clock (NOrec); they never register in per-object reader
    /// indicators, so writers cannot see (or abort) them.
    const VALUE_VALIDATION: bool;
    /// Display name for docs/tooling.
    const NAME: &'static str;
}

/// Per-object reader indicators (the paper's visible reads; the
/// invisible version-validation extension remains a runtime
/// [`crate::ReadMode`] knob of this strategy).
pub struct VisibleIndicator;
impl ReadStrategy for VisibleIndicator {
    const VALUE_VALIDATION: bool = false;
    const NAME: &'static str = "visible-indicator";
}

/// Value-based validation against a global sequence clock (NOrec).
pub struct ValueValidation;
impl ReadStrategy for ValueValidation {
    const VALUE_VALIDATION: bool = true;
    const NAME: &'static str = "value-validation";
}

/// Where speculative writes live until commit.
pub trait LogRepr: Send + Sync + 'static {
    /// Writes are buffered in a private redo log and written back at
    /// commit; shared data is never dirtied by an uncommitted attempt.
    const REDO: bool;
    /// Display name for docs/tooling.
    const NAME: &'static str;
}

/// Eager in-place stores, undone lazily from the backup (§2.2).
pub struct EagerWriteBack;
impl LogRepr for EagerWriteBack {
    const REDO: bool = false;
    const NAME: &'static str = "eager-write-back";
}

/// Lazy redo log, written back inside the commit window.
pub struct RedoLog;
impl LogRepr for RedoLog {
    const REDO: bool = true;
    const NAME: &'static str = "redo-log";
}

/// Whether objects carry the zero-indirection backup machinery.
pub trait BackupPolicy: Send + Sync + 'static {
    /// Acquisitions install a backup copy for lazy restore; conflicts
    /// may inflate past an unresponsive owner's backup (§2.2/§2.3).
    const ZERO_INDIRECTION: bool;
    /// Display name for docs/tooling.
    const NAME: &'static str;
}

/// The paper's collocated backup + lazy restore.
pub struct ZeroIndirectionBackup;
impl BackupPolicy for ZeroIndirectionBackup {
    const ZERO_INDIRECTION: bool = true;
    const NAME: &'static str = "zero-indirection-backup";
}

/// No backups: redo-logged compositions never dirty shared data.
pub struct NoBackup;
impl BackupPolicy for NoBackup {
    const ZERO_INDIRECTION: bool = false;
    const NAME: &'static str = "no-backup";
}

/// How commit serializes against conflicting peers.
pub trait CommitProtocol: Send + Sync + 'static {
    /// Commit holds one global sequence lock for the write-back window
    /// (NOrec): odd clock = a writer is committing; every clock bump
    /// forces readers to revalidate by value.
    const GLOBAL_SEQLOCK: bool;
    /// Display name for docs/tooling.
    const NAME: &'static str;
}

/// Per-object ownership CAS + the AbortNowPlease handshake (§2.2).
pub struct OwnerCas;
impl CommitProtocol for OwnerCas {
    const GLOBAL_SEQLOCK: bool = false;
    const NAME: &'static str = "owner-cas";
}

/// One global sequence lock serializing all writers (NOrec).
pub struct GlobalSeqLock;
impl CommitProtocol for GlobalSeqLock {
    const GLOBAL_SEQLOCK: bool = true;
    const NAME: &'static str = "global-seqlock";
}

/// A composition's axis names, for docs, tooling and registry listings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Composition {
    pub reads: &'static str,
    pub log: &'static str,
    pub backup: &'static str,
    pub commit: &'static str,
}

impl Composition {
    /// The composition of a [`crate::ModePolicy`].
    pub fn of<M: crate::ModePolicy>() -> Composition {
        Composition {
            reads: <M::Reads as ReadStrategy>::NAME,
            log: <M::Log as LogRepr>::NAME,
            backup: <M::Backup as BackupPolicy>::NAME,
            commit: <M::Commit as CommitProtocol>::NAME,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_compositions_have_the_documented_axes() {
        let nz = Composition::of::<crate::Nonblocking>();
        assert_eq!(nz, Composition::of::<crate::Blocking>());
        assert_eq!(nz, Composition::of::<crate::ScssMode>());
        assert_eq!(nz.reads, "visible-indicator");
        assert_eq!(nz.log, "eager-write-back");
        assert_eq!(nz.backup, "zero-indirection-backup");
        assert_eq!(nz.commit, "owner-cas");
        let norec = Composition::of::<crate::NorecMode>();
        assert_eq!(norec.reads, "value-validation");
        assert_eq!(norec.log, "redo-log");
        assert_eq!(norec.backup, "no-backup");
        assert_eq!(norec.commit, "global-seqlock");
    }

    #[test]
    fn norec_gate_is_derived_from_the_commit_protocol() {
        use crate::ModePolicy;
        const {
            assert!(!crate::Blocking::NOREC);
            assert!(!crate::Nonblocking::NOREC);
            assert!(!crate::ScssMode::NOREC);
            assert!(crate::NorecMode::NOREC);
        }
    }
}
