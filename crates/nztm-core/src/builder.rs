//! [`NzBuilder`]: one front door for constructing engines.
//!
//! The crate grew constructors organically — `NzStm::new` (all knobs,
//! positional), `with_defaults`, and the free function `nzstm_default` —
//! while the paper's evaluation wants the same knobs turned across four
//! backends. The builder names every knob once and returns concrete
//! engine types (`Arc<NzStm<P, M>>`, never `Arc<dyn …>`), so the
//! compile-time [`ModePolicy`] specialization the paper's §4.4.2
//! measurements depend on is preserved.
//!
//! ```
//! use nztm_core::{NzBuilder, ReadMode};
//! use nztm_sim::Native;
//!
//! let platform = Native::new(1);
//! platform.register_thread();
//! let stm = NzBuilder::new(platform)
//!     .read_mode(ReadMode::Visible)
//!     .patience(256)
//!     .build_nzstm();
//!
//! let obj = stm.new_obj(1u64);
//! stm.run(|tx| tx.write(&obj, &2));
//! assert_eq!(obj.read_untracked(), 2);
//! ```
//!
//! The hybrid backend (§2.4) lives in the `nztm-htm` crate (it needs the
//! best-effort HTM); [`BackendKind::Hybrid`] names it here so harnesses
//! can enumerate all four backends uniformly.

use crate::cm::{ContentionManager, KarmaDeadlock};
use crate::engine::{Blocking, ModePolicy, Nonblocking, NzConfig, NzStm, ReadMode, ScssMode};
use nztm_sim::Platform;
use std::sync::Arc;

/// The four backends of the paper's evaluation. Construction is
/// per-backend ([`NzBuilder::build_bzstm`] and friends) because each
/// returns a distinct concrete type — the enum exists for naming,
/// CLI parsing, and uniform iteration in harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Blocking base STM (§2.2). Built by [`NzBuilder::build_bzstm`].
    Bzstm,
    /// Nonblocking via inflation (§2.3.1). [`NzBuilder::build_nzstm`].
    Nzstm,
    /// Nonblocking via SCSS (§2.3.2). [`NzBuilder::build_scss`].
    Scss,
    /// HTM + NZSTM hybrid (§2.4). Built by the `nztm-htm` crate on top
    /// of [`NzBuilder::build_nzstm`].
    Hybrid,
}

impl BackendKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [BackendKind; 4] =
        [BackendKind::Bzstm, BackendKind::Nzstm, BackendKind::Scss, BackendKind::Hybrid];

    /// Evaluation-section name (`BZSTM`, `NZSTM`, `SCSS`, `NZTM`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Bzstm => "BZSTM",
            BackendKind::Nzstm => "NZSTM",
            BackendKind::Scss => "SCSS",
            BackendKind::Hybrid => "NZTM",
        }
    }

    /// Parse a case-insensitive backend name (accepts `nztm` and
    /// `hybrid` for [`BackendKind::Hybrid`]).
    pub fn parse(s: &str) -> Option<BackendKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "bzstm" => BackendKind::Bzstm,
            "nzstm" => BackendKind::Nzstm,
            "scss" => BackendKind::Scss,
            "nztm" | "hybrid" => BackendKind::Hybrid,
            _ => return None,
        })
    }
}

/// Builder for the software engines. See the [module docs](self).
///
/// Defaults match the paper's configuration: visible reads, Karma +
/// deadlock-detection contention management, patience 128, tracing off.
pub struct NzBuilder<P: Platform> {
    platform: Arc<P>,
    cm: Arc<dyn ContentionManager>,
    cfg: NzConfig,
}

impl<P: Platform> NzBuilder<P> {
    /// Start from the paper's defaults on `platform`.
    pub fn new(platform: Arc<P>) -> Self {
        NzBuilder {
            platform,
            cm: Arc::new(KarmaDeadlock::default()),
            cfg: NzConfig::default(),
        }
    }

    /// Visible (paper default) or invisible read tracking.
    pub fn read_mode(mut self, mode: ReadMode) -> Self {
        self.cfg.read_mode = mode;
        self
    }

    /// Spin steps to wait for an abort acknowledgement before declaring
    /// the victim unresponsive (ignored by BZSTM).
    pub fn patience(mut self, patience: u64) -> Self {
        self.cfg.patience = patience;
        self
    }

    /// Simulated cycles charged per SCSS store (SCSS backend only).
    pub fn scss_cycles(mut self, cycles: u64) -> Self {
        self.cfg.scss_cycles = cycles;
        self
    }

    /// Thread-placement policy for the shared-metadata layout (registry
    /// slot lines, striped reader-indicator stripes). The default,
    /// [`crate::TopologyPolicy::Flat`], reproduces the seed layout
    /// bit-exactly; `Detect` groups same-NUMA-node threads using the
    /// host's sysfs map; `Synthetic(n)` imposes an `n`-node round-robin
    /// machine for simulator placement studies.
    pub fn topology(mut self, policy: crate::topology::TopologyPolicy) -> Self {
        self.cfg.topology = policy;
        self
    }

    /// Reserve each object's backup-copy lines inside the object's own
    /// block (object–backup colocation). Off by default; turn on to
    /// measure the layout against the pooled-backup baseline.
    pub fn colocate_backup(mut self, on: bool) -> Self {
        self.cfg.colocate_backup = on;
        self
    }

    /// Contention-management policy (default: Karma + deadlock
    /// detection, the paper's §4.3 configuration).
    pub fn cm(mut self, cm: Arc<dyn ContentionManager>) -> Self {
        self.cm = cm;
        self
    }

    /// Use the telemetry-driven adaptive contention manager
    /// ([`crate::cm::Adaptive`]) with `cfg`'s thresholds. Shorthand for
    /// `.cm(Arc::new(Adaptive::new(cfg)))`.
    pub fn adaptive_cm(self, cfg: crate::cm::AdaptiveConfig) -> Self {
        self.cm(Arc::new(crate::cm::Adaptive::new(cfg)))
    }

    /// Arm the flight recorder from construction (no effect unless the
    /// crate is built with the `trace` feature; see [`crate::trace`]).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.cfg.trace.enabled = enabled;
        self
    }

    /// Per-thread flight-recorder ring capacity, in events.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.cfg.trace.capacity = events;
        self
    }

    /// Replace the whole engine configuration (escape hatch; the named
    /// setters cover the common knobs).
    pub fn config(mut self, cfg: NzConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Build an engine of mode `M`. Mode is usually inferred from the
    /// binding (`let s: Arc<Bzstm<_>> = …builder….build()`); the
    /// per-backend helpers below spell it out.
    pub fn build<M: ModePolicy>(self) -> Arc<NzStm<P, M>> {
        NzStm::new(self.platform, self.cm, self.cfg)
    }

    /// Build the blocking base STM (§2.2).
    pub fn build_bzstm(self) -> Arc<NzStm<P, Blocking>> {
        self.build()
    }

    /// Build the nonblocking inflation-based STM (§2.3.1).
    pub fn build_nzstm(self) -> Arc<NzStm<P, Nonblocking>> {
        self.build()
    }

    /// Build the SCSS variant (§2.3.2).
    pub fn build_scss(self) -> Arc<NzStm<P, ScssMode>> {
        self.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::Native;

    #[test]
    fn backend_kind_names_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("hybrid"), Some(BackendKind::Hybrid));
        assert_eq!(BackendKind::parse("nope"), None);
    }

    #[test]
    fn builder_constructs_all_three_software_backends() {
        let p = Native::new(1);
        p.register_thread();
        let b = NzBuilder::new(Arc::clone(&p)).build_bzstm();
        let n = NzBuilder::new(Arc::clone(&p)).patience(64).build_nzstm();
        let s = NzBuilder::new(p).scss_cycles(10).build_scss();
        assert_eq!(b.mode_name(), "BZSTM");
        assert_eq!(n.mode_name(), "NZSTM");
        assert_eq!(s.mode_name(), "SCSS");
        let obj = n.new_obj(41u64);
        n.run(|tx| {
            let v = tx.read(&obj)?;
            tx.write(&obj, &(v + 1))
        });
        assert_eq!(obj.read_untracked(), 42);
    }

    #[test]
    fn builder_knobs_reach_the_engine() {
        let p = Native::new(1);
        p.register_thread();
        let s = NzBuilder::new(p).read_mode(ReadMode::Invisible).build_nzstm();
        assert_eq!(s.read_mode(), ReadMode::Invisible);
        assert!(!s.tracing_enabled());
    }
}
