//! [`NzBuilder`]: one front door for constructing engines.
//!
//! The builder is **composition-first**: name the algorithm with
//! [`NzBuilder::algorithm`] (or one of the `build_*` shorthands) and the
//! builder checks every knob against that composition's axes — invalid
//! combinations fail at [`NzBuilder::try_build`] with a typed
//! [`BuildError`] instead of silently misconfiguring an engine. The
//! expert-mode trait slot is [`NzBuilder::build`]`::<M>`: any
//! [`ModePolicy`] — i.e. any composition of [`crate::algo`] strategies —
//! builds through the same checked path, and axis combinations the
//! engine cannot execute are rejected by the trait bounds at compile
//! time (a `ModePolicy` must name one type per axis).
//!
//! Engines are concrete types (`Arc<NzStm<P, M>>`, never `Arc<dyn …>`),
//! so the compile-time [`ModePolicy`] specialization the paper's §4.4.2
//! measurements depend on is preserved.
//!
//! ```
//! use nztm_core::{Algo, NzBuilder, ReadMode};
//! use nztm_sim::Native;
//!
//! let platform = Native::new(1);
//! platform.register_thread();
//! let stm = NzBuilder::new(platform)
//!     .algorithm(Algo::Nzstm)
//!     .read_mode(ReadMode::Visible)
//!     .patience(256)
//!     .build_nzstm();
//!
//! let obj = stm.new_obj(1u64);
//! stm.run(|tx| tx.write(&obj, &2));
//! assert_eq!(obj.read_untracked(), 2);
//! ```
//!
//! The hybrid backend (§2.4) lives in the `nztm-htm` crate (it needs the
//! best-effort HTM); [`BackendKind::Hybrid`] names it here so harnesses
//! can enumerate all five backends uniformly.

use crate::cm::{ContentionManager, KarmaDeadlock};
use crate::engine::{
    Blocking, ModePolicy, NativeHtmPolicy, Nonblocking, NorecMode, NzConfig, NzStm, ReadMode,
    ScssMode,
};
use nztm_sim::Platform;
use std::sync::Arc;

/// The backends of the evaluation. Construction is per-backend
/// ([`NzBuilder::build_bzstm`] and friends) because each returns a
/// distinct concrete type — the enum exists for naming, CLI parsing,
/// and uniform iteration in harnesses (see the backend registry in
/// `nztm-bench`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Blocking base STM (§2.2). Built by [`NzBuilder::build_bzstm`].
    Bzstm,
    /// Nonblocking via inflation (§2.3.1). [`NzBuilder::build_nzstm`].
    Nzstm,
    /// Nonblocking via SCSS (§2.3.2). [`NzBuilder::build_scss`].
    Scss,
    /// HTM + NZSTM hybrid (§2.4). Built by the `nztm-htm` crate on top
    /// of [`NzBuilder::build_nzstm`].
    Hybrid,
    /// NOrec: value validation + redo log + global sequence lock.
    /// Built by [`NzBuilder::build_norec`].
    Norec,
}

impl BackendKind {
    /// All five, NZTM family first in the paper's presentation order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Bzstm,
        BackendKind::Nzstm,
        BackendKind::Scss,
        BackendKind::Hybrid,
        BackendKind::Norec,
    ];

    /// Evaluation-section name (`BZSTM`, `NZSTM`, `SCSS`, `NZTM`,
    /// `NOREC`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Bzstm => "BZSTM",
            BackendKind::Nzstm => "NZSTM",
            BackendKind::Scss => "SCSS",
            BackendKind::Hybrid => "NZTM",
            BackendKind::Norec => "NOREC",
        }
    }

    /// Parse a case-insensitive backend name (accepts `nztm` and
    /// `hybrid` for [`BackendKind::Hybrid`]).
    pub fn parse(s: &str) -> Option<BackendKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "bzstm" => BackendKind::Bzstm,
            "nzstm" => BackendKind::Nzstm,
            "scss" => BackendKind::Scss,
            "nztm" | "hybrid" => BackendKind::Hybrid,
            "norec" => BackendKind::Norec,
            _ => return None,
        })
    }
}

/// The software compositions [`NzBuilder::algorithm`] can name (the
/// hybrid is assembled by `nztm-htm` around [`Algo::Nzstm`]). Each maps
/// to one shipped [`ModePolicy`]; the expert-mode escape hatch for
/// custom compositions is [`NzBuilder::build`]`::<M>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// [`Blocking`] — BZSTM (§2.2).
    Bzstm,
    /// [`Nonblocking`] — NZSTM (§2.3.1).
    Nzstm,
    /// [`ScssMode`] — NZSTM+SCSS (§2.3.2).
    Scss,
    /// [`NorecMode`] — NOrec.
    Norec,
}

impl Algo {
    /// The matching [`ModePolicy::NAME`].
    pub fn mode_name(self) -> &'static str {
        match self {
            Algo::Bzstm => "BZSTM",
            Algo::Nzstm => "NZSTM",
            Algo::Scss => "SCSS",
            Algo::Norec => "NOREC",
        }
    }

    /// The composition's axes (see [`crate::algo`]).
    pub fn composition(self) -> crate::algo::Composition {
        match self {
            Algo::Bzstm => crate::algo::Composition::of::<Blocking>(),
            Algo::Nzstm => crate::algo::Composition::of::<Nonblocking>(),
            Algo::Scss => crate::algo::Composition::of::<ScssMode>(),
            Algo::Norec => crate::algo::Composition::of::<NorecMode>(),
        }
    }
}

/// Why [`NzBuilder::try_build`] refused to construct an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// [`NzBuilder::algorithm`] named one composition but the build
    /// method instantiated another (e.g. `.algorithm(Algo::Norec)` then
    /// `.build_nzstm()`).
    AlgorithmMismatch {
        /// What [`NzBuilder::algorithm`] asked for.
        requested: Algo,
        /// The [`ModePolicy::NAME`] of the mode actually being built.
        built: &'static str,
    },
    /// A configured knob contradicts the composition being built (e.g.
    /// a read-tracking mode on a value-validating composition).
    IncompatibleKnob {
        /// The mode being built ([`ModePolicy::NAME`]).
        mode: &'static str,
        /// The builder knob at fault.
        knob: &'static str,
        /// Why the combination is meaningless.
        reason: &'static str,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::AlgorithmMismatch { requested, built } => write!(
                f,
                "algorithm mismatch: builder was configured for {} but asked to build {built}",
                requested.mode_name()
            ),
            BuildError::IncompatibleKnob { mode, knob, reason } => {
                write!(f, "knob `{knob}` is incompatible with {mode}: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for the software engines. See the [module docs](self).
///
/// Defaults match the paper's configuration: visible reads, Karma +
/// deadlock-detection contention management, patience 128, tracing off.
pub struct NzBuilder<P: Platform> {
    platform: Arc<P>,
    cm: Arc<dyn ContentionManager>,
    cfg: NzConfig,
    /// Composition named via [`NzBuilder::algorithm`], checked against
    /// the mode actually built.
    algo: Option<Algo>,
    /// Whether `read_mode` was set explicitly (compatibility checks
    /// distinguish a deliberate choice from the default).
    read_mode_set: bool,
}

impl<P: Platform> NzBuilder<P> {
    /// Start from the paper's defaults on `platform`.
    pub fn new(platform: Arc<P>) -> Self {
        NzBuilder {
            platform,
            cm: Arc::new(KarmaDeadlock::default()),
            cfg: NzConfig::default(),
            algo: None,
            read_mode_set: false,
        }
    }

    /// Name the composition to build. [`NzBuilder::try_build`] fails
    /// with [`BuildError::AlgorithmMismatch`] if the build method's mode
    /// disagrees — so a harness can thread one `Algo` value through
    /// shared setup code and be sure the engine it gets matches.
    pub fn algorithm(mut self, algo: Algo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Visible (paper default) or invisible read tracking. Only
    /// meaningful for indicator-read compositions; setting it on a
    /// value-validating composition (NOrec) is a [`BuildError`].
    pub fn read_mode(mut self, mode: ReadMode) -> Self {
        self.cfg.read_mode = mode;
        self.read_mode_set = true;
        self
    }

    /// Spin steps to wait for an abort acknowledgement before declaring
    /// the victim unresponsive (ignored by BZSTM).
    pub fn patience(mut self, patience: u64) -> Self {
        self.cfg.patience = patience;
        self
    }

    /// Simulated cycles charged per SCSS store (SCSS backend only).
    pub fn scss_cycles(mut self, cycles: u64) -> Self {
        self.cfg.scss_cycles = cycles;
        self
    }

    /// Thread-placement policy for the shared-metadata layout (registry
    /// slot lines, striped reader-indicator stripes). The default,
    /// [`crate::TopologyPolicy::Flat`], reproduces the seed layout
    /// bit-exactly; `Detect` groups same-NUMA-node threads using the
    /// host's sysfs map; `Synthetic(n)` imposes an `n`-node round-robin
    /// machine for simulator placement studies.
    pub fn topology(mut self, policy: crate::topology::TopologyPolicy) -> Self {
        self.cfg.topology = policy;
        self
    }

    /// Reserve each object's backup-copy lines inside the object's own
    /// block (object–backup colocation). Off by default; turn on to
    /// measure the layout against the pooled-backup baseline. A
    /// [`BuildError`] on backup-free compositions (NOrec).
    pub fn colocate_backup(mut self, on: bool) -> Self {
        self.cfg.colocate_backup = on;
        self
    }

    /// Contention-management policy (default: Karma + deadlock
    /// detection, the paper's §4.3 configuration).
    pub fn cm(mut self, cm: Arc<dyn ContentionManager>) -> Self {
        self.cm = cm;
        self
    }

    /// Use the telemetry-driven adaptive contention manager
    /// ([`crate::cm::Adaptive`]) with `cfg`'s thresholds. Shorthand for
    /// `.cm(Arc::new(Adaptive::new(cfg)))`.
    pub fn adaptive_cm(self, cfg: crate::cm::AdaptiveConfig) -> Self {
        self.cm(Arc::new(crate::cm::Adaptive::new(cfg)))
    }

    /// Native-HTM policy for a hybrid assembled over the built engine
    /// (`nztm-htm` consults it when selecting between the simulated
    /// ATMTP model and the arch-native RTM backend; the software engine
    /// itself ignores it). Default: [`NativeHtmPolicy::Auto`].
    pub fn native_htm(mut self, policy: NativeHtmPolicy) -> Self {
        self.cfg.native_htm = policy;
        self
    }

    /// Arm the flight recorder from construction (no effect unless the
    /// crate is built with the `trace` feature; see [`crate::trace`]).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.cfg.trace.enabled = enabled;
        self
    }

    /// Per-thread flight-recorder ring capacity, in events.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.cfg.trace.capacity = events;
        self
    }

    /// Replace the whole engine configuration (escape hatch; the named
    /// setters cover the common knobs). Counts as an explicit
    /// `read_mode` choice for the compatibility checks.
    pub fn config(mut self, cfg: NzConfig) -> Self {
        self.read_mode_set = cfg.read_mode != self.cfg.read_mode || self.read_mode_set;
        self.cfg = cfg;
        self
    }

    /// Check the configuration against mode `M` and build the engine.
    ///
    /// This is the expert-mode trait slot: `M` may be any
    /// [`ModePolicy`], i.e. any composition of [`crate::algo`]
    /// strategies the engine can execute. Fails with a typed
    /// [`BuildError`] when [`NzBuilder::algorithm`] named a different
    /// composition or a knob contradicts `M`'s axes.
    pub fn try_build<M: ModePolicy>(self) -> Result<Arc<NzStm<P, M>>, BuildError> {
        if let Some(requested) = self.algo {
            if requested.mode_name() != M::NAME {
                return Err(BuildError::AlgorithmMismatch { requested, built: M::NAME });
            }
        }
        if M::NOREC {
            if self.read_mode_set {
                return Err(BuildError::IncompatibleKnob {
                    mode: M::NAME,
                    knob: "read_mode",
                    reason: "value-validating reads are never tracked per object; \
                             there is no visible/invisible choice to make",
                });
            }
            if self.cfg.colocate_backup {
                return Err(BuildError::IncompatibleKnob {
                    mode: M::NAME,
                    knob: "colocate_backup",
                    reason: "a redo-log composition installs no backups to colocate",
                });
            }
        }
        Ok(NzStm::new(self.platform, self.cm, self.cfg))
    }

    /// Build an engine of mode `M`, panicking on a [`BuildError`]. Mode
    /// is usually inferred from the binding
    /// (`let s: Arc<Bzstm<_>> = …builder….build()`); the per-backend
    /// helpers below spell it out.
    pub fn build<M: ModePolicy>(self) -> Arc<NzStm<P, M>> {
        match self.try_build() {
            Ok(s) => s,
            Err(e) => panic!("NzBuilder: {e}"),
        }
    }

    /// Build the blocking base STM (§2.2).
    pub fn build_bzstm(self) -> Arc<NzStm<P, Blocking>> {
        self.build()
    }

    /// Build the nonblocking inflation-based STM (§2.3.1).
    pub fn build_nzstm(self) -> Arc<NzStm<P, Nonblocking>> {
        self.build()
    }

    /// Build the SCSS variant (§2.3.2).
    pub fn build_scss(self) -> Arc<NzStm<P, ScssMode>> {
        self.build()
    }

    /// Build NOrec (value validation + redo log + global seqlock).
    pub fn build_norec(self) -> Arc<NzStm<P, NorecMode>> {
        self.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nztm_sim::Native;

    #[test]
    fn backend_kind_names_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("hybrid"), Some(BackendKind::Hybrid));
        assert_eq!(BackendKind::parse("norec"), Some(BackendKind::Norec));
        assert_eq!(BackendKind::parse("nope"), None);
    }

    #[test]
    fn builder_constructs_all_four_software_backends() {
        let p = Native::new(1);
        p.register_thread();
        let b = NzBuilder::new(Arc::clone(&p)).build_bzstm();
        let n = NzBuilder::new(Arc::clone(&p)).patience(64).build_nzstm();
        let s = NzBuilder::new(Arc::clone(&p)).scss_cycles(10).build_scss();
        let r = NzBuilder::new(p).build_norec();
        assert_eq!(b.mode_name(), "BZSTM");
        assert_eq!(n.mode_name(), "NZSTM");
        assert_eq!(s.mode_name(), "SCSS");
        assert_eq!(r.mode_name(), "NOREC");
        let obj = n.new_obj(41u64);
        n.run(|tx| {
            let v = tx.read(&obj)?;
            tx.write(&obj, &(v + 1))
        });
        assert_eq!(obj.read_untracked(), 42);
        let obj = r.new_obj(10u64);
        r.run(|tx| {
            let v = tx.read(&obj)?;
            tx.write(&obj, &(v * 2))
        });
        assert_eq!(obj.read_untracked(), 20);
    }

    #[test]
    fn builder_knobs_reach_the_engine() {
        let p = Native::new(1);
        p.register_thread();
        let s = NzBuilder::new(p).read_mode(ReadMode::Invisible).build_nzstm();
        assert_eq!(s.read_mode(), ReadMode::Invisible);
        assert!(!s.tracing_enabled());
    }

    #[test]
    fn algorithm_mismatch_is_a_typed_error() {
        let p = Native::new(1);
        let err = NzBuilder::new(p)
            .algorithm(Algo::Norec)
            .try_build::<Nonblocking>()
            .err()
            .expect("mismatch must fail");
        assert_eq!(
            err,
            BuildError::AlgorithmMismatch { requested: Algo::Norec, built: "NZSTM" }
        );
        assert!(err.to_string().contains("NOREC"));
    }

    #[test]
    fn algorithm_match_builds() {
        let p = Native::new(1);
        p.register_thread();
        let s = NzBuilder::new(p)
            .algorithm(Algo::Norec)
            .try_build::<NorecMode>()
            .expect("matching composition builds");
        assert_eq!(s.mode_name(), "NOREC");
    }

    #[test]
    fn incompatible_knobs_fail_with_typed_errors() {
        let p = Native::new(1);
        let err = NzBuilder::new(Arc::clone(&p))
            .read_mode(ReadMode::Invisible)
            .try_build::<NorecMode>()
            .err()
            .expect("read_mode on NOrec must fail");
        assert!(matches!(
            err,
            BuildError::IncompatibleKnob { mode: "NOREC", knob: "read_mode", .. }
        ));
        let err = NzBuilder::new(p)
            .colocate_backup(true)
            .try_build::<NorecMode>()
            .err()
            .expect("colocate_backup on NOrec must fail");
        assert!(matches!(
            err,
            BuildError::IncompatibleKnob { mode: "NOREC", knob: "colocate_backup", .. }
        ));
    }

    #[test]
    fn default_knobs_build_norec() {
        let p = Native::new(1);
        p.register_thread();
        // The *default* read mode is not an explicit choice: plain
        // builders construct NOrec fine.
        let s = NzBuilder::new(p).patience(256).build_norec();
        assert_eq!(s.mode_name(), "NOREC");
    }

    #[test]
    fn every_algo_names_a_shipped_composition() {
        for a in [Algo::Bzstm, Algo::Nzstm, Algo::Scss, Algo::Norec] {
            let c = a.composition();
            assert!(!c.reads.is_empty());
            // The Algo names line up with BackendKind's software rows.
            assert!(BackendKind::parse(a.mode_name()).is_some());
        }
    }
}
