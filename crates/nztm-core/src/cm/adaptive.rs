//! Telemetry-driven adaptive contention management (ROADMAP item 4).
//!
//! The paper's §4.3 policy ([`KarmaDeadlock`]) is static, and the PR-5
//! scaling sweep shows what Scherer & Scott's design-space studies
//! predict: no fixed policy wins everywhere. At 68–128 threads the
//! write-heavy cells dissolve into abort storms — every thread keeps
//! paying the abort + redo cost on the same few objects while the fixed
//! 2^12 backoff cap re-injects all of them at once.
//!
//! [`Adaptive`] closes the loop from the PR-4 telemetry (abort causes,
//! per-object conflict attribution — the same signals the flight
//! recorder's `hottest_objects` report aggregates) back into policy. It
//! wraps [`KarmaDeadlock`] and pulls three levers:
//!
//! 1. **Hot-object escalation.** Objects whose abort heat crosses
//!    [`AdaptiveConfig::hot_threshold`] enter [`CmMode::Escalated`]: a
//!    queued-ownership mode in which contenders wait politely (no abort
//!    requests) for up to [`AdaptiveConfig::escalated_timeout`]
//!    consultations, so the storm drains through the current owner one
//!    transaction at a time instead of thrashing. The prefix is kept
//!    *shorter* than Karma's own timeout — each Wait consultation is a
//!    scheduler yield natively, so deep waiting on an oversubscribed
//!    host burns timeslices on a descheduled owner. Past the prefix the
//!    wrapped Karma policy takes over unchanged (its timeout escape
//!    hatch included) — every wait stays bounded, so the §2 nonblocking
//!    invariants are untouched (policy can only choose *among* bounded
//!    waits; the engine's patience/inflation mechanism is never
//!    disabled).
//! 2. **Backoff widening.** Each thread's conflict rate (an EWMA of
//!    abort-per-attempt fed by [`ContentionManager::on_abort`] /
//!    [`ContentionManager::on_commit`]) maps to a retry-backoff cap
//!    exponent between [`AdaptiveConfig::min_cap_exp`] and
//!    [`AdaptiveConfig::max_cap_exp`], so quiet threads retry promptly
//!    while storming threads spread out far beyond the static
//!    [`crate::util::Backoff::CAP_EXP`].
//! 3. **Inflate-vs-wait.** When an unresponsive-owner patience budget
//!    expires on a *hot* object, [`ContentionManager::extra_patience`]
//!    grants bounded extra acknowledgement-wait chunks before the engine
//!    inflates. Inflation of a hot object makes every subsequent access
//!    pay the locator indirection; on a storming object the owner is
//!    usually alive-but-slow, so a little extra patience is cheaper than
//!    permanently de-optimizing the object. Grants are capped by
//!    [`AdaptiveConfig::max_extra_patience`], preserving obstruction
//!    freedom: a truly crashed owner still gets inflated past, just a
//!    bounded number of steps later.
//!
//! All state lives in fixed-size tables of relaxed atomics (no locks, no
//! allocation after construction), so consulting the policy stays cheap
//! and the policy itself cannot block anyone.

use super::{CmMode, ContentionManager, KarmaDeadlock, ModeChange, Resolution};
use crate::txn::{AbortCause, TxnDesc};
use crate::util::CachePadded;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// Tuning knobs for [`Adaptive`]. `Default` matches the values used by
/// the bench sweep; every threshold is denominated in the same units as
/// the telemetry that feeds it (abort events for heat, consultations for
/// timeouts, spin steps for patience).
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Heat units (decayed abort count) at which an object escalates.
    pub hot_threshold: u32,
    /// Heat units at or below which an escalated object de-escalates.
    /// Must be `< hot_threshold` (hysteresis prevents mode flapping).
    pub cool_threshold: u32,
    /// Consultations a contender waits politely on an escalated object
    /// before the wrapped Karma policy (and its own timeout) takes over.
    /// This is the bound that keeps escalation obstruction-free.
    pub escalated_timeout: u64,
    /// Backoff cap exponent when a thread's conflict EWMA is 0.
    pub min_cap_exp: u32,
    /// Backoff cap exponent when a thread's conflict EWMA saturates.
    pub max_cap_exp: u32,
    /// Total extra acknowledgement-wait steps ever granted per conflict
    /// before inflation proceeds regardless (lever 3 bound).
    pub max_extra_patience: u64,
    /// Extra patience granted per expiry while the object stays hot.
    pub patience_chunk: u64,
    /// Telemetry events (aborts + commits) between heat-decay sweeps.
    pub decay_interval: u64,
    /// EWMA smoothing shift: `ewma += (sample - ewma) >> ewma_shift`.
    /// Larger = smoother/slower; 4 tracks a ~16-event horizon.
    pub ewma_shift: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            // ~8 aborts on one object inside a decay window is already a
            // storm for the paper's short transactions.
            hot_threshold: 8,
            cool_threshold: 2,
            // Each Wait consultation is a scheduler yield on native
            // hosts, so escalated waiting must stay *shorter* than the
            // inner Karma timeout (256): long enough to drain a convoy
            // of short transactions, short enough that a descheduled
            // owner on an oversubscribed host costs a bounded prefix of
            // yields before Karma's deadlock logic takes over. (Deeper
            // waits measurably collapse throughput at 68–128 threads on
            // few cores.)
            escalated_timeout: 160,
            min_cap_exp: 6,
            max_cap_exp: Adaptive::MAX_CAP_EXP_LIMIT,
            max_extra_patience: 128,
            patience_chunk: 64,
            decay_interval: 1024,
            ewma_shift: 4,
        }
    }
}

/// EWMA fixed point: 1024 == an abort rate of 1.0.
const EWMA_ONE: u32 = 1024;
/// Heat added per abort attributed to an object.
const HEAT_PER_ABORT: u32 = 1;

/// Per-thread conflict-rate slot. Written only by its owning thread
/// (the engine delivers `on_abort`/`on_commit` from the aborting /
/// committing thread itself); read by the same thread in `backoff_cap`.
/// Relaxed atomics make the cross-thread case (stats scrapes, tests)
/// merely racy-but-defined. Each slot gets its own cache line: bare
/// `AtomicU32`s would pack sixteen threads' EWMAs onto one host line,
/// so every attempt outcome would invalidate fifteen other threads'
/// `backoff_cap` reads — false sharing on the hottest policy path.
#[derive(Default)]
struct ThreadSlot {
    /// Fixed-point EWMA of abort-per-attempt, 0..=[`EWMA_ONE`].
    ewma: AtomicU32,
}

/// Per-object heat slot, keyed by header address hashed into the table.
/// Distinct objects may collide into one slot; that only merges their
/// heat, which over-approximates — an acceptable error for a policy
/// input (same trade the flight recorder's `hottest_objects` makes).
/// Line-padded like [`ThreadSlot`]: heat bumps from aborting threads
/// and mode probes from `resolve_at`/`extra_patience` hit different
/// objects' slots concurrently, and at 24 bytes two-plus slots would
/// otherwise share every line.
#[derive(Default)]
struct HeatSlot {
    /// Header address of the last object that heated this slot (for
    /// mode-change reporting; informational under collisions).
    addr: AtomicU64,
    /// Decayed abort count.
    heat: AtomicU32,
    /// [`CmMode::code`] of the slot's current mode.
    mode: AtomicU32,
    /// Spin steps of extra patience already granted on the current
    /// conflict epoch (reset on de-escalation).
    granted: AtomicU64,
}

const THREAD_SLOTS: usize = 256;
const HEAT_SLOTS: usize = 512;

/// Adaptive contention manager: [`KarmaDeadlock`] plus the three
/// telemetry-driven levers described in the module docs above.
pub struct Adaptive {
    inner: KarmaDeadlock,
    cfg: AdaptiveConfig,
    threads: Vec<CachePadded<ThreadSlot>>,
    heat: Vec<CachePadded<HeatSlot>>,
    /// Total telemetry events, for decay scheduling. Every thread RMWs
    /// this on every abort *and* commit — the single hottest word in
    /// the policy — so it gets a line to itself, away from the
    /// read-mostly `cfg`/`inner` fields and the sweep cursor.
    events: CachePadded<AtomicU64>,
    /// Index of the next heat slot a decay sweep will inspect for
    /// de-escalation (sweeps resume where the last left off, so every
    /// cooled slot is eventually reported even though each sweep may
    /// return only one [`ModeChange`]).
    sweep_cursor: CachePadded<AtomicU64>,
}

impl Adaptive {
    /// Hard ceiling on [`AdaptiveConfig::max_cap_exp`]; matches
    /// [`crate::util::Backoff::MAX_CAP_EXP`] (2^16 steps) — kept as a
    /// local const so `cm` does not depend on `util` internals.
    pub const MAX_CAP_EXP_LIMIT: u32 = 16;

    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(cfg.cool_threshold < cfg.hot_threshold, "hysteresis requires cool < hot");
        let cfg = AdaptiveConfig {
            max_cap_exp: cfg.max_cap_exp.min(Self::MAX_CAP_EXP_LIMIT),
            min_cap_exp: cfg.min_cap_exp.min(cfg.max_cap_exp).min(Self::MAX_CAP_EXP_LIMIT),
            decay_interval: cfg.decay_interval.max(1),
            ..cfg
        };
        Adaptive {
            inner: KarmaDeadlock::default(),
            cfg,
            threads: (0..THREAD_SLOTS).map(|_| CachePadded::new(ThreadSlot::default())).collect(),
            heat: (0..HEAT_SLOTS).map(|_| CachePadded::new(HeatSlot::default())).collect(),
            events: CachePadded::new(AtomicU64::new(0)),
            sweep_cursor: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The configuration in effect (post-clamping).
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    fn thread_slot(&self, thread: u32) -> &ThreadSlot {
        &self.threads[thread as usize % THREAD_SLOTS]
    }

    fn heat_slot(&self, obj_addr: u64) -> &HeatSlot {
        // Fibonacci hashing of the header address; headers are
        // cache-line spaced, so the low bits alone would collide.
        let h = obj_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.heat[(h >> 32) as usize % HEAT_SLOTS]
    }

    /// True if `obj_addr`'s slot is currently escalated.
    pub fn is_escalated(&self, obj_addr: u64) -> bool {
        self.heat_slot(obj_addr).mode.load(Relaxed) == CmMode::Escalated.code() as u32
    }

    /// Current conflict-rate EWMA for `thread`, as fixed point over
    /// `EWMA_ONE` = 1024 (test/observability hook).
    pub fn conflict_ewma(&self, thread: u32) -> u32 {
        self.thread_slot(thread).ewma.load(Relaxed)
    }

    /// Fold one attempt outcome into `thread`'s EWMA.
    fn note_attempt(&self, thread: u32, aborted: bool) {
        let slot = self.thread_slot(thread);
        let old = slot.ewma.load(Relaxed);
        let sample = if aborted { EWMA_ONE as i64 } else { 0 };
        let next = old as i64 + ((sample - old as i64) >> self.cfg.ewma_shift);
        slot.ewma.store(next.clamp(0, EWMA_ONE as i64) as u32, Relaxed);
    }

    /// Count a telemetry event; every `decay_interval` events, run a
    /// decay sweep and return the first de-escalation it produced.
    fn tick(&self) -> Option<ModeChange> {
        let n = self.events.fetch_add(1, Relaxed).wrapping_add(1);
        if !n.is_multiple_of(self.cfg.decay_interval) {
            return None;
        }
        // Halve all heat. Load/store (not RMW) is fine: a concurrent
        // heat bump lost to the race only delays escalation by one
        // abort, and policy inputs tolerate that.
        let mut change = None;
        let start = self.sweep_cursor.load(Relaxed) as usize;
        for i in 0..HEAT_SLOTS {
            let slot = &self.heat[(start + i) % HEAT_SLOTS];
            let h = slot.heat.load(Relaxed);
            if h > 0 {
                slot.heat.store(h / 2, Relaxed);
            }
            if change.is_none()
                && h / 2 <= self.cfg.cool_threshold
                && slot
                    .mode
                    .compare_exchange(
                        CmMode::Escalated.code() as u32,
                        CmMode::Normal.code() as u32,
                        Relaxed,
                        Relaxed,
                    )
                    .is_ok()
            {
                slot.granted.store(0, Relaxed);
                change = Some(ModeChange {
                    obj_addr: slot.addr.load(Relaxed),
                    to: CmMode::Normal,
                });
                self.sweep_cursor.store(((start + i) % HEAT_SLOTS) as u64 + 1, Relaxed);
            }
        }
        change
    }
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive::new(AdaptiveConfig::default())
    }
}

impl ContentionManager for Adaptive {
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, waited: u64) -> Resolution {
        // Object-agnostic entry point: no heat to consult, pure Karma.
        self.inner.resolve(me, other, waited)
    }

    fn resolve_at(&self, me: &TxnDesc, other: &TxnDesc, obj_addr: u64, waited: u64) -> Resolution {
        let slot = self.heat_slot(obj_addr);
        if slot.mode.load(Relaxed) == CmMode::Escalated.code() as u32
            && waited < self.cfg.escalated_timeout
        {
            // Queued ownership: drain the storm through the current
            // owner. Bounded — past escalated_timeout the inner Karma
            // policy decides (and its own timeout escape hatch still
            // fires at `waited >= timeout`), so no wait is unbounded.
            return Resolution::Wait;
        }
        self.inner.resolve(me, other, waited)
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_abort(&self, thread: u32, cause: AbortCause, obj_addr: u64) -> Option<ModeChange> {
        self.note_attempt(thread, true);
        let mut change = self.tick();
        // Explicit aborts are programmatic control flow, not contention;
        // everything else (Requested, SelfAbort, Validation, Htm) is a
        // conflict signal that heats the object it was fought over.
        if obj_addr != 0 && cause != AbortCause::Explicit {
            let slot = self.heat_slot(obj_addr);
            slot.addr.store(obj_addr, Relaxed);
            let h = slot.heat.fetch_add(HEAT_PER_ABORT, Relaxed) + HEAT_PER_ABORT;
            if h >= self.cfg.hot_threshold
                && slot
                    .mode
                    .compare_exchange(
                        CmMode::Normal.code() as u32,
                        CmMode::Escalated.code() as u32,
                        Relaxed,
                        Relaxed,
                    )
                    .is_ok()
            {
                slot.granted.store(0, Relaxed);
                change = Some(ModeChange { obj_addr, to: CmMode::Escalated });
            }
        }
        change
    }

    fn on_commit(&self, thread: u32) -> Option<ModeChange> {
        self.note_attempt(thread, false);
        self.tick()
    }

    fn backoff_cap(&self, thread: u32) -> Option<u32> {
        let ewma = self.thread_slot(thread).ewma.load(Relaxed);
        let span = self.cfg.max_cap_exp - self.cfg.min_cap_exp;
        Some(self.cfg.min_cap_exp + (ewma * span + EWMA_ONE / 2) / EWMA_ONE)
    }

    fn extra_patience(&self, obj_addr: u64, granted: u64) -> u64 {
        if granted >= self.cfg.max_extra_patience {
            return 0;
        }
        let slot = self.heat_slot(obj_addr);
        if slot.mode.load(Relaxed) != CmMode::Escalated.code() as u32 {
            return 0;
        }
        self.cfg.patience_chunk.min(self.cfg.max_extra_patience - granted)
    }
}

impl std::fmt::Debug for Adaptive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adaptive")
            .field("cfg", &self.cfg)
            .field("events", &self.events.load(Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> AdaptiveConfig {
        AdaptiveConfig {
            hot_threshold: 4,
            cool_threshold: 1,
            decay_interval: 16,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn escalates_once_at_threshold_and_traces_the_transition() {
        let cm = Adaptive::new(cfg_small());
        let addr = 0x1000;
        let mut changes = vec![];
        for _ in 0..6 {
            if let Some(c) = cm.on_abort(0, AbortCause::Requested, addr) {
                changes.push(c);
            }
        }
        assert_eq!(changes, vec![ModeChange { obj_addr: addr, to: CmMode::Escalated }]);
        assert!(cm.is_escalated(addr));
    }

    #[test]
    fn explicit_aborts_do_not_heat_objects() {
        let cm = Adaptive::new(cfg_small());
        for _ in 0..64 {
            assert_eq!(cm.on_abort(0, AbortCause::Explicit, 0x2000), None);
        }
        assert!(!cm.is_escalated(0x2000));
    }

    #[test]
    fn deescalates_after_commit_driven_decay() {
        let cfg = cfg_small();
        let interval = cfg.decay_interval;
        let cm = Adaptive::new(cfg);
        let addr = 0x3000;
        for _ in 0..4 {
            cm.on_abort(0, AbortCause::Requested, addr);
        }
        assert!(cm.is_escalated(addr));
        // Commits carry no heat; decay sweeps halve it toward the cool
        // threshold and the escalation lapses.
        let mut change = None;
        for _ in 0..interval * 8 {
            if let Some(c) = cm.on_commit(0) {
                change = Some(c);
                break;
            }
        }
        assert_eq!(change, Some(ModeChange { obj_addr: addr, to: CmMode::Normal }));
        assert!(!cm.is_escalated(addr));
    }

    #[test]
    fn escalated_mode_waits_then_falls_back_to_karma() {
        let cm = Adaptive::new(cfg_small());
        let addr = 0x4000;
        for _ in 0..4 {
            cm.on_abort(0, AbortCause::Requested, addr);
        }
        let me = TxnDesc::new(0, 1);
        let other = TxnDesc::new(1, 2);
        let t = cm.config().escalated_timeout;
        assert!(
            t < KarmaDeadlock::default().timeout,
            "escalated waiting must stay a prefix of Karma's own timeout"
        );
        // Inside the prefix: pure wait, regardless of what Karma's
        // priority comparison would have decided.
        assert_eq!(cm.resolve_at(&me, &other, addr, 0), Resolution::Wait);
        assert_eq!(cm.resolve_at(&me, &other, addr, t - 1), Resolution::Wait);
        // Past the prefix Karma decides, and its timeout escape hatch
        // still fires — the wait was bounded.
        assert_eq!(cm.resolve_at(&me, &other, addr, 300), Resolution::RequestAbort);
        // A cold object never entered escalation: Karma timeout applies.
        assert_eq!(cm.resolve_at(&me, &other, 0x5000, 300), Resolution::RequestAbort);
    }

    #[test]
    fn backoff_cap_tracks_conflict_rate_within_bounds() {
        let cm = Adaptive::new(AdaptiveConfig::default());
        let lo = cm.backoff_cap(7).unwrap();
        assert_eq!(lo, cm.config().min_cap_exp, "fresh thread gets the floor");
        for _ in 0..256 {
            cm.on_abort(7, AbortCause::Validation, 0);
        }
        let hi = cm.backoff_cap(7).unwrap();
        assert_eq!(hi, cm.config().max_cap_exp, "saturated thread gets the ceiling");
        for _ in 0..256 {
            cm.on_commit(7);
        }
        assert_eq!(cm.backoff_cap(7).unwrap(), cm.config().min_cap_exp, "recovers after commits");
        assert!(cm.config().max_cap_exp <= Adaptive::MAX_CAP_EXP_LIMIT);
    }

    #[test]
    fn extra_patience_is_bounded_and_hot_only() {
        let cm = Adaptive::new(cfg_small());
        let addr = 0x6000;
        // Cold object: inflate immediately, as the paper specifies.
        assert_eq!(cm.extra_patience(addr, 0), 0);
        for _ in 0..4 {
            cm.on_abort(0, AbortCause::Requested, addr);
        }
        // Hot object: bounded chunks, total never exceeding the cap.
        let mut granted = 0;
        loop {
            let extra = cm.extra_patience(addr, granted);
            if extra == 0 {
                break;
            }
            granted += extra;
            assert!(granted <= cm.config().max_extra_patience, "grants escaped the cap");
        }
        assert_eq!(granted, cm.config().max_extra_patience);
        assert_eq!(cm.extra_patience(addr, granted), 0, "converges to 0");
    }

    #[test]
    fn plain_resolve_is_pure_karma() {
        let cm = Adaptive::default();
        let me = TxnDesc::new(0, 1);
        let other = TxnDesc::new(1, 2);
        let karma = KarmaDeadlock::default();
        for waited in [0, 100, 255, 256, 1000] {
            assert_eq!(cm.resolve(&me, &other, waited), karma.resolve(&me, &other, waited));
        }
    }
}
