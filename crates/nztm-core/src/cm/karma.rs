//! The paper's default contention manager: Karma priorities + LogTM-style
//! deadlock detection (§4.3).

use super::{ContentionManager, Resolution};
use crate::txn::TxnDesc;

/// Karma variant with deadlock detection.
///
/// * Priority = number of objects acquired in this attempt
///   ([`TxnDesc::priority`]).
/// * A transaction that detects a conflict with a **higher-or-equal**
///   priority peer raises its waiting flag (done by the engine) and
///   waits until the peer is done.
/// * A transaction that detects a conflict with a **lower** priority peer
///   whose waiting flag is raised infers a potential cycle and requests
///   the peer's abort.
/// * Regardless of priority, a timeout eventually triggers an abort
///   request, guaranteeing the blocking STM cannot hang on a
///   lost-in-space peer forever and bounding convoys in the nonblocking
///   one.
#[derive(Debug)]
pub struct KarmaDeadlock {
    /// Spin steps before the timeout escape hatch triggers.
    pub timeout: u64,
}

impl Default for KarmaDeadlock {
    fn default() -> Self {
        // A few hundred spin steps ≈ a few microseconds native, a few
        // thousand cycles simulated: long enough that short transactions
        // finish, short enough that convoys stay bounded.
        KarmaDeadlock { timeout: 256 }
    }
}

impl ContentionManager for KarmaDeadlock {
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, waited: u64) -> Resolution {
        if waited >= self.timeout {
            return Resolution::RequestAbort;
        }
        let my_prio = me.priority();
        let their_prio = other.priority();
        if my_prio > their_prio && other.is_waiting() {
            // I am the high-priority transaction TH; the low-priority TL
            // is itself stalled on someone — potential cycle.
            Resolution::RequestAbort
        } else {
            Resolution::Wait
        }
    }

    fn name(&self) -> &'static str {
        "karma-deadlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_prio(thread: u32, prio: u64) -> TxnDesc {
        let d = TxnDesc::new(thread, 0);
        for _ in 0..prio {
            d.gained_object();
        }
        d
    }

    #[test]
    fn low_priority_waits_for_high() {
        let cm = KarmaDeadlock::default();
        let lo = with_prio(0, 1);
        let hi = with_prio(1, 5);
        assert_eq!(cm.resolve(&lo, &hi, 0), Resolution::Wait);
    }

    #[test]
    fn high_priority_waits_for_non_stalled_low() {
        // "transactions do not abort the other transaction unless a
        // timeout is triggered" — even with higher priority, if the peer
        // is not stalled we wait.
        let cm = KarmaDeadlock::default();
        let hi = with_prio(0, 5);
        let lo = with_prio(1, 1);
        assert_eq!(cm.resolve(&hi, &lo, 0), Resolution::Wait);
    }

    #[test]
    fn high_priority_breaks_potential_cycle() {
        let cm = KarmaDeadlock::default();
        let hi = with_prio(0, 5);
        let lo = with_prio(1, 1);
        lo.set_waiting(true);
        assert_eq!(cm.resolve(&hi, &lo, 0), Resolution::RequestAbort);
    }

    #[test]
    fn equal_priority_stalled_peer_is_not_aborted() {
        // The rule requires strictly higher priority.
        let cm = KarmaDeadlock::default();
        let a = with_prio(0, 2);
        let b = with_prio(1, 2);
        b.set_waiting(true);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::Wait);
    }

    #[test]
    fn timeout_triggers_request() {
        let cm = KarmaDeadlock { timeout: 10 };
        let a = with_prio(0, 0);
        let b = with_prio(1, 9);
        assert_eq!(cm.resolve(&a, &b, 9), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 10), Resolution::RequestAbort);
    }
}
