//! Contention management.
//!
//! The paper (§4.3) uses "a variant of Karma, in which each transaction's
//! priority is proportional to the number of objects it has already
//! acquired in this transaction attempt", combined with a LogTM-style
//! deadlock-detection scheme:
//!
//! > "By default, whenever a conflict is detected, transactions do not
//! > abort the other transaction unless a timeout is triggered. Whenever a
//! > transaction TL detects a conflict with a high priority transaction
//! > TH, TL raises a flag and it waits until TH is done. When a
//! > transaction TH detects a conflict with a low priority transaction TL
//! > whose flag is raised, TH infers that there is a potential cycle and
//! > aborts TL."
//!
//! [`KarmaDeadlock`] implements exactly that policy and is the default
//! everywhere. [`Polite`], [`Aggressive`], and [`Timestamp`] are classic
//! alternatives (Scherer & Scott) shipped for the ablation benches.
//!
//! A contention manager decides *policy only* — whether to keep waiting,
//! request the peer's abort, or abort self. The *mechanism* (the
//! AbortNowPlease handshake, patience, inflation) lives in the engine.

mod karma;

pub use karma::KarmaDeadlock;

use crate::txn::TxnDesc;

/// What to do about a conflict with `other`, asked repeatedly while the
/// conflict persists (with `waited` incrementing each consultation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Keep waiting (spin once, consult again).
    Wait,
    /// Request that the peer abort itself.
    RequestAbort,
    /// Abort the current transaction instead.
    AbortSelf,
}

/// Contention-manager policy interface.
pub trait ContentionManager: Send + Sync + 'static {
    /// Resolve a conflict between `me` (the transaction detecting the
    /// conflict) and `other` (the current owner/reader). `waited` is the
    /// number of spin steps already taken on this conflict.
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, waited: u64) -> Resolution;

    /// Name, for reports.
    fn name(&self) -> &'static str;
}

/// Always request the peer's abort immediately ("requester wins" in
/// software — the policy ATMTP hardware uses, shipped here for ablation).
#[derive(Debug, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn resolve(&self, _me: &TxnDesc, _other: &TxnDesc, _waited: u64) -> Resolution {
        Resolution::RequestAbort
    }
    fn name(&self) -> &'static str {
        "aggressive"
    }
}

/// Bounded politeness: wait with (engine-provided) backoff up to a budget,
/// then request the peer's abort.
#[derive(Debug)]
pub struct Polite {
    pub budget: u64,
}

impl Default for Polite {
    fn default() -> Self {
        Polite { budget: 32 }
    }
}

impl ContentionManager for Polite {
    fn resolve(&self, _me: &TxnDesc, _other: &TxnDesc, waited: u64) -> Resolution {
        if waited < self.budget {
            Resolution::Wait
        } else {
            Resolution::RequestAbort
        }
    }
    fn name(&self) -> &'static str {
        "polite"
    }
}

/// Older transaction wins (lower serial = older); the younger aborts
/// itself on conflict with an older one. Simple, livelock-free given
/// thread-unique serials — used by tests that need guaranteed progress.
#[derive(Debug, Default)]
pub struct Timestamp;

impl ContentionManager for Timestamp {
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, _waited: u64) -> Resolution {
        // Order by (serial, thread) — unique per descriptor.
        let mine = (me.serial, me.thread);
        let theirs = (other.serial, other.thread);
        if mine < theirs {
            Resolution::RequestAbort
        } else {
            Resolution::AbortSelf
        }
    }
    fn name(&self) -> &'static str {
        "timestamp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(thread: u32, serial: u64) -> TxnDesc {
        TxnDesc::new(thread, serial)
    }

    #[test]
    fn aggressive_always_requests() {
        let cm = Aggressive;
        let a = desc(0, 1);
        let b = desc(1, 99);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&a, &b, 1000), Resolution::RequestAbort);
    }

    #[test]
    fn polite_waits_then_requests() {
        let cm = Polite { budget: 3 };
        let a = desc(0, 1);
        let b = desc(1, 1);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 2), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 3), Resolution::RequestAbort);
    }

    #[test]
    fn timestamp_older_wins() {
        let cm = Timestamp;
        let old = desc(0, 1);
        let young = desc(1, 5);
        assert_eq!(cm.resolve(&old, &young, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::AbortSelf);
    }

    #[test]
    fn timestamp_ties_break_by_thread() {
        let cm = Timestamp;
        let a = desc(0, 3);
        let b = desc(1, 3);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&b, &a, 0), Resolution::AbortSelf);
    }
}

/// Greedy (Guerraoui, Herlihy & Pochon, PODC 2005): the transaction with
/// the earlier start wins outright — on conflict, the younger one either
/// aborts itself (if the elder demands the object) or aborts the elder's
/// victim. Here rendered in the request/acknowledge idiom: the elder
/// requests the younger's abort; the younger waits for the elder unless
/// the elder is itself waiting (then it aborts itself — Greedy's
/// "if the enemy is older and suspended, kill yourself" rule).
#[derive(Debug, Default)]
pub struct Greedy;

impl ContentionManager for Greedy {
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, _waited: u64) -> Resolution {
        let mine = (me.serial, me.thread);
        let theirs = (other.serial, other.thread);
        if mine < theirs {
            // I am older: the younger transaction must go.
            Resolution::RequestAbort
        } else if other.is_waiting() {
            // Younger vs an older-but-stalled enemy: step aside.
            Resolution::AbortSelf
        } else {
            Resolution::Wait
        }
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;

    #[test]
    fn older_requests_younger_aborts_or_waits() {
        let cm = Greedy;
        let old = TxnDesc::new(0, 1);
        let young = TxnDesc::new(1, 9);
        assert_eq!(cm.resolve(&old, &young, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::Wait);
        old.set_waiting(true);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::AbortSelf);
    }
}
