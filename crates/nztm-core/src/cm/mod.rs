//! Contention management.
//!
//! The paper (§4.3) uses "a variant of Karma, in which each transaction's
//! priority is proportional to the number of objects it has already
//! acquired in this transaction attempt", combined with a LogTM-style
//! deadlock-detection scheme:
//!
//! > "By default, whenever a conflict is detected, transactions do not
//! > abort the other transaction unless a timeout is triggered. Whenever a
//! > transaction TL detects a conflict with a high priority transaction
//! > TH, TL raises a flag and it waits until TH is done. When a
//! > transaction TH detects a conflict with a low priority transaction TL
//! > whose flag is raised, TH infers that there is a potential cycle and
//! > aborts TL."
//!
//! [`KarmaDeadlock`] implements exactly that policy and is the default
//! everywhere. [`Polite`], [`Aggressive`], and [`Timestamp`] are classic
//! alternatives (Scherer & Scott) shipped for the ablation benches.
//!
//! A contention manager decides *policy only* — whether to keep waiting,
//! request the peer's abort, or abort self. The *mechanism* (the
//! AbortNowPlease handshake, patience, inflation) lives in the engine.

mod adaptive;
mod karma;

pub use adaptive::{Adaptive, AdaptiveConfig};
pub use karma::KarmaDeadlock;

use crate::txn::{AbortCause, TxnDesc};

/// What to do about a conflict with `other`, asked repeatedly while the
/// conflict persists (with `waited` incrementing each consultation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Keep waiting (spin once, consult again).
    Wait,
    /// Request that the peer abort itself.
    RequestAbort,
    /// Abort the current transaction instead.
    AbortSelf,
}

/// Per-object contention-handling mode, reported by adaptive policies
/// through [`ModeChange`] and recorded as `EventKind::CmMode` trace
/// events so adaptation itself is observable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmMode {
    /// Default handling (the wrapped policy decides everything).
    Normal,
    /// Queued-ownership / serialization mode for a hot object: abort
    /// requests are suppressed below a raised timeout so the storm
    /// drains through the current owner instead of thrashing.
    Escalated,
}

impl CmMode {
    /// Stable numeric code, used in flight-recorder event records.
    pub fn code(self) -> u64 {
        match self {
            CmMode::Normal => 0,
            CmMode::Escalated => 1,
        }
    }

    /// Inverse of [`CmMode::code`]; `None` for unknown codes.
    pub fn from_code(code: u64) -> Option<CmMode> {
        Some(match code {
            0 => CmMode::Normal,
            1 => CmMode::Escalated,
            _ => return None,
        })
    }
}

/// A per-object mode transition decided by the contention manager,
/// surfaced to the engine so it can count and trace the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModeChange {
    /// Header address of the object whose mode changed.
    pub obj_addr: u64,
    /// The mode the object switched *to*.
    pub to: CmMode,
}

/// Contention-manager policy interface.
///
/// The required [`ContentionManager::resolve`] is the classic Scherer &
/// Scott decision point; the provided methods are telemetry and tuning
/// hooks that static policies ignore (their defaults are no-ops) and
/// adaptive policies override. All hooks are *policy only*: the engine
/// keeps every mechanism bound (patience, inflation, the backoff cap
/// clamp), so no policy can turn a nonblocking mode blocking.
pub trait ContentionManager: Send + Sync + 'static {
    /// Resolve a conflict between `me` (the transaction detecting the
    /// conflict) and `other` (the current owner/reader).
    ///
    /// **Units of `waited`:** the number of *consultations already taken
    /// on this conflict*. The engine's conflict loop takes exactly one
    /// `spin_wait` step after each `Wait` resolution before consulting
    /// again, so `waited` also equals the spin steps spent on this
    /// conflict so far — the first call always sees `waited == 0`,
    /// before any spin. Policy budgets ([`Polite::budget`],
    /// [`KarmaDeadlock::timeout`]) are denominated in these
    /// consultation steps; the engine must never consult more than once
    /// per spin step, or budgets would silently shrink in wall time.
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, waited: u64) -> Resolution;

    /// Name, for reports.
    fn name(&self) -> &'static str;

    /// Like [`ContentionManager::resolve`], with the conflicted object's
    /// header address. The engine always calls this form; the default
    /// ignores the address, so object-agnostic policies only implement
    /// `resolve`.
    fn resolve_at(&self, me: &TxnDesc, other: &TxnDesc, obj_addr: u64, waited: u64) -> Resolution {
        let _ = obj_addr;
        self.resolve(me, other, waited)
    }

    /// Telemetry: an attempt on `thread` aborted with `cause`;
    /// `obj_addr` is the header address of the object whose conflict the
    /// attempt last fought over (0 when no conflict was recorded, e.g. a
    /// pure validation abort). Returns a mode transition for the engine
    /// to count and trace, if this event triggered one.
    fn on_abort(&self, thread: u32, cause: AbortCause, obj_addr: u64) -> Option<ModeChange> {
        let _ = (thread, cause, obj_addr);
        None
    }

    /// Telemetry: an attempt on `thread` committed. Returns a mode
    /// transition (typically a de-escalation as heat decays), if any.
    fn on_commit(&self, thread: u32) -> Option<ModeChange> {
        let _ = thread;
        None
    }

    /// Recommended retry-backoff cap exponent for `thread`, consulted by
    /// the engine before each between-attempts backoff draw. `None`
    /// keeps the engine's static default ([`crate::util::Backoff::CAP_EXP`]);
    /// returned values are clamped by the mechanism to
    /// [`crate::util::Backoff::MAX_CAP_EXP`].
    fn backoff_cap(&self, thread: u32) -> Option<u32> {
        let _ = thread;
        None
    }

    /// Consulted when the patience budget for an unresponsive in-place
    /// owner of `obj_addr` expires: extra acknowledgement-wait steps to
    /// grant before inflating, given `granted` steps already extended on
    /// this conflict. Returning 0 (the default) inflates immediately —
    /// the paper's §2.3.1 behavior. Implementations **must** converge to
    /// 0 as `granted` grows, so inflation is delayed by a bounded amount
    /// and obstruction freedom is preserved.
    fn extra_patience(&self, obj_addr: u64, granted: u64) -> u64 {
        let _ = (obj_addr, granted);
        0
    }
}

/// Always request the peer's abort immediately ("requester wins" in
/// software — the policy ATMTP hardware uses, shipped here for ablation).
#[derive(Debug, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn resolve(&self, _me: &TxnDesc, _other: &TxnDesc, _waited: u64) -> Resolution {
        Resolution::RequestAbort
    }
    fn name(&self) -> &'static str {
        "aggressive"
    }
}

/// Bounded politeness: wait with (engine-provided) backoff up to a budget,
/// then request the peer's abort.
#[derive(Debug)]
pub struct Polite {
    pub budget: u64,
}

impl Default for Polite {
    fn default() -> Self {
        Polite { budget: 32 }
    }
}

impl ContentionManager for Polite {
    fn resolve(&self, _me: &TxnDesc, _other: &TxnDesc, waited: u64) -> Resolution {
        if waited < self.budget {
            Resolution::Wait
        } else {
            Resolution::RequestAbort
        }
    }
    fn name(&self) -> &'static str {
        "polite"
    }
}

/// Older transaction wins (lower serial = older); the younger aborts
/// itself on conflict with an older one. Simple, livelock-free given
/// thread-unique serials — used by tests that need guaranteed progress.
#[derive(Debug, Default)]
pub struct Timestamp;

impl ContentionManager for Timestamp {
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, _waited: u64) -> Resolution {
        // Order by (serial, thread) — unique per descriptor.
        let mine = (me.serial, me.thread);
        let theirs = (other.serial, other.thread);
        if mine < theirs {
            Resolution::RequestAbort
        } else {
            Resolution::AbortSelf
        }
    }
    fn name(&self) -> &'static str {
        "timestamp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(thread: u32, serial: u64) -> TxnDesc {
        TxnDesc::new(thread, serial)
    }

    #[test]
    fn aggressive_always_requests() {
        let cm = Aggressive;
        let a = desc(0, 1);
        let b = desc(1, 99);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&a, &b, 1000), Resolution::RequestAbort);
    }

    #[test]
    fn polite_waits_then_requests() {
        let cm = Polite { budget: 3 };
        let a = desc(0, 1);
        let b = desc(1, 1);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 2), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 3), Resolution::RequestAbort);
    }

    #[test]
    fn timestamp_older_wins() {
        let cm = Timestamp;
        let old = desc(0, 1);
        let young = desc(1, 5);
        assert_eq!(cm.resolve(&old, &young, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::AbortSelf);
    }

    #[test]
    fn timestamp_ties_break_by_thread() {
        let cm = Timestamp;
        let a = desc(0, 3);
        let b = desc(1, 3);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&b, &a, 0), Resolution::AbortSelf);
    }
}

/// Greedy (Guerraoui, Herlihy & Pochon, PODC 2005): the transaction with
/// the earlier start wins outright — on conflict, the younger one either
/// aborts itself (if the elder demands the object) or aborts the elder's
/// victim. Here rendered in the request/acknowledge idiom: the elder
/// requests the younger's abort; the younger waits for the elder unless
/// the elder is itself waiting (then it aborts itself — Greedy's
/// "if the enemy is older and suspended, kill yourself" rule).
#[derive(Debug, Default)]
pub struct Greedy;

impl ContentionManager for Greedy {
    fn resolve(&self, me: &TxnDesc, other: &TxnDesc, _waited: u64) -> Resolution {
        let mine = (me.serial, me.thread);
        let theirs = (other.serial, other.thread);
        if mine < theirs {
            // I am older: the younger transaction must go.
            Resolution::RequestAbort
        } else if other.is_waiting() {
            // Younger vs an older-but-stalled enemy: step aside.
            Resolution::AbortSelf
        } else {
            Resolution::Wait
        }
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;

    #[test]
    fn older_requests_younger_aborts_or_waits() {
        let cm = Greedy;
        let old = TxnDesc::new(0, 1);
        let young = TxnDesc::new(1, 9);
        assert_eq!(cm.resolve(&old, &young, 0), Resolution::RequestAbort);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::Wait);
        old.set_waiting(true);
        assert_eq!(cm.resolve(&young, &old, 0), Resolution::AbortSelf);
    }
}
