//! Transactional object data: typed values over in-place word arrays.
//!
//! The paper stores object data "in place" at a fixed offset from the
//! object header (Figure 1), and sizes hardware write-buffer entries at
//! one word ("each entry represents a single store and is typically one
//! word", §4.1). We mirror that: an object's data is an inline array of
//! `AtomicU64` words embedded directly in the
//! [`NZObject`](crate::object::NZObject) — *zero* levels of indirection — and a
//! [`TmData`] implementation translates a typed Rust value to and from
//! those words.
//!
//! Using atomic words for the data field is the Rust-sound rendering of
//! the C original's plain stores: concurrent transactions may race on the
//! data words (a "late write" from a not-yet-acknowledged aborter, a
//! doomed reader's load), and every such race is benign **only** because
//! the algorithm validates before exposing a value. `Relaxed` atomic
//! accesses give exactly those semantics without undefined behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

/// An inline array of data words. Implemented for `[AtomicU64; N]`.
///
/// This is an associated-type workaround for the lack of
/// `[AtomicU64; T::WORDS]` on stable Rust: each `TmData` type names its
/// own concrete array type, so the storage is still embedded inline in
/// the object with no indirection.
pub trait WordArray: Send + Sync + 'static {
    const LEN: usize;
    fn new_zeroed() -> Self;
    fn words(&self) -> &[AtomicU64];
}

macro_rules! impl_word_array {
    ($($n:literal),* $(,)?) => {$(
        impl WordArray for [AtomicU64; $n] {
            const LEN: usize = $n;
            fn new_zeroed() -> Self {
                std::array::from_fn(|_| AtomicU64::new(0))
            }
            fn words(&self) -> &[AtomicU64] {
                self
            }
        }
    )*};
}

impl_word_array!(
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
    26, 27, 28, 29, 30, 31, 32, 40, 48, 56, 64, 128
);

/// A value that can live in a transactional object.
///
/// `encode`/`decode` must round-trip: `decode(encode(v)) == v`. The word
/// count is fixed per type (`Words::LEN`), mirroring the paper's
/// fixed-size `Data` field per object.
pub trait TmData: Clone + Send + Sync + 'static {
    /// Inline storage: `[AtomicU64; N]` for the N words this type needs.
    type Words: WordArray;

    /// Write this value into `out` (length `Self::Words::LEN`).
    fn encode(&self, out: &mut [u64]);

    /// Reconstruct a value from `words` (length `Self::Words::LEN`).
    fn decode(words: &[u64]) -> Self;

    /// Number of data words.
    fn n_words() -> usize {
        Self::Words::LEN
    }
}

/// Read all data words into a stack buffer (racy snapshot; caller must
/// validate afterwards).
pub fn snapshot_words(src: &[AtomicU64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.load(Ordering::Relaxed);
    }
}

/// Store a buffer of plain words into atomic words.
pub fn write_words(dst: &[AtomicU64], src: &[u64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter().zip(src) {
        d.store(*s, Ordering::Relaxed);
    }
}

/// Copy atomic words to atomic words (backup creation / restoration).
pub fn copy_words(dst: &[AtomicU64], src: &[AtomicU64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter().zip(src) {
        d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// TmData for primitives
// ---------------------------------------------------------------------------

macro_rules! impl_tmdata_prim {
    ($($t:ty => $to:expr, $from:expr);* $(;)?) => {$(
        impl TmData for $t {
            type Words = [AtomicU64; 1];
            fn encode(&self, out: &mut [u64]) {
                out[0] = ($to)(*self);
            }
            fn decode(words: &[u64]) -> Self {
                ($from)(words[0])
            }
        }
    )*};
}

impl_tmdata_prim! {
    u64 => |v| v, |w| w;
    i64 => |v: i64| v as u64, |w: u64| w as i64;
    u32 => |v: u32| v as u64, |w: u64| w as u32;
    i32 => |v: i32| v as u32 as u64, |w: u64| w as u32 as i32;
    f64 => f64::to_bits, f64::from_bits;
    bool => |v: bool| v as u64, |w: u64| w != 0;
    usize => |v: usize| v as u64, |w: u64| w as usize;
}

impl TmData for (u64, u64) {
    type Words = [AtomicU64; 2];
    fn encode(&self, out: &mut [u64]) {
        out[0] = self.0;
        out[1] = self.1;
    }
    fn decode(words: &[u64]) -> Self {
        (words[0], words[1])
    }
}

/// Implements [`TmData`] for a struct whose fields each encode as one
/// word. Usage:
///
/// ```
/// use nztm_core::tm_data_struct;
/// #[derive(Clone, Debug, PartialEq)]
/// pub struct Node { pub key: u64, pub next: u64 }
/// tm_data_struct!(Node { key: u64, next: u64 });
/// ```
#[macro_export]
#[doc(hidden)]
macro_rules! __count_words {
    () => { 0usize };
    ($head:ident $($tail:ident)*) => { 1usize + $crate::__count_words!($($tail)*) };
}

#[macro_export]
macro_rules! tm_data_struct {
    ($name:ident { $($field:ident : $fty:ty),* $(,)? }) => {
        impl $crate::data::TmData for $name {
            type Words =
                [std::sync::atomic::AtomicU64; { $crate::__count_words!($($field)*) }];
            fn encode(&self, out: &mut [u64]) {
                let mut _i = 0;
                $(
                    out[_i] = $crate::data::FieldWord::to_word(self.$field);
                    _i += 1;
                )*
            }
            fn decode(words: &[u64]) -> Self {
                let mut _i = 0;
                $name {
                    $($field: {
                        let w = words[_i];
                        _i += 1;
                        <$fty as $crate::data::FieldWord>::from_word(w)
                    },)*
                }
            }
        }
    };
}

/// Field-level single-word codec used by [`tm_data_struct!`].
pub trait FieldWord: Copy {
    fn to_word(self) -> u64;
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_field_word {
    ($($t:ty => $to:expr, $from:expr);* $(;)?) => {$(
        impl FieldWord for $t {
            fn to_word(self) -> u64 { ($to)(self) }
            fn from_word(w: u64) -> Self { ($from)(w) }
        }
    )*};
}

impl_field_word! {
    u64 => |v| v, |w| w;
    i64 => |v: i64| v as u64, |w: u64| w as i64;
    u32 => |v: u32| v as u64, |w: u64| w as u32;
    i32 => |v: i32| v as u32 as u64, |w: u64| w as u32 as i32;
    u16 => |v: u16| v as u64, |w: u64| w as u16;
    u8 => |v: u8| v as u64, |w: u64| w as u8;
    f64 => f64::to_bits, f64::from_bits;
    bool => |v: bool| v as u64, |w: u64| w != 0;
    usize => |v: usize| v as u64, |w: u64| w as usize;
}

impl<T: FieldWord> FieldWord for Option<T> {
    fn to_word(self) -> u64 {
        // Tag in the top bit: Option<T> fields must fit 63 bits.
        match self {
            None => 0,
            Some(v) => v.to_word() | (1 << 63),
        }
    }
    fn from_word(w: u64) -> Self {
        if w == 0 {
            None
        } else {
            Some(T::from_word(w & !(1 << 63)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        fn rt<T: TmData + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = vec![0u64; T::n_words()];
            v.encode(&mut buf);
            assert_eq!(T::decode(&buf), v);
        }
        rt(42u64);
        rt(-17i64);
        rt(3.25f64);
        rt(true);
        rt(false);
        rt((7u64, 9u64));
        rt(123usize);
        rt(-5i32);
    }

    #[test]
    fn word_array_lens() {
        assert_eq!(<[AtomicU64; 4] as WordArray>::LEN, 4);
        let a = <[AtomicU64; 4] as WordArray>::new_zeroed();
        assert!(a.words().iter().all(|w| w.load(Ordering::Relaxed) == 0));
    }

    #[test]
    fn snapshot_and_write_round_trip() {
        let atomics = <[AtomicU64; 4] as WordArray>::new_zeroed();
        write_words(atomics.words(), &[1, 2, 3, 4]);
        let mut out = [0u64; 4];
        snapshot_words(atomics.words(), &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn copy_words_copies() {
        let a = <[AtomicU64; 3] as WordArray>::new_zeroed();
        let b = <[AtomicU64; 3] as WordArray>::new_zeroed();
        write_words(a.words(), &[9, 8, 7]);
        copy_words(b.words(), a.words());
        let mut out = [0u64; 3];
        snapshot_words(b.words(), &mut out);
        assert_eq!(out, [9, 8, 7]);
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Demo {
        key: u64,
        next: Option<u32>,
        live: bool,
    }
    tm_data_struct!(Demo { key: u64, next: Option<u32>, live: bool });

    #[test]
    fn struct_macro_round_trips() {
        let v = Demo { key: 77, next: Some(3), live: true };
        let mut buf = vec![0u64; Demo::n_words()];
        v.encode(&mut buf);
        assert_eq!(Demo::decode(&buf), v);
        assert_eq!(Demo::n_words(), 3);

        let v2 = Demo { key: 0, next: None, live: false };
        v2.encode(&mut buf);
        assert_eq!(Demo::decode(&buf), v2);
    }

    #[test]
    fn option_field_zero_value_round_trips() {
        // Some(0) must not collide with None.
        let w = Option::<u32>::to_word(Some(0));
        assert_eq!(Option::<u32>::from_word(w), Some(0));
        assert_eq!(Option::<u32>::from_word(Option::<u32>::to_word(None)), None);
    }
}
