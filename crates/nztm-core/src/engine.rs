//! The NZSTM engine: one algorithm, three compile-time modes.
//!
//! * [`Blocking`] — **BZSTM** (§2.2 + §4.3 "BZSTM"): conflicts are
//!   resolved by requesting the peer's abort and *waiting indefinitely*
//!   for the acknowledgement. Objects are never inflated, and — because
//!   the mode is a compile-time policy — the generated code contains no
//!   inflation-tag checks at all, which is exactly the difference the
//!   paper measures as BZSTM's 2–5% edge over NZSTM (§4.4.2).
//! * [`Nonblocking`] — **NZSTM** (§2.3.1): same algorithm, but a bounded
//!   *patience* while waiting for an acknowledgement; when exhausted, the
//!   object is inflated into a DSTM-style locator and the obstruction-free
//!   DSTM rules take over until the object can be deflated.
//! * [`ScssMode`] — **NZSTM+SCSS** (§2.3.2): every store to in-place data
//!   is paired with a check of the writer's own AbortNowPlease flag inside
//!   a short atomic section (the Single-Compare Single-Store). No
//!   locators, no inflation: an unresponsive victim's late stores are
//!   guaranteed to fail, so the requester may proceed immediately after a
//!   one-shot barrier.
//!
//! The write path is **eager and in place**: an acquiring transaction
//! backs up the object's data words into a pool buffer and then mutates
//! the object directly; aborts are undone *lazily* by the next acquirer
//! restoring the backup (§2.2). Reads are **visible** by default (a
//! per-object reader bitmap, as in the paper's experiments) with an
//! invisible-read + commit-time-validation mode as an extension.

use crate::cm::{ContentionManager, Resolution};
use crate::data::TmData;
use crate::locator::Locator;
use crate::object::{NZHeader, NZObject, NzObjAny, OwnerRef, WordBuf};
use crate::registry::ThreadRegistry;
use crate::stats::{ThreadStats, TmStats};
use crate::trace::Trace;
use crate::txn::{Abort, AbortCause, Status, TxnDesc};
use crate::util::{Backoff, InlineVec, PerCore, SlotIndex};
use nztm_epoch::Guard;
use nztm_sim::{AccessKind, DetRng, Platform};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;

/// Increment a hot-path statistics counter. Compiled to nothing without
/// the `stats` feature (tier-1 builds keep it on; a bench profile can
/// build `--no-default-features` to strip per-access increments).
/// Lifecycle counters (commits, aborts, inflations, HTM outcomes) are
/// incremented directly — they are consumed by harnesses and policies.
///
/// Counters are single-writer atomic cells ([`ThreadStats`]): the bump is
/// an ordinary unlocked add, but any thread may read a snapshot mid-run
/// ([`NzStm::stats_snapshot`]).
macro_rules! hot_stat {
    ($ctx:expr, $field:ident) => {{
        // No-op borrow so call sites type-check identically without the
        // feature (and `ctx` parameters stay "used").
        let _ = &$ctx.stats.$field;
        #[cfg(feature = "stats")]
        {
            $ctx.stats.$field.bump();
        }
    }};
}

/// Record a flight-recorder event ([`crate::trace`]). Compiled to nothing
/// without the `trace` feature; with it, recording still requires runtime
/// arming ([`NzStm::set_tracing`]) and costs one relaxed load when
/// disarmed. The payload expressions are not evaluated unless armed.
macro_rules! trace_evt {
    ($sys:expr, $ctx:expr, $tid:expr, $kind:ident, $a:expr, $b:expr) => {{
        #[cfg(feature = "trace")]
        if $sys.trace_on.load(std::sync::atomic::Ordering::Relaxed) {
            let clock = $sys.platform.now();
            $ctx.ring.record(clock, $tid as u16, crate::trace::EventKind::$kind, $a, $b);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = $tid;
        }
    }};
}

/// Compile-time selection of the engine variant: a *composition* of one
/// type per algorithm axis (see [`crate::algo`]) plus the protocol knobs
/// the ownership compositions differentiate on.
///
/// The engine gates per-axis code paths on the axes' `const`
/// discriminators (surfaced here as [`ModePolicy::NOREC`]), so a
/// composition that does not use an axis compiles it away entirely —
/// BZSTM really contains no inflation-tag checks (§4.4.2's 2–5%), and
/// the ownership modes really contain no global-clock traffic.
pub trait ModePolicy: Send + Sync + 'static {
    /// How reads are tracked ([`crate::algo::ReadStrategy`]).
    type Reads: crate::algo::ReadStrategy;
    /// Where speculative writes live ([`crate::algo::LogRepr`]).
    type Log: crate::algo::LogRepr;
    /// Whether objects carry backups ([`crate::algo::BackupPolicy`]).
    type Backup: crate::algo::BackupPolicy;
    /// How commit serializes ([`crate::algo::CommitProtocol`]).
    type Commit: crate::algo::CommitProtocol;
    /// Give up waiting for an abort acknowledgement after `patience`
    /// steps (inflate / SCSS-barrier). `false` = BZSTM.
    const NONBLOCKING: bool;
    /// Pair every data store with an AbortNowPlease check (SCSS).
    const SCSS: bool;
    /// Derived master gate for the NOrec path: value-validated reads +
    /// redo log + global sequence lock travel together (a global-clock
    /// commit is only sound when nothing is dirtied in place and reads
    /// revalidate by value), so the commit protocol's discriminator
    /// selects the whole path.
    const NOREC: bool = <Self::Commit as crate::algo::CommitProtocol>::GLOBAL_SEQLOCK;
    const NAME: &'static str;
}

/// BZSTM: the blocking base algorithm of §2.2.
pub struct Blocking;
impl ModePolicy for Blocking {
    type Reads = crate::algo::VisibleIndicator;
    type Log = crate::algo::EagerWriteBack;
    type Backup = crate::algo::ZeroIndirectionBackup;
    type Commit = crate::algo::OwnerCas;
    const NONBLOCKING: bool = false;
    const SCSS: bool = false;
    const NAME: &'static str = "BZSTM";
}

/// NZSTM: nonblocking via inflation (§2.3.1).
pub struct Nonblocking;
impl ModePolicy for Nonblocking {
    type Reads = crate::algo::VisibleIndicator;
    type Log = crate::algo::EagerWriteBack;
    type Backup = crate::algo::ZeroIndirectionBackup;
    type Commit = crate::algo::OwnerCas;
    const NONBLOCKING: bool = true;
    const SCSS: bool = false;
    const NAME: &'static str = "NZSTM";
}

/// NZSTM+SCSS: nonblocking via Single-Compare Single-Store (§2.3.2).
pub struct ScssMode;
impl ModePolicy for ScssMode {
    type Reads = crate::algo::VisibleIndicator;
    type Log = crate::algo::EagerWriteBack;
    type Backup = crate::algo::ZeroIndirectionBackup;
    type Commit = crate::algo::OwnerCas;
    const NONBLOCKING: bool = true;
    const SCSS: bool = true;
    const NAME: &'static str = "SCSS";
}

/// NOrec: one global sequence lock, value-based validation, lazy redo
/// writes (Dalessandro, Spear & Scott, PPoPP 2010) — the progressive,
/// ownership-free point in the design space, composed from the same
/// kernel as the NZTM family. Blocking (a preempted committer stalls the
/// clock), but with no per-object metadata traffic at all: reads log
/// values, writes buffer in a redo log, and the only shared-write beyond
/// data itself is the clock CAS at commit.
pub struct NorecMode;
impl ModePolicy for NorecMode {
    type Reads = crate::algo::ValueValidation;
    type Log = crate::algo::RedoLog;
    type Backup = crate::algo::NoBackup;
    type Commit = crate::algo::GlobalSeqLock;
    // Ownership-protocol knobs; never consulted on the NOrec path (which
    // bypasses owner words, inflation, and SCSS stores entirely).
    const NONBLOCKING: bool = false;
    const SCSS: bool = false;
    const NAME: &'static str = "NOREC";
}

/// How transactional reads are tracked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// Per-object reader bitmap; writers request readers' aborts. The
    /// paper's configuration ("NZSTM software transactions with visible
    /// reads").
    Visible,
    /// Record per-object versions, validate at commit (extension).
    Invisible,
}

/// Whether a hybrid built over this engine may use the arch-native
/// hardware-transaction path (`nztm-htm`'s `htm-native` feature).
///
/// Lives here — not in the htm crate — so [`NzConfig`]/`NzBuilder` can
/// carry the knob without a dependency cycle; the engine itself never
/// reads it. The htm crate's backend selection consults it together
/// with the runtime CPUID probe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NativeHtmPolicy {
    /// Use native RTM when the build has it (`htm-native`) and the host
    /// CPU supports it; otherwise fall back to the simulated model.
    #[default]
    Auto,
    /// Never issue native hardware transactions, even on capable hosts
    /// — the hybrid behaves bit-identically to the simulated build.
    ForceOff,
    /// Require the native path: backend selection panics when the build
    /// or the host cannot provide RTM (CI probes use this to make
    /// silent fallback impossible).
    ForceOn,
}

/// Flight-recorder knobs (see [`crate::trace`]). The struct is always
/// present so configurations are feature-independent; without the `trace`
/// cargo feature it is inert (the hooks are compiled out).
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Arm event recording at construction. Can be toggled later via
    /// [`NzStm::set_tracing`].
    pub enabled: bool,
    /// Per-thread ring capacity in events (overwrite-oldest beyond this).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { enabled: false, capacity: 1 << 16 }
    }
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct NzConfig {
    /// Spin steps to wait for an abort acknowledgement before declaring
    /// the victim unresponsive (ignored by `Blocking`).
    pub patience: u64,
    pub read_mode: ReadMode,
    /// Extra cycles charged per SCSS store on simulated platforms (models
    /// the short hardware transaction's latency).
    pub scss_cycles: u64,
    /// How thread placement is derived for the layout of shared
    /// metadata (registry slot lines, striped reader-indicator stripe
    /// assignment). [`crate::topology::TopologyPolicy::Flat`] (the default) is the seed
    /// layout, bit-exact; see [`crate::topology`].
    pub topology: crate::topology::TopologyPolicy,
    /// Reserve each object's backup-copy lines inside the object's own
    /// synthetic block and keep a resident buffer bound to them
    /// ([`crate::object::ObjectLayout::colocate_backup`]). Off by
    /// default: backups then live wherever the per-thread pool's
    /// buffers were allocated.
    pub colocate_backup: bool,
    /// Flight-recorder configuration (inert without the `trace` feature).
    pub trace: TraceConfig,
    /// Native-HTM policy for hybrids assembled over this engine (the
    /// engine itself ignores it; see [`NativeHtmPolicy`]).
    pub native_htm: NativeHtmPolicy,
    /// TEST-ONLY fault injection (`sanitize` builds): requesters force
    /// the victim's `Status = Aborted` instead of waiting for the
    /// acknowledgement — the §2.2 handshake violation the sanitizer
    /// exists to catch.
    #[cfg(feature = "sanitize")]
    pub inject_handshake_bug: bool,
}

impl Default for NzConfig {
    fn default() -> Self {
        NzConfig {
            patience: 128,
            read_mode: ReadMode::Visible,
            scss_cycles: 25,
            topology: crate::topology::TopologyPolicy::Flat,
            colocate_backup: false,
            trace: TraceConfig::default(),
            native_htm: NativeHtmPolicy::default(),
            #[cfg(feature = "sanitize")]
            inject_handshake_bug: false,
        }
    }
}

/// Where a write-set entry's speculative data lives.
enum WriteTarget {
    /// Normal case: data in place; `backup_raw` identifies our backup
    /// buffer for commit-time reclamation.
    InPlace { backup_raw: u64 },
    /// Object is inflated and we own it through this locator; writes go
    /// to its `new_data`.
    Inflated { loc: Arc<Locator> },
    /// NOrec redo-log entry: the speculative value lives at
    /// `norec_redo[off..off + len]` and is written back at commit under
    /// the global sequence lock. Never constructed by ownership modes.
    Buffered { off: usize, len: usize },
}

struct WriteEntry {
    obj: Arc<dyn NzObjAny>,
    target: WriteTarget,
}

struct ReadEntry {
    obj: Arc<dyn NzObjAny>,
    /// Version observed (invisible mode); unused in visible mode. NOrec
    /// repurposes it as the packed `(off << 32) | len` slice of
    /// `norec_vals` holding this entry's logged values
    /// ([`norec_pack`]/[`norec_unpack`]).
    version: u64,
}

/// Pack a NOrec read-log slice descriptor into a `ReadEntry::version`.
#[inline]
fn norec_pack(off: usize, len: usize) -> u64 {
    debug_assert!(off <= u32::MAX as usize && len <= u32::MAX as usize);
    ((off as u64) << 32) | len as u64
}

/// Inverse of [`norec_pack`].
#[inline]
fn norec_unpack(version: u64) -> (usize, usize) {
    ((version >> 32) as usize, (version & 0xFFFF_FFFF) as usize)
}

/// Per-thread pool of backup buffers in power-of-two **size classes**
/// (class `c` holds buffers of capacity exactly `2^c` words). Buffers are
/// reclaimed at commit (take-back from the object) and reused by later
/// acquisitions — the thread-local reuse the paper credits for NZSTM's
/// cache behaviour in kmeans (§4.4.2). Size classes (instead of the old
/// exact-length `HashMap`) make every lookup a pop from an array slot and
/// let one warm buffer serve every object length in its class, so
/// `backup_alloc` reaches ~0 after warmup.
///
/// ## Invariant: no pooled buffer has a *live* installer
///
/// Buffers enter the pool exclusively via commit-time `take_backup`,
/// where the installer is the committing transaction itself — so every
/// pooled buffer's installer is **Committed**. It stays that way while
/// pooled: the pooled buffer's own strong count on the installer pins it
/// (a committed descriptor is never recycled while referenced), and
/// `set_installer` is only called on buffers being adopted or installed,
/// never on detached ones. Debug builds assert the invariant on both
/// `put` and `take`.
struct BackupPool {
    classes: [Vec<Arc<WordBuf>>; BackupPool::N_CLASSES],
}

impl Default for BackupPool {
    fn default() -> Self {
        BackupPool { classes: std::array::from_fn(|_| Vec::new()) }
    }
}

impl BackupPool {
    /// Largest pooled class: 2^15 words (256 KiB). Larger buffers are
    /// simply not pooled (no paper workload comes close).
    const N_CLASSES: usize = 16;
    /// Bounded depth per class.
    const DEPTH: usize = 64;

    fn class_of(len: usize) -> usize {
        WordBuf::cap_for(len).trailing_zeros() as usize
    }

    #[cfg(debug_assertions)]
    fn debug_check(buf: &WordBuf, op: &str) {
        let g = nztm_epoch::pin();
        assert!(
            !matches!(buf.installer_status(&g), Some(Status::Active)),
            "backup pool {op}: buffer has a live installer"
        );
    }

    fn take(&mut self, len: usize) -> Option<Arc<WordBuf>> {
        let c = Self::class_of(len);
        let buf = self.classes.get_mut(c)?.pop()?;
        debug_assert_eq!(buf.cap(), 1 << c);
        #[cfg(debug_assertions)]
        Self::debug_check(&buf, "take");
        if buf.len() != len {
            buf.set_len(len);
        }
        Some(buf)
    }

    fn put(&mut self, buf: Arc<WordBuf>) {
        #[cfg(debug_assertions)]
        Self::debug_check(&buf, "put");
        let c = buf.cap().trailing_zeros() as usize;
        if let Some(v) = self.classes.get_mut(c) {
            if v.len() < Self::DEPTH {
                v.push(buf);
            }
        }
    }
}

/// Depth bound of the per-thread descriptor free list. Must comfortably
/// exceed the number of attempts whose deferred releases (registry slot,
/// owner words, installer fields) can still be in flight through the
/// epoch's throttled collection, so recycling reaches a steady state.
const DESC_POOL_DEPTH: usize = 64;
/// How many free-list candidates `begin` probes for sole ownership.
const DESC_SCAN: usize = 4;
/// Probing starts only once the list holds this many retirees, so the
/// front candidate is at least `DESC_MIN` attempts old — comfortably past
/// the epoch-drain lag of its deferred references (registry slot ~1
/// attempt + collect interval; owner words: until the object's next
/// acquisition). Costs nothing at steady state; it only delays the very
/// first recycling hits after startup.
const DESC_MIN: usize = 32;

/// Inline capacity of the read/write sets (entries beyond this spill to
/// the heap once, then reuse the spill capacity).
const INLINE_SET: usize = 8;

struct ThreadCtx {
    current: Option<Arc<TxnDesc>>,
    serial: u64,
    read_set: InlineVec<ReadEntry, INLINE_SET>,
    write_set: InlineVec<WriteEntry, INLINE_SET>,
    /// Header address → read_set slot: O(1) re-read dedup.
    read_index: SlotIndex,
    /// Header address → write_set slot: O(1) already-acquired checks.
    write_index: SlotIndex,
    /// Retired descriptors awaiting recycling (oldest first). A candidate
    /// is reused only when `Arc::get_mut` proves sole ownership — the
    /// ABA-freedom argument lives in `txn.rs`'s module docs. Candidates
    /// that fail the probe (still referenced by an owner word of an
    /// object not yet re-acquired) rotate to the back so they cannot
    /// clog the scan window.
    free_descs: VecDeque<Arc<TxnDesc>>,
    pool: BackupPool,
    rng: DetRng,
    backoff: Backoff,
    /// Header address of the object this attempt last fought a conflict
    /// over (0 = none). Feeds the contention manager's per-object abort
    /// attribution ([`crate::cm::ContentionManager::on_abort`]).
    conflict_obj: u64,
    /// This thread's live counters. The `Arc` is shared with the
    /// engine-level [`NzStm::thread_stats`] list so any thread can
    /// snapshot mid-run; only this thread writes (single-writer cells).
    stats: Arc<ThreadStats>,
    /// Scratch encode/decode buffer, reused across operations.
    scratch: Vec<u64>,
    /// NOrec only: the global-clock value this attempt last validated
    /// against (always even). Dead (and never touched) in other modes.
    snapshot: u64,
    /// NOrec only: logged read values. Entry `i` of the read set owns
    /// the slice packed into its `version` ([`norec_pack`]).
    norec_vals: Vec<u64>,
    /// NOrec only: redo-log value words, sliced by the write set's
    /// [`WriteTarget::Buffered`] entries.
    norec_redo: Vec<u64>,
    /// Flight-recorder ring (single-writer; drained quiescently).
    #[cfg(feature = "trace")]
    ring: crate::trace::TraceRing,
    /// Per-thread sanitizer pause stream, keyed by the schedule
    /// generation that derived it (re-split on `set_schedule`).
    #[cfg(feature = "sanitize")]
    san_rng: Option<(u64, DetRng)>,
}

impl ThreadCtx {
    fn new(tid: usize, stats: Arc<ThreadStats>, trace_capacity: usize) -> Self {
        #[cfg(not(feature = "trace"))]
        let _ = trace_capacity;
        ThreadCtx {
            current: None,
            serial: 0,
            read_set: InlineVec::new(),
            write_set: InlineVec::new(),
            read_index: SlotIndex::new(),
            write_index: SlotIndex::new(),
            free_descs: VecDeque::with_capacity(DESC_POOL_DEPTH),
            pool: BackupPool::default(),
            rng: DetRng::new(0x5EED_0000 + tid as u64),
            backoff: Backoff::new(),
            conflict_obj: 0,
            stats,
            scratch: Vec::with_capacity(64),
            snapshot: 0,
            norec_vals: Vec::new(),
            norec_redo: Vec::new(),
            #[cfg(feature = "trace")]
            ring: crate::trace::TraceRing::new(trace_capacity),
            #[cfg(feature = "sanitize")]
            san_rng: None,
        }
    }
}

/// Index key for the access-set maps: the header's host address (stable
/// while any set entry holds the object's `Arc`).
#[inline]
fn header_key(h: &NZHeader) -> u64 {
    h as *const NZHeader as u64
}

/// Append a write-set entry and index it by header address. Every
/// write-set push goes through here so `write_index` never goes stale.
#[inline]
fn push_write(ctx: &mut ThreadCtx, entry: WriteEntry) {
    let key = header_key(entry.obj.header());
    ctx.write_index.insert(key, ctx.write_set.len() as u32);
    ctx.write_set.push(entry);
}

/// NOrec's global sequence lock, on its own cache line (every committer
/// writes it; every reader polls it — the one genuinely global word of
/// that composition). Even = unlocked (the value doubles as the snapshot
/// clock); odd = a writer is inside its commit write-back window.
#[repr(align(128))]
struct NorecClock {
    word: std::sync::atomic::AtomicU64,
    /// Synthetic address feeding the sim cache model.
    synth: usize,
}

impl NorecClock {
    fn new() -> Self {
        NorecClock {
            word: std::sync::atomic::AtomicU64::new(0),
            synth: nztm_sim::synth_alloc_as(128, nztm_sim::StructClass::Other),
        }
    }
}

/// Outcome of conflict resolution against one peer transaction.
enum ConflictOutcome {
    /// The conflict no longer exists (peer settled, or ownership changed).
    Settled,
    /// The peer was asked to abort and did not acknowledge within the
    /// patience budget (only produced when `M::NONBLOCKING`).
    Unresponsive,
}

/// The NZSTM/BZSTM/SCSS engine. See module docs.
pub struct NzStm<P: Platform, M: ModePolicy> {
    platform: Arc<P>,
    cm: Arc<dyn ContentionManager>,
    registry: ThreadRegistry,
    /// Layout directives handed to every [`NzStm::new_obj`] allocation
    /// (reader capacity, topology placement, backup colocation) —
    /// resolved once from [`NzConfig`] at construction.
    layout: crate::object::ObjectLayout,
    threads: PerCore<ThreadCtx>,
    /// Per-thread counter cells, shared with each `ThreadCtx`. Read side
    /// of [`NzStm::stats_snapshot`] — safe to merge at any time.
    thread_stats: Box<[Arc<ThreadStats>]>,
    /// NOrec's global sequence lock. Present in every engine (the struct
    /// shape is mode-independent) but only touched when `M::NOREC`.
    norec_clock: NorecClock,
    cfg: NzConfig,
    /// Runtime arming flag for the flight recorder.
    #[cfg(feature = "trace")]
    trace_on: std::sync::atomic::AtomicBool,
    #[cfg(feature = "sanitize")]
    san: crate::sanitizer::Sanitizer,
    _mode: PhantomData<M>,
}

impl<P: Platform, M: ModePolicy> NzStm<P, M> {
    /// Assemble an engine from parts. Prefer [`crate::NzBuilder`], which
    /// names the knobs and picks paper defaults for the rest.
    pub fn new(platform: Arc<P>, cm: Arc<dyn ContentionManager>, cfg: NzConfig) -> Arc<Self> {
        let n = platform.n_cores();
        let thread_stats: Box<[Arc<ThreadStats>]> =
            (0..n).map(|_| Arc::new(ThreadStats::default())).collect();
        let trace_capacity = cfg.trace.capacity;
        #[cfg(feature = "trace")]
        let trace_on = std::sync::atomic::AtomicBool::new(cfg.trace.enabled);
        let placement = cfg.topology.resolve(n);
        let layout = crate::object::ObjectLayout {
            reader_capacity: n,
            placement: placement.clone(),
            colocate_backup: cfg.colocate_backup,
        };
        Arc::new(NzStm {
            platform,
            cm,
            registry: ThreadRegistry::with_placement(n, placement),
            layout,
            threads: PerCore::new(n, |tid| {
                ThreadCtx::new(tid, Arc::clone(&thread_stats[tid]), trace_capacity)
            }),
            thread_stats,
            norec_clock: NorecClock::new(),
            cfg,
            #[cfg(feature = "trace")]
            trace_on,
            #[cfg(feature = "sanitize")]
            san: crate::sanitizer::Sanitizer::new(),
            _mode: PhantomData,
        })
    }

    pub fn platform(&self) -> &Arc<P> {
        &self.platform
    }

    pub fn mode_name(&self) -> &'static str {
        M::NAME
    }

    /// The configured read-tracking mode.
    pub fn read_mode(&self) -> ReadMode {
        self.cfg.read_mode
    }

    /// The native-HTM policy a hybrid assembled over this engine should
    /// honor (see [`NativeHtmPolicy`]; the engine itself never reads it).
    pub fn native_htm_policy(&self) -> NativeHtmPolicy {
        self.cfg.native_htm
    }

    /// Allocate a transactional object under this engine's layout.
    ///
    /// The reader indicator is sized for this engine's thread count: on
    /// platforms with ≤ 64 threads the object keeps the paper's inline
    /// bitmap word (bit-for-bit the seed layout); wider platforms get a
    /// striped indicator so reads scale past 64 threads. The engine's
    /// topology placement and backup-colocation knobs
    /// ([`NzConfig::topology`], [`NzConfig::colocate_backup`]) are
    /// applied as configured.
    pub fn new_obj<T: TmData>(&self, init: T) -> Arc<NZObject<T>> {
        NZObject::new_with_layout(init, &self.layout)
    }

    /// Merge per-thread statistics into a report. Safe to call from any
    /// thread at any time, including mid-run: the per-thread cells are
    /// single-writer atomics, so a snapshot is always well-defined (it
    /// may be mid-transaction, e.g. counting a begin whose commit hasn't
    /// landed yet).
    pub fn stats_snapshot(&self) -> TmStats {
        ThreadStats::merge_all(self.thread_stats.iter().map(Arc::as_ref))
    }

    /// Reset per-thread statistics (e.g. after warmup).
    ///
    /// Quiescent-only for exactness: an increment racing with the reset
    /// can be lost (the owner's read-add-store may span the zeroing).
    /// Call between runs, not during one.
    pub fn reset_stats(&self) {
        for ts in self.thread_stats.iter() {
            ts.reset();
        }
    }

    /// Arm or disarm flight-recorder event capture. Without the `trace`
    /// cargo feature this is a no-op (the hooks are compiled out).
    pub fn set_tracing(&self, on: bool) {
        #[cfg(feature = "trace")]
        self.trace_on.store(on, std::sync::atomic::Ordering::Relaxed);
        #[cfg(not(feature = "trace"))]
        let _ = on;
    }

    /// True when event capture is armed (always false without the
    /// `trace` feature).
    pub fn tracing_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.trace_on.load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(feature = "trace"))]
        false
    }

    /// Drain every thread's event ring into one merged, time-ordered
    /// [`Trace`], resetting the rings.
    ///
    /// Must only be called while no transactions are in flight (between
    /// runs): rings are single-writer and read here without
    /// synchronization. Returns an empty trace without the `trace`
    /// feature.
    pub fn take_trace(&self) -> Trace {
        let mut trace = Trace::default();
        #[cfg(feature = "trace")]
        for tid in 0..self.threads.len() {
            // Safety: quiescence contract above.
            let ctx = unsafe { self.threads.get(tid) };
            trace.overwritten += ctx.ring.drain_into(&mut trace.events);
        }
        trace.sort();
        trace
    }

    /// This engine's protocol sanitizer (see [`crate::sanitizer`]).
    #[cfg(feature = "sanitize")]
    pub fn sanitizer(&self) -> &crate::sanitizer::Sanitizer {
        &self.san
    }

    /// A hooked protocol decision point: log the step and inject a
    /// schedule-seeded pause (0..=max_pause `spin_wait`s) drawn from this
    /// thread's deterministic stream. On the simulated platform this
    /// deterministically reshapes the interleaving; on native threads it
    /// injects jitter exactly where the protocol races live.
    #[cfg(feature = "sanitize")]
    fn san_point(&self, ctx: &mut ThreadCtx, tid: usize, point: crate::sanitizer::Point) {
        let generation = self.san.generation();
        if generation == 0 {
            return;
        }
        self.san.log_step(tid as u32, point);
        let max_pause = self.san.max_pause();
        if max_pause == 0 {
            // Armed with a zero pause budget: a pure yield-point
            // annotation. Every protocol edge becomes a scheduling
            // decision for an installed `SchedPolicy` (nztm-check's
            // exploration modes) without charging simulated time.
            self.platform.yield_now();
            return;
        }
        let rng = match &mut ctx.san_rng {
            Some((g, rng)) if *g == generation => rng,
            slot => {
                *slot = Some((generation, DetRng::new(self.san.schedule_seed()).split(tid as u64)));
                &mut slot.as_mut().expect("just set").1
            }
        };
        let pause = rng.next_u64() % (max_pause + 1);
        for _ in 0..pause {
            self.platform.spin_wait();
        }
    }

    /// No-op twin so call sites need no `cfg` of their own.
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    fn san_point(&self, _ctx: &mut ThreadCtx, _tid: usize, _point: crate::sanitizer::Point) {}

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Execute `f` as a transaction, retrying until it commits. Returns
    /// `f`'s result from the committed attempt.
    pub fn run<R>(&self, mut f: impl FnMut(&mut NzTx<P, M>) -> Result<R, Abort>) -> R {
        let tid = self.platform.core_id();
        // Safety: `tid` is the calling thread's own core id.
        let ctx = unsafe { self.threads.get(tid) };
        let mut had_abort = false;
        loop {
            self.begin(ctx, tid);
            let mut tx =
                NzTx { sys: self as *const NzStm<P, M>, ctx: ctx as *mut ThreadCtx, tid };
            match f(&mut tx) {
                Ok(r) => {
                    if self.commit(ctx, tid) {
                        ctx.backoff.reset();
                        if had_abort {
                            ctx.stats.txns_with_aborts.bump();
                        }
                        return r;
                    }
                    had_abort = true;
                }
                Err(Abort(cause)) => {
                    self.abort_txn(ctx, tid, cause);
                    had_abort = true;
                }
            }
            // Randomized exponential backoff between attempts breaks the
            // symmetric-retry livelock obstruction-freedom permits. An
            // adaptive CM may move the window cap with the observed
            // conflict rate; `set_cap` clamps to `Backoff::MAX_CAP_EXP`,
            // so policy can never unbound the stall.
            if let Some(cap) = self.cm.backoff_cap(tid as u32) {
                ctx.backoff.set_cap(cap);
            }
            let steps = ctx.backoff.steps(ctx.rng.next_u64());
            for _ in 0..steps {
                self.platform.spin_wait();
            }
        }
    }

    /// Testing support: execute `f` as transaction attempts exactly like
    /// [`NzStm::run`], except that an attempt returning `Ok(None)`
    /// **crashes** — it is abandoned in place, with the descriptor left
    /// `Active` forever and any acquired ownerships still installed, and
    /// no further attempts are made (returns `None`). This is the
    /// real-engine analogue of the §3 model's crashed-owner action: the
    /// nonblocking modes must commit past the corpse by inflating
    /// (§2.3.1), while BZSTM, by design, waits forever.
    ///
    /// The crashed attempt never reaches its commit CAS, so its eager
    /// writes must be invisible to every later transaction (the backup
    /// restore / locator old-data path guarantees this); `nztm-check`
    /// asserts exactly that.
    pub fn run_until_crash<R>(
        &self,
        mut f: impl FnMut(&mut NzTx<P, M>) -> Result<Option<R>, Abort>,
    ) -> Option<R> {
        let tid = self.platform.core_id();
        // Safety: `tid` is the calling thread's own core id.
        let ctx = unsafe { self.threads.get(tid) };
        loop {
            self.begin(ctx, tid);
            let mut tx =
                NzTx { sys: self as *const NzStm<P, M>, ctx: ctx as *mut ThreadCtx, tid };
            match f(&mut tx) {
                Ok(Some(r)) => {
                    if self.commit(ctx, tid) {
                        ctx.backoff.reset();
                        return Some(r);
                    }
                }
                Ok(None) => return None,
                Err(Abort(cause)) => self.abort_txn(ctx, tid, cause),
            }
            if let Some(cap) = self.cm.backoff_cap(tid as u32) {
                ctx.backoff.set_cap(cap);
            }
            let steps = ctx.backoff.steps(ctx.rng.next_u64());
            for _ in 0..steps {
                self.platform.spin_wait();
            }
        }
    }

    /// Start an attempt: retire the previous descriptor and produce a
    /// logically fresh one (§2.2).
    ///
    /// Descriptor lifecycle and the epoch-drain lag: a retired
    /// descriptor enters [`ThreadCtx::free_descs`] immediately, but
    /// shared references to it (its registry slot, owner words of
    /// objects it acquired, installer fields of their backups) drain
    /// asynchronously — the registry slot within ~1 attempt plus the
    /// epoch's throttled collect interval, owner words only at each
    /// object's *next* acquisition. Recycling therefore probes the
    /// oldest [`DESC_SCAN`] retirees for sole ownership
    /// (`Arc::get_mut`: strong == 1, weak == 0) — the gate that makes
    /// owner-word ABA impossible (see txn.rs, "Recycling and the ABA
    /// argument") — and only once the list holds [`DESC_MIN`] entries,
    /// so the front candidate is old enough to have drained. Failed
    /// probes rotate to the back: a descriptor pinned by a
    /// rarely-rewritten object's owner word must not block the ones
    /// behind it.
    fn begin(&self, ctx: &mut ThreadCtx, tid: usize) {
        ctx.serial += 1;
        if let Some(prev) = ctx.current.take() {
            if ctx.free_descs.len() < DESC_POOL_DEPTH {
                ctx.free_descs.push_back(prev);
            }
        }
        // Arc because object owner fields and the registry take strong
        // counts.
        let mut recycled = None;
        let probes = if ctx.free_descs.len() >= DESC_MIN { DESC_SCAN } else { 0 };
        for _ in 0..probes {
            let Some(front) = ctx.free_descs.front_mut() else { break };
            if Arc::get_mut(front).is_some() {
                let mut d = ctx.free_descs.pop_front().expect("front exists");
                Arc::get_mut(&mut d)
                    .expect("sole ownership verified above")
                    .reset_for_attempt(tid as u32, ctx.serial);
                recycled = Some(d);
                break;
            }
            let d = ctx.free_descs.pop_front().expect("front exists");
            ctx.free_descs.push_back(d);
        }
        let desc = match recycled {
            Some(d) => {
                hot_stat!(ctx, descriptor_reused);
                d
            }
            None => {
                hot_stat!(ctx, descriptor_alloc);
                Arc::new(TxnDesc::new(tid as u32, ctx.serial))
            }
        };
        let guard = nztm_epoch::pin();
        self.registry.publish(tid, &desc, &guard);
        self.platform.mem(self.registry.slot_addr(tid), 8, AccessKind::Write);
        #[cfg(feature = "sanitize")]
        self.san.txn_begin(Arc::as_ptr(&desc) as u64, tid as u32, ctx.serial);
        trace_evt!(self, ctx, tid, TxnBegin, ctx.serial, 0);
        ctx.current = Some(desc);
        ctx.read_set.clear();
        ctx.write_set.clear();
        ctx.read_index.clear();
        ctx.write_index.clear();
        ctx.conflict_obj = 0;
        if M::NOREC {
            ctx.norec_vals.clear();
            ctx.norec_redo.clear();
            // Sample the snapshot clock, waiting out any in-flight
            // committer (odd clock) so the first reads cannot observe its
            // partial write-back.
            ctx.snapshot = self.norec_wait_even();
        }
    }

    fn me(ctx: &ThreadCtx) -> &Arc<TxnDesc> {
        ctx.current.as_ref().expect("no transaction in flight")
    }

    /// Abort if our own AbortNowPlease flag is set.
    fn validate(&self, ctx: &ThreadCtx) -> Result<(), Abort> {
        let me = Self::me(ctx);
        self.platform.mem_nb(me.addr(), 8, AccessKind::Read);
        if me.abort_requested() {
            Err(Abort(AbortCause::Requested))
        } else {
            Ok(())
        }
    }

    fn commit(&self, ctx: &mut ThreadCtx, tid: usize) -> bool {
        if M::NOREC {
            return self.norec_commit(ctx, tid);
        }
        let me = Arc::clone(Self::me(ctx));

        // Invisible-read extension: validate the read set. Serialization
        // point is this validation; our own writes are protected by
        // ownership until the status CAS below. Objects we later acquired
        // for writing were already validated *at acquire time* (their
        // version necessarily moved when we bumped it ourselves), so they
        // are recognized by ownership and skipped here.
        if self.cfg.read_mode == ReadMode::Invisible {
            let guard = nztm_epoch::pin();
            let mut valid = true;
            for i in 0..ctx.read_set.len() {
                let r = ctx.read_set.get(i).expect("index in range");
                let h = r.obj.header();
                self.platform.mem(h.addr(), 8, AccessKind::Read);
                let ok = match h.owner(&guard) {
                    OwnerRef::None => h.version() == r.version,
                    OwnerRef::Txn(t, _) => {
                        std::ptr::eq(t, Arc::as_ptr(&me))
                            || (t.status() != Status::Active && h.version() == r.version)
                    }
                    OwnerRef::Inflated(l, _) => std::ptr::eq(l.owner(), Arc::as_ptr(&me)),
                };
                if !ok {
                    ctx.conflict_obj = h.addr() as u64;
                    valid = false;
                    break;
                }
            }
            drop(guard);
            if !valid {
                self.abort_txn(ctx, tid, AbortCause::Validation);
                return false;
            }
        }

        self.san_point(ctx, tid, crate::sanitizer::Point::CommitCas);
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        if me.try_commit() {
            #[cfg(feature = "sanitize")]
            self.san.commit_ok(Arc::as_ptr(&me) as u64, tid as u32);
            self.cleanup_after_commit(ctx, tid);
            ctx.stats.commits.bump();
            trace_evt!(self, ctx, tid, TxnCommit, ctx.serial, 0);
            let change = self.cm.on_commit(tid as u32);
            self.note_mode_change(ctx, tid, change);
            true
        } else {
            // AbortNowPlease arrived before the commit CAS.
            self.abort_txn(ctx, tid, AbortCause::Requested);
            false
        }
    }

    fn cleanup_after_commit(&self, ctx: &mut ThreadCtx, tid: usize) {
        // Reclaim our backup buffers into the thread-local pool
        // ("thread-local memory for backups ... reused after successful
        // transactions", §4.4.2). The CAS-take fails harmlessly if a
        // faster acquirer already replaced the buffer.
        while let Some(w) = ctx.write_set.pop() {
            if let WriteTarget::InPlace { backup_raw } = w.target {
                self.platform.mem_nb(w.obj.header().addr(), 8, AccessKind::Rmw);
                if let Some(buf) = w.obj.header().take_backup(backup_raw) {
                    match w.obj.resident_backup() {
                        // A colocated resident buffer returns to its
                        // object (dropping our count frees it for the
                        // next acquirer), never to the pool — pooled
                        // buffers wander to other objects and threads,
                        // which is exactly what colocation avoids.
                        Some(r) if Arc::ptr_eq(r, &buf) => drop(buf),
                        _ => ctx.pool.put(buf),
                    }
                }
            }
        }
        self.clear_reader_bits(ctx, tid);
    }

    fn abort_txn(&self, ctx: &mut ThreadCtx, tid: usize, cause: AbortCause) {
        let me = Arc::clone(Self::me(ctx));
        self.san_point(ctx, tid, crate::sanitizer::Point::AbortAck);
        // The `ack` hook fires *before* the status CAS so that any peer
        // observing `Status = Aborted` is guaranteed to find the victim's
        // acknowledgement already recorded.
        #[cfg(feature = "sanitize")]
        self.san.ack(Arc::as_ptr(&me) as u64, tid as u32);
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        // Acknowledge: after this we never touch object data again; data
        // we wrote is restored lazily by the next acquirer (§2.2).
        me.acknowledge_abort();
        self.clear_reader_bits(ctx, tid);
        ctx.write_set.clear();
        // Exhaustive by design (no `_` arm): adding an `AbortCause`
        // variant without a counter must fail to compile, so every abort
        // — including HTM-fallback-originated ones — is counted exactly
        // once here and nowhere else.
        match cause {
            AbortCause::Requested => ctx.stats.aborts_requested.bump(),
            AbortCause::SelfAbort => ctx.stats.aborts_self.bump(),
            AbortCause::Validation => ctx.stats.aborts_validation.bump(),
            AbortCause::Explicit => ctx.stats.aborts_explicit.bump(),
            AbortCause::Htm => ctx.stats.aborts_htm.bump(),
            AbortCause::ValueValidation => ctx.stats.aborts_value_validation.bump(),
        }
        trace_evt!(self, ctx, tid, TxnAbort, ctx.serial, cause.code());
        let change = self.cm.on_abort(tid as u32, cause, ctx.conflict_obj);
        self.note_mode_change(ctx, tid, change);
    }

    /// Count and trace a contention-manager mode transition
    /// ([`crate::cm::ModeChange`]) so adaptation itself is observable.
    fn note_mode_change(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        change: Option<crate::cm::ModeChange>,
    ) {
        let Some(c) = change else { return };
        match c.to {
            crate::cm::CmMode::Escalated => ctx.stats.cm_escalations.bump(),
            crate::cm::CmMode::Normal => ctx.stats.cm_deescalations.bump(),
        }
        trace_evt!(self, ctx, tid, CmMode, c.obj_addr, c.to.code());
    }

    fn clear_reader_bits(&self, ctx: &mut ThreadCtx, tid: usize) {
        if M::NOREC {
            // NOrec reads never registered anywhere: drop the value log.
            // (Calling `remove_reader` here would trip the sanitizer's
            // reader-intactness check — and rightly so.)
            ctx.read_set.clear();
            ctx.norec_vals.clear();
            ctx.norec_redo.clear();
            return;
        }
        if self.cfg.read_mode == ReadMode::Visible {
            while let Some(r) = ctx.read_set.pop() {
                let h = r.obj.header();
                self.platform.mem_nb(h.reader_word_addr(tid), 8, AccessKind::Rmw);
                let _intact = h.remove_reader(tid);
                #[cfg(feature = "sanitize")]
                self.san.reader_remove(h.addr(), tid, _intact);
            }
        } else {
            ctx.read_set.clear();
        }
    }

    // ------------------------------------------------------------------
    // Conflict resolution
    // ------------------------------------------------------------------

    /// Resolve a conflict with `other`, the active transaction behind the
    /// owner word value `raw` of header `h`.
    ///
    /// `await_ack` distinguishes in-place owners (whose late writes land
    /// in the shared data — we must wait for the acknowledgement) from
    /// locator owners (whose late writes land in their private `new_data`
    /// — once AbortNowPlease is set they are as good as aborted).
    fn resolve_conflict(
        &self,
        ctx: &mut ThreadCtx,
        h: &crate::object::NZHeader,
        raw: u64,
        other: &TxnDesc,
        await_ack: bool,
    ) -> Result<ConflictOutcome, Abort> {
        let me = Arc::clone(Self::me(ctx));
        hot_stat!(ctx, conflicts);
        // Attribute a later abort of *this* attempt to this object (the
        // contention manager's per-object heat input).
        ctx.conflict_obj = h.addr() as u64;
        trace_evt!(
            self,
            ctx,
            me.thread,
            Conflict,
            h.addr() as u64,
            crate::trace::pack_txn(other.thread as usize, other.serial)
        );
        // The sanitizer mirror keys transactions by descriptor address
        // (what `txn_begin`/`ack` report). `raw` is the *owner word* —
        // for a locator owner that is the tagged locator pointer, not the
        // descriptor — so hooks about `other` must use its own address.
        #[cfg(feature = "sanitize")]
        let peer_key = other as *const TxnDesc as u64;
        let mut waited = 0u64;
        #[cfg(feature = "trace")]
        let mut traced_wait = false;
        loop {
            self.validate(ctx)?;
            self.platform.mem(other.addr(), 8, AccessKind::Read);
            #[cfg(feature = "sanitize")]
            {
                let (st, anp) = other.state_snapshot();
                self.san.observed_peer(peer_key, st, anp);
            }
            if other.status() != Status::Active || h.owner_raw() != raw {
                me.set_waiting(false);
                return Ok(ConflictOutcome::Settled);
            }
            // One consultation per spin step: exactly one `spin_wait`
            // runs between consecutive calls (the `Wait` arm below), so
            // the `waited` count the policy sees equals spin steps — the
            // unit its budgets are documented in.
            match self.cm.resolve_at(&me, other, h.addr() as u64, waited) {
                Resolution::Wait => {
                    #[cfg(feature = "trace")]
                    if !traced_wait {
                        traced_wait = true;
                        trace_evt!(
                            self,
                            ctx,
                            me.thread,
                            Wait,
                            h.addr() as u64,
                            crate::trace::pack_txn(other.thread as usize, other.serial)
                        );
                    }
                    // Raise the deadlock-detection flag while stalled
                    // ("TL raises a flag and waits until TH is done").
                    me.set_waiting(true);
                    self.platform.spin_wait();
                    hot_stat!(ctx, wait_steps);
                    waited += 1;
                }
                Resolution::AbortSelf => {
                    me.set_waiting(false);
                    return Err(Abort(AbortCause::SelfAbort));
                }
                Resolution::RequestAbort => {
                    me.set_waiting(false);
                    ctx.stats.abort_requests_sent.bump();
                    self.san_point(ctx, me.thread as usize, crate::sanitizer::Point::AnpSet);
                    self.platform.mem(other.addr(), 8, AccessKind::Rmw);
                    let prev = other.request_abort();
                    #[cfg(feature = "sanitize")]
                    self.san.anp_set(peer_key, prev == Status::Active);
                    #[cfg(feature = "sanitize")]
                    if self.cfg.inject_handshake_bug && prev == Status::Active {
                        // FAULT INJECTION: force the victim's status from
                        // the requester's thread — the rule-3 bug the
                        // sanitizer must catch (no hook fires; detection
                        // must be structural, via `observed_peer`).
                        other.force_abort_injected();
                    }
                    if prev != Status::Active {
                        // Peer settled before the request landed.
                        return Ok(ConflictOutcome::Settled);
                    }
                    // Per §2.2, confirm we have not been asked to abort
                    // ourselves after requesting the peer's abort.
                    self.validate(ctx)?;
                    if !await_ack {
                        // Locator owner: its commit is now impossible and
                        // its stores are private. Proceed immediately.
                        return Ok(ConflictOutcome::Settled);
                    }
                    // Wait for the acknowledgement (Status = Aborted).
                    self.san_point(ctx, me.thread as usize, crate::sanitizer::Point::AwaitAck);
                    let mut acked_wait = 0u64;
                    // Inflate-vs-wait (adaptive CM lever 3): each time
                    // the budget expires, the policy may grant extra
                    // acknowledgement-wait steps before we inflate.
                    // `granted` accumulates across grants, and policies
                    // contract to converge to 0 as it grows, so the
                    // total delay before inflation stays bounded and
                    // obstruction freedom is preserved.
                    let mut patience_budget = self.cfg.patience;
                    let mut granted = 0u64;
                    loop {
                        self.platform.mem(other.addr(), 8, AccessKind::Read);
                        #[cfg(feature = "sanitize")]
                        {
                            let (st, anp) = other.state_snapshot();
                            self.san.observed_peer(peer_key, st, anp);
                        }
                        if other.status() != Status::Active {
                            return Ok(ConflictOutcome::Settled);
                        }
                        self.validate(ctx)?;
                        if M::NONBLOCKING && acked_wait >= patience_budget {
                            if M::SCSS {
                                // One-shot barrier: after this, any
                                // in-flight SCSS store by the victim has
                                // completed and all future ones fail.
                                self.platform.work(self.cfg.scss_cycles);
                                other.with_scss_lock(|| {});
                                return Ok(ConflictOutcome::Settled);
                            }
                            let extra = self.cm.extra_patience(h.addr() as u64, granted);
                            if extra == 0 {
                                return Ok(ConflictOutcome::Unresponsive);
                            }
                            granted += extra;
                            patience_budget += extra;
                        }
                        self.platform.spin_wait();
                        hot_stat!(ctx, wait_steps);
                        acked_wait += 1;
                    }
                }
            }
        }
    }

    /// Request aborts of all visible readers of `h` other than ourselves.
    /// Readers need no acknowledgement: once AbortNowPlease is set they
    /// can never commit, and they perform no stores.
    fn request_readers(&self, ctx: &mut ThreadCtx, h: &crate::object::NZHeader, tid: usize, guard: &Guard) -> Result<(), Abort> {
        if self.cfg.read_mode != ReadMode::Visible {
            return Ok(());
        }
        // Summary load: with no readers (or striped mode with an empty
        // summary) the writer pays exactly this one header-line read.
        self.platform.mem(h.addr(), 8, AccessKind::Read);
        let me = Arc::as_ptr(Self::me(ctx));
        h.reader_indicator().visit_readers(tid, |step| match step {
            crate::readers::ReaderVisit::Stripe { addr, .. } => {
                // Striped mode only: each flagged stripe is one extra
                // cache-line read (sticky summary bits can make this a
                // miss on an already-empty stripe — a perf cost, never a
                // missed reader).
                self.platform.mem(addr, 8, AccessKind::Read);
                trace_evt!(self, ctx, tid, ReaderScan, addr as u64, h.addr() as u64);
            }
            crate::readers::ReaderVisit::Reader { tid: t } => {
                self.platform.mem(self.registry.slot_addr(t), 8, AccessKind::Read);
                if let Some(d) = self.registry.current(t, guard) {
                    if !std::ptr::eq(d, me) && d.status() == Status::Active {
                        // A live writer-reader conflict, resolved by request.
                        hot_stat!(ctx, conflicts);
                        trace_evt!(
                            self,
                            ctx,
                            tid,
                            Conflict,
                            h.addr() as u64,
                            crate::trace::pack_txn(t, d.serial)
                        );
                        self.san_point(ctx, tid, crate::sanitizer::Point::AnpSet);
                        self.platform.mem(d.addr(), 8, AccessKind::Rmw);
                        let _prev = d.request_abort();
                        #[cfg(feature = "sanitize")]
                        self.san
                            .anp_set(d as *const TxnDesc as u64, _prev == Status::Active);
                        ctx.stats.abort_requests_sent.bump();
                    }
                }
            }
        });
        self.validate(ctx)
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Acquire `obj` for writing; returns the index of its write-set entry.
    fn acquire_write(&self, ctx: &mut ThreadCtx, tid: usize, obj: &Arc<dyn NzObjAny>) -> Result<usize, Abort> {
        self.validate(ctx)?;
        let me_ptr = Arc::as_ptr(Self::me(ctx));
        let h = obj.header();
        let key = header_key(h);

        // Invisible-read upgrade hazard: if we previously read this
        // object, its version must still be what we read, or our earlier
        // read is stale (lost update). Validated *here* — not at commit —
        // because our own acquisition is about to bump the version.
        let read_version = if self.cfg.read_mode == ReadMode::Invisible {
            ctx.read_index.get(key).and_then(|s| ctx.read_set.get(s as usize)).map(|r| r.version)
        } else {
            None
        };

        loop {
            // Already acquired? O(1) via the write index. Checked *inside*
            // the retry loop: `inflate` and `acquire_inflated` push the
            // entry themselves and fall through to the next iteration, so
            // this check is also the loop's success exit for those paths
            // (when it sat outside the loop, a post-inflation iteration
            // could spin forever on an object it already owned).
            if let Some(i) = ctx.write_index.get(key) {
                return Ok(i as usize);
            }
            let guard = nztm_epoch::pin();
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            if M::NONBLOCKING {
                // The inflation-tag test on the owner word: the extra
                // instruction BZSTM compiles away (§4.4.2's 2–5%).
                self.platform.work(1);
            }
            let owner_snapshot = h.owner(&guard);
            // Check the version *after* loading the owner word: any later
            // foreign acquisition changes the owner word and fails our
            // CAS, so passing here + CAS success ⇒ no intervening bump
            // (the epoch pin rules out owner-word ABA).
            if let Some(v) = read_version {
                if h.version() != v {
                    ctx.conflict_obj = h.addr() as u64;
                    return Err(Abort(AbortCause::Validation));
                }
            }
            match owner_snapshot {
                OwnerRef::None => {
                    if self.try_install(ctx, tid, obj, 0, false, &guard)? {
                        return Ok(ctx.write_set.len() - 1);
                    }
                }
                OwnerRef::Txn(t, raw) => {
                    let (st, anp) = t.state_snapshot();
                    match st {
                        Status::Active => {
                            assert!(
                                !std::ptr::eq(t, me_ptr),
                                "active self-owned object must already be in the write set"
                            );
                            if M::SCSS && anp {
                                // A previous requester already set
                                // AbortNowPlease and barriered (or will);
                                // barrier ourselves and steal: every
                                // further SCSS store by the victim fails.
                                self.platform.work(self.cfg.scss_cycles);
                                t.with_scss_lock(|| {});
                                if self.try_install(ctx, tid, obj, raw, true, &guard)? {
                                    return Ok(ctx.write_set.len() - 1);
                                }
                                continue;
                            }
                            match self.resolve_conflict(ctx, h, raw, t, true)? {
                                ConflictOutcome::Settled => continue,
                                ConflictOutcome::Unresponsive => {
                                    debug_assert!(M::NONBLOCKING && !M::SCSS);
                                    self.inflate(ctx, tid, obj, raw, t, &guard)?;
                                    // Owner word is (likely) a locator now;
                                    // next iteration takes the inflated path.
                                    continue;
                                }
                            }
                        }
                        _ => {
                            // Settled owner (or our own settled descriptor
                            // from an earlier attempt): restore if it
                            // aborted, then steal.
                            let aborted = st == Status::Aborted;
                            if self.try_install(ctx, tid, obj, raw, aborted, &guard)? {
                                return Ok(ctx.write_set.len() - 1);
                            }
                        }
                    }
                }
                OwnerRef::Inflated(loc, raw) => {
                    assert!(
                        M::NONBLOCKING && !M::SCSS,
                        "{} must never see an inflated object",
                        M::NAME
                    );
                    if self.acquire_inflated(ctx, tid, obj, loc, raw, &guard)? {
                        return Ok(ctx.write_set.len() - 1);
                    }
                }
            }
        }
    }

    /// CAS ourselves into the owner word (normal, non-inflated path) and
    /// do the post-acquisition work: version bump, reader aborts,
    /// restore-or-backup, final validation.
    fn try_install(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<dyn NzObjAny>,
        expected_raw: u64,
        prev_aborted: bool,
        guard: &Guard,
    ) -> Result<bool, Abort> {
        let me = Arc::clone(Self::me(ctx));
        self.san_point(ctx, tid, crate::sanitizer::Point::OwnerCas);
        self.platform.mem(obj.header().addr(), 8, AccessKind::Rmw);
        if !obj.header().cas_owner_to_txn(expected_raw, &me, guard) {
            return Ok(false);
        }
        let h = obj.header();
        #[cfg(feature = "sanitize")]
        {
            // Safety: `expected_raw` was loaded under `guard`, so the
            // descriptor it names (if any) is still live here.
            let prev_state = (expected_raw != 0)
                .then(|| unsafe { &*(expected_raw as *const TxnDesc) }.state_snapshot());
            self.san.owner_cas_txn(
                h.addr(),
                Arc::as_ptr(&me) as u64,
                expected_raw,
                prev_state,
                M::SCSS,
            );
        }
        h.bump_version();
        Self::me(ctx).gained_object();
        hot_stat!(ctx, acquires);
        trace_evt!(self, ctx, tid, Acquire, h.addr() as u64, ctx.serial);

        // Visible readers must be told to abort *before* we mutate data.
        self.request_readers(ctx, h, tid, guard)?;

        let n = obj.data_words().len();
        let existing = h
            .backup(guard)
            .filter(|(b, _)| prev_aborted && b.usable_as_backup(guard));
        let backup_raw = if let Some((b, braw)) = existing {
            // Previous owner aborted with a (usable) backup in place:
            // restore it (lazy undo), and adopt that same buffer as our
            // own backup — it already holds the pre-transaction value
            // (§2.2). Adoption (installer := us) happens *before* the
            // restore copy so that if we abort mid-restore, the buffer
            // still reads as usable for the next acquirer.
            b.set_installer(&me, guard);
            self.san_point(ctx, tid, crate::sanitizer::Point::Restore);
            self.platform.mem_nb(b.addr(), n * 8, AccessKind::Read);
            self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Write);
            #[cfg(feature = "sanitize")]
            let scss_failures_before = ctx.stats.scss_failures.get();
            self.store_words(ctx, &me, obj.data_words(), b.words());
            #[cfg(feature = "sanitize")]
            {
                // The restore must reproduce the pre-transaction bytes —
                // unless SCSS skipped stores because our own abort was
                // requested mid-restore (the next acquirer redoes it).
                let complete = ctx.stats.scss_failures.get() == scss_failures_before;
                let mut now = vec![0u64; n];
                crate::data::snapshot_words(obj.data_words(), &mut now);
                self.san.restored(h.addr(), &now, complete);
                // The adopted buffer remains the undo source and still
                // holds the pre-transaction contents.
                let mut pre = vec![0u64; n];
                crate::data::snapshot_words(b.words(), &mut pre);
                self.san.backup_recorded(h.addr(), pre);
            }
            braw
        } else {
            // Create a backup copy of the (valid) current data. A
            // colocated layout prefers the object's own resident buffer
            // (lines adjacent to the data being shadowed); strong count
            // 1 proves it is free — not installed on the object, not in
            // any pool, no stale reader still holding it — and nobody
            // can clone it concurrently (clones only come from the
            // backup field, where it is not). Falls back to the pool
            // when the resident buffer is still in flight.
            let resident = obj.resident_backup().filter(|b| Arc::strong_count(b) == 1);
            let buf = match resident {
                Some(b) => {
                    hot_stat!(ctx, backup_reused);
                    Arc::clone(b)
                }
                None => match ctx.pool.take(n) {
                    Some(b) => {
                        hot_stat!(ctx, backup_reused);
                        b
                    }
                    None => {
                        hot_stat!(ctx, backup_alloc);
                        WordBuf::zeroed(n)
                    }
                },
            };
            buf.set_installer(&me, guard);
            self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Read);
            self.platform.mem_nb(buf.addr(), n * 8, AccessKind::Write);
            crate::data::copy_words(buf.words(), obj.data_words());
            self.san_point(ctx, tid, crate::sanitizer::Point::BackupInstall);
            // Install; retry against racing commit-time take-backs.
            loop {
                let cur = h.backup_raw();
                if h.cas_backup(cur, Some(&buf), guard) {
                    break;
                }
            }
            #[cfg(feature = "sanitize")]
            {
                let mut pre = vec![0u64; n];
                crate::data::snapshot_words(buf.words(), &mut pre);
                self.san.backup_recorded(h.addr(), pre);
            }
            h.backup_raw()
        };

        // Final validation (§2.2): if we have been asked to abort, we must
        // not proceed — the object stays owned by our (aborting)
        // transaction and the next acquirer will restore the backup.
        push_write(ctx, WriteEntry { obj: Arc::clone(obj), target: WriteTarget::InPlace { backup_raw } });
        self.validate(ctx)?;
        Ok(true)
    }

    /// Store `src` into `dst` (in-place data words), SCSS-wrapping each
    /// word store in SCSS mode.
    fn store_words(&self, ctx: &mut ThreadCtx, me: &Arc<TxnDesc>, dst: &[std::sync::atomic::AtomicU64], src: &[std::sync::atomic::AtomicU64]) {
        if M::SCSS {
            for (d, s) in dst.iter().zip(src) {
                let v = s.load(std::sync::atomic::Ordering::Relaxed);
                // Failure is detected by the *next* validate; stores after
                // AbortNowPlease simply do not happen.
                let _ = self.scss_store(ctx, me, d, v);
            }
        } else {
            for (d, s) in dst.iter().zip(src) {
                d.store(s.load(std::sync::atomic::Ordering::Relaxed), std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// The Single-Compare Single-Store: atomically { if my AbortNowPlease
    /// is clear, store }. Returns whether the store happened.
    fn scss_store(
        &self,
        ctx: &mut ThreadCtx,
        me: &Arc<TxnDesc>,
        word: &std::sync::atomic::AtomicU64,
        value: u64,
    ) -> bool {
        hot_stat!(ctx, scss_stores);
        self.platform.work(self.cfg.scss_cycles);
        let ok = me.with_scss_lock(|| {
            if me.abort_requested() {
                false
            } else {
                word.store(value, std::sync::atomic::Ordering::Relaxed);
                true
            }
        });
        if !ok {
            hot_stat!(ctx, scss_failures);
        }
        trace_evt!(self, ctx, me.thread, ScssStore, ok as u64, ctx.serial);
        ok
    }

    // ------------------------------------------------------------------
    // Inflation / deflation (NZSTM only)
    // ------------------------------------------------------------------

    /// Inflate `obj` past the unresponsive transaction `unresp` (§2.3.1).
    /// On success we own the object through a fresh locator.
    fn inflate(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<dyn NzObjAny>,
        unresp_raw: u64,
        unresp: &TxnDesc,
        guard: &Guard,
    ) -> Result<(), Abort> {
        // Pre-CAS checks (§2.3.1): we are active with no pending abort
        // request; the unresponsive transaction is still unresponsive;
        // the owner word is unchanged (enforced by the CAS itself).
        self.validate(ctx)?;
        if unresp.status() != Status::Active {
            return Ok(()); // it finally acknowledged; retry normally
        }

        let me = Arc::clone(Self::me(ctx));
        let h = obj.header();
        let n = obj.data_words().len();

        // Old data: the unresponsive transaction's backup (pre-transaction
        // value), or a fresh copy of the in-place data if it never
        // installed one (footnote 1: it was still acquiring).
        let old = match h.backup_arc(guard).filter(|b| b.usable_as_backup(guard)) {
            Some(b) => b,
            None => {
                self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Read);
                WordBuf::from_words(obj.data_words())
            }
        };
        let new = WordBuf::from_words(old.words());
        self.platform.mem_nb(new.addr(), n * 8, AccessKind::Write);

        let unresp_arc = unsafe {
            // Safety: `unresp_raw` was loaded under `guard`; the field's
            // strong count cannot be released before the pin ends.
            std::sync::Arc::increment_strong_count(unresp as *const TxnDesc);
            Arc::from_raw(unresp as *const TxnDesc)
        };
        let loc = Arc::new(Locator::new(Arc::clone(&me), unresp_arc, old, new));

        self.san_point(ctx, tid, crate::sanitizer::Point::Inflate);
        self.platform.mem(h.addr(), 8, AccessKind::Rmw);
        if h.cas_owner_to_locator(unresp_raw, &loc, guard) {
            #[cfg(feature = "sanitize")]
            self.san.inflated(
                h.addr(),
                (Arc::as_ptr(&loc) as u64) | crate::object::INFLATED_TAG,
                Arc::as_ptr(&me) as u64,
                unresp_raw,
                unresp.state_snapshot(),
            );
            ctx.stats.inflations.bump();
            trace_evt!(
                self,
                ctx,
                tid,
                Inflate,
                h.addr() as u64,
                crate::trace::pack_txn(unresp.thread as usize, unresp.serial)
            );
            h.bump_version();
            me.gained_object();
            hot_stat!(ctx, acquires);
            trace_evt!(self, ctx, tid, Acquire, h.addr() as u64, ctx.serial);
            self.request_readers(ctx, h, tid, guard)?;
            push_write(ctx, WriteEntry { obj: Arc::clone(obj), target: WriteTarget::Inflated { loc } });
            self.validate(ctx)?;
        }
        // On CAS failure someone else moved first; the caller retries.
        Ok(())
    }

    /// Acquire an inflated object via the DSTM rules (§2.3.1), deflating
    /// it afterwards if the unresponsive transaction has acknowledged.
    fn acquire_inflated(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<dyn NzObjAny>,
        loc: &Locator,
        raw: u64,
        guard: &Guard,
    ) -> Result<bool, Abort> {
        let me = Arc::clone(Self::me(ctx));
        let h = obj.header();

        let (st, anp) = loc.owner().state_snapshot();
        if st == Status::Active && !anp && !std::ptr::eq(loc.owner(), Arc::as_ptr(&me)) {
            // Live locator owner: contention management. Locator owners
            // need no acknowledgement (their stores are private), so
            // `await_ack = false`.
            match self.resolve_conflict(ctx, h, raw, loc.owner(), false)? {
                ConflictOutcome::Settled => return Ok(false), // re-examine
                ConflictOutcome::Unresponsive => unreachable!("no ack needed for locator owners"),
            }
        }
        if std::ptr::eq(loc.owner(), Arc::as_ptr(&me)) {
            // Already ours through this locator (caller keeps write-set
            // entries in sync, so this is a stale retry).
            return Ok(false);
        }

        // DSTM acquire: value = new if committed else old; build our
        // replacement locator, carrying the aborted-transaction identity.
        let value_buf = loc.current_data();
        let n = value_buf.len();
        let new = WordBuf::from_words(value_buf.words());
        self.platform.mem_nb(value_buf.addr(), n * 8, AccessKind::Read);
        self.platform.mem_nb(new.addr(), n * 8, AccessKind::Write);
        let mine = Arc::new(Locator::new(
            Arc::clone(&me),
            Arc::clone(loc.aborted_txn_arc()),
            Arc::clone(value_buf),
            new,
        ));

        self.san_point(ctx, tid, crate::sanitizer::Point::OwnerCas);
        self.platform.mem(h.addr(), 8, AccessKind::Rmw);
        if !h.cas_owner_to_locator(raw, &mine, guard) {
            return Ok(false);
        }
        #[cfg(feature = "sanitize")]
        self.san.locator_replaced(
            h.addr(),
            (Arc::as_ptr(&mine) as u64) | crate::object::INFLATED_TAG,
            raw,
        );
        h.bump_version();
        me.gained_object();
        hot_stat!(ctx, acquires);
        trace_evt!(self, ctx, tid, Acquire, h.addr() as u64, ctx.serial);
        self.request_readers(ctx, h, tid, guard)?;

        // Deflation (§2.3.1): once the unresponsive transaction has
        // acknowledged, restore in-place operation.
        if mine.deflatable() {
            self.validate(ctx)?;
            // Exact owner-word value of *our* locator. (Reading the field
            // back instead would race with a competitor that has already
            // requested our abort and replaced our locator — locator
            // owners get no acknowledgement grace.)
            let my_loc_raw = (Arc::as_ptr(&mine) as u64) | 1;
            // 1. Backup := the valid data (our locator's old data),
            //    installed under our identity.
            mine.old_data().set_installer(&me, guard);
            self.san_point(ctx, tid, crate::sanitizer::Point::BackupInstall);
            loop {
                let cur = h.backup_raw();
                self.platform.mem(h.addr(), 8, AccessKind::Rmw);
                if h.cas_backup(cur, Some(mine.old_data()), guard) {
                    break;
                }
            }
            #[cfg(feature = "sanitize")]
            {
                let mut pre = vec![0u64; n];
                crate::data::snapshot_words(mine.old_data().words(), &mut pre);
                self.san.backup_recorded(h.addr(), pre);
            }
            // 2. Owner := our transaction (untagged — deflated).
            self.san_point(ctx, tid, crate::sanitizer::Point::DeflateCas);
            self.platform.mem(h.addr(), 8, AccessKind::Rmw);
            if !h.cas_owner_to_txn(my_loc_raw, &me, guard) {
                // A competitor requested our abort and replaced our
                // locator before we could deflate. Keep the locator entry;
                // validation will observe the AbortNowPlease shortly.
                push_write(ctx, WriteEntry {
                    obj: Arc::clone(obj),
                    target: WriteTarget::Inflated { loc: mine },
                });
                self.validate(ctx)?;
                return Ok(true);
            }
            #[cfg(feature = "sanitize")]
            self.san.deflated(
                h.addr(),
                Arc::as_ptr(&me) as u64,
                my_loc_raw,
                mine.aborted_txn().status(),
            );
            // 3. Copy the backup back into the in-place data.
            self.san_point(ctx, tid, crate::sanitizer::Point::Restore);
            self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Write);
            #[cfg(feature = "sanitize")]
            let scss_failures_before = ctx.stats.scss_failures.get();
            self.store_words(ctx, &me, obj.data_words(), mine.old_data().words());
            #[cfg(feature = "sanitize")]
            {
                let complete = ctx.stats.scss_failures.get() == scss_failures_before;
                let mut now = vec![0u64; n];
                crate::data::snapshot_words(obj.data_words(), &mut now);
                self.san.restored(h.addr(), &now, complete);
            }
            ctx.stats.deflations.bump();
            trace_evt!(self, ctx, tid, Deflate, h.addr() as u64, ctx.serial);
            push_write(ctx, WriteEntry {
                obj: Arc::clone(obj),
                target: WriteTarget::InPlace { backup_raw: h.backup_raw() },
            });
        } else {
            push_write(ctx, WriteEntry { obj: Arc::clone(obj), target: WriteTarget::Inflated { loc: mine } });
        }
        self.validate(ctx)?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    fn read_value<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<NZObject<T>>,
    ) -> Result<T, Abort> {
        if M::NOREC {
            return self.norec_read(ctx, tid, obj);
        }
        self.validate(ctx)?;
        hot_stat!(ctx, reads);
        let me_ptr = Arc::as_ptr(Self::me(ctx));
        let h = obj.header();
        let key = header_key(h);
        let n = T::n_words();
        let visible = self.cfg.read_mode == ReadMode::Visible;

        loop {
            let guard = nztm_epoch::pin();
            if visible && ctx.read_index.get(key).is_none() {
                // Register *before* examining the owner so any later
                // writer is guaranteed to see us. The index dedups
                // re-reads: one entry (and one `Arc` clone) per object
                // per transaction, however many times it is read. On a
                // striped indicator the registration lands on this
                // thread's own stripe line; the first reader of a stripe
                // additionally sets its sticky summary bit in the header
                // line.
                self.platform.mem(h.reader_word_addr(tid), 8, AccessKind::Rmw);
                if h.add_reader(tid) {
                    self.platform.mem_nb(h.addr(), 8, AccessKind::Rmw);
                }
                #[cfg(feature = "sanitize")]
                self.san.reader_add(h.addr(), tid);
                let any: Arc<dyn NzObjAny> = obj.clone();
                ctx.read_index.insert(key, ctx.read_set.len() as u32);
                ctx.read_set.push(ReadEntry { obj: any, version: 0 });
            }

            self.platform.mem(h.addr(), 8, AccessKind::Read);
            if M::NONBLOCKING {
                self.platform.work(1); // inflation-tag test (see acquire)
            }
            let v1 = h.version();
            let o1 = h.owner_raw();
            // Classify and pick the buffer holding the logical value.
            enum Src<'g> {
                Data,
                Buf(&'g WordBuf),
            }
            let src = match h.owner(&guard) {
                OwnerRef::None => Src::Data,
                OwnerRef::Txn(t, raw) => {
                    if std::ptr::eq(t, me_ptr) {
                        // Our own eager in-place writes.
                        Src::Data
                    } else {
                        match t.state_snapshot() {
                            (Status::Committed, _) => Src::Data,
                            (Status::Aborted, _) => match h
                                .backup(&guard)
                                .filter(|(b, _)| b.usable_as_backup(&guard))
                            {
                                Some((b, _)) => Src::Buf(b),
                                None => Src::Data,
                            },
                            (Status::Active, anp) => {
                                if M::SCSS && anp {
                                    // SCSS: an ANP'd owner is as good as
                                    // aborted once barriered — its stores
                                    // can no longer land.
                                    self.platform.work(self.cfg.scss_cycles);
                                    t.with_scss_lock(|| {});
                                    match h
                                        .backup(&guard)
                                        .filter(|(b, _)| b.usable_as_backup(&guard))
                                    {
                                        Some((b, _)) => Src::Buf(b),
                                        None => Src::Data,
                                    }
                                } else {
                                    match self.resolve_conflict(ctx, h, raw, t, true)? {
                                        ConflictOutcome::Settled => continue,
                                        ConflictOutcome::Unresponsive => {
                                            debug_assert!(M::NONBLOCKING && !M::SCSS);
                                            // Nonblocking read past an
                                            // unresponsive owner: inflate
                                            // (becoming the owner) and read
                                            // our locator's data.
                                            let any: Arc<dyn NzObjAny> = obj.clone();
                                            self.inflate(ctx, tid, &any, raw, t, &guard)?;
                                            continue;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                OwnerRef::Inflated(loc, raw) => {
                    if !M::NONBLOCKING || M::SCSS {
                        unreachable!("{} must never see an inflated object", M::NAME);
                    }
                    if std::ptr::eq(loc.owner(), me_ptr) {
                        Src::Buf(loc.new_data().as_ref())
                    } else {
                        let (st, anp) = loc.owner().state_snapshot();
                        if st == Status::Active && !anp {
                            match self.resolve_conflict(ctx, h, raw, loc.owner(), false)? {
                                ConflictOutcome::Settled => continue,
                                ConflictOutcome::Unresponsive => continue,
                            }
                        }
                        Src::Buf(loc.current_data().as_ref())
                    }
                }
            };

            // Decode (racy snapshot), then re-validate.
            ctx.scratch.clear();
            ctx.scratch.resize(n, 0);
            match src {
                Src::Data => {
                    self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Read);
                    crate::data::snapshot_words(obj.data_words(), &mut ctx.scratch);
                }
                Src::Buf(b) => {
                    // Clamped copy rather than `snapshot_words`: `b` may
                    // be a backup buffer that raced a commit-time
                    // take-back into another thread's pool and was
                    // resized for reuse (size-class pools recycle without
                    // waiting on reader pins). The contents are then
                    // garbage, which is fine — the o1/v1 revalidation
                    // below rejects the snapshot — but the *length* must
                    // not be trusted to still match `n`.
                    self.platform.mem_nb(b.addr(), n * 8, AccessKind::Read);
                    let words = b.words();
                    for (i, slot) in ctx.scratch.iter_mut().enumerate() {
                        *slot = match words.get(i) {
                            Some(w) => w.load(std::sync::atomic::Ordering::Relaxed),
                            None => 0,
                        };
                    }
                }
            }
            self.platform.mem(h.addr(), 8, AccessKind::Read);
            if h.owner_raw() != o1 || h.version() != v1 {
                continue; // somebody moved underneath us; retry
            }
            self.validate(ctx)?;
            let value = T::decode(&ctx.scratch);
            if !visible && ctx.read_index.get(key).is_none() {
                let any: Arc<dyn NzObjAny> = obj.clone();
                ctx.read_index.insert(key, ctx.read_set.len() as u32);
                ctx.read_set.push(ReadEntry { obj: any, version: v1 });
            }
            return Ok(value);
        }
    }

    fn write_value<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<NZObject<T>>,
        value: &T,
    ) -> Result<(), Abort> {
        if M::NOREC {
            return self.norec_write(ctx, obj, value);
        }
        // Fast path: already acquired — no `Arc` clone, no owner-word
        // traffic, just an index hit and a self-validation. The clone for
        // the write-set entry happens at most once per object, inside
        // `acquire_write`.
        let idx = match ctx.write_index.get(header_key(obj.header())) {
            Some(i) => {
                self.validate(ctx)?;
                i as usize
            }
            None => {
                let any: Arc<dyn NzObjAny> = obj.clone();
                self.acquire_write(ctx, tid, &any)?
            }
        };
        let n = T::n_words();
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        value.encode(&mut ctx.scratch);
        let me = Arc::clone(Self::me(ctx));
        match &ctx.write_set.get(idx).expect("indexed write entry").target {
            WriteTarget::InPlace { .. } => {
                // Yield-point annotation modeling preemption between the
                // last validation and the in-place store — the window the
                // §2.2 acknowledgement handshake exists to protect
                // (deliberately *not* re-validated after; `sanitize`
                // builds only, no-op otherwise).
                self.san_point(ctx, tid, crate::sanitizer::Point::EagerWrite);
                #[cfg(feature = "sanitize")]
                self.san
                    .eager_write(obj.header().addr(), obj.header().backup_raw());
                self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Write);
                if M::SCSS {
                    // Dirty-word write-back: an SCSS whose store would not
                    // change the word is skipped — semantically identical
                    // (the paired check guards *changes*) and essential
                    // because whole-object writes would otherwise multiply
                    // the per-store hardware-transaction cost the paper
                    // measures per *mutated field* (§2.3.2/§4.4.2).
                    let scratch = std::mem::take(&mut ctx.scratch);
                    for (d, v) in obj.data_words().iter().zip(&scratch) {
                        if d.load(std::sync::atomic::Ordering::Relaxed) != *v {
                            let _ = self.scss_store(ctx, &me, d, *v);
                        }
                    }
                    ctx.scratch = scratch;
                } else {
                    crate::data::write_words(obj.data_words(), &ctx.scratch);
                }
            }
            WriteTarget::Inflated { loc } => {
                let buf = Arc::clone(loc.new_data());
                self.platform.mem_nb(buf.addr(), n * 8, AccessKind::Write);
                crate::data::write_words(buf.words(), &ctx.scratch);
            }
            WriteTarget::Buffered { .. } => {
                unreachable!("{} never buffers writes (NOrec-only target)", M::NAME)
            }
        }
        self.validate(ctx)
    }

    // ------------------------------------------------------------------
    // NOrec path (value validation + global sequence lock)
    //
    // Everything below is gated by `M::NOREC` at the lifecycle entry
    // points (begin / read_value / write_value / commit /
    // clear_reader_bits) and compiles out of the ownership modes. NOrec
    // transactions never touch owner words, reader indicators, backups,
    // or the AbortNowPlease handshake: the only shared metadata word is
    // the global sequence clock.
    // ------------------------------------------------------------------

    /// Poll the global clock (one shared-line read in the cache model).
    #[inline]
    fn norec_clock_load(&self) -> u64 {
        self.platform.mem(self.norec_clock.synth, 8, AccessKind::Read);
        self.norec_clock.word.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Spin until the clock is even (no writer inside its commit
    /// write-back window) and return it.
    fn norec_wait_even(&self) -> u64 {
        loop {
            let t = self.norec_clock_load();
            if t & 1 == 0 {
                return t;
            }
            self.platform.spin_wait();
        }
    }

    /// Value-based validation (NOrec's `Validate`): wait out any
    /// in-flight committer, re-read every logged location and compare it
    /// to the logged value, and succeed only if the clock did not move
    /// during the scan — extending the snapshot to the scanned clock.
    /// A mismatch means a committed writer overwrote something we read:
    /// the attempt aborts with [`AbortCause::ValueValidation`].
    fn norec_validate_extend(&self, ctx: &mut ThreadCtx, tid: usize) -> Result<(), Abort> {
        hot_stat!(ctx, norec_validations);
        trace_evt!(self, ctx, tid, NorecValidate, ctx.snapshot, ctx.read_set.len() as u64);
        loop {
            let t = self.norec_wait_even();
            for i in 0..ctx.read_set.len() {
                let r = ctx.read_set.get(i).expect("index in range");
                let (off, len) = norec_unpack(r.version);
                self.platform.mem_nb(r.obj.data_addr(), len * 8, AccessKind::Read);
                let words = r.obj.data_words();
                let logged = &ctx.norec_vals[off..off + len];
                let intact = words.len() == len
                    && words
                        .iter()
                        .zip(logged)
                        .all(|(w, v)| w.load(std::sync::atomic::Ordering::Relaxed) == *v);
                if !intact {
                    ctx.conflict_obj = r.obj.header().addr() as u64;
                    hot_stat!(ctx, conflicts);
                    return Err(Abort(AbortCause::ValueValidation));
                }
            }
            if self.norec_clock_load() == t {
                if t != ctx.snapshot {
                    hot_stat!(ctx, norec_extensions);
                    trace_evt!(self, ctx, tid, NorecExtend, ctx.snapshot, t);
                    ctx.snapshot = t;
                }
                return Ok(());
            }
            // A writer committed mid-scan; the values we compared may mix
            // epochs. Rescan against the newer clock.
        }
    }

    fn norec_read<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        tid: usize,
        obj: &Arc<NZObject<T>>,
    ) -> Result<T, Abort> {
        hot_stat!(ctx, reads);
        let h = obj.header();
        let key = header_key(h);
        let n = T::n_words();

        // Our own buffered write wins (read-your-writes).
        if let Some(i) = ctx.write_index.get(key) {
            let w = ctx.write_set.get(i as usize).expect("indexed write entry");
            let WriteTarget::Buffered { off, len } = w.target else {
                unreachable!("NOrec write entries are always Buffered")
            };
            debug_assert_eq!(len, n);
            return Ok(T::decode(&ctx.norec_redo[off..off + len]));
        }

        // Re-read: return the logged value (opacity — the attempt keeps
        // seeing exactly the state it validated, even if the location
        // has since moved on).
        if let Some(i) = ctx.read_index.get(key) {
            let r = ctx.read_set.get(i as usize).expect("indexed read entry");
            let (off, len) = norec_unpack(r.version);
            debug_assert_eq!(len, n);
            return Ok(T::decode(&ctx.norec_vals[off..off + len]));
        }

        // Fresh read: snapshot the data words, then make sure the clock
        // stood still across the copy — if it moved, revalidate the whole
        // read log (snapshot extension) and re-copy.
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        loop {
            self.platform.mem_nb(obj.data_addr(), n * 8, AccessKind::Read);
            crate::data::snapshot_words(obj.data_words(), &mut ctx.scratch);
            if self.norec_clock_load() == ctx.snapshot {
                break;
            }
            self.norec_validate_extend(ctx, tid)?;
        }
        let off = ctx.norec_vals.len();
        ctx.norec_vals.extend_from_slice(&ctx.scratch);
        let any: Arc<dyn NzObjAny> = obj.clone();
        ctx.read_index.insert(key, ctx.read_set.len() as u32);
        ctx.read_set.push(ReadEntry { obj: any, version: norec_pack(off, n) });
        Ok(T::decode(&ctx.scratch))
    }

    fn norec_write<T: TmData>(
        &self,
        ctx: &mut ThreadCtx,
        obj: &Arc<NZObject<T>>,
        value: &T,
    ) -> Result<(), Abort> {
        let key = header_key(obj.header());
        let n = T::n_words();
        ctx.scratch.clear();
        ctx.scratch.resize(n, 0);
        value.encode(&mut ctx.scratch);
        if let Some(i) = ctx.write_index.get(key) {
            let w = ctx.write_set.get(i as usize).expect("indexed write entry");
            let WriteTarget::Buffered { off, len } = w.target else {
                unreachable!("NOrec write entries are always Buffered")
            };
            debug_assert_eq!(len, n);
            ctx.norec_redo[off..off + len].copy_from_slice(&ctx.scratch);
            return Ok(());
        }
        // First write to this object: append a redo slot. Counted as an
        // acquisition (one per object per attempt, like the ownership
        // modes) even though nothing is owned until commit.
        let off = ctx.norec_redo.len();
        ctx.norec_redo.extend_from_slice(&ctx.scratch);
        hot_stat!(ctx, acquires);
        let any: Arc<dyn NzObjAny> = obj.clone();
        push_write(ctx, WriteEntry { obj: any, target: WriteTarget::Buffered { off, len: n } });
        Ok(())
    }

    /// NOrec commit. Read-only attempts are already valid at their
    /// snapshot and commit without touching the clock (NOrec's
    /// read-only fast path). Writers CAS the clock from their snapshot
    /// to odd (locking out other committers *and* proving no one
    /// committed since the snapshot), write the redo log back, and
    /// release the clock two ticks up.
    fn norec_commit(&self, ctx: &mut ThreadCtx, tid: usize) -> bool {
        let me = Arc::clone(Self::me(ctx));
        if !ctx.write_set.is_empty() {
            loop {
                self.san_point(ctx, tid, crate::sanitizer::Point::CommitCas);
                self.platform.mem(self.norec_clock.synth, 8, AccessKind::Rmw);
                if self
                    .norec_clock
                    .word
                    .compare_exchange(
                        ctx.snapshot,
                        ctx.snapshot + 1,
                        std::sync::atomic::Ordering::AcqRel,
                        std::sync::atomic::Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    break;
                }
                // Someone committed since our snapshot: revalidate (and
                // extend) or abort on a value conflict.
                if let Err(Abort(cause)) = self.norec_validate_extend(ctx, tid) {
                    self.abort_txn(ctx, tid, cause);
                    return false;
                }
            }
        }
        self.platform.mem(me.addr(), 8, AccessKind::Rmw);
        if !me.try_commit() {
            // Defensive only: no peer can find a NOrec descriptor (it is
            // never published in owner words or reader indicators), so
            // AbortNowPlease cannot arrive. Unlock and unwind anyway.
            if !ctx.write_set.is_empty() {
                self.norec_clock
                    .word
                    .store(ctx.snapshot, std::sync::atomic::Ordering::Release);
            }
            self.abort_txn(ctx, tid, AbortCause::Requested);
            return false;
        }
        #[cfg(feature = "sanitize")]
        self.san.commit_ok(Arc::as_ptr(&me) as u64, tid as u32);
        if !ctx.write_set.is_empty() {
            // Locked: write the redo log back. Readers observing these
            // stores see an odd clock and wait us out.
            while let Some(w) = ctx.write_set.pop() {
                let WriteTarget::Buffered { off, len } = w.target else {
                    unreachable!("NOrec write entries are always Buffered")
                };
                self.platform.mem_nb(w.obj.data_addr(), len * 8, AccessKind::Write);
                let words = w.obj.data_words();
                for (k, word) in words.iter().enumerate() {
                    word.store(
                        ctx.norec_redo[off + k],
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            }
            self.platform.mem(self.norec_clock.synth, 8, AccessKind::Write);
            self.norec_clock
                .word
                .store(ctx.snapshot + 2, std::sync::atomic::Ordering::Release);
        }
        self.clear_reader_bits(ctx, tid);
        ctx.stats.commits.bump();
        trace_evt!(self, ctx, tid, TxnCommit, ctx.serial, 0);
        let change = self.cm.on_commit(tid as u32);
        self.note_mode_change(ctx, tid, change);
        true
    }
}

/// An in-flight transaction handle. Carries no lifetime (it holds raw
/// pointers into the engine and this thread's context) so wrapper
/// systems — the NZTM hybrid — can embed it in their own transaction
/// types; it is only ever constructed by [`NzStm::run`], is `!Send`, and
/// must not outlive the `run` closure that received it.
pub struct NzTx<P: Platform, M: ModePolicy> {
    sys: *const NzStm<P, M>,
    ctx: *mut ThreadCtx,
    tid: usize,
}

impl<P: Platform, M: ModePolicy> NzTx<P, M> {
    /// Transactionally read `obj`'s current value.
    pub fn read<T: TmData>(&mut self, obj: &Arc<NZObject<T>>) -> Result<T, Abort> {
        let tid = self.tid;
        // Safety: `sys` outlives the closure; `ctx` is this thread's slot.
        let (sys, ctx) = unsafe { (&*self.sys, &mut *self.ctx) };
        sys.read_value(ctx, tid, obj)
    }

    /// Transactionally overwrite `obj` with `value`.
    pub fn write<T: TmData>(&mut self, obj: &Arc<NZObject<T>>, value: &T) -> Result<(), Abort> {
        let tid = self.tid;
        // Safety: as in `read`.
        let (sys, ctx) = unsafe { (&*self.sys, &mut *self.ctx) };
        sys.write_value(ctx, tid, obj, value)
    }

    /// Read-modify-write convenience.
    pub fn update<T: TmData>(
        &mut self,
        obj: &Arc<NZObject<T>>,
        f: impl FnOnce(&mut T),
    ) -> Result<(), Abort> {
        let mut v = self.read(obj)?;
        f(&mut v);
        self.write(obj, &v)
    }

    /// Explicitly abort this attempt (it will be retried).
    pub fn abort(&mut self) -> Abort {
        Abort(AbortCause::Explicit)
    }

    /// Publish an ADT-level operation descriptor (see [`crate::adt`]):
    /// bumps the `adt_ops` counter and, when the flight recorder is
    /// armed, records an [`crate::trace::EventKind::AdtOp`] event keyed
    /// by the logical operation rather than a raw word access.
    pub fn note_adt_op(&mut self, desc: crate::adt::AdtOpDesc) {
        let tid = self.tid;
        // Safety: as in `read`.
        let (sys, ctx) = unsafe { (&*self.sys, &mut *self.ctx) };
        let _ = (sys, &desc);
        hot_stat!(ctx, adt_ops);
        trace_evt!(sys, ctx, tid, AdtOp, desc.key, desc.pack());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_desc() -> Arc<TxnDesc> {
        let d = Arc::new(TxnDesc::new(0, 1));
        assert!(d.try_commit());
        d
    }

    fn aborted_desc() -> Arc<TxnDesc> {
        let d = Arc::new(TxnDesc::new(0, 1));
        d.acknowledge_abort();
        d
    }

    fn pooled_buf(len: usize, installer: Option<&Arc<TxnDesc>>) -> Arc<WordBuf> {
        let buf = WordBuf::zeroed(len);
        if let Some(d) = installer {
            let g = nztm_epoch::pin();
            buf.set_installer(d, &g);
        }
        buf
    }

    #[test]
    fn backup_pool_classes_round_trip() {
        let mut pool = BackupPool::default();
        let d = committed_desc();
        for len in 1..=20usize {
            pool.put(pooled_buf(len, Some(&d)));
        }
        // A take for length 9 may be served by any capacity-16 buffer
        // (lengths 9..=16 share the class); the pool resizes it.
        let b = pool.take(9).expect("class 16 is populated");
        assert_eq!(b.len(), 9);
        assert_eq!(b.cap(), 16);
        // Every pooled length round-trips with a power-of-two capacity.
        for len in [1usize, 2, 3, 7, 8] {
            let b = pool.take(len).expect("small classes are populated");
            assert_eq!(b.len(), len);
            assert_eq!(b.cap(), WordBuf::cap_for(len));
            assert!(b.cap().is_power_of_two());
        }
    }

    #[test]
    fn backup_pool_depth_is_bounded() {
        let mut pool = BackupPool::default();
        for _ in 0..(BackupPool::DEPTH + 40) {
            pool.put(pooled_buf(4, None));
        }
        let mut takes = 0;
        while pool.take(4).is_some() {
            takes += 1;
        }
        assert_eq!(takes, BackupPool::DEPTH, "pool depth must be bounded");
    }

    /// Property test (seeded, deterministic): however put/take interleave
    /// across lengths and settled installer states, the pool never hands
    /// out a buffer whose installer is a live (Active) transaction, and
    /// always hands out the exact requested length in the right class.
    #[test]
    fn backup_pool_never_hands_out_live_installer_property() {
        let mut rng = DetRng::new(0xB00F);
        let mut pool = BackupPool::default();
        let committed = committed_desc();
        let aborted = aborted_desc();
        let mut in_pool = 0usize;
        for _ in 0..2000 {
            let len = 1 + rng.next_below(64) as usize;
            if rng.chance(1, 2) {
                let installer = match rng.next_below(3) {
                    0 => None,
                    1 => Some(&committed),
                    _ => Some(&aborted),
                };
                pool.put(pooled_buf(len, installer));
                in_pool += 1;
            } else if let Some(b) = pool.take(len) {
                in_pool -= 1;
                assert_eq!(b.len(), len);
                assert_eq!(b.cap(), WordBuf::cap_for(len));
                let g = nztm_epoch::pin();
                assert!(
                    !matches!(b.installer_status(&g), Some(Status::Active)),
                    "pool handed out a buffer with a live installer"
                );
            }
        }
        // Sanity: the interleaving actually exercised both operations.
        assert!(in_pool < 2000);
        nztm_epoch::flush();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "live installer")]
    fn backup_pool_rejects_live_installer_in_debug() {
        let active = Arc::new(TxnDesc::new(0, 1)); // Status::Active
        let mut pool = BackupPool::default();
        pool.put(pooled_buf(2, Some(&active)));
    }

    #[test]
    fn backup_pool_class_of_matches_cap_for() {
        for len in 1..200usize {
            let c = BackupPool::class_of(len);
            assert_eq!(1usize << c, WordBuf::cap_for(len));
        }
    }

    /// Satellite: exhaustive `AbortCause` accounting. Drives one abort
    /// through the engine for each variant (via [`AbortCause::ALL`], so
    /// a new variant extends this test automatically) and checks that
    /// exactly the matching counter moved — and that the `aborts()`
    /// total agrees, i.e. no cause is dropped or double-counted.
    #[test]
    fn every_abort_cause_is_counted_exactly_once() {
        let p = nztm_sim::Native::new(1);
        p.register_thread_as(0);
        let s = crate::builder::NzBuilder::new(p).build_nzstm();
        for (i, cause) in AbortCause::ALL.into_iter().enumerate() {
            let mut pending = true;
            s.run(|_tx| {
                if std::mem::take(&mut pending) {
                    Err(Abort(cause))
                } else {
                    Ok(())
                }
            });
            let st = s.stats_snapshot();
            let so_far = &AbortCause::ALL[..=i];
            let expect =
                |c: AbortCause| so_far.iter().filter(|&&x| x == c).count() as u64;
            assert_eq!(st.aborts(), (i + 1) as u64, "after {cause:?}");
            assert_eq!(st.aborts_requested, expect(AbortCause::Requested));
            assert_eq!(st.aborts_self, expect(AbortCause::SelfAbort));
            assert_eq!(st.aborts_validation, expect(AbortCause::Validation));
            assert_eq!(st.aborts_explicit, expect(AbortCause::Explicit));
            assert_eq!(st.aborts_htm, expect(AbortCause::Htm));
            assert_eq!(st.aborts_value_validation, expect(AbortCause::ValueValidation));
        }
        assert_eq!(s.stats_snapshot().commits, AbortCause::ALL.len() as u64);
    }

    /// The engine delivers commit/abort telemetry to the contention
    /// manager: an adaptive policy's per-thread conflict EWMA rises
    /// under an abort streak and drains back under pure commits.
    #[test]
    fn engine_feeds_adaptive_telemetry_hooks() {
        let p = nztm_sim::Native::new(1);
        p.register_thread_as(0);
        let cm = Arc::new(crate::cm::Adaptive::default());
        let s = crate::builder::NzBuilder::new(p).cm(cm.clone()).build_nzstm();
        assert_eq!(cm.conflict_ewma(0), 0);
        for _ in 0..32 {
            let mut pending = true;
            s.run(|tx| if std::mem::take(&mut pending) { Err(tx.abort()) } else { Ok(()) });
        }
        let stormy = cm.conflict_ewma(0);
        assert!(stormy > 0, "aborts must raise the conflict EWMA");
        for _ in 0..256 {
            s.run(|_tx| Ok(()));
        }
        assert!(
            cm.conflict_ewma(0) < stormy.max(1),
            "a commit run must drain the EWMA ({} -> {})",
            stormy,
            cm.conflict_ewma(0)
        );
    }
}
