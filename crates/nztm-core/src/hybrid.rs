//! NZTM hybrid support (§2.4): the checks a *hardware* transaction makes
//! against NZSTM's software metadata.
//!
//! A best-effort hardware transaction that accesses an `NZObject` cannot
//! simply touch the data: a software transaction might own the object.
//! The paper's scheme, implemented by [`hw_examine_and_clean`]:
//!
//! * If the owner word points to an **active** software transaction (or
//!   the object is inflated with a live locator chain), the hardware
//!   transaction **aborts itself** — it will be retried in hardware or
//!   fall back to software, per policy.
//! * If the owner is settled, the hardware transaction *repairs* the
//!   object on the spot: restores the backup if the last owner aborted,
//!   deflates an inflated object whose chain is quiescent, and finally
//!   sets the owner word to `NULL` "so subsequent hardware transactions
//!   [need not] perform similar checks".
//! * A hardware **writer** must also abort on visible software readers.
//!
//! These routines are called from inside the emulated hardware
//! transaction (the `nztm-htm` crate), which guarantees (a) atomicity of
//! the whole check-and-repair sequence with respect to simulated cores
//! and (b) that the metadata lines examined join the hardware
//! transaction's conflict sets, so any later software acquisition aborts
//! the hardware transaction — exactly the property the paper relies on
//! ("a subsequent conflict that arises with a software transaction will
//! modify data that the hardware transaction has accessed").
//!
//! "We emphasize that these techniques are achieved by controlling what
//! code is executed within a hardware transaction, not by assuming any
//! special support in the hardware." — likewise here: this module only
//! uses the ordinary public operations of [`NZHeader`].

use crate::data::copy_words;
use crate::object::NZHeader;
use crate::txn::Status;
use nztm_epoch::Guard;
use std::sync::atomic::AtomicU64;

/// Result of examining an object's metadata from the hardware path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HwCheck {
    /// Object is (now) clean: owner NULL, data in place and valid.
    Clean,
    /// Conflict with an active software transaction or software readers;
    /// the hardware transaction must abort itself.
    ConflictWithSoftware,
}

/// Examine — and if possible repair — `header`/`data` for access by a
/// hardware transaction. `is_write` additionally treats visible software
/// readers as conflicts. Must run inside the hardware transaction's
/// atomic context.
pub fn hw_examine_and_clean(
    header: &NZHeader,
    data: &[AtomicU64],
    is_write: bool,
    self_tid: usize,
    guard: &Guard,
) -> HwCheck {
    use crate::object::OwnerRef;

    if is_write && header.has_reader_other_than(self_tid) {
        return HwCheck::ConflictWithSoftware;
    }

    match header.owner(guard) {
        OwnerRef::None => HwCheck::Clean,
        OwnerRef::Txn(t, raw) => match t.status() {
            Status::Active => HwCheck::ConflictWithSoftware,
            Status::Committed => {
                // Inert ownership: erase it so later hardware transactions
                // skip these checks (§2.4).
                let _ = header.cas_owner_to_null(raw, guard);
                HwCheck::Clean
            }
            Status::Aborted => {
                // Lazily restore the backup (the data words are stale),
                // then erase the owner. Skip stale buffers whose
                // installer committed (see WordBuf::usable_as_backup).
                if let Some((b, _)) =
                    header.backup(guard).filter(|(b, _)| b.usable_as_backup(guard))
                {
                    copy_words(data, b.words());
                }
                let _ = header.cas_owner_to_null(raw, guard);
                HwCheck::Clean
            }
        },
        OwnerRef::Inflated(loc, raw) => {
            // §2.4: "NZTM first attempts to deflate an inflated object,
            // and then accesses the data in place."
            let chain_live = loc.owner().status() == Status::Active
                || loc.aborted_txn().status() == Status::Active;
            if chain_live {
                return HwCheck::ConflictWithSoftware;
            }
            // Quiescent chain: the logical value is fixed; write it back
            // in place and erase the owner (hardware deflation straight
            // to NULL — stronger than software deflation, which must keep
            // an owner because it may yet abort).
            copy_words(data, loc.current_data().words());
            if header.cas_owner_to_null(raw, guard) {
                HwCheck::Clean
            } else {
                // Somebody raced us; be conservative.
                HwCheck::ConflictWithSoftware
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locator::Locator;
    use crate::object::{NZObject, OwnerRef, WordBuf};
    use crate::txn::TxnDesc;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn desc() -> Arc<TxnDesc> {
        Arc::new(TxnDesc::new(0, 0))
    }

    #[test]
    fn clean_object_passes() {
        let o = NZObject::new(1u64);
        let g = nztm_epoch::pin();
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), true, 0, &g),
            HwCheck::Clean
        );
    }

    #[test]
    fn active_owner_conflicts() {
        let o = NZObject::new(1u64);
        let d = desc();
        let g = nztm_epoch::pin();
        o.header().cas_owner_to_txn(0, &d, &g);
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), false, 0, &g),
            HwCheck::ConflictWithSoftware
        );
    }

    #[test]
    fn committed_owner_is_erased() {
        let o = NZObject::new(1u64);
        let d = desc();
        let g = nztm_epoch::pin();
        o.header().cas_owner_to_txn(0, &d, &g);
        d.try_commit();
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), true, 0, &g),
            HwCheck::Clean
        );
        assert!(matches!(o.header().owner(&g), OwnerRef::None));
    }

    #[test]
    fn aborted_owner_restores_backup() {
        let o = NZObject::new(10u64);
        let d = desc();
        let g = nztm_epoch::pin();
        o.header().cas_owner_to_txn(0, &d, &g);
        let backup = WordBuf::from_words(o.data_words()); // backup = 10
        o.header().cas_backup(0, Some(&backup), &g);
        o.data_words()[0].store(99, Ordering::Relaxed); // speculative write
        d.acknowledge_abort();

        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), true, 0, &g),
            HwCheck::Clean
        );
        assert_eq!(o.read_untracked(), 10, "backup restored");
        assert!(matches!(o.header().owner(&g), OwnerRef::None));
    }

    #[test]
    fn software_readers_block_hw_writers_only() {
        let o = NZObject::new(1u64);
        let g = nztm_epoch::pin();
        o.header().add_reader(3);
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), true, 0, &g),
            HwCheck::ConflictWithSoftware
        );
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), false, 0, &g),
            HwCheck::Clean,
            "hardware readers coexist with software readers"
        );
        // Our own reader bit doesn't conflict.
        o.header().remove_reader(3);
        o.header().add_reader(0);
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), true, 0, &g),
            HwCheck::Clean
        );
    }

    #[test]
    fn quiescent_inflated_object_deflates_to_null() {
        let o = NZObject::new(5u64);
        let owner = desc();
        let unresp = desc();
        let g = nztm_epoch::pin();
        let old = WordBuf::from_words(o.data_words());
        let new = WordBuf::from_words(o.data_words());
        new.words()[0].store(42, Ordering::Relaxed);
        let loc =
            Arc::new(Locator::new(Arc::clone(&owner), Arc::clone(&unresp), old, new));
        o.header().cas_owner_to_locator(0, &loc, &g);

        // Chain still live: locator owner active.
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), false, 0, &g),
            HwCheck::ConflictWithSoftware
        );

        // Owner commits (logical value = new = 42), unresponsive acks.
        owner.try_commit();
        unresp.acknowledge_abort();
        assert_eq!(
            hw_examine_and_clean(o.header(), o.data_words(), false, 0, &g),
            HwCheck::Clean
        );
        assert_eq!(o.read_untracked(), 42, "committed locator value deflated in place");
        assert!(matches!(o.header().owner(&g), OwnerRef::None));
    }
}
