//! # nztm-core — Nonblocking Zero-indirection Transactional Memory
//!
//! A Rust implementation of the transactional-memory family from
//! *"NZTM: Nonblocking Zero-indirection Transactional Memory"*
//! (Tabba, Moir, Goodman, Hay, Wang — SPAA 2009):
//!
//! * [`Bzstm`] — the blocking base STM (§2.2): object data **in place**,
//!   metadata collocated with data, eager writes with lazily-restored
//!   backup copies, and the polite AbortNowPlease handshake.
//! * [`Nzstm`] — the paper's headline contribution (§2.3.1): the same
//!   zero-indirection common case, made **obstruction-free** by inflating
//!   an object into a DSTM-style locator only when a conflicting
//!   transaction is unresponsive, and deflating it back afterwards.
//! * [`NzstmScss`] — the §2.3.2 variant: nonblocking with **no** locator
//!   machinery at all, by pairing every data store with a check of the
//!   writer's own AbortNowPlease flag (Single-Compare Single-Store,
//!   emulated as a short atomic section).
//! * [`Norec`] — NOrec (value-based validation, lazy redo writes, one
//!   global sequence lock), composed from the same kernel: proof that an
//!   algorithm here is a [composition](algo) of per-axis strategies, not
//!   a fork of the engine.
//! * [`hybrid`] — hooks for the NZTM hybrid (§2.4), used by the
//!   `nztm-htm` crate's best-effort hardware path.
//!
//! ## Quick start
//!
//! Engines are constructed through [`NzBuilder`] (paper defaults:
//! visible reads, Karma + deadlock-detection contention management):
//!
//! ```
//! use nztm_core::NzBuilder;
//! use nztm_sim::Native;
//!
//! let platform = Native::new(1);
//! platform.register_thread();
//! let stm = NzBuilder::new(platform).build_nzstm();
//!
//! let account = stm.new_obj(100u64);
//! let r = stm.run(|tx| {
//!     let v = tx.read(&account)?;
//!     tx.write(&account, &(v + 23))?;
//!     Ok(v)
//! });
//! assert_eq!(r, 100);
//! assert_eq!(account.read_untracked(), 123);
//! ```
//!
//! ## Observability
//!
//! Every engine exposes merged statistics via
//! [`TmSys::stats_snapshot`] (safe at any
//! time) and, when built with the non-default `trace` cargo feature, a
//! [flight recorder](trace) of per-thread transaction events that
//! exports to JSON-lines and Chrome `trace_event` format (Perfetto).
//!
//! All engines are generic over [`nztm_sim::Platform`], so the same code
//! runs on real threads ([`nztm_sim::Native`]) or on the deterministic
//! simulated multiprocessor ([`nztm_sim::SimPlatform`]) used to reproduce
//! the paper's simulator experiments.

pub mod adt;
pub mod algo;
pub mod builder;
pub mod cm;
pub mod data;
pub mod engine;
pub mod hybrid;
pub mod locator;
pub mod object;
pub mod readers;
pub mod registry;
pub mod runtime;
pub mod sanitizer;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod txn;
pub mod util;

pub use adt::{AdtOpDesc, AdtOpKind};
pub use algo::{BackupPolicy, CommitProtocol, Composition, LogRepr, ReadStrategy};
pub use builder::{Algo, BackendKind, BuildError, NzBuilder};
pub use data::{FieldWord, TmData, WordArray};
pub use engine::{
    Blocking, ModePolicy, NativeHtmPolicy, Nonblocking, NorecMode, NzConfig, NzStm, NzTx,
    ReadMode, ScssMode, TraceConfig,
};
pub use object::{NZObject, NzObjAny, WordBuf};
pub use readers::{ReaderIndicator, ReaderVisit};
pub use runtime::{Handle, ObjPool, TmSys};
pub use stats::{ThreadStats, TmStats};
pub use topology::{Placement, Topology, TopologyPolicy};
pub use trace::{EventKind, ObjectHeat, Trace, TraceEvent};
pub use txn::{Abort, AbortCause, Status, TxnDesc};

/// The blocking base STM of §2.2 ("BZSTM" in the paper's evaluation).
pub type Bzstm<P> = NzStm<P, Blocking>;
/// The nonblocking zero-indirection STM of §2.3.1.
pub type Nzstm<P> = NzStm<P, Nonblocking>;
/// The SCSS variant of §2.3.2.
pub type NzstmScss<P> = NzStm<P, ScssMode>;
/// NOrec: value-validated reads + redo log + global sequence lock.
pub type Norec<P> = NzStm<P, NorecMode>;
