//! DSTM-style `Locator` used by **inflated** objects (§2.3.1, Figure 2).
//!
//! When a conflicting owner is unresponsive, NZSTM gives up on in-place
//! access and displaces the object's logical value behind a locator,
//! "effectively changing the meaning of the Owner field": the owner word
//! then points here (low bit set) and the DSTM algorithm applies — two
//! levels of indirection, but only while the unresponsive transaction
//! remains unresponsive.
//!
//! The one NZSTM addition over DSTM's locator is the **Aborted
//! Transaction** field: every replacement locator carries it forward so
//! the identity of the unresponsive transaction is preserved, which is
//! what later allows *deflation* once that transaction finally
//! acknowledges its abort.
//!
//! Locator fields are immutable after construction — DSTM replaces whole
//! locators by CAS on the owner word — so no field-level synchronization
//! is needed. The value buffers are shared `WordBuf`s; a committed
//! locator's `new_data` becomes the next locator's `old_data`.

use crate::object::WordBuf;
use crate::txn::{Status, TxnDesc};
use std::sync::Arc;

/// An NZSTM locator (DSTM locator + `aborted_txn`).
pub struct Locator {
    owner: Arc<TxnDesc>,
    /// The unresponsive transaction this inflation chain is waiting out.
    aborted_txn: Arc<TxnDesc>,
    /// Value before `owner`; current logical value while `owner` is
    /// active or aborted.
    old_data: Arc<WordBuf>,
    /// Speculative value written by `owner`; becomes the logical value
    /// when `owner` commits.
    new_data: Arc<WordBuf>,
}

impl Locator {
    pub fn new(
        owner: Arc<TxnDesc>,
        aborted_txn: Arc<TxnDesc>,
        old_data: Arc<WordBuf>,
        new_data: Arc<WordBuf>,
    ) -> Self {
        debug_assert_eq!(old_data.len(), new_data.len());
        Locator { owner, aborted_txn, old_data, new_data }
    }

    pub fn owner(&self) -> &TxnDesc {
        &self.owner
    }

    pub fn owner_arc(&self) -> &Arc<TxnDesc> {
        &self.owner
    }

    pub fn aborted_txn(&self) -> &TxnDesc {
        &self.aborted_txn
    }

    pub fn aborted_txn_arc(&self) -> &Arc<TxnDesc> {
        &self.aborted_txn
    }

    pub fn old_data(&self) -> &Arc<WordBuf> {
        &self.old_data
    }

    pub fn new_data(&self) -> &Arc<WordBuf> {
        &self.new_data
    }

    /// The buffer currently holding the object's **logical value**, per
    /// the DSTM rule: `new_data` if the locator's owner committed,
    /// `old_data` otherwise (active or aborted).
    pub fn current_data(&self) -> &Arc<WordBuf> {
        match self.owner.status() {
            Status::Committed => &self.new_data,
            Status::Active | Status::Aborted => &self.old_data,
        }
    }

    /// Whether the inflation chain can be collapsed: the unresponsive
    /// transaction has finally acknowledged its abort (§2.3.1 deflation
    /// precondition).
    pub fn deflatable(&self) -> bool {
        self.aborted_txn.status() == Status::Aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bufs(v_old: u64, v_new: u64) -> (Arc<WordBuf>, Arc<WordBuf>) {
        let old = WordBuf::zeroed(1);
        old.words()[0].store(v_old, std::sync::atomic::Ordering::Relaxed);
        let new = WordBuf::zeroed(1);
        new.words()[0].store(v_new, std::sync::atomic::Ordering::Relaxed);
        (old, new)
    }

    #[test]
    fn current_data_follows_owner_status() {
        let owner = Arc::new(TxnDesc::new(0, 0));
        let aborted = Arc::new(TxnDesc::new(1, 0));
        let (old, new) = bufs(10, 20);
        let loc = Locator::new(Arc::clone(&owner), aborted, old, new);

        // Active owner: logical value is old.
        assert_eq!(loc.current_data().words()[0].load(std::sync::atomic::Ordering::Relaxed), 10);

        // Committed owner: logical value flips to new.
        assert!(owner.try_commit());
        assert_eq!(loc.current_data().words()[0].load(std::sync::atomic::Ordering::Relaxed), 20);
    }

    #[test]
    fn aborted_owner_keeps_old_value() {
        let owner = Arc::new(TxnDesc::new(0, 0));
        let aborted = Arc::new(TxnDesc::new(1, 0));
        let (old, new) = bufs(10, 20);
        let loc = Locator::new(Arc::clone(&owner), aborted, old, new);
        owner.acknowledge_abort();
        assert_eq!(loc.current_data().words()[0].load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn deflatable_tracks_unresponsive_ack() {
        let owner = Arc::new(TxnDesc::new(0, 0));
        let unresponsive = Arc::new(TxnDesc::new(1, 0));
        unresponsive.request_abort();
        let (old, new) = bufs(1, 2);
        let loc = Locator::new(owner, Arc::clone(&unresponsive), old, new);
        assert!(!loc.deflatable(), "not yet acknowledged");
        unresponsive.acknowledge_abort();
        assert!(loc.deflatable());
    }
}
