//! The `NZObject`: collocated metadata + in-place data (paper Figure 1).
//!
//! Layout, in declaration order (all inline, no indirection to reach the
//! data):
//!
//! ```text
//! +-----------------+  \
//! | Owner (tagged)  |   |
//! | Backup Data ptr |   |  metadata words
//! | Readers bitmap  |   |
//! | Version         |  /
//! | Data word 0     |  \
//! | ...             |   |  data, in place, at a fixed offset
//! | Data word N-1   |  /
//! +-----------------+
//! ```
//!
//! * **Owner** — `0` when unowned; a pointer to the last acquiring
//!   [`TxnDesc`] when the low bit is clear; a pointer to a
//!   [`Locator`] with the low bit set when the
//!   object has been *inflated* (paper Figure 2: "The Owner's low order
//!   bit indicates how the object is interpreted").
//! * **Backup Data** — points to the backup copy created by the last
//!   acquiring writer; restored lazily if that writer aborted. Backup
//!   buffers come from a per-thread pool and are reclaimed by successful
//!   committers, reproducing the cache-locality property of §4.4.2.
//! * **Readers** — visible-reader indicator, the read-sharing mechanism
//!   referenced in §2/§2.4. Up to 64 threads it is the paper's inline
//!   bitmap word; wider systems switch to a striped
//!   [`crate::readers::ReaderIndicator`] whose summary word lives here
//!   and whose per-stripe words take separate cache lines.
//! * **Version** — bumped on each exclusive acquisition; only consumed by
//!   the invisible-reader *extension*, ignored by the paper's algorithms.
//! * **Clone()** — the paper stores a clone-function pointer; in Rust the
//!   role is played by the `TmData` impl, monomorphized away.
//!
//! ## Pointer discipline
//!
//! The owner and backup words hold raw pointers that each carry one
//! strong `Arc` count. Whoever removes a pointer from a field (CAS)
//! becomes responsible for that count and **defers** the drop through
//! `crossbeam-epoch`, so any thread that loaded the pointer under an
//! epoch pin can still dereference it safely. This is the Rust-sound
//! replacement for the C original's leak-or-GC discipline.

use crate::data::{TmData, WordArray};
use crate::locator::Locator;
use crate::readers::ReaderIndicator;
use crate::topology::Placement;
use crate::txn::TxnDesc;
use nztm_epoch::Guard;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Memory-layout directives for object allocation. Engines build one
/// from their configuration ([`crate::NzConfig`]) and thread it through
/// [`NZObject::new_with_layout`]; the default reproduces the seed
/// layout exactly.
#[derive(Clone)]
pub struct ObjectLayout {
    /// Reader-indicator capacity in threads (≤ 64 keeps the paper's
    /// inline bitmap).
    pub reader_capacity: usize,
    /// Topology placement for striped reader indicators (`None` =
    /// legacy interleaved striping; see [`crate::topology`]).
    pub placement: Option<Arc<Placement>>,
    /// Reserve lines for the object's backup copy *inside* the object's
    /// own synthetic block, directly after the data words, and keep a
    /// resident buffer bound to them. Off by default: backups then come
    /// from the per-thread pool at whatever lines the pool's buffers
    /// were born at (the seed behaviour).
    pub colocate_backup: bool,
}

impl Default for ObjectLayout {
    fn default() -> Self {
        ObjectLayout {
            reader_capacity: crate::readers::FLAT_CAPACITY,
            placement: None,
            colocate_backup: false,
        }
    }
}

// Monomorphic release functions for the epoch's allocation-free
// `defer_fn` path: the argument is a raw pointer (one strong count)
// smuggled as a word. These run on the hot path's behalf millions of
// times; boxing a closure for each would reintroduce a per-access heap
// allocation.
pub(crate) unsafe fn release_txn_arc(arg: u64) {
    unsafe { drop(Arc::from_raw(arg as *const TxnDesc)) };
}
pub(crate) unsafe fn release_locator_arc(arg: u64) {
    unsafe { drop(Arc::from_raw(arg as *const Locator)) };
}
pub(crate) unsafe fn release_wordbuf_arc(arg: u64) {
    unsafe { drop(Arc::from_raw(arg as *const WordBuf)) };
}

/// A reference-counted buffer of atomic words (backup copies, locator
/// old/new data). Contents are mutated only by the buffer's current
/// logical owner; stale readers may race on the words (benign — they
/// validate afterwards).
///
/// The word storage is 64-byte aligned and padded to whole cache lines,
/// so a buffer never shares a host line with another allocation — the
/// property the simulator's deterministic line translation relies on.
pub struct WordBuf {
    ptr: std::ptr::NonNull<AtomicU64>,
    /// Allocated capacity in words: a power of two, ≥ 8 (one cache
    /// line). Capacity — not length — determines the allocation layout
    /// and the engine pool's size class, so a recycled buffer can serve
    /// any object whose word count fits the class.
    cap: usize,
    /// Current logical length, ≤ `cap`. Atomic because an epoch-pinned
    /// *stale* reader may still call `words()` while the pool resizes a
    /// recycled buffer for its next life; the reader's slice stays within
    /// `cap` either way, and its contents are discarded by revalidation.
    len: AtomicUsize,
    synth: usize,
    /// Raw pointer (one strong `Arc` count) to the transaction that
    /// *installed* this buffer as an object's backup; 0 = none. Needed
    /// to close a subtle stale-backup race: after a committed owner's
    /// backup-detach races with a new acquirer, the backup field can
    /// transiently point at a buffer whose contents predate the
    /// committed value. The rule (`usable_as_backup`): a backup may be
    /// restored **only if its installer did not commit** — a committed
    /// installer's value lives in the in-place data, making the buffer
    /// stale; an active or aborted installer's buffer holds the
    /// pre-transaction (still logical) value.
    installer: AtomicU64,
}

unsafe impl Send for WordBuf {}
unsafe impl Sync for WordBuf {}

impl WordBuf {
    /// Word capacity backing a buffer of logical length `len`: next power
    /// of two, floored at 8 words (one 64-byte line). Power-of-two
    /// capacities are what make the engine's size-class pool exact.
    pub fn cap_for(len: usize) -> usize {
        len.max(1).next_power_of_two().max(8)
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(cap * 8, 64).expect("valid WordBuf layout")
    }

    pub fn zeroed(len: usize) -> Arc<Self> {
        Self::zeroed_at(len, nztm_sim::synth_alloc_as(Self::cap_for(len) * 8, nztm_sim::StructClass::WordBufs))
    }

    /// A zeroed buffer charged at the caller-provided synthetic address
    /// (backup colocation: the address points into the owning object's
    /// own block, so backup traffic lands on lines adjacent to the
    /// data it shadows).
    pub(crate) fn zeroed_at(len: usize, synth: usize) -> Arc<Self> {
        let cap = Self::cap_for(len);
        // Safety: AtomicU64 is valid when zero-initialized.
        let ptr = unsafe { std::alloc::alloc_zeroed(Self::layout(cap)) } as *mut AtomicU64;
        let ptr = std::ptr::NonNull::new(ptr).expect("WordBuf allocation failed");
        Arc::new(WordBuf {
            ptr,
            cap,
            len: AtomicUsize::new(len),
            synth,
            installer: AtomicU64::new(0),
        })
    }

    pub fn from_words(src: &[AtomicU64]) -> Arc<Self> {
        let buf = Self::zeroed(src.len());
        crate::data::copy_words(buf.words(), src);
        buf
    }

    pub fn words(&self) -> &[AtomicU64] {
        // The length is loaded once, so the slice is internally
        // consistent and bounded by `cap` even if a pool resize races
        // (see the `len` field docs).
        let len = self.len.load(Ordering::Relaxed);
        debug_assert!(len <= self.cap);
        // Safety: `ptr` is valid for `cap ≥ len` initialized atomics for
        // the lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), len) }
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated capacity in words (power of two, ≥ 8).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Retarget a recycled buffer to logical length `len` (≤ `cap`).
    /// Called by the engine's size-class pool when handing the buffer to
    /// a new backup of a different word count; contents are overwritten
    /// by the subsequent copy before the buffer is published.
    pub(crate) fn set_len(&self, len: usize) {
        assert!(len <= self.cap, "set_len beyond capacity");
        self.len.store(len, Ordering::Relaxed);
    }

    /// Synthetic address used for cache-model charging.
    pub fn addr(&self) -> usize {
        self.synth
    }

    /// Record `me` as this buffer's installer (adopting the buffer as
    /// `me`'s backup). Swaps in a fresh strong count; the displaced
    /// installer's count is released through the epoch because stale
    /// readers may be dereferencing it concurrently.
    pub fn set_installer(&self, me: &Arc<TxnDesc>, guard: &Guard) {
        let new_raw = Arc::into_raw(Arc::clone(me)) as u64;
        let old = self.installer.swap(new_raw, Ordering::SeqCst);
        if old != 0 {
            unsafe { guard.defer_fn(release_txn_arc, old) };
        }
    }

    /// The installer's current status, if an installer is recorded.
    /// Requires an epoch pin (the installer count may be swapped out and
    /// deferred concurrently).
    pub fn installer_status(&self, _guard: &Guard) -> Option<crate::txn::Status> {
        let raw = self.installer.load(Ordering::SeqCst);
        if raw == 0 {
            None
        } else {
            Some(unsafe { &*(raw as *const TxnDesc) }.status())
        }
    }

    /// Whether this buffer may be restored as a backup: its installer
    /// must not have committed (see the `installer` field docs).
    pub fn usable_as_backup(&self, guard: &Guard) -> bool {
        !matches!(self.installer_status(guard), Some(crate::txn::Status::Committed))
    }
}

impl Drop for WordBuf {
    fn drop(&mut self) {
        let raw = *self.installer.get_mut();
        if raw != 0 {
            unsafe { drop(Arc::from_raw(raw as *const TxnDesc)) };
        }
        unsafe { std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
    }
}

/// What the owner word currently holds. Borrowed views are valid for the
/// lifetime of the epoch guard they were loaded under.
pub enum OwnerRef<'g> {
    /// Unowned (`NULL` owner).
    None,
    /// Owned by a transaction; `raw` is the exact word value for CAS.
    Txn(&'g TxnDesc, u64),
    /// Inflated; `raw` is the exact word value for CAS (tag bit set).
    Inflated(&'g Locator, u64),
}

/// Low bit of the owner word marking a locator (inflated) pointer.
pub(crate) const INFLATED_TAG: u64 = 1;

/// The metadata head shared by every `NZObject<T>` (type-erased view).
pub struct NZHeader {
    owner: AtomicU64,
    backup: AtomicU64,
    readers: ReaderIndicator,
    version: AtomicU64,
    /// Synthetic base address of the whole object: the metadata words
    /// occupy `[synth, synth+32)` and the in-place data starts at
    /// `synth + 32` — so small objects' metadata and data share one
    /// cache line, the collocation property of Figure 1. A striped
    /// reader indicator's stripe array takes additional synthetic lines
    /// of its own (see [`ReaderIndicator`]).
    synth: usize,
}

impl Default for NZHeader {
    fn default() -> Self {
        NZHeader::with_synth(nztm_sim::synth_alloc_as(64, nztm_sim::StructClass::ObjHeaders))
    }
}

impl NZHeader {
    /// Build a header whose synthetic object base is `synth`, with the
    /// flat 64-thread reader indicator (the seed layout).
    pub fn with_synth(synth: usize) -> Self {
        NZHeader::with_synth_capacity(synth, crate::readers::FLAT_CAPACITY)
    }

    /// Build a header whose reader indicator can register up to
    /// `reader_capacity` threads. Capacities ≤ 64 keep the flat in-line
    /// bitmap; larger ones allocate a striped indicator.
    pub fn with_synth_capacity(synth: usize, reader_capacity: usize) -> Self {
        Self::with_synth_placement(synth, reader_capacity, None)
    }

    /// [`NZHeader::with_synth_capacity`] with a topology placement for
    /// the (striped) reader indicator; flat indicators ignore it.
    pub fn with_synth_placement(
        synth: usize,
        reader_capacity: usize,
        placement: Option<Arc<Placement>>,
    ) -> Self {
        NZHeader {
            owner: AtomicU64::new(0),
            backup: AtomicU64::new(0),
            readers: ReaderIndicator::with_placement(reader_capacity, synth, placement),
            version: AtomicU64::new(0),
            synth,
        }
    }
}

impl NZHeader {
    /// Synthetic address of the owner word (cache-model charging: the
    /// metadata words share the object's first line with the first data
    /// words — collocation is the point).
    pub fn addr(&self) -> usize {
        self.synth
    }

    /// Synthetic address of the in-place data (fixed offset 32 from the
    /// object base).
    pub fn data_synth(&self) -> usize {
        self.synth + 32
    }

    // ---- owner word ------------------------------------------------------

    /// Load the owner word and classify it.
    ///
    /// The `_guard` parameter enforces that the caller holds an epoch pin
    /// for as long as the returned references are used.
    pub fn owner<'g>(&self, _guard: &'g Guard) -> OwnerRef<'g> {
        let raw = self.owner.load(Ordering::SeqCst);
        if raw == 0 {
            OwnerRef::None
        } else if raw & INFLATED_TAG != 0 {
            let ptr = (raw & !INFLATED_TAG) as *const Locator;
            OwnerRef::Inflated(unsafe { &*ptr }, raw)
        } else {
            OwnerRef::Txn(unsafe { &*(raw as *const TxnDesc) }, raw)
        }
    }

    /// Raw owner word (for equality re-validation).
    pub fn owner_raw(&self) -> u64 {
        self.owner.load(Ordering::SeqCst)
    }

    /// CAS the owner word from `expected` to a transaction pointer,
    /// transferring one strong count of `new` into the field on success
    /// and deferring destruction of whatever `expected` referenced.
    pub fn cas_owner_to_txn(&self, expected: u64, new: &Arc<TxnDesc>, guard: &Guard) -> bool {
        let new_raw = Arc::into_raw(Arc::clone(new)) as u64;
        debug_assert_eq!(new_raw & 0b111, 0, "descriptor under-aligned");
        self.cas_owner_raw(expected, new_raw, guard)
    }

    /// CAS the owner word from `expected` to a locator pointer (tag bit
    /// set — the object becomes *inflated*).
    pub fn cas_owner_to_locator(&self, expected: u64, new: &Arc<Locator>, guard: &Guard) -> bool {
        let new_raw = Arc::into_raw(Arc::clone(new)) as u64;
        debug_assert_eq!(new_raw & 0b111, 0, "locator under-aligned");
        self.cas_owner_raw(expected, new_raw | INFLATED_TAG, guard)
    }

    /// CAS the owner word to NULL (used by the hybrid's hardware path to
    /// erase settled owners, §2.4).
    pub fn cas_owner_to_null(&self, expected: u64, guard: &Guard) -> bool {
        self.cas_owner_raw(expected, 0, guard)
    }

    fn cas_owner_raw(&self, expected: u64, new_raw: u64, guard: &Guard) -> bool {
        match self.owner.compare_exchange(expected, new_raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                defer_drop_owner_word(expected, guard);
                true
            }
            Err(_) => {
                // We still hold the strong count we minted for `new_raw`;
                // release it (nothing ever saw the pointer).
                drop_owner_word_now(new_raw);
                false
            }
        }
    }

    // ---- backup word -------------------------------------------------------

    /// Load the backup buffer, if any. Valid while the guard is held.
    pub fn backup<'g>(&self, _guard: &'g Guard) -> Option<(&'g WordBuf, u64)> {
        let raw = self.backup.load(Ordering::SeqCst);
        if raw == 0 {
            None
        } else {
            Some((unsafe { &*(raw as *const WordBuf) }, raw))
        }
    }

    pub fn backup_raw(&self) -> u64 {
        self.backup.load(Ordering::SeqCst)
    }

    /// Clone the backup buffer's `Arc`, if installed.
    ///
    /// Sound because the field's strong count cannot be released before
    /// the guard's pin ends (destruction is deferred through the same
    /// epoch), so the count is ≥ 1 while we increment it.
    pub fn backup_arc(&self, _guard: &Guard) -> Option<Arc<WordBuf>> {
        let raw = self.backup.load(Ordering::SeqCst);
        if raw == 0 {
            None
        } else {
            let ptr = raw as *const WordBuf;
            unsafe {
                Arc::increment_strong_count(ptr);
                Some(Arc::from_raw(ptr))
            }
        }
    }

    /// CAS the backup word, deferring destruction of the displaced buffer.
    /// On success the field owns one strong count of `new`.
    pub fn cas_backup(&self, expected: u64, new: Option<&Arc<WordBuf>>, guard: &Guard) -> bool {
        let new_raw = match new {
            Some(b) => Arc::into_raw(Arc::clone(b)) as u64,
            None => 0,
        };
        match self.backup.compare_exchange(expected, new_raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                if expected != 0 {
                    unsafe { guard.defer_fn(release_wordbuf_arc, expected) };
                }
                true
            }
            Err(_) => {
                if new_raw != 0 {
                    unsafe { drop(Arc::from_raw(new_raw as *const WordBuf)) };
                }
                false
            }
        }
    }

    /// Detach the backup buffer *without* dropping it, returning the
    /// owned `Arc` to the caller (commit-time reclamation into the
    /// thread-local pool, §4.4.2). Fails if the field changed.
    pub fn take_backup(&self, expected: u64) -> Option<Arc<WordBuf>> {
        if expected == 0 {
            return None;
        }
        if self
            .backup
            .compare_exchange(expected, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            Some(unsafe { Arc::from_raw(expected as *const WordBuf) })
        } else {
            None
        }
    }

    // ---- visible-reader indicator ------------------------------------------

    /// Register thread `tid` as a visible reader. Returns `true` when a
    /// striped indicator's summary word was also written (one extra RMW
    /// on [`NZHeader::addr`] for cost-charging callers).
    pub fn add_reader(&self, tid: usize) -> bool {
        self.readers.add(tid)
    }

    /// Deregister thread `tid`. Returns `true` when the registration was
    /// intact (bit still set, sticky summary bit still present) — the
    /// sanitizer treats `false` as a protocol violation.
    pub fn remove_reader(&self, tid: usize) -> bool {
        self.readers.remove(tid)
    }

    /// The object's reader indicator (enumeration, stripe addresses,
    /// occupancy queries).
    pub fn reader_indicator(&self) -> &ReaderIndicator {
        &self.readers
    }

    /// Synthetic address of the word `tid`'s reader registration RMWs:
    /// the header line itself in flat mode, `tid`'s stripe line when
    /// striped.
    pub fn reader_word_addr(&self, tid: usize) -> usize {
        self.readers.word_addr(tid)
    }

    /// True when a thread other than `self_tid` is a visible reader
    /// (the hybrid's hardware-writer check).
    pub fn has_reader_other_than(&self, self_tid: usize) -> bool {
        self.readers.has_reader_other_than(self_tid)
    }

    // ---- version (invisible-reader extension) --------------------------------

    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    pub fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
    }
}

impl Drop for NZHeader {
    fn drop(&mut self) {
        // Objects are dropped only when their pool/structure is dropped,
        // after all transactions finished; reclaim synchronously.
        drop_owner_word_now(*self.owner.get_mut());
        let b = *self.backup.get_mut();
        if b != 0 {
            unsafe { drop(Arc::from_raw(b as *const WordBuf)) };
        }
    }
}

fn defer_drop_owner_word(raw: u64, guard: &Guard) {
    if raw == 0 {
        return;
    }
    unsafe {
        if raw & INFLATED_TAG != 0 {
            guard.defer_fn(release_locator_arc, raw & !INFLATED_TAG);
        } else {
            guard.defer_fn(release_txn_arc, raw);
        }
    }
}

fn drop_owner_word_now(raw: u64) {
    if raw == 0 {
        return;
    }
    unsafe {
        if raw & INFLATED_TAG != 0 {
            drop(Arc::from_raw((raw & !INFLATED_TAG) as *const Locator));
        } else {
            drop(Arc::from_raw(raw as *const TxnDesc));
        }
    }
}

/// A transactional object: header + in-place data words.
///
/// 64-byte aligned: the header words and the first data words share the
/// object's first cache line (collocation, Figure 1), and distinct
/// objects never share a line (determinism + the paper's padding).
#[repr(align(64))]
pub struct NZObject<T: TmData> {
    header: NZHeader,
    data: T::Words,
    /// Colocated-backup layouts only: a buffer bound to the reserved
    /// backup lines at the tail of this object's own synthetic block.
    /// The engine prefers it over the pool when creating this object's
    /// backup, so undo copies stay adjacent to the data they shadow.
    /// `Arc::strong_count == 1` ⇔ free (not installed anywhere, not in
    /// any pool).
    resident: Option<Arc<WordBuf>>,
}

impl<T: TmData> NZObject<T> {
    /// Allocate with the flat 64-thread reader indicator (the seed
    /// layout). Engines that may host more threads use
    /// [`NZObject::new_with_capacity`].
    pub fn new(init: T) -> Arc<Self> {
        Self::new_with_capacity(init, crate::readers::FLAT_CAPACITY)
    }

    /// Allocate with a reader indicator sized for `reader_capacity`
    /// threads. Capacities ≤ 64 are identical to [`NZObject::new`] —
    /// same layout, same synthetic-address consumption — so engines can
    /// thread their platform's thread count through unconditionally.
    pub fn new_with_capacity(init: T, reader_capacity: usize) -> Arc<Self> {
        Self::new_with_layout(init, &ObjectLayout { reader_capacity, ..ObjectLayout::default() })
    }

    /// Allocate under explicit [`ObjectLayout`] directives. The default
    /// layout is byte-identical (same synthetic-address consumption) to
    /// [`NZObject::new`].
    pub fn new_with_layout(init: T, layout: &ObjectLayout) -> Arc<Self> {
        let obj_bytes = 32 + T::n_words() * 8;
        // Colocated backup: reserve whole lines for the backup copy at
        // the tail of the same block, starting on its own line so backup
        // stores never invalidate a line the in-place data lives on.
        let backup_off = obj_bytes.div_ceil(64) * 64;
        let total =
            if layout.colocate_backup { backup_off + T::n_words() * 8 } else { obj_bytes };
        let base = nztm_sim::synth_alloc(total);
        // Attribution split: the first line holds the header words (plus
        // any data words collocated on it — the zero-indirection layout);
        // lines past it are pure data, then the backup region (charged
        // as word-buffer traffic, whatever its placement).
        nztm_sim::tag_synth_range(base, obj_bytes.min(64), nztm_sim::StructClass::ObjHeaders);
        if obj_bytes > 64 {
            nztm_sim::tag_synth_range(base + 64, obj_bytes - 64, nztm_sim::StructClass::ObjData);
        }
        let resident = layout.colocate_backup.then(|| {
            nztm_sim::tag_synth_range(
                base + backup_off,
                T::n_words() * 8,
                nztm_sim::StructClass::WordBufs,
            );
            WordBuf::zeroed_at(T::n_words(), base + backup_off)
        });
        let obj: NZObject<T> = NZObject {
            header: NZHeader::with_synth_placement(
                base,
                layout.reader_capacity,
                layout.placement.clone(),
            ),
            data: T::Words::new_zeroed(),
            resident,
        };
        let mut buf = vec![0u64; T::n_words()];
        init.encode(&mut buf);
        crate::data::write_words(obj.data.words(), &buf);
        Arc::new(obj)
    }

    pub fn header(&self) -> &NZHeader {
        &self.header
    }

    /// In-place data words.
    pub fn data_words(&self) -> &[AtomicU64] {
        self.data.words()
    }

    /// Synthetic address of the first data word (cache charging).
    pub fn data_addr(&self) -> usize {
        self.header.data_synth()
    }

    /// The colocated resident backup buffer, when this object was
    /// allocated with [`ObjectLayout::colocate_backup`].
    pub fn resident_backup(&self) -> Option<&Arc<WordBuf>> {
        self.resident.as_ref()
    }

    /// Non-transactional read of the object's **logical** value, derived
    /// exactly as the algorithm derives it: the locator's current buffer
    /// when inflated; the backup under a live or (usably) aborted owner;
    /// otherwise the in-place data. Only safe to *trust* when no
    /// transactions are running (setup/verification) — e.g. at the end
    /// of a run, an object still owned by an aborted transaction holds
    /// dirty in-place words whose undo is pending lazy restore.
    pub fn read_untracked(&self) -> T {
        let guard = nztm_epoch::pin();
        let mut buf = vec![0u64; T::n_words()];
        match self.header.owner(&guard) {
            OwnerRef::Inflated(loc, _) => {
                crate::data::snapshot_words(loc.current_data().words(), &mut buf);
            }
            OwnerRef::Txn(t, _) if t.status() != crate::txn::Status::Committed => {
                match self.header.backup(&guard).filter(|(b, _)| b.usable_as_backup(&guard)) {
                    Some((b, _)) => crate::data::snapshot_words(b.words(), &mut buf),
                    None => crate::data::snapshot_words(self.data.words(), &mut buf),
                }
            }
            _ => crate::data::snapshot_words(self.data.words(), &mut buf),
        }
        T::decode(&buf)
    }
}

/// Type-erased view of an `NZObject<T>`, stored in transaction read/write
/// sets.
pub trait NzObjAny: Send + Sync {
    fn header(&self) -> &NZHeader;
    fn data_words(&self) -> &[AtomicU64];
    fn data_addr(&self) -> usize;
    /// Colocated resident backup buffer, if the layout reserved one.
    fn resident_backup(&self) -> Option<&Arc<WordBuf>>;
}

impl<T: TmData> NzObjAny for NZObject<T> {
    fn header(&self) -> &NZHeader {
        &self.header
    }
    fn data_words(&self) -> &[AtomicU64] {
        self.data.words()
    }
    fn data_addr(&self) -> usize {
        self.header.data_synth()
    }
    fn resident_backup(&self) -> Option<&Arc<WordBuf>> {
        self.resident.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Status;

    fn desc() -> Arc<TxnDesc> {
        Arc::new(TxnDesc::new(0, 0))
    }

    #[test]
    fn new_object_is_unowned_and_holds_init() {
        let o = NZObject::new(42u64);
        let g = nztm_epoch::pin();
        assert!(matches!(o.header().owner(&g), OwnerRef::None));
        assert_eq!(o.read_untracked(), 42);
        assert_eq!(o.header().reader_indicator().reader_count(), 0);
    }

    #[test]
    fn cas_owner_installs_and_reads_back() {
        let o = NZObject::new(1u64);
        let d = desc();
        let g = nztm_epoch::pin();
        assert!(o.header().cas_owner_to_txn(0, &d, &g));
        match o.header().owner(&g) {
            OwnerRef::Txn(t, _) => {
                assert_eq!(t.status(), Status::Active);
                assert!(std::ptr::eq(t, Arc::as_ptr(&d).cast()));
            }
            _ => panic!("expected txn owner"),
        }
    }

    #[test]
    fn cas_owner_fails_on_stale_expected() {
        let o = NZObject::new(1u64);
        let d1 = desc();
        let d2 = desc();
        let g = nztm_epoch::pin();
        assert!(o.header().cas_owner_to_txn(0, &d1, &g));
        assert!(!o.header().cas_owner_to_txn(0, &d2, &g), "stale expected must fail");
        // d2's refcount was not leaked: dropping d2 here must free it
        // (checked by loom-free logic: strong count back to 1).
        assert_eq!(Arc::strong_count(&d2), 1);
    }

    #[test]
    fn owner_replacement_keeps_old_alive_until_epoch() {
        let o = NZObject::new(1u64);
        let d1 = desc();
        let d2 = desc();
        let g = nztm_epoch::pin();
        assert!(o.header().cas_owner_to_txn(0, &d1, &g));
        let raw1 = o.header().owner_raw();
        assert!(o.header().cas_owner_to_txn(raw1, &d2, &g));
        // d1's field count is deferred, not dropped: still ≥ 2 in the
        // worst case, and definitely not 0 — we can still use d1.
        assert_eq!(d1.status(), Status::Active);
        match o.header().owner(&g) {
            OwnerRef::Txn(t, _) => assert!(std::ptr::eq(t, Arc::as_ptr(&d2).cast())),
            _ => panic!(),
        }
    }

    #[test]
    fn locator_tagging_round_trips() {
        let o = NZObject::new(5u64);
        let d = desc();
        let aborted = desc();
        let g = nztm_epoch::pin();
        let old = WordBuf::from_words(o.data_words());
        let new = WordBuf::from_words(o.data_words());
        let loc = Arc::new(Locator::new(Arc::clone(&d), Arc::clone(&aborted), old, new));
        assert!(o.header().cas_owner_to_locator(0, &loc, &g));
        match o.header().owner(&g) {
            OwnerRef::Inflated(l, raw) => {
                assert_eq!(raw & 1, 1, "tag bit set");
                assert!(std::ptr::eq(l.owner(), Arc::as_ptr(&d).cast()));
            }
            _ => panic!("expected inflated"),
        }
    }

    #[test]
    fn backup_install_take_cycle() {
        let o = NZObject::new(7u64);
        let g = nztm_epoch::pin();
        let buf = WordBuf::from_words(o.data_words());
        assert!(o.header().cas_backup(0, Some(&buf), &g));
        let raw = o.header().backup_raw();
        assert_ne!(raw, 0);
        let (b, braw) = o.header().backup(&g).unwrap();
        assert_eq!(braw, raw);
        assert_eq!(b.words()[0].load(Ordering::Relaxed), 7);
        // Take it back (commit-time reclamation).
        let taken = o.header().take_backup(raw).unwrap();
        assert_eq!(taken.words()[0].load(Ordering::Relaxed), 7);
        assert!(o.header().backup(&g).is_none());
        // Second take fails.
        assert!(o.header().take_backup(raw).is_none());
    }

    #[test]
    fn reader_bitmap_set_clear() {
        let o = NZObject::new(0u64);
        let h = o.header();
        assert!(!h.add_reader(3), "flat mode has no separate summary word");
        assert!(!h.add_reader(5));
        let ind = h.reader_indicator();
        assert!(!ind.is_striped());
        assert!(ind.is_reader(3) && ind.is_reader(5));
        assert_eq!(ind.reader_count(), 2);
        assert!(h.has_reader_other_than(3));
        assert!(h.remove_reader(3));
        assert!(ind.is_reader(5) && !ind.is_reader(3));
        assert!(h.remove_reader(5));
        assert_eq!(ind.reader_count(), 0);
        assert_eq!(h.reader_word_addr(9), h.addr(), "flat registrations charge the header line");
    }

    #[test]
    fn wide_objects_stripe_readers_past_64_threads() {
        let o = NZObject::new_with_capacity(0u64, 128);
        let h = o.header();
        let ind = h.reader_indicator();
        assert!(ind.is_striped());
        assert_eq!(ind.capacity(), 128);
        assert!(!h.has_reader_other_than(0));
        h.add_reader(7);
        h.add_reader(100);
        assert!(h.has_reader_other_than(7));
        assert!(h.remove_reader(100));
        assert!(h.remove_reader(7));
        assert!(!h.has_reader_other_than(usize::from(u8::MAX) % 128));
        // The stripe array takes its own synthetic lines, disjoint from
        // the header/data lines.
        assert_ne!(h.reader_word_addr(0) >> 6, h.addr() >> 6);
        assert_ne!(h.reader_word_addr(1) >> 6, h.reader_word_addr(0) >> 6);
    }

    #[derive(Clone)]
    struct Wide([u64; 12]);
    impl TmData for Wide {
        type Words = [AtomicU64; 12];
        fn encode(&self, out: &mut [u64]) {
            out.copy_from_slice(&self.0);
        }
        fn decode(words: &[u64]) -> Self {
            let mut a = [0u64; 12];
            a.copy_from_slice(words);
            Wide(a)
        }
    }

    #[test]
    fn colocated_backup_lives_in_the_object_block() {
        let layout = ObjectLayout { colocate_backup: true, ..ObjectLayout::default() };
        let o = NZObject::new_with_layout(Wide([1; 12]), &layout);
        let b = o.resident_backup().expect("layout reserved a resident backup");
        // Object lines: header+data = 32 + 96 = 128 bytes → 2 lines;
        // the backup starts exactly on the next line of the same block.
        assert_eq!(b.addr(), o.header().addr() + 128);
        assert_eq!(b.len(), 12);
        assert_eq!(Arc::strong_count(b), 1, "resident buffer starts free");
        // Default layout reserves nothing.
        let plain = NZObject::new(Wide([1; 12]));
        assert!(plain.resident_backup().is_none());
    }

    #[test]
    fn default_layout_is_seed_identical() {
        // Allocating via the layout path must consume exactly the same
        // synthetic lines as the plain constructor: equal strides
        // between consecutive objects.
        let a = NZObject::new(7u64);
        let b = NZObject::new(7u64);
        let c = NZObject::new_with_layout(7u64, &ObjectLayout::default());
        let d = NZObject::new_with_layout(7u64, &ObjectLayout::default());
        assert_eq!(
            b.header().addr() - a.header().addr(),
            d.header().addr() - c.header().addr()
        );
        assert_eq!(c.data_addr(), c.header().addr() + 32);
    }

    #[test]
    fn version_bumps() {
        let o = NZObject::new(0u64);
        assert_eq!(o.header().version(), 0);
        o.header().bump_version();
        o.header().bump_version();
        assert_eq!(o.header().version(), 2);
    }

    #[test]
    fn data_is_at_fixed_offset_after_header() {
        // Zero indirection: the synthetic data address sits at a fixed
        // offset from the header, on the same cache line for small
        // objects (collocation, Figure 1).
        let o = NZObject::new(9u64);
        assert_eq!(o.data_addr(), o.header().addr() + 32);
        assert_eq!(o.data_addr() >> 6, o.header().addr() >> 6, "same line");
        // And the host layout is genuinely inline: the data array lives
        // inside the object allocation.
        let base = &*o as *const NZObject<u64> as usize;
        let host_data = o.data_words().as_ptr() as usize;
        assert!(host_data > base && host_data - base < std::mem::size_of::<NZObject<u64>>());
    }

    #[test]
    fn header_drop_releases_owner_and_backup() {
        let d = desc();
        {
            let o = NZObject::new(1u64);
            let g = nztm_epoch::pin();
            assert!(o.header().cas_owner_to_txn(0, &d, &g));
            let buf = WordBuf::from_words(o.data_words());
            assert!(o.header().cas_backup(0, Some(&buf), &g));
            drop(o);
        }
        // The object's strong count on d was released synchronously.
        assert_eq!(Arc::strong_count(&d), 1);
    }

    #[test]
    fn wordbuf_capacity_is_a_pow2_size_class() {
        let b = WordBuf::zeroed(1);
        assert_eq!((b.len(), b.cap()), (1, 8), "min class is one line");
        let b = WordBuf::zeroed(9);
        assert_eq!((b.len(), b.cap()), (9, 16));
        b.set_len(3);
        assert_eq!(b.words().len(), 3);
        b.set_len(16);
        assert_eq!(b.words().len(), 16, "resizable up to cap");
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn wordbuf_set_len_beyond_cap_panics() {
        WordBuf::zeroed(4).set_len(9);
    }

    #[test]
    fn wordbuf_from_words_copies() {
        let o = NZObject::new(11u64);
        let b = WordBuf::from_words(o.data_words());
        o.data_words()[0].store(99, Ordering::Relaxed);
        assert_eq!(b.words()[0].load(Ordering::Relaxed), 11, "backup is a copy");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
