//! Scalable visible-reader indicators.
//!
//! The paper's read-sharing design (§2.5) makes readers *visible*: a
//! reader publishes itself on the object before trusting any value, so a
//! writer can enumerate readers and request their aborts. The seed
//! implementation realized that as a single per-object `AtomicU64`
//! bitmap — one bit per thread — which hard-caps the system at 64
//! threads and funnels every first-read through one contended cache
//! line.
//!
//! [`ReaderIndicator`] removes both limits with an SNZI-flavored striped
//! layout while keeping the ≤64-thread configuration *bit-exact* with
//! the original word:
//!
//! * **Flat mode** (capacity ≤ 64): one `AtomicU64` in the object
//!   header's metadata line. The summary word *is* the bitmap; `add` /
//!   `remove` are the same single `fetch_or` / `fetch_and` the seed
//!   performed, at the same synthetic address, so the simulator's cache
//!   traffic — and therefore every committed benchmark baseline — is
//!   unchanged by construction.
//! * **Striped mode** (capacity > 64): a boxed array of cache-padded
//!   reader words. Thread `tid` lives in stripe `tid & (S - 1)` at bit
//!   `tid >> log2(S)` (`S` a power of two), so consecutive thread ids
//!   land on *different* cache lines and first-reads no longer collide.
//!   A **summary word** in the header keeps the writer fast path cheap:
//!   bit `s` set means "stripe `s` may hold readers", so a writer of an
//!   unread object still decides with one load.
//!
//! ## Why the summary bits are sticky
//!
//! Summary bits are **monotonic**: a reader sets its stripe's summary
//! bit (if not already set) but *nothing ever clears it*. The only
//! correctness obligation on the summary is that a writer must never
//! miss a registered reader; a stale `1` merely costs the writer one
//! extra stripe load that finds zero. Clearing schemes were considered
//! and rejected: any remover- or writer-driven clear needs a
//! clear→recheck→re-set dance that loses a concurrently arriving reader
//! when the clearing thread stalls between steps (and NZTM explicitly
//! allows threads to stall anywhere — ownership can even be stolen past
//! them via inflation). Monotonicity makes the summary race-free by
//! construction; see `docs/PROTOCOL.md` ("Visible reads") for the full
//! ordering argument.
//!
//! All operations are `SeqCst`, like every other piece of NZTM
//! metadata: the reader-registration / owner-examination Dekker protocol
//! (reader: publish bit → load owner; writer: CAS owner → enumerate
//! readers) relies on a single total order of metadata operations.

use crate::topology::Placement;
use crate::util::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capacity of the flat (single-word) representation.
pub const FLAT_CAPACITY: usize = 64;

/// How striped mode assigns a thread to a (stripe, bit) position.
/// Irrelevant in flat mode (≤ 64 threads: the seed's single bitmap).
enum StripeMap {
    /// The legacy mapping: `stripe = tid mod S`, `bit = tid div S`.
    /// Adjacent tids land on different cache lines — best when core
    /// numbering is arbitrary, worst on round-robin NUMA enumerations
    /// (every stripe line is shared by every node).
    Interleaved,
    /// Topology-grouped: `stripe = place / 64`, `bit = place mod 64`,
    /// where `place` is the thread's [`Placement`] index. Same-node
    /// threads fill whole stripes before spilling to the next, so a
    /// stripe line is written by one node only.
    Grouped(Arc<Placement>),
}

/// A visible-reader set supporting an arbitrary, fixed thread capacity.
///
/// See the module docs for the two representations. The indicator knows
/// its own synthetic addresses (for the simulator's cache model): the
/// summary word lives at `home_addr` — inside the owning header's
/// metadata line — and each stripe occupies its own synthetic line.
pub struct ReaderIndicator {
    /// Flat mode: the reader bitmap itself. Striped mode: sticky
    /// stripe-presence bits (bit `s` ⇒ stripe `s` may hold readers).
    summary: AtomicU64,
    /// Empty in flat mode; one padded word per stripe otherwise.
    stripes: Box<[CachePadded<AtomicU64>]>,
    /// `log2(stripes.len())` in striped mode; 0 in flat mode.
    stripe_shift: u32,
    /// Maximum `tid` is `capacity - 1`.
    capacity: usize,
    /// Synthetic address of the summary word (the owning header's
    /// metadata line).
    home_addr: usize,
    /// Synthetic base address of the stripe array (one line per stripe);
    /// 0 in flat mode.
    stripes_addr: usize,
    /// Thread → (stripe, bit) assignment policy (striped mode only).
    map: StripeMap,
}

impl ReaderIndicator {
    /// Build an indicator able to register tids `0..capacity`.
    ///
    /// `home_addr` is the synthetic address charged for summary-word
    /// traffic (callers pass the owning header's address so flat mode
    /// charges exactly what the seed's inline bitmap did). Capacities
    /// ≤ 64 use the flat representation; larger capacities round the
    /// stripe count up to the next power of two and take fresh synthetic
    /// lines for the stripe array.
    pub fn new(capacity: usize, home_addr: usize) -> ReaderIndicator {
        Self::with_placement(capacity, home_addr, None)
    }

    /// Like [`ReaderIndicator::new`], but a `Some` placement switches
    /// striped mode to the topology-grouped stripe mapping (same-node
    /// threads share stripe lines; see [`crate::topology`]). Flat mode
    /// (capacity ≤ 64) ignores the placement entirely — the single
    /// bitmap word has no lines to place, and stays bit-exact with the
    /// seed under any topology.
    pub fn with_placement(
        capacity: usize,
        home_addr: usize,
        placement: Option<Arc<Placement>>,
    ) -> ReaderIndicator {
        let capacity = capacity.max(1);
        if capacity <= FLAT_CAPACITY {
            return ReaderIndicator {
                summary: AtomicU64::new(0),
                stripes: Box::new([]),
                stripe_shift: 0,
                capacity: FLAT_CAPACITY,
                home_addr,
                stripes_addr: 0,
                map: StripeMap::Interleaved,
            };
        }
        let n_stripes = capacity.div_ceil(FLAT_CAPACITY).next_power_of_two().min(64);
        let stripes_addr =
            nztm_sim::synth_alloc_as(n_stripes * 64, nztm_sim::StructClass::ReaderStripes);
        ReaderIndicator {
            summary: AtomicU64::new(0),
            stripes: (0..n_stripes).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            stripe_shift: n_stripes.trailing_zeros(),
            capacity: n_stripes * FLAT_CAPACITY,
            home_addr,
            stripes_addr,
            map: match placement {
                Some(p) => StripeMap::Grouped(p),
                None => StripeMap::Interleaved,
            },
        }
    }

    /// Registered-thread capacity (a multiple of 64).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when the wide (striped) representation is in use.
    pub fn is_striped(&self) -> bool {
        !self.stripes.is_empty()
    }

    /// Number of stripes (0 in flat mode).
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    #[inline]
    fn split(&self, tid: usize) -> (usize, u64) {
        // Hard assert: silently aliasing an out-of-capacity tid onto
        // another thread's bit would make removal unsound.
        assert!(tid < self.capacity, "tid {tid} exceeds reader capacity {}", self.capacity);
        match &self.map {
            StripeMap::Interleaved => {
                let stripe = tid & (self.stripes.len() - 1);
                (stripe, 1u64 << (tid >> self.stripe_shift))
            }
            StripeMap::Grouped(p) => {
                // `index_of` is a bijection on tids < capacity (identity
                // past the placement's length), so place < capacity and
                // place / 64 < n_stripes.
                let place = p.index_of(tid);
                (place >> 6, 1u64 << (place & 63))
            }
        }
    }

    /// Inverse of [`ReaderIndicator::split`]: the tid registered at
    /// stripe `s`, bit position `slot`.
    #[inline]
    fn unsplit(&self, s: usize, slot: usize) -> usize {
        match &self.map {
            StripeMap::Interleaved => (slot << self.stripe_shift) | s,
            StripeMap::Grouped(p) => p.tid_at((s << 6) | slot),
        }
    }

    /// Synthetic address of the word `tid`'s registration RMWs touch:
    /// the summary/home line in flat mode, the thread's stripe line
    /// otherwise.
    #[inline]
    pub fn word_addr(&self, tid: usize) -> usize {
        if self.stripes.is_empty() {
            self.home_addr
        } else {
            self.stripes_addr + self.split(tid).0 * 64
        }
    }

    /// Synthetic address of the summary word.
    #[inline]
    pub fn summary_addr(&self) -> usize {
        self.home_addr
    }

    /// Synthetic address of stripe `s` (striped mode only).
    pub fn stripe_addr(&self, s: usize) -> usize {
        debug_assert!(s < self.stripes.len());
        self.stripes_addr + s * 64
    }

    /// Register `tid` as a reader. Returns `true` when the (striped)
    /// summary word was also updated — callers charging a cost model
    /// charge one extra RMW on [`Self::summary_addr`] in that case.
    ///
    /// Ordering: the registration `fetch_or` and the summary `fetch_or`
    /// both precede the caller's subsequent owner load in the `SeqCst`
    /// total order, which is the reader half of the Dekker protocol.
    #[inline]
    pub fn add(&self, tid: usize) -> bool {
        if self.stripes.is_empty() {
            assert!(tid < FLAT_CAPACITY, "tid {tid} needs a striped reader indicator");
            self.summary.fetch_or(1u64 << tid, Ordering::SeqCst);
            return false;
        }
        let (stripe, bit) = self.split(tid);
        self.stripes[stripe].fetch_or(bit, Ordering::SeqCst);
        let sbit = 1u64 << stripe;
        if self.summary.load(Ordering::SeqCst) & sbit == 0 {
            self.summary.fetch_or(sbit, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Deregister `tid`. Returns `true` when the registration was intact
    /// at removal: `tid`'s bit was still set and (striped mode) its
    /// stripe's sticky summary bit was still present. The sanitizer
    /// turns a `false` into a protocol violation — nothing in the
    /// protocol may clear another thread's reader bit, and summary bits
    /// are never cleared at all.
    #[inline]
    pub fn remove(&self, tid: usize) -> bool {
        if self.stripes.is_empty() {
            assert!(tid < FLAT_CAPACITY, "tid {tid} needs a striped reader indicator");
            let bit = 1u64 << tid;
            return self.summary.fetch_and(!bit, Ordering::SeqCst) & bit != 0;
        }
        let (stripe, bit) = self.split(tid);
        let was_set = self.stripes[stripe].fetch_and(!bit, Ordering::SeqCst) & bit != 0;
        was_set && self.summary.load(Ordering::SeqCst) & (1u64 << stripe) != 0
    }

    /// True if `tid` is currently registered.
    pub fn is_reader(&self, tid: usize) -> bool {
        if self.stripes.is_empty() {
            tid < FLAT_CAPACITY && self.summary.load(Ordering::SeqCst) & (1u64 << tid) != 0
        } else {
            let (stripe, bit) = self.split(tid);
            self.stripes[stripe].load(Ordering::SeqCst) & bit != 0
        }
    }

    /// Number of currently registered readers.
    pub fn reader_count(&self) -> usize {
        if self.stripes.is_empty() {
            self.summary.load(Ordering::SeqCst).count_ones() as usize
        } else {
            self.stripes.iter().map(|s| s.load(Ordering::SeqCst).count_ones() as usize).sum()
        }
    }

    /// True when no reader other than `self_tid` is registered.
    ///
    /// Writer fast path (used by the hybrid's hardware writers): one
    /// summary load answers "no readers at all"; only summary-flagged
    /// stripes are scanned otherwise.
    pub fn has_reader_other_than(&self, self_tid: usize) -> bool {
        let summary = self.summary.load(Ordering::SeqCst);
        if self.stripes.is_empty() {
            return summary & !(1u64 << self_tid) != 0;
        }
        if summary == 0 {
            return false;
        }
        let (own_stripe, own_bit) = self.split(self_tid);
        let mut rest = summary;
        while rest != 0 {
            let s = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let mut word = self.stripes[s].load(Ordering::SeqCst);
            if s == own_stripe {
                word &= !own_bit;
            }
            if word != 0 {
                return true;
            }
        }
        false
    }

    /// Enumerate registered readers other than `skip_tid`, scanning only
    /// summary-flagged stripes.
    ///
    /// The visitor receives a [`ReaderVisit::Stripe`] once per scanned
    /// stripe *before* that stripe's readers — the engine charges the
    /// stripe's cache line and records per-stripe contention attribution
    /// there — then a [`ReaderVisit::Reader`] per registered thread. In
    /// flat mode no stripe visit fires (the caller already charged the
    /// home line for the summary load, which is the whole bitmap).
    ///
    /// The scan is a snapshot per word, exactly like the seed's single
    /// `readers()` load: a reader registering concurrently with the scan
    /// either makes it into the loaded word or will observe the writer's
    /// prior owner CAS and revalidate out (the Dekker argument).
    pub fn visit_readers(&self, skip_tid: usize, mut visit: impl FnMut(ReaderVisit)) {
        let summary = self.summary.load(Ordering::SeqCst);
        if self.stripes.is_empty() {
            let mut mask = summary & !(1u64 << skip_tid);
            while mask != 0 {
                let t = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                visit(ReaderVisit::Reader { tid: t });
            }
            return;
        }
        let mut rest = summary;
        while rest != 0 {
            let s = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            visit(ReaderVisit::Stripe { index: s, addr: self.stripe_addr(s) });
            let mut word = self.stripes[s].load(Ordering::SeqCst);
            while word != 0 {
                let slot = word.trailing_zeros() as usize;
                word &= word - 1;
                let tid = self.unsplit(s, slot);
                if tid != skip_tid {
                    visit(ReaderVisit::Reader { tid });
                }
            }
        }
    }
}

/// One step of a [`ReaderIndicator::visit_readers`] scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReaderVisit {
    /// A summary-flagged stripe is about to be scanned; `addr` is its
    /// synthetic cache line (cost charging / contention attribution).
    Stripe { index: usize, addr: usize },
    /// A registered reader.
    Reader { tid: usize },
}

impl std::fmt::Debug for ReaderIndicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReaderIndicator")
            .field("capacity", &self.capacity)
            .field("stripes", &self.stripes.len())
            .field("summary", &self.summary.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn readers_of(r: &ReaderIndicator, skip: usize) -> Vec<usize> {
        let mut v = Vec::new();
        r.visit_readers(skip, |step| {
            if let ReaderVisit::Reader { tid } = step {
                v.push(tid);
            }
        });
        v.sort_unstable();
        v
    }

    #[test]
    fn flat_mode_matches_the_seed_bitmap() {
        let r = ReaderIndicator::new(8, 0x1000);
        assert!(!r.is_striped());
        assert_eq!(r.capacity(), 64);
        assert_eq!(r.word_addr(17), 0x1000, "flat registrations hit the home line");
        assert!(!r.add(3));
        assert!(!r.add(5));
        assert!(r.is_reader(3) && r.is_reader(5) && !r.is_reader(4));
        assert_eq!(r.reader_count(), 2);
        assert_eq!(readers_of(&r, 3), vec![5]);
        assert!(r.remove(3), "bit was set");
        assert!(!r.remove(3), "double-remove reports a lost registration");
        assert_eq!(readers_of(&r, usize::MAX & 63), vec![5]);
    }

    #[test]
    fn striped_mode_spreads_consecutive_tids() {
        let r = ReaderIndicator::new(128, 0x2000);
        assert!(r.is_striped());
        assert_eq!(r.n_stripes(), 2);
        assert_eq!(r.capacity(), 128);
        assert_ne!(r.word_addr(0), r.word_addr(1), "adjacent tids take different lines");
        assert_eq!(r.word_addr(0), r.word_addr(2), "stripe = tid mod S");
        assert_ne!(r.word_addr(0), r.summary_addr());
    }

    #[test]
    fn striped_add_remove_and_enumeration() {
        let r = ReaderIndicator::new(100, 0);
        for tid in [0usize, 1, 63, 64, 65, 99, 127] {
            assert!(!r.is_reader(tid));
            r.add(tid);
            assert!(r.is_reader(tid), "tid {tid}");
        }
        assert_eq!(r.reader_count(), 7);
        assert_eq!(readers_of(&r, 65), vec![0, 1, 63, 64, 99, 127]);
        assert!(r.has_reader_other_than(0));
        for tid in [0usize, 1, 63, 64, 99, 127] {
            assert!(r.remove(tid), "tid {tid} was registered with summary intact");
        }
        assert_eq!(readers_of(&r, usize::MAX >> 1 & 127), vec![65]);
        assert!(!r.has_reader_other_than(65));
        assert!(r.has_reader_other_than(64));
    }

    #[test]
    fn summary_bits_are_sticky_and_first_add_reports_them() {
        let r = ReaderIndicator::new(256, 0);
        assert!(r.add(5), "first reader of a stripe updates the summary");
        assert!(!r.add(5 + r.n_stripes()), "same stripe: summary already set");
        assert!(r.remove(5));
        assert!(!r.add(5), "summary bit is sticky: re-add after a drain never re-reports");
        // …and the sticky bit keeps the stripe visible to writers.
        let mut visited = Vec::new();
        r.visit_readers(usize::MAX & 63, |step| {
            if let ReaderVisit::Reader { tid } = step {
                visited.push(tid);
            }
        });
        assert_eq!(visited, vec![5, 9], "tid 5 re-added, tid 9 (= 5 + n_stripes) never left");
    }

    #[test]
    fn empty_summary_short_circuits_writers() {
        let r = ReaderIndicator::new(512, 0);
        let mut scanned = 0usize;
        r.visit_readers(0, |step| match step {
            ReaderVisit::Stripe { .. } => scanned += 1,
            ReaderVisit::Reader { .. } => panic!("no readers"),
        });
        assert_eq!(scanned, 0, "no summary bits ⇒ no stripe loads");
        assert!(!r.has_reader_other_than(0));
    }

    #[test]
    fn stripe_hook_reports_each_scanned_stripe_once() {
        let r = ReaderIndicator::new(128, 0);
        r.add(0);
        r.add(2); // same stripe as 0
        r.add(1); // other stripe
        let mut stripes = Vec::new();
        let mut readers = Vec::new();
        r.visit_readers(2, |step| match step {
            ReaderVisit::Stripe { index, addr } => stripes.push((index, addr)),
            ReaderVisit::Reader { tid } => readers.push(tid),
        });
        readers.sort_unstable();
        assert_eq!(readers, vec![0, 1]);
        assert_eq!(stripes.len(), 2);
        assert_eq!(stripes[0].1, r.stripe_addr(stripes[0].0));
    }

    #[test]
    fn capacity_rounds_to_power_of_two_stripes() {
        let r = ReaderIndicator::new(65, 0);
        assert_eq!(r.n_stripes(), 2);
        let r = ReaderIndicator::new(200, 0);
        assert_eq!(r.n_stripes(), 4);
        assert_eq!(r.capacity(), 256);
        let r = ReaderIndicator::new(64 * 64 + 1, 0);
        assert_eq!(r.n_stripes(), 64, "stripe count is capped at 64 summary bits");
    }

    #[test]
    fn grouped_mapping_packs_same_node_threads_onto_one_stripe() {
        // 128 threads on 3 round-robin nodes (node = tid mod 3), two
        // stripes of 64. Grouped placement packs node 0 wholly onto
        // stripe 0 and node 2 wholly onto stripe 1 (node 1 straddles
        // the boundary), so a stripe line is written by at most two
        // nodes; the interleaved default mixes all three onto each.
        let topo = crate::topology::Topology::synthetic(128, 3);
        let place = Arc::new(topo.placement(128));
        let r = ReaderIndicator::with_placement(128, 0x3000, Some(place));
        assert!(r.is_striped());
        assert_eq!(r.n_stripes(), 2);
        assert_eq!(r.word_addr(0), r.word_addr(3), "same node shares a stripe line");
        assert_ne!(r.word_addr(0), r.word_addr(2), "node 2 lands on the other stripe");
        let nodes_on_stripe = |ri: &ReaderIndicator| {
            let mut per: Vec<std::collections::BTreeSet<usize>> =
                vec![Default::default(); ri.n_stripes()];
            for tid in 0..128 {
                per[(ri.word_addr(tid) - ri.stripe_addr(0)) / 64].insert(topo.node_of(tid));
            }
            per.iter().map(|s| s.len()).max().unwrap()
        };
        assert_eq!(nodes_on_stripe(&r), 2);
        // The interleaved default mixes every node onto every line.
        let i = ReaderIndicator::new(128, 0x4000);
        assert_eq!(nodes_on_stripe(&i), 3);
    }

    #[test]
    fn grouped_mapping_round_trips_registrations() {
        let place = Arc::new(crate::topology::Topology::synthetic(130, 4).placement(256));
        let r = ReaderIndicator::with_placement(200, 0, Some(place));
        for tid in [0usize, 1, 63, 64, 65, 129, 199, 255] {
            assert!(!r.is_reader(tid));
            r.add(tid);
            assert!(r.is_reader(tid), "tid {tid}");
        }
        assert_eq!(r.reader_count(), 8);
        assert_eq!(readers_of(&r, 65), vec![0, 1, 63, 64, 129, 199, 255]);
        for tid in [0usize, 1, 63, 64, 65, 129, 199, 255] {
            assert!(r.remove(tid), "tid {tid} was registered with summary intact");
        }
        assert_eq!(r.reader_count(), 0);
    }

    #[test]
    fn flat_mode_ignores_placement_and_stays_seed_exact() {
        // ≤ 64 threads: placement or not, the indicator is the seed's
        // single bitmap word at the home address — bit-for-bit.
        let place = Arc::new(crate::topology::Topology::synthetic(8, 4).placement(8));
        let p = ReaderIndicator::with_placement(8, 0x1000, Some(place));
        let f = ReaderIndicator::new(8, 0x1000);
        assert!(!p.is_striped() && !f.is_striped());
        for tid in [0usize, 3, 5, 63] {
            p.add(tid);
            f.add(tid);
            assert_eq!(p.word_addr(tid), f.word_addr(tid));
        }
        assert_eq!(
            p.summary.load(Ordering::SeqCst),
            f.summary.load(Ordering::SeqCst),
            "identical bitmap words under any topology"
        );
    }

    #[test]
    fn concurrent_add_remove_never_loses_registrations() {
        let r = Arc::new(ReaderIndicator::new(128, 0));
        let mut handles = Vec::new();
        for tid in 0..128usize {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    r.add(tid);
                    assert!(r.is_reader(tid));
                    assert!(r.remove(tid), "tid {tid}: registration must be intact");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.reader_count(), 0);
    }
}
