//! Thread registry: maps a thread/core id to its *current* transaction
//! descriptor.
//!
//! Visible reading (the read-sharing mechanism the paper's experiments
//! use) registers readers in a per-object indicator — one bit per thread
//! ([`crate::readers::ReaderIndicator`]). A writer that finds reader
//! bits set must translate each bit back to a transaction in order to
//! request its abort; this registry provides that translation. The
//! registry itself is one padded slot per thread and carries no
//! thread-count ceiling.
//!
//! A slot holds a raw pointer carrying one strong `Arc` count, replaced at
//! each transaction begin; the displaced descriptor's count is dropped
//! through the epoch so a concurrent writer that just loaded it can still
//! safely request an abort of the (now finished) transaction. A request
//! delivered to a stale descriptor is harmless: the descriptor is already
//! settled, and `request_abort` on a settled descriptor has no effect on
//! the thread's next transaction — with one benign exception (an
//! unavoidable bitmap race also present in RSTM-style designs): the reader
//! may have just begun its next transaction, which then receives a
//! spurious abort request. That costs a retry, never safety.

use crate::topology::Placement;
use crate::txn::TxnDesc;
use crate::util::CachePadded;
use nztm_epoch::Guard;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub struct ThreadRegistry {
    /// One padded slot per thread. Each thread *swaps* its own slot on
    /// every transaction begin; without padding, eight slots share a host
    /// cache line and every begin invalidates seven other threads' lines
    /// (classic false sharing — the synthetic model already charged each
    /// slot as its own line, the synthetic layout now matches it).
    slots: Vec<CachePadded<AtomicU64>>,
    /// Synthetic base; each slot is charged as its own cache line.
    synth: usize,
    /// Slot-line ordering within the synthetic block: `None` keeps the
    /// seed's identity layout (line `tid`); a placement puts same-node
    /// threads' lines contiguous, so a writer's reader-scan walk over
    /// slots of one node stays within one node's page range.
    placement: Option<Arc<Placement>>,
}

impl ThreadRegistry {
    pub fn new(n_threads: usize) -> Self {
        Self::with_placement(n_threads, None)
    }

    /// Like [`ThreadRegistry::new`], with slot lines ordered by the
    /// topology placement (identity when `None`).
    pub fn with_placement(n_threads: usize, placement: Option<Arc<Placement>>) -> Self {
        ThreadRegistry {
            slots: (0..n_threads).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            synth: nztm_sim::synth_alloc_as(
                n_threads.max(1) * 64,
                nztm_sim::StructClass::RegistrySlots,
            ),
            placement,
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Publish `desc` as thread `tid`'s current transaction.
    pub fn publish(&self, tid: usize, desc: &Arc<TxnDesc>, guard: &Guard) {
        let new_raw = Arc::into_raw(Arc::clone(desc)) as u64;
        let old = self.slots[tid].swap(new_raw, Ordering::SeqCst);
        if old != 0 {
            // Allocation-free defer: publish runs once per attempt.
            unsafe { guard.defer_fn(crate::object::release_txn_arc, old) };
        }
    }

    /// Current transaction of thread `tid`, valid while `_guard` is held.
    pub fn current<'g>(&self, tid: usize, _guard: &'g Guard) -> Option<&'g TxnDesc> {
        let raw = self.slots[tid].load(Ordering::SeqCst);
        if raw == 0 {
            None
        } else {
            Some(unsafe { &*(raw as *const TxnDesc) })
        }
    }

    /// Synthetic address of a slot (one line per slot), for charging.
    pub fn slot_addr(&self, tid: usize) -> usize {
        let line = match &self.placement {
            Some(p) => p.index_of(tid),
            None => tid,
        };
        self.synth + line * 64
    }
}

impl Drop for ThreadRegistry {
    fn drop(&mut self) {
        for s in &mut self.slots {
            let raw = *s.get_mut();
            if raw != 0 {
                unsafe { drop(Arc::from_raw(raw as *const TxnDesc)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Status;

    #[test]
    fn empty_slot_yields_none() {
        let r = ThreadRegistry::new(4);
        let g = nztm_epoch::pin();
        assert!(r.current(2, &g).is_none());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn publish_then_read_back() {
        let r = ThreadRegistry::new(2);
        let d = Arc::new(TxnDesc::new(1, 7));
        let g = nztm_epoch::pin();
        r.publish(1, &d, &g);
        let cur = r.current(1, &g).unwrap();
        assert_eq!(cur.serial, 7);
        assert!(r.current(0, &g).is_none());
    }

    #[test]
    fn republish_replaces() {
        let r = ThreadRegistry::new(1);
        let d1 = Arc::new(TxnDesc::new(0, 1));
        let d2 = Arc::new(TxnDesc::new(0, 2));
        let g = nztm_epoch::pin();
        r.publish(0, &d1, &g);
        r.publish(0, &d2, &g);
        assert_eq!(r.current(0, &g).unwrap().serial, 2);
        // d1 still usable (deferred, not dropped) while pinned.
        assert_eq!(d1.status(), Status::Active);
    }

    #[test]
    fn construction_past_64_threads_is_supported() {
        let r = ThreadRegistry::new(130);
        assert_eq!(r.len(), 130);
        let g = nztm_epoch::pin();
        let d = Arc::new(TxnDesc::new(129, 3));
        r.publish(129, &d, &g);
        assert_eq!(r.current(129, &g).unwrap().serial, 3);
        assert!(r.current(64, &g).is_none());
        // Slots keep one synthetic line each, past the old 64 ceiling.
        assert_eq!(r.slot_addr(129) - r.slot_addr(0), 129 * 64);
    }

    #[test]
    fn placement_reorders_slot_lines_but_not_slots() {
        let place =
            Arc::new(crate::topology::Topology::synthetic(8, 2).placement(8));
        let r = ThreadRegistry::with_placement(8, Some(Arc::clone(&place)));
        // Same-node threads (evens on node 0) take contiguous lines…
        assert_eq!(r.slot_addr(2) - r.slot_addr(0), 64);
        assert_eq!(r.slot_addr(4) - r.slot_addr(2), 64);
        // …and the mapping is a bijection onto the block.
        let mut lines: Vec<usize> = (0..8).map(|t| r.slot_addr(t)).collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 8);
        // Slot *contents* are still indexed by tid directly.
        let g = nztm_epoch::pin();
        let d = Arc::new(TxnDesc::new(5, 9));
        r.publish(5, &d, &g);
        assert_eq!(r.current(5, &g).unwrap().serial, 9);
        assert!(r.current(place.index_of(5), &g).is_none() || place.index_of(5) == 5);
    }

    #[test]
    fn drop_releases_slots() {
        let d = Arc::new(TxnDesc::new(0, 1));
        {
            let r = ThreadRegistry::new(1);
            let g = nztm_epoch::pin();
            r.publish(0, &d, &g);
            drop(r);
        }
        assert_eq!(Arc::strong_count(&d), 1);
    }
}
