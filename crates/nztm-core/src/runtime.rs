//! Backend-independent transactional interface.
//!
//! The paper evaluates seven systems over the same benchmarks. To make
//! that possible here, all workloads are written against [`TmSys`] — an
//! object-granular transactional interface in the style of DSTM's
//! programming model (which the paper's C model derives from) — and every
//! engine in this workspace (BZSTM, NZSTM, SCSS, DSTM, DSTM2-SF, the
//! global lock, and the hybrid) implements it.
//!
//! [`ObjPool`] and [`Handle`] provide the standard object-based-STM idiom
//! for linked data structures: objects live in a pool owned by the data
//! structure and reference each other by pool index (a `Handle`), which
//! encodes as a single data word. This avoids embedding raw pointers in
//! transactional data — the C original leaks or garbage-collects; a pool
//! is the Rust-sound equivalent with the same cache behaviour.

use crate::data::{FieldWord, TmData};
use crate::engine::{ModePolicy, NzStm, NzTx};
use crate::object::NZObject;
use crate::stats::TmStats;
use crate::trace::Trace;
use crate::txn::Abort;
use nztm_sim::Platform;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Object-granular transactional system: the common interface of every
/// TM implementation in this workspace.
///
/// Besides the transactional operations, `TmSys` is the workspace's
/// *observability surface*: [`TmSys::stats_snapshot`] merges per-thread
/// counters at any time, and [`TmSys::set_tracing`]/[`TmSys::take_trace`]
/// drive the flight recorder ([`crate::trace`]) on engines that record
/// events (BZSTM/NZSTM/SCSS and the hybrid; reference systems keep the
/// no-op defaults).
pub trait TmSys: Send + Sync + Sized + 'static {
    /// Container type for a transactional object holding a `T`.
    type Obj<T: TmData>: Send + Sync + 'static;
    /// In-flight transaction handle.
    type Tx<'t>;

    /// Allocate a transactional object.
    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T>;

    /// Non-transactional read (setup / post-run verification only).
    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T;

    /// Run `f` as a transaction, retrying until it commits.
    ///
    /// Takes the closure by value (like `NzStm::run`); `&mut closure`
    /// still works since `&mut F: FnMut` when `F: FnMut`.
    fn execute<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R;

    /// Transactional read.
    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort>;

    /// Transactional overwrite.
    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort>;

    /// Publish an ADT-level operation descriptor (see [`crate::adt`]):
    /// a transactional data structure announces the *logical* operation
    /// (structure, op kind, key) it is about to perform, so engines can
    /// attribute conflicts and throughput to operations on keys instead
    /// of raw word accesses. Observability-only; the default is a no-op
    /// (reference systems, or engines without the hook).
    fn note_adt_op(tx: &mut Self::Tx<'_>, desc: crate::adt::AdtOpDesc) {
        let _ = (tx, desc);
    }

    /// Merged statistics. Safe to call from any thread at any time —
    /// implementations merge single-writer per-thread counters on read.
    fn stats_snapshot(&self) -> TmStats;

    /// Reset statistics. Quiescent-only for exactness: increments racing
    /// with the reset can be lost.
    fn reset_stats(&self);

    /// Arm or disarm flight-recorder event capture. Default: no-op (for
    /// systems without a recorder, or with the `trace` feature off).
    fn set_tracing(&self, on: bool) {
        let _ = on;
    }

    /// Drain and merge the per-thread event rings (quiescent-only).
    /// Default: an empty trace.
    fn take_trace(&self) -> Trace {
        Trace::default()
    }

    /// Human-readable system name ("NZSTM", "BZSTM", ...).
    fn name(&self) -> &'static str;
}

impl<P: Platform, M: ModePolicy> TmSys for NzStm<P, M> {
    type Obj<T: TmData> = Arc<NZObject<T>>;
    type Tx<'t> = NzTx<P, M>;

    fn alloc<T: TmData>(&self, init: T) -> Self::Obj<T> {
        self.new_obj(init)
    }

    fn peek<T: TmData>(obj: &Self::Obj<T>) -> T {
        obj.read_untracked()
    }

    fn execute<R>(&self, f: impl FnMut(&mut Self::Tx<'_>) -> Result<R, Abort>) -> R {
        self.run(f)
    }

    fn read<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>) -> Result<T, Abort> {
        tx.read(obj)
    }

    fn write<T: TmData>(tx: &mut Self::Tx<'_>, obj: &Self::Obj<T>, v: &T) -> Result<(), Abort> {
        tx.write(obj, v)
    }

    fn note_adt_op(tx: &mut Self::Tx<'_>, desc: crate::adt::AdtOpDesc) {
        tx.note_adt_op(desc)
    }

    fn stats_snapshot(&self) -> TmStats {
        NzStm::stats_snapshot(self)
    }

    fn reset_stats(&self) {
        NzStm::reset_stats(self)
    }

    fn set_tracing(&self, on: bool) {
        NzStm::set_tracing(self, on)
    }

    fn take_trace(&self) -> Trace {
        NzStm::take_trace(self)
    }

    fn name(&self) -> &'static str {
        self.mode_name()
    }
}

/// A typed index into an [`ObjPool`]. Encodes as one data word, so linked
/// data structures can store references to other transactional objects
/// inside their transactional data.
pub struct Handle<T>(u32, PhantomData<fn() -> T>);

impl<T> Handle<T> {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<T> Eq for Handle<T> {}
impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({})", self.0)
    }
}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl<T: 'static> FieldWord for Handle<T> {
    fn to_word(self) -> u64 {
        self.0 as u64
    }
    fn from_word(w: u64) -> Self {
        Handle(w as u32, PhantomData)
    }
}

/// A fixed-capacity, append-only pool of transactional objects, owned by
/// a data structure. Allocation is lock-free (bump index + per-slot
/// `OnceLock`); lookup is wait-free.
pub struct ObjPool<S: TmSys, T: TmData> {
    slots: Box<[OnceLock<S::Obj<T>>]>,
    next: AtomicUsize,
}

impl<S: TmSys, T: TmData> ObjPool<S, T> {
    /// Create a pool able to hold `capacity` objects.
    pub fn new(capacity: usize) -> Self {
        ObjPool {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Allocate a fresh object initialized to `init`.
    ///
    /// Allocation happens *outside* transactional control (as in DSTM-era
    /// benchmarks): an object allocated by an attempt that later aborts is
    /// simply garbage in the pool.
    pub fn alloc(&self, sys: &S, init: T) -> Handle<T> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            i < self.slots.len(),
            "ObjPool capacity {} exhausted — size the pool for the workload",
            self.slots.len()
        );
        let obj = sys.alloc(init);
        self.slots[i]
            .set(obj)
            .unwrap_or_else(|_| unreachable!("slot {i} double-initialized"));
        Handle(i as u32, PhantomData)
    }

    /// Look up a handle.
    pub fn get(&self, h: Handle<T>) -> &S::Obj<T> {
        self.slots[h.index()].get().expect("dangling handle: slot never allocated")
    }

    /// Number of objects allocated so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.slots.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Nonblocking;
    use nztm_sim::Native;

    type Sys = NzStm<Native, Nonblocking>;

    fn sys() -> Arc<Sys> {
        let p = Native::new(1);
        p.register_thread();
        crate::builder::NzBuilder::new(p).build()
    }

    #[test]
    fn handle_encodes_as_word() {
        let h = Handle::<u64>(7, PhantomData);
        assert_eq!(h.to_word(), 7);
        assert_eq!(Handle::<u64>::from_word(7), h);
        assert_eq!(h.index(), 7);
    }

    #[test]
    fn option_handle_round_trips() {
        let h: Option<Handle<u64>> = Some(Handle(0, PhantomData));
        let w = h.to_word();
        assert_eq!(Option::<Handle<u64>>::from_word(w), h);
        assert_eq!(Option::<Handle<u64>>::from_word(Option::<Handle<u64>>::to_word(None)), None);
    }

    #[test]
    fn pool_alloc_get_round_trip() {
        let s = sys();
        let pool: ObjPool<Sys, u64> = ObjPool::new(4);
        let a = pool.alloc(&s, 11);
        let b = pool.alloc(&s, 22);
        assert_ne!(a, b);
        assert_eq!(Sys::peek(pool.get(a)), 11);
        assert_eq!(Sys::peek(pool.get(b)), 22);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn pool_overflow_panics() {
        let s = sys();
        let pool: ObjPool<Sys, u64> = ObjPool::new(1);
        pool.alloc(&s, 1);
        pool.alloc(&s, 2);
    }

    #[test]
    fn tmsys_round_trip_through_trait() {
        let s = sys();
        let obj = s.alloc(5u64);
        let got = s.execute(|tx| {
            let v = Sys::read(tx, &obj)?;
            Sys::write(tx, &obj, &(v * 2))?;
            Ok(v)
        });
        assert_eq!(got, 5);
        assert_eq!(Sys::peek(&obj), 10);
        assert_eq!(s.stats_snapshot().commits, 1);
        assert_eq!(s.name(), "NZSTM");
    }

    #[test]
    fn mut_closure_still_accepted_by_execute() {
        // `&mut F` is itself `FnMut`, so pre-redesign call sites that
        // passed `&mut |tx| ...` keep compiling.
        let s = sys();
        let obj = s.alloc(1u64);
        let mut f = |tx: &mut <Sys as TmSys>::Tx<'_>| {
            let v = Sys::read(tx, &obj)?;
            Sys::write(tx, &obj, &(v + 1))?;
            Ok(())
        };
        s.execute(&mut f);
        s.execute(f);
        assert_eq!(Sys::peek(&obj), 3);
    }
}
