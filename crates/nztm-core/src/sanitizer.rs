//! Protocol sanitizer: runtime checking of the paper's §2 invariants on
//! the **real** engine, plus a deterministic, seed-replayable adversarial
//! schedule perturbator.
//!
//! The model checker (`nztm-modelcheck`) verifies a hand-written *model*
//! of the protocol; this module instead instruments the production engine
//! itself. Every [`NzStm`](crate::engine::NzStm) owns one `Sanitizer`
//! (when the `sanitize` cargo feature is on); the engine fires hooks at
//! the protocol's decision points and the sanitizer maintains a mirror of
//! the protocol state it *should* be in, flagging any transition the
//! paper forbids:
//!
//! 1. **Exactly one owner per object** — an owner-word CAS must displace
//!    exactly the value the mirror believes is installed, and must never
//!    steal from a still-active, un-acknowledged owner (except the SCSS
//!    post-barrier steal, which is the §2.3.2 rule).
//! 2. **Eager writes require a live backup** — an `Active` owner storing
//!    to in-place data while the object's backup pointer is null could
//!    never be undone.
//! 3. **`Status = Aborted` is set only by the victim itself** — the §2.2
//!    handshake: requesters set `AbortNowPlease`; only the victim
//!    acknowledges. A peer observed `Aborted` without the victim having
//!    run its acknowledge path means someone forced it.
//! 4. **Inflation names a still-unacknowledged transaction** — the
//!    locator's `AbortedTransaction` field must identify a transaction
//!    that was asked to abort and has not yet acknowledged (§2.3.1).
//! 5. **Deflation only when `deflatable()` truly holds** — the
//!    unresponsive transaction must have acknowledged before the owner
//!    word is CAS'd back to a plain transaction pointer.
//! 6. **Restore-from-backup reproduces the pre-transaction bytes** — the
//!    words copied back by the next acquirer must equal the contents
//!    recorded when the aborted owner installed its backup.
//!
//! ## Schedules
//!
//! [`Sanitizer::set_schedule`] arms a seeded perturbator: at every hooked
//! decision point the engine draws a pause length from a per-thread
//! [`DetRng`](nztm_sim::DetRng) stream split from the schedule seed, and spins that many
//! `spin_wait` steps. On the simulated platform this deterministically
//! reshapes the interleaving (same seed ⇒ byte-identical decision log);
//! on native threads it injects real jitter at exactly the points where
//! protocol races live. Each decision point is appended to a decision
//! log; when a violation fires, the seed plus the log tail are dumped so
//! the failing schedule can be replayed.
//!
//! The mirror maps are keyed by raw descriptor/header addresses. A key
//! can be reused after its descriptor is freed, but every consultation of
//! the transaction map happens while the engine holds a live reference to
//! that descriptor — and the `txn_begin` hook overwrites the entry on
//! reuse — so a live key always maps to current information. Entries for
//! dead descriptors are garbage that is never read (bounded by the number
//! of attempts in a run; this is a testing tool, not a production path).

use crate::txn::Status;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A hooked protocol decision point (also the schedule-log alphabet).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Point {
    /// About to CAS the owner word to our transaction.
    OwnerCas,
    /// About to set a peer's `AbortNowPlease` flag.
    AnpSet,
    /// Entering the wait for a victim's acknowledgement.
    AwaitAck,
    /// About to acknowledge our own abort (`Status := Aborted`).
    AbortAck,
    /// About to attempt the commit CAS.
    CommitCas,
    /// About to CAS the owner word to a fresh locator (inflation).
    Inflate,
    /// About to CAS an inflated owner word back to a transaction.
    DeflateCas,
    /// About to install a backup buffer.
    BackupInstall,
    /// About to restore an aborted owner's backup into the data.
    Restore,
    /// About to store eagerly into in-place data (post-validation).
    EagerWrite,
}

impl Point {
    pub fn name(self) -> &'static str {
        match self {
            Point::OwnerCas => "owner-cas",
            Point::AnpSet => "anp-set",
            Point::AwaitAck => "await-ack",
            Point::AbortAck => "abort-ack",
            Point::CommitCas => "commit-cas",
            Point::Inflate => "inflate",
            Point::DeflateCas => "deflate-cas",
            Point::BackupInstall => "backup-install",
            Point::Restore => "restore",
            Point::EagerWrite => "eager-write",
        }
    }
}

/// One decision-log entry: thread `tid` reached `point`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    pub tid: u32,
    pub point: Point,
}

/// A detected protocol violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable rule identifier (see module docs).
    pub rule: &'static str,
    pub detail: String,
}

#[derive(Clone, Copy, Default)]
struct TxnInfo {
    tid: u32,
    serial: u64,
    committed: bool,
    /// The victim ran its own acknowledge path.
    acked: bool,
    /// `AbortNowPlease` was set while the victim was still `Active` (the
    /// linearized observation of `request_abort`).
    anp_active: bool,
}

#[derive(Default)]
struct ObjInfo {
    /// Owner-word value the mirror believes is installed.
    owner_raw: u64,
    /// Pre-transaction contents recorded when the current undo source
    /// (backup buffer) was installed.
    pre_txn: Option<Vec<u64>>,
    /// Threads the mirror believes are registered as visible readers.
    /// Per (object, tid) the add/remove pair is issued by `tid` itself,
    /// so the mutex-serialized mirror sees them in program order.
    readers: std::collections::HashSet<usize>,
}

#[derive(Default)]
struct SanState {
    txns: HashMap<u64, TxnInfo>,
    objs: HashMap<usize, ObjInfo>,
    log: Vec<Step>,
    violations: Vec<Violation>,
}

/// Per-engine protocol sanitizer. See module docs.
pub struct Sanitizer {
    seed: AtomicU64,
    max_pause: AtomicU64,
    /// Bumped by `set_schedule`; 0 means "no schedule armed" (invariant
    /// checks still run, but no pauses are injected and no log is kept).
    generation: AtomicU64,
    state: Mutex<SanState>,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer::new()
    }
}

impl Sanitizer {
    pub fn new() -> Self {
        Sanitizer {
            seed: AtomicU64::new(0),
            max_pause: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            state: Mutex::new(SanState::default()),
        }
    }

    // ---- schedule control -------------------------------------------------

    /// Arm the adversarial schedule: per-thread pause streams derived from
    /// `seed`, each pause uniform in `0..=max_pause` spin steps. Clears
    /// the decision log (but keeps mirror state and past violations; use
    /// [`Sanitizer::reset`] between independent runs).
    pub fn set_schedule(&self, seed: u64, max_pause: u64) {
        self.seed.store(seed, Ordering::SeqCst);
        self.max_pause.store(max_pause, Ordering::SeqCst);
        self.lock().log.clear();
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Forget everything: mirror state, decision log, violations. The
    /// armed schedule (seed/pauses) is kept.
    pub fn reset(&self) {
        let mut s = self.lock();
        s.txns.clear();
        s.objs.clear();
        s.log.clear();
        s.violations.clear();
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    pub fn schedule_seed(&self) -> u64 {
        self.seed.load(Ordering::SeqCst)
    }

    pub fn max_pause(&self) -> u64 {
        self.max_pause.load(Ordering::SeqCst)
    }

    /// Append a decision-point step (no-op while no schedule is armed).
    pub fn log_step(&self, tid: u32, point: Point) {
        if self.generation() == 0 {
            return;
        }
        self.lock().log.push(Step { tid, point });
    }

    // ---- reports ----------------------------------------------------------

    pub fn violations(&self) -> Vec<Violation> {
        self.lock().violations.clone()
    }

    pub fn decision_log(&self) -> Vec<Step> {
        self.lock().log.clone()
    }

    /// FNV-1a digest of the decision log — two runs under the same seed
    /// must produce the same digest on the simulated platform.
    pub fn schedule_digest(&self) -> u64 {
        let s = self.lock();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for step in &s.log {
            for b in [step.tid as u8, (step.tid >> 8) as u8, step.point as u8] {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Human-readable replay bundle: schedule seed plus the decision-log
    /// tail. Printed automatically when a violation is recorded.
    pub fn replay_dump(&self) -> String {
        let s = self.lock();
        let tail_from = s.log.len().saturating_sub(64);
        let mut out = format!(
            "schedule seed = {:#x}, max_pause = {}, decisions = {}\nlog tail:",
            self.schedule_seed(),
            self.max_pause(),
            s.log.len()
        );
        for (i, step) in s.log[tail_from..].iter().enumerate() {
            out.push_str(&format!("\n  [{:5}] t{} {}", tail_from + i, step.tid, step.point.name()));
        }
        out
    }

    // ---- engine hooks ------------------------------------------------------

    /// Guard for every hook keyed into the transaction mirror: the key
    /// must be a descriptor address, never an inflated owner *word* — a
    /// tagged locator pointer fed in here would silently split one
    /// transaction's history across two mirror entries and fabricate
    /// rule-3 violations (the victim's `ack` lands under the real
    /// address while observers consult the tagged key).
    #[track_caller]
    fn txn_key(raw: u64) -> u64 {
        assert_eq!(
            raw & crate::object::INFLATED_TAG,
            0,
            "sanitizer txn hook keyed by a tagged owner word {raw:#x}, \
             not a descriptor address"
        );
        raw
    }

    /// A fresh descriptor began an attempt.
    pub fn txn_begin(&self, raw: u64, tid: u32, serial: u64) {
        let raw = Self::txn_key(raw);
        let mut s = self.lock();
        // Descriptor reuse: a thread's TxnDesc only begins a new
        // transaction once the previous incarnation settled, so any
        // ownership record still naming this descriptor is stale (and
        // may legally be cleaned untracked, e.g. by the hybrid's
        // hardware path). Forget it, or the fresh incarnation's
        // `committed = false` would fake rule-1 divergences.
        for obj in s.objs.values_mut() {
            if obj.owner_raw == raw {
                obj.owner_raw = 0;
            }
        }
        s.txns.insert(raw, TxnInfo { tid, serial, ..TxnInfo::default() });
    }

    /// The commit CAS succeeded.
    pub fn commit_ok(&self, raw: u64, tid: u32) {
        let raw = Self::txn_key(raw);
        let mut s = self.lock();
        let info = s.txns.entry(raw).or_default();
        if info.anp_active {
            let d = format!(
                "t{tid} committed txn {raw:#x} (serial {}) after AbortNowPlease was \
                 set while it was Active — the commit CAS must fail",
                info.serial
            );
            info.committed = true;
            Self::push_violation(&mut s, self, "commit-after-abort-request", d);
            return;
        }
        info.committed = true;
    }

    /// The victim is acknowledging its own abort (hook fires *before* the
    /// status CAS, so observers that see `Aborted` always find
    /// `acked = true` here).
    pub fn ack(&self, raw: u64, by_tid: u32) {
        let raw = Self::txn_key(raw);
        let mut s = self.lock();
        let info = s.txns.entry(raw).or_default();
        if info.tid != by_tid {
            let d = format!(
                "Status=Aborted for txn {raw:#x} (thread {}) set by thread {by_tid} — \
                 only the victim may acknowledge (§2.2)",
                info.tid
            );
            Self::push_violation(&mut s, self, "abort-ack-by-foreign-thread", d);
        }
        s.txns.entry(raw).or_default().acked = true;
    }

    /// A peer's `AbortNowPlease` flag was set; `was_active` is the status
    /// `request_abort` linearized against.
    pub fn anp_set(&self, victim_raw: u64, was_active: bool) {
        let victim_raw = Self::txn_key(victim_raw);
        if was_active {
            self.lock().txns.entry(victim_raw).or_default().anp_active = true;
        }
    }

    /// A thread observed a peer's settled state. Catches rule 3: a
    /// descriptor reading `Aborted` whose acknowledge path never ran was
    /// forced by someone else.
    pub fn observed_peer(&self, raw: u64, status: Status, _anp: bool) {
        let raw = Self::txn_key(raw);
        if status != Status::Aborted {
            return;
        }
        let mut s = self.lock();
        let Some(info) = s.txns.get(&raw).copied() else { return };
        if !info.acked {
            let d = format!(
                "txn {raw:#x} (thread {}, serial {}) observed Status=Aborted but its \
                 acknowledge path never ran — a requester forced the victim's status",
                info.tid, info.serial
            );
            Self::push_violation(&mut s, self, "status-forced-by-requester", d);
            // Record it acknowledged so one injected fault is reported once
            // per victim rather than once per observer iteration.
            s.txns.entry(raw).or_default().acked = true;
        }
    }

    /// The owner word was CAS'd from `prev_raw` to transaction `new_raw`.
    /// `prev_state` is the displaced descriptor's `(status, anp)` loaded
    /// at hook time (None when `prev_raw == 0`); `scss` marks the §2.3.2
    /// engine, whose post-barrier steal from an `Active`+ANP owner is
    /// legal.
    pub fn owner_cas_txn(
        &self,
        h_addr: usize,
        new_raw: u64,
        prev_raw: u64,
        prev_state: Option<(Status, bool)>,
        scss: bool,
    ) {
        let mut s = self.lock();
        if let Some((Status::Active, anp)) = prev_state {
            if !(scss && anp) {
                let d = format!(
                    "object {h_addr:#x}: owner CAS {prev_raw:#x} -> {new_raw:#x} displaced \
                     a still-Active owner (anp={anp}) — two live owners (rule 1)"
                );
                Self::push_violation(&mut s, self, "owner-stolen-while-active", d);
            }
        }
        Self::mirror_owner_update(&mut s, self, h_addr, prev_raw, new_raw);
    }

    /// The owner word was CAS'd to a *fresh* locator (inflation).
    /// `unresp_state` is the unresponsive transaction's `(status, anp)`
    /// loaded at hook time.
    pub fn inflated(
        &self,
        h_addr: usize,
        loc_raw: u64,
        _owner_raw: u64,
        unresp_raw: u64,
        unresp_state: (Status, bool),
    ) {
        let unresp_raw = Self::txn_key(unresp_raw);
        let mut s = self.lock();
        let tracked_anp = s.txns.get(&unresp_raw).map(|t| t.anp_active).unwrap_or(false);
        // Raced acknowledgements are benign (the victim settled between
        // the patience expiry and this hook); what must never happen is
        // inflating past a transaction nobody asked to abort.
        let (st, anp) = unresp_state;
        if (st == Status::Active && !anp) || !tracked_anp {
            let d = format!(
                "object {h_addr:#x} inflated naming txn {unresp_raw:#x} which was never \
                 asked to abort (status {st:?}, anp {anp}, tracked-anp {tracked_anp}) — \
                 rule 4 (§2.3.1)"
            );
            Self::push_violation(&mut s, self, "inflation-names-unrequested-txn", d);
        }
        Self::mirror_owner_update(&mut s, self, h_addr, unresp_raw, loc_raw);
    }

    /// An inflated owner word was CAS'd to a replacement locator.
    pub fn locator_replaced(&self, h_addr: usize, new_raw: u64, prev_raw: u64) {
        let mut s = self.lock();
        Self::mirror_owner_update(&mut s, self, h_addr, prev_raw, new_raw);
    }

    /// The owner word was CAS'd from a locator back to a transaction
    /// (deflation step 2). `aborted_status` is the locator's
    /// `AbortedTransaction` status loaded at hook time.
    pub fn deflated(&self, h_addr: usize, me_raw: u64, prev_loc_raw: u64, aborted_status: Status) {
        let mut s = self.lock();
        if aborted_status != Status::Aborted {
            let d = format!(
                "object {h_addr:#x} deflated while the unresponsive transaction's status \
                 is {aborted_status:?} (not Aborted) — deflatable() did not hold (rule 5)"
            );
            Self::push_violation(&mut s, self, "deflation-before-acknowledgement", d);
        }
        Self::mirror_owner_update(&mut s, self, h_addr, prev_loc_raw, me_raw);
    }

    /// A backup buffer holding `pre_txn` (the object's pre-transaction
    /// contents) became the object's undo source.
    pub fn backup_recorded(&self, h_addr: usize, pre_txn: Vec<u64>) {
        self.lock().objs.entry(h_addr).or_default().pre_txn = Some(pre_txn);
    }

    /// An aborted owner's backup was restored into the in-place data;
    /// `data_now` is the data contents after the copy. `complete` is
    /// false when SCSS skipped stores (own ANP observed mid-restore — the
    /// restore will be redone by the next acquirer, so no comparison).
    pub fn restored(&self, h_addr: usize, data_now: &[u64], complete: bool) {
        if !complete {
            return;
        }
        let mut s = self.lock();
        let Some(expected) = s.objs.get(&h_addr).and_then(|o| o.pre_txn.clone()) else {
            return;
        };
        if expected != data_now {
            let d = format!(
                "object {h_addr:#x}: restore-from-backup produced {data_now:?} but the \
                 pre-transaction contents were {expected:?} (rule 6)"
            );
            Self::push_violation(&mut s, self, "restore-mismatch", d);
        }
    }

    /// Thread `tid` registered as a visible reader of the object (mirror
    /// of [`crate::ReaderIndicator::add`]); fires after the indicator
    /// write, before the owner examination.
    pub fn reader_add(&self, h_addr: usize, tid: usize) {
        self.lock().objs.entry(h_addr).or_default().readers.insert(tid);
    }

    /// Thread `tid` deregistered as a visible reader. `intact` is the
    /// indicator's own report: the registration (the stripe bit and, in
    /// striped mode, its sticky summary bit) was still present at removal.
    pub fn reader_remove(&self, h_addr: usize, tid: usize, intact: bool) {
        let mut s = self.lock();
        let was_tracked = s.objs.entry(h_addr).or_default().readers.remove(&tid);
        if !was_tracked {
            let d = format!(
                "object {h_addr:#x}: thread {tid} cleared a reader registration the \
                 mirror never saw it make — visible reads must register before the \
                 owner examination (§2.2)"
            );
            Self::push_violation(&mut s, self, "reader-remove-without-add", d);
            return;
        }
        if !intact {
            let d = format!(
                "object {h_addr:#x}: thread {tid} is registered in the mirror but the \
                 indicator lost the registration before removal (stripe or sticky \
                 summary bit cleared) — a writer could have missed this reader"
            );
            Self::push_violation(&mut s, self, "reader-summary-bit-lost", d);
        }
    }

    /// An `Active` owner is about to store eagerly to in-place data;
    /// `backup_raw` is the object's backup word.
    pub fn eager_write(&self, h_addr: usize, backup_raw: u64) {
        if backup_raw != 0 {
            return;
        }
        let mut s = self.lock();
        let d = format!(
            "object {h_addr:#x}: eager in-place write with a null backup pointer — \
             the write could never be undone (rule 2)"
        );
        Self::push_violation(&mut s, self, "eager-write-without-backup", d);
    }

    // ---- internals ---------------------------------------------------------

    fn lock(&self) -> std::sync::MutexGuard<'_, SanState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mirror-consistency bookkeeping for owner transitions: the mirror
    /// must have believed `prev_raw` was installed, *unless* the recorded
    /// owner was already settled (the hybrid's hardware path erases
    /// settled owners without engine hooks — legal).
    fn mirror_owner_update(s: &mut SanState, san: &Sanitizer, h_addr: usize, prev_raw: u64, new_raw: u64) {
        let recorded = s.objs.entry(h_addr).or_default().owner_raw;
        if recorded != 0 && recorded != prev_raw && recorded & 1 == 0 {
            if let Some(info) = s.txns.get(&recorded).copied() {
                if !info.committed && !info.acked {
                    let d = format!(
                        "object {h_addr:#x}: owner transition {prev_raw:#x} -> {new_raw:#x} \
                         but the mirror records live owner {recorded:#x} (thread {}, serial \
                         {}) — an active ownership was overwritten untracked (rule 1)",
                        info.tid, info.serial
                    );
                    Self::push_violation(s, san, "owner-mirror-divergence", d);
                }
            }
        }
        s.objs.entry(h_addr).or_default().owner_raw = new_raw;
    }

    fn push_violation(s: &mut SanState, san: &Sanitizer, rule: &'static str, detail: String) {
        eprintln!("[nztm-sanitizer] VIOLATION {rule}: {detail}");
        // Inline replay dump (can't call replay_dump(): the lock is held).
        let tail_from = s.log.len().saturating_sub(32);
        eprintln!(
            "[nztm-sanitizer] replay: seed={:#x} max_pause={} decisions={}",
            san.seed.load(Ordering::SeqCst),
            san.max_pause.load(Ordering::SeqCst),
            s.log.len()
        );
        for (i, step) in s.log[tail_from..].iter().enumerate() {
            eprintln!("[nztm-sanitizer]   [{:5}] t{} {}", tail_from + i, step.tid, step.point.name());
        }
        s.violations.push(Violation { rule, detail });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foreign_ack_is_flagged() {
        let s = Sanitizer::new();
        s.txn_begin(0x1000, 3, 7);
        s.ack(0x1000, 5);
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "abort-ack-by-foreign-thread");
    }

    #[test]
    fn own_ack_is_clean() {
        let s = Sanitizer::new();
        s.txn_begin(0x1000, 3, 7);
        s.ack(0x1000, 3);
        s.observed_peer(0x1000, Status::Aborted, true);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn forced_status_observed_without_ack_is_flagged() {
        let s = Sanitizer::new();
        s.txn_begin(0x2000, 1, 1);
        s.anp_set(0x2000, true);
        // Nobody ran ack(); a peer observes Aborted anyway.
        s.observed_peer(0x2000, Status::Aborted, true);
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "status-forced-by-requester");
        // Reported once, not per observation.
        s.observed_peer(0x2000, Status::Aborted, true);
        assert_eq!(s.violations().len(), 1);
    }

    #[test]
    #[should_panic(expected = "tagged owner word")]
    fn txn_hooks_reject_tagged_owner_words() {
        // The rule-3 mirror is keyed by descriptor addresses; feeding it
        // an inflated owner word (tag bit set) would split one
        // transaction across two entries and fabricate violations.
        let s = Sanitizer::new();
        s.observed_peer(0x2001, Status::Aborted, true);
    }

    #[test]
    fn commit_after_active_anp_is_flagged() {
        let s = Sanitizer::new();
        s.txn_begin(0x3000, 0, 1);
        s.anp_set(0x3000, true);
        s.commit_ok(0x3000, 0);
        assert_eq!(s.violations()[0].rule, "commit-after-abort-request");
    }

    #[test]
    fn late_anp_does_not_poison_commit() {
        let s = Sanitizer::new();
        s.txn_begin(0x3000, 0, 1);
        s.anp_set(0x3000, false); // request_abort linearized after settle
        s.commit_ok(0x3000, 0);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn owner_steal_from_active_is_flagged_but_scss_barrier_steal_is_not() {
        let s = Sanitizer::new();
        s.owner_cas_txn(0x40, 0xA0, 0xB0, Some((Status::Active, false)), false);
        assert_eq!(s.violations()[0].rule, "owner-stolen-while-active");

        let s = Sanitizer::new();
        s.owner_cas_txn(0x40, 0xA0, 0xB0, Some((Status::Active, true)), true);
        assert!(s.violations().is_empty(), "SCSS post-barrier steal is legal");
    }

    #[test]
    fn restore_mismatch_is_flagged() {
        let s = Sanitizer::new();
        s.backup_recorded(0x40, vec![1, 2, 3]);
        s.restored(0x40, &[1, 2, 3], true);
        assert!(s.violations().is_empty());
        s.restored(0x40, &[1, 9, 3], true);
        assert_eq!(s.violations()[0].rule, "restore-mismatch");
        // Incomplete (SCSS-skipped) restores are not compared.
        let s = Sanitizer::new();
        s.backup_recorded(0x40, vec![1]);
        s.restored(0x40, &[7], false);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn deflation_requires_acknowledged_txn() {
        let s = Sanitizer::new();
        s.deflated(0x40, 0xA0, 0xB1, Status::Active);
        assert_eq!(s.violations()[0].rule, "deflation-before-acknowledgement");
        let s = Sanitizer::new();
        s.deflated(0x40, 0xA0, 0xB1, Status::Aborted);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn inflation_requires_requested_victim() {
        let s = Sanitizer::new();
        s.txn_begin(0xB0, 1, 1);
        s.inflated(0x40, 0xC1, 0xA0, 0xB0, (Status::Active, false));
        assert_eq!(s.violations()[0].rule, "inflation-names-unrequested-txn");

        let s = Sanitizer::new();
        s.txn_begin(0xB0, 1, 1);
        s.anp_set(0xB0, true);
        s.inflated(0x40, 0xC1, 0xA0, 0xB0, (Status::Active, true));
        assert!(s.violations().is_empty());
    }

    #[test]
    fn reader_remove_without_add_is_flagged() {
        let s = Sanitizer::new();
        s.reader_add(0x40, 3);
        s.reader_remove(0x40, 3, true);
        assert!(s.violations().is_empty());
        s.reader_remove(0x40, 3, true);
        assert_eq!(s.violations()[0].rule, "reader-remove-without-add");
    }

    #[test]
    fn lost_reader_registration_is_flagged() {
        let s = Sanitizer::new();
        s.reader_add(0x40, 70);
        s.reader_remove(0x40, 70, false);
        assert_eq!(s.violations()[0].rule, "reader-summary-bit-lost");
        // The mirror entry is consumed either way.
        s.reader_remove(0x40, 70, true);
        assert_eq!(s.violations()[1].rule, "reader-remove-without-add");
    }

    #[test]
    fn independent_readers_do_not_interfere() {
        let s = Sanitizer::new();
        s.reader_add(0x40, 1);
        s.reader_add(0x40, 100);
        s.reader_add(0x80, 1);
        s.reader_remove(0x40, 100, true);
        s.reader_remove(0x40, 1, true);
        s.reader_remove(0x80, 1, true);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn schedule_log_and_digest_are_stable() {
        let s = Sanitizer::new();
        s.set_schedule(42, 8);
        s.log_step(0, Point::OwnerCas);
        s.log_step(1, Point::AnpSet);
        let d1 = s.schedule_digest();
        let log = s.decision_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], Step { tid: 0, point: Point::OwnerCas });

        let t = Sanitizer::new();
        t.set_schedule(42, 8);
        t.log_step(0, Point::OwnerCas);
        t.log_step(1, Point::AnpSet);
        assert_eq!(t.schedule_digest(), d1, "same steps, same digest");
        t.log_step(1, Point::AwaitAck);
        assert_ne!(t.schedule_digest(), d1);
        assert!(t.replay_dump().contains("await-ack"));
    }

    #[test]
    fn unarmed_sanitizer_keeps_no_log() {
        let s = Sanitizer::new();
        s.log_step(0, Point::OwnerCas);
        assert!(s.decision_log().is_empty());
    }
}
