//! Execution statistics.
//!
//! The paper's §4.4 claims are mostly *statistics* claims — "less than 1%
//! of NZTM transactions abort", "about 19% of linkedlist's transactions
//! abort", "no actual object inflation was observed", "75% of all
//! transactions run successfully in hardware". Every counter needed to
//! regenerate those claims is collected here, per thread (no cross-thread
//! contention on counters), and merged after a run.
//!
//! Counters live in per-thread [`ThreadStats`] cells: each counter is an
//! `AtomicU64` that only its owning thread writes (a plain
//! load-add-store, never an atomic RMW, so the increment compiles to the
//! same unlocked add a `u64 += 1` would). Because the cells are atomics,
//! any thread may *read* them at any time — [`crate::TmSys::stats_snapshot`]
//! merges a consistent-enough view mid-run without the quiescence
//! requirement that `reset_stats` keeps.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread counters, merged into a run-wide [`TmStats`] report.
///
/// The struct shape is unconditional, but the *hot-path* counters (reads,
/// acquires, pool traffic, SCSS stores, wait steps, conflicts, descriptor
/// recycling) are only incremented when the `stats` cargo feature is on —
/// tier-1 builds keep it on (default), while a bench profile can build
/// `--no-default-features` to strip even those per-access increments.
/// Lifecycle counters (commits, aborts, inflations, HTM outcomes) are
/// always maintained: harnesses and retry policies consume them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TmStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts whose own `AbortNowPlease` was set by a peer.
    pub aborts_requested: u64,
    /// Aborted attempts decided by the local contention manager.
    pub aborts_self: u64,
    /// Aborted attempts due to commit-time validation (invisible reads).
    pub aborts_validation: u64,
    /// Explicit user aborts.
    pub aborts_explicit: u64,
    /// Software attempts unwound by a doomed hardware transaction
    /// (hybrid NZTM; see [`crate::txn::AbortCause::Htm`]). Distinct from
    /// `htm_aborts`, which counts the *hardware attempts* themselves.
    pub aborts_htm: u64,
    /// Aborted attempts whose NOrec value validation found a changed
    /// value (see [`crate::txn::AbortCause::ValueValidation`]).
    pub aborts_value_validation: u64,
    /// NOrec validation passes (full read-log value scans).
    pub norec_validations: u64,
    /// NOrec snapshot extensions (validation passes that moved the
    /// snapshot forward rather than merely confirming it).
    pub norec_extensions: u64,
    /// Abort requests this thread sent to peers.
    pub abort_requests_sent: u64,
    /// Conflict-wait spin steps taken.
    pub wait_steps: u64,
    /// Conflicts encountered (any resolution).
    pub conflicts: u64,
    /// Objects inflated by this thread (NZSTM only).
    pub inflations: u64,
    /// Objects deflated by this thread (NZSTM only).
    pub deflations: u64,
    /// Transactional object reads.
    pub reads: u64,
    /// Transactional object write-acquisitions.
    pub acquires: u64,
    /// Backup buffers taken from the thread-local pool (cache-warm reuse).
    pub backup_reused: u64,
    /// Backup buffers freshly allocated.
    pub backup_alloc: u64,
    /// Transaction descriptors recycled from the thread-local free list.
    pub descriptor_reused: u64,
    /// Transaction descriptors freshly heap-allocated.
    pub descriptor_alloc: u64,
    /// SCSS-wrapped stores executed.
    pub scss_stores: u64,
    /// SCSS stores that failed (own AbortNowPlease observed).
    pub scss_failures: u64,
    /// Hardware-path statistics (hybrid NZTM): committed in HTM.
    pub htm_commits: u64,
    /// Hardware transaction aborts, total.
    pub htm_aborts: u64,
    /// Hardware aborts attributed to coherence conflicts (CPS).
    pub htm_conflict_aborts: u64,
    /// Hardware aborts attributed to capacity/resource exhaustion (CPS).
    pub htm_capacity_aborts: u64,
    /// Hardware aborts the transaction requested itself (§2.4's
    /// self-abort on observing a live software transaction; `xabort` on
    /// the native RTM path).
    pub htm_explicit_aborts: u64,
    /// Hardware aborts for other reasons (TLB miss, interrupt, ...).
    pub htm_other_aborts: u64,
    /// Transactions that fell back to the software path.
    pub fallbacks: u64,
    /// Objects escalated into the adaptive contention manager's
    /// serialization mode (see `cm::Adaptive`).
    pub cm_escalations: u64,
    /// Objects de-escalated back to normal contention handling.
    pub cm_deescalations: u64,
    /// Logical transactions that experienced ≥1 abort before committing
    /// — the paper's "X% of transactions abort" metric (per-transaction,
    /// not per-attempt).
    pub txns_with_aborts: u64,
    /// ADT-level operation descriptors published via
    /// [`crate::TmSys::note_adt_op`] (transactional data structures
    /// announcing logical operations, e.g. map insert / queue dequeue).
    pub adt_ops: u64,
}

impl TmStats {
    /// Total aborted attempts — the sum over every [`crate::AbortCause`]
    /// counter, kept exhaustive so no cause can leak out of the total.
    pub fn aborts(&self) -> u64 {
        self.aborts_requested
            + self.aborts_self
            + self.aborts_validation
            + self.aborts_explicit
            + self.aborts_htm
            + self.aborts_value_validation
    }

    /// Total attempts (commits + aborts).
    pub fn attempts(&self) -> u64 {
        self.commits + self.aborts()
    }

    /// Fraction of attempts that aborted. Zero when nothing ran.
    pub fn abort_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            self.aborts() as f64 / a as f64
        }
    }

    /// Fraction of *logical transactions* that experienced at least one
    /// abort (the paper's "X% of transactions abort" metric).
    pub fn txn_abort_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.txns_with_aborts as f64 / self.commits as f64
        }
    }

    /// Fraction of *committed* transactions that committed on the hardware
    /// path (§4.4.2's "75% of all transactions run successfully in
    /// hardware").
    pub fn htm_commit_share(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.htm_commits as f64 / self.commits as f64
        }
    }

    /// Merge another thread's counters into this one.
    pub fn merge(&mut self, other: &TmStats) {
        macro_rules! add {
            ($($f:ident),* $(,)?) => { $( self.$f += other.$f; )* };
        }
        add!(
            commits,
            aborts_requested,
            aborts_self,
            aborts_validation,
            aborts_explicit,
            aborts_htm,
            aborts_value_validation,
            norec_validations,
            norec_extensions,
            abort_requests_sent,
            wait_steps,
            conflicts,
            inflations,
            deflations,
            reads,
            acquires,
            backup_reused,
            backup_alloc,
            descriptor_reused,
            descriptor_alloc,
            scss_stores,
            scss_failures,
            htm_commits,
            htm_aborts,
            htm_conflict_aborts,
            htm_capacity_aborts,
            htm_explicit_aborts,
            htm_other_aborts,
            fallbacks,
            cm_escalations,
            cm_deescalations,
            txns_with_aborts,
            adt_ops,
        );
    }
}

/// A single-writer statistics counter.
///
/// Exactly one thread (the owner) may call [`Counter::bump`]/[`Counter::add`];
/// any thread may call [`Counter::get`]. The increment is a relaxed
/// load + store rather than `fetch_add`, which the owner-only contract
/// makes exact and which compiles to an ordinary unlocked add — keeping
/// the hot path as cheap as the plain `u64` it replaces.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Owner-only: add one.
    #[inline(always)]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Owner-only: add `n`.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        let v = self.0.load(Ordering::Relaxed);
        self.0.store(v.wrapping_add(n), Ordering::Relaxed);
    }

    /// Any thread: read the current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter. Increments racing with a reset may be lost;
    /// call only while the owner is quiescent if exactness matters.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

macro_rules! for_each_stat {
    ($m:ident) => {
        $m!(
            commits,
            aborts_requested,
            aborts_self,
            aborts_validation,
            aborts_explicit,
            aborts_htm,
            aborts_value_validation,
            norec_validations,
            norec_extensions,
            abort_requests_sent,
            wait_steps,
            conflicts,
            inflations,
            deflations,
            reads,
            acquires,
            backup_reused,
            backup_alloc,
            descriptor_reused,
            descriptor_alloc,
            scss_stores,
            scss_failures,
            htm_commits,
            htm_aborts,
            htm_conflict_aborts,
            htm_capacity_aborts,
            htm_explicit_aborts,
            htm_other_aborts,
            fallbacks,
            cm_escalations,
            cm_deescalations,
            txns_with_aborts,
            adt_ops,
        );
    };
}

/// One thread's live counters (same fields as [`TmStats`]).
///
/// The owning thread bumps; any thread snapshots via [`ThreadStats::load`].
/// Cache-line aligned so two threads' cells never share a line.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct ThreadStats {
    pub commits: Counter,
    pub aborts_requested: Counter,
    pub aborts_self: Counter,
    pub aborts_validation: Counter,
    pub aborts_explicit: Counter,
    pub aborts_htm: Counter,
    pub aborts_value_validation: Counter,
    pub norec_validations: Counter,
    pub norec_extensions: Counter,
    pub abort_requests_sent: Counter,
    pub wait_steps: Counter,
    pub conflicts: Counter,
    pub inflations: Counter,
    pub deflations: Counter,
    pub reads: Counter,
    pub acquires: Counter,
    pub backup_reused: Counter,
    pub backup_alloc: Counter,
    pub descriptor_reused: Counter,
    pub descriptor_alloc: Counter,
    pub scss_stores: Counter,
    pub scss_failures: Counter,
    pub htm_commits: Counter,
    pub htm_aborts: Counter,
    pub htm_conflict_aborts: Counter,
    pub htm_capacity_aborts: Counter,
    pub htm_explicit_aborts: Counter,
    pub htm_other_aborts: Counter,
    pub fallbacks: Counter,
    pub cm_escalations: Counter,
    pub cm_deescalations: Counter,
    pub txns_with_aborts: Counter,
    pub adt_ops: Counter,
}

impl ThreadStats {
    /// Snapshot the live counters into a plain [`TmStats`] report. Safe
    /// to call from any thread at any time.
    pub fn load(&self) -> TmStats {
        let mut out = TmStats::default();
        macro_rules! read {
            ($($f:ident),* $(,)?) => { $( out.$f = self.$f.get(); )* };
        }
        for_each_stat!(read);
        out
    }

    /// Zero every counter. Exact only while the owning thread is
    /// quiescent — see [`Counter::reset`].
    pub fn reset(&self) {
        macro_rules! zero {
            ($($f:ident),* $(,)?) => { $( self.$f.reset(); )* };
        }
        for_each_stat!(zero);
    }

    /// Merge the per-thread cells of `threads` into one report. Safe to
    /// call from any thread at any time.
    pub fn merge_all<'a>(threads: impl IntoIterator<Item = &'a ThreadStats>) -> TmStats {
        let mut out = TmStats::default();
        for t in threads {
            out.merge(&t.load());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_rate_of_empty_is_zero() {
        assert_eq!(TmStats::default().abort_rate(), 0.0);
    }

    #[test]
    fn abort_rate_counts_all_causes() {
        let s = TmStats {
            commits: 80,
            aborts_requested: 10,
            aborts_self: 5,
            aborts_validation: 3,
            aborts_explicit: 2,
            ..Default::default()
        };
        assert_eq!(s.aborts(), 20);
        assert_eq!(s.attempts(), 100);
        assert!((s.abort_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = TmStats { commits: 1, inflations: 2, ..Default::default() };
        let b = TmStats { commits: 3, inflations: 4, htm_commits: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.commits, 4);
        assert_eq!(a.inflations, 6);
        assert_eq!(a.htm_commits, 5);
    }

    #[test]
    fn htm_share() {
        let s = TmStats { commits: 4, htm_commits: 3, ..Default::default() };
        assert!((s.htm_commit_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn thread_stats_round_trip_and_reset() {
        let t = ThreadStats::default();
        t.commits.bump();
        t.commits.bump();
        t.reads.add(7);
        let snap = t.load();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.reads, 7);
        t.reset();
        assert_eq!(t.load(), TmStats::default());
    }

    #[test]
    fn merge_all_sums_threads() {
        let a = ThreadStats::default();
        let b = ThreadStats::default();
        a.commits.bump();
        b.commits.add(3);
        b.inflations.bump();
        let m = ThreadStats::merge_all([&a, &b]);
        assert_eq!(m.commits, 4);
        assert_eq!(m.inflations, 1);
    }
}
