//! NUMA topology and thread-placement policy.
//!
//! The engine's shared metadata tables — registry slots, striped
//! reader-indicator words — are laid out as one synthetic cache line
//! per thread, indexed by the platform's fixed core id. On a multi-node
//! machine, *which* lines sit next to each other decides how much
//! cross-node coherence traffic a scan pays: a writer enumerating the
//! readers of a hot object walks one stripe line per 64 registered
//! threads, and with the legacy interleaved mapping (`stripe = tid mod
//! S`) every stripe mixes threads from every node, so every stripe line
//! bounces between nodes.
//!
//! [`Topology`] answers "which node does core `c` live on", and
//! [`Placement`] turns that into a permutation of thread ids that
//! groups same-node threads contiguously. A grouped striped indicator
//! assigns `stripe = place / 64`, so threads of one node fill whole
//! stripes before spilling into the next — a stripe line is written by
//! (at most) one node and cross-node transfers happen only on the
//! writer's scan, not on every reader registration.
//!
//! Detection reads the Linux sysfs node map
//! (`/sys/devices/system/node/node*/cpulist`); anything that fails to
//! parse degrades to a single node, whose placement is the identity
//! permutation — bit-exact with the layout the seed produced. The
//! simulator has no NUMA domains of its own, so simulated studies use
//! [`Topology::synthetic`] to impose one (round-robin, the common
//! SMT-less socket enumeration) and measure the stripe-sharing effect
//! through the cache model's coherence counters.

use std::sync::Arc;

/// A map from core id to NUMA node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// `node_of[c]` = node of core `c`. Never empty.
    node_of: Vec<u16>,
    n_nodes: usize,
}

impl Topology {
    /// All `n_cores` cores on one node (the identity-placement
    /// topology; also the fallback when detection fails).
    pub fn single_node(n_cores: usize) -> Topology {
        Topology { node_of: vec![0; n_cores.max(1)], n_nodes: 1 }
    }

    /// A synthetic machine of `n_nodes` nodes with cores assigned
    /// round-robin (`node = core mod n_nodes`) — adjacent core ids on
    /// *different* nodes, the enumeration that makes interleaved
    /// striping worst-case and grouping observable under the simulator.
    pub fn synthetic(n_cores: usize, n_nodes: usize) -> Topology {
        let n_cores = n_cores.max(1);
        let n_nodes = n_nodes.clamp(1, n_cores);
        Topology {
            node_of: (0..n_cores).map(|c| (c % n_nodes) as u16).collect(),
            n_nodes,
        }
    }

    /// Build from an explicit core → node map (ids are compacted, so
    /// holes in the numbering are fine).
    pub fn from_nodes(node_of: Vec<u16>) -> Topology {
        if node_of.is_empty() {
            return Topology::single_node(1);
        }
        // Compact node ids to 0..n_nodes preserving order of first
        // appearance, so `n_nodes` is a count, not max-id + 1.
        let mut seen: Vec<u16> = Vec::new();
        let node_of: Vec<u16> = node_of
            .into_iter()
            .map(|raw| match seen.iter().position(|&s| s == raw) {
                Some(i) => i as u16,
                None => {
                    seen.push(raw);
                    (seen.len() - 1) as u16
                }
            })
            .collect();
        Topology { n_nodes: seen.len(), node_of }
    }

    /// Detect the host topology from sysfs, covering at least
    /// `n_cores` cores. Cores sysfs does not mention (oversubscribed
    /// simulations may register more threads than the host has CPUs)
    /// wrap around modulo the detected CPU count. Any read or parse
    /// failure falls back to a single node.
    pub fn detect(n_cores: usize) -> Topology {
        match detect_sysfs() {
            Some(map) if !map.is_empty() => {
                let n = n_cores.max(1);
                Topology::from_nodes((0..n).map(|c| map[c % map.len()]).collect())
            }
            _ => Topology::single_node(n_cores),
        }
    }

    /// Number of nodes (≥ 1).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of mapped cores (≥ 1).
    pub fn n_cores(&self) -> usize {
        self.node_of.len()
    }

    /// Node of core `c` (cores past the map wrap around, matching
    /// oversubscribed platforms that alias virtual cores onto hardware
    /// contexts round-robin).
    pub fn node_of(&self, c: usize) -> usize {
        self.node_of[c % self.node_of.len()] as usize
    }

    /// The placement permutation for `n_threads` threads: same-node
    /// threads take contiguous placement indices (node-major, core-id
    /// order within a node). On a single node this is the identity.
    pub fn placement(&self, n_threads: usize) -> Placement {
        let mut tids: Vec<u32> = (0..n_threads as u32).collect();
        tids.sort_by_key(|&t| self.node_of(t as usize));
        // `tids[i]` = thread placed at index i; invert to index-by-tid.
        let mut index = vec![0u32; n_threads];
        for (i, &t) in tids.iter().enumerate() {
            index[t as usize] = i as u32;
        }
        Placement::new(index, tids.into_boxed_slice())
    }
}

/// A bijection between thread ids and placement indices, produced by
/// [`Topology::placement`]. `index_of` maps tid → place (used when a
/// thread picks its stripe/slot line); `tid_at` is the inverse (used
/// when a scanner decodes a bit back to a thread id).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    index: Box<[u32]>,
    inverse: Box<[u32]>,
    identity: bool,
}

impl Placement {
    fn new(index: Vec<u32>, inverse: Box<[u32]>) -> Placement {
        let identity = index.iter().enumerate().all(|(i, &p)| i as u32 == p);
        Placement { index: index.into_boxed_slice(), inverse, identity }
    }

    /// The identity permutation over `n` threads.
    pub fn identity(n: usize) -> Placement {
        let v: Vec<u32> = (0..n as u32).collect();
        Placement { index: v.clone().into_boxed_slice(), inverse: v.into_boxed_slice(), identity: true }
    }

    /// Number of mapped threads.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when the permutation is the identity (single-node layouts).
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Placement index of thread `tid`. Tids past the map place as
    /// themselves (they cannot collide: mapped tids occupy exactly
    /// `0..len`, and an unmapped tid ≥ `len` places at its own value).
    #[inline]
    pub fn index_of(&self, tid: usize) -> usize {
        match self.index.get(tid) {
            Some(&p) => p as usize,
            None => tid,
        }
    }

    /// Thread id placed at `place` (inverse of [`Placement::index_of`]).
    #[inline]
    pub fn tid_at(&self, place: usize) -> usize {
        match self.inverse.get(place) {
            Some(&t) => t as usize,
            None => place,
        }
    }
}

/// How an engine derives its [`Topology`] (an [`crate::NzConfig`] knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyPolicy {
    /// Identity placement, interleaved striping — the seed layout.
    /// The default: committed baselines are reproduced bit-exactly.
    Flat,
    /// Detect the host's node map from sysfs and group same-node
    /// threads; on a single-node host (or when detection fails) the
    /// placement is the identity and only the stripe mapping changes
    /// to grouped.
    Detect,
    /// A synthetic round-robin machine of this many nodes
    /// ([`Topology::synthetic`]) — for simulator placement studies.
    Synthetic(usize),
}

impl TopologyPolicy {
    /// Resolve the policy into a placement for `n_threads` threads;
    /// `None` means "keep the legacy flat layout".
    pub fn resolve(self, n_threads: usize) -> Option<Arc<Placement>> {
        match self {
            TopologyPolicy::Flat => None,
            TopologyPolicy::Detect => {
                Some(Arc::new(Topology::detect(n_threads).placement(n_threads)))
            }
            TopologyPolicy::Synthetic(nodes) => {
                Some(Arc::new(Topology::synthetic(n_threads, nodes).placement(n_threads)))
            }
        }
    }
}

fn detect_sysfs() -> Option<Vec<u16>> {
    let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
    let mut cpu_node: Vec<(usize, u16)> = Vec::new();
    for e in entries.flatten() {
        let name = e.file_name();
        let name = name.to_str()?;
        let Some(id) = name.strip_prefix("node").and_then(|s| s.parse::<u16>().ok()) else {
            continue;
        };
        let list = std::fs::read_to_string(e.path().join("cpulist")).ok()?;
        for cpu in parse_cpulist(list.trim())? {
            cpu_node.push((cpu, id));
        }
    }
    if cpu_node.is_empty() {
        return None;
    }
    cpu_node.sort_unstable();
    // Require a dense 0..n cpu numbering; anything stranger is treated
    // as a detection failure (single node) rather than guessed at.
    if cpu_node.iter().enumerate().any(|(i, &(c, _))| i != c) {
        return None;
    }
    Some(cpu_node.into_iter().map(|(_, n)| n).collect())
}

/// Parse a sysfs cpulist ("0-3,8,10-11") into cpu indices.
fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    if s.is_empty() {
        return Some(cpus);
    }
    for part in s.split(',') {
        match part.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (lo.trim().parse::<usize>().ok()?, hi.trim().parse::<usize>().ok()?);
                if hi < lo || hi - lo > 1 << 20 {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(part.trim().parse::<usize>().ok()?),
        }
    }
    Some(cpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_placement_is_identity() {
        let t = Topology::single_node(8);
        assert_eq!(t.n_nodes(), 1);
        let p = t.placement(8);
        assert!(p.is_identity());
        for tid in 0..8 {
            assert_eq!(p.index_of(tid), tid);
            assert_eq!(p.tid_at(tid), tid);
        }
    }

    #[test]
    fn synthetic_round_robin_groups_by_node() {
        // 8 cores, 2 nodes, round-robin: evens on node 0, odds on 1.
        let t = Topology::synthetic(8, 2);
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        let p = t.placement(8);
        assert!(!p.is_identity());
        // Node 0's threads (0,2,4,6) take places 0..4 in tid order.
        assert_eq!(
            (0..8).map(|t| p.index_of(t)).collect::<Vec<_>>(),
            vec![0, 4, 1, 5, 2, 6, 3, 7]
        );
        // Inverse really inverts.
        for tid in 0..8 {
            assert_eq!(p.tid_at(p.index_of(tid)), tid);
        }
    }

    #[test]
    fn placement_is_stable_across_resolutions() {
        // Same topology, same thread count ⇒ identical permutation —
        // the property that keeps slot/stripe mapping stable when a
        // thread exits and a new one reuses its core id.
        let a = Topology::synthetic(130, 4).placement(130);
        let b = Topology::synthetic(130, 4).placement(130);
        assert_eq!(a, b);
        for tid in 0..130 {
            assert_eq!(a.tid_at(a.index_of(tid)), tid);
        }
    }

    #[test]
    fn unmapped_tids_place_as_themselves_without_collision() {
        let p = Topology::synthetic(6, 3).placement(6);
        let mut places: Vec<usize> = (0..10).map(|t| p.index_of(t)).collect();
        places.sort_unstable();
        places.dedup();
        assert_eq!(places.len(), 10, "mapped and unmapped tids never collide");
        assert_eq!(p.index_of(9), 9);
        assert_eq!(p.tid_at(9), 9);
    }

    #[test]
    fn from_nodes_compacts_sparse_ids() {
        let t = Topology::from_nodes(vec![3, 3, 7, 7, 3]);
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(2), 1);
        assert_eq!(t.node_of(4), 0);
    }

    #[test]
    fn node_of_wraps_past_the_map() {
        let t = Topology::synthetic(4, 2);
        assert_eq!(t.node_of(5), t.node_of(1));
    }

    #[test]
    fn cpulist_parsing() {
        assert_eq!(parse_cpulist("0-3").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpulist("0,2,4-5").unwrap(), vec![0, 2, 4, 5]);
        assert_eq!(parse_cpulist("7").unwrap(), vec![7]);
        assert!(parse_cpulist("3-1").is_none());
        assert!(parse_cpulist("x").is_none());
    }

    #[test]
    fn detect_never_panics_and_covers_requested_cores() {
        // On any host: either a real map or the single-node fallback.
        let t = Topology::detect(16);
        assert!(t.n_nodes() >= 1);
        assert_eq!(t.placement(16).len(), 16);
        // Oversubscription: more threads than the host has CPUs still
        // yields a full bijection.
        let p = Topology::detect(4).placement(300);
        for tid in 0..300 {
            assert_eq!(p.tid_at(p.index_of(tid)), tid);
        }
    }

    #[test]
    fn policy_resolution() {
        assert!(TopologyPolicy::Flat.resolve(8).is_none());
        let p = TopologyPolicy::Synthetic(2).resolve(8).unwrap();
        assert!(!p.is_identity());
        // Detect resolves to *some* placement on every host.
        let p = TopologyPolicy::Detect.resolve(8).unwrap();
        assert_eq!(p.len(), 8);
    }
}
