//! Flight recorder: per-thread transaction event tracing.
//!
//! The paper's §4.4 narrative is a *timeline* narrative — which
//! transactions aborted, when objects inflated, how often the hybrid fell
//! back to software — but quiescent counters ([`crate::TmStats`]) can only
//! say how *often*, never *when* or *where*. The flight recorder closes
//! that gap: each thread appends fixed-size binary [`TraceEvent`] records
//! into a private overwrite-oldest ring ([`TraceRing`]), and after a run
//! the rings are drained and merged into one time-ordered [`Trace`] that
//! exports to JSON-lines or Chrome `trace_event` format (loadable in
//! Perfetto / `chrome://tracing`).
//!
//! ## Cost model
//!
//! The *types* in this module are always compiled (they appear in the
//! [`crate::TmSys`] observability surface), but the engines only *record*
//! when the non-default `trace` cargo feature is on **and** tracing was
//! armed at runtime ([`crate::TmSys::set_tracing`]). With the feature off
//! the hot-path hooks compile to nothing; with it on but disarmed they
//! cost one relaxed load.
//!
//! ## Clock domain
//!
//! Events carry the owning platform's clock
//! ([`nztm_sim::Platform::now`]): logical cycles on the simulator —
//! the *same* clock the scheduler's decision trace uses, which is what
//! lets `nztm-check` interleave [`EventKind::SchedSwitch`] markers into a
//! failure timeline — and nanoseconds on native.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::txn::AbortCause;

/// What happened. Each variant documents how the generic payload words
/// `a` and `b` of its [`TraceEvent`] are interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction attempt began. `a` = serial.
    TxnBegin = 0,
    /// The attempt committed. `a` = serial.
    TxnCommit = 1,
    /// The attempt aborted. `a` = serial, `b` = [`AbortCause::code`].
    TxnAbort = 2,
    /// An object was acquired for writing. `a` = object address
    /// (`NZHeader::addr`), `b` = serial.
    Acquire = 3,
    /// A conflict with another transaction was observed on an object.
    /// `a` = object address, `b` = packed peer identity ([`pack_txn`]).
    Conflict = 4,
    /// The conflict was resolved by waiting (first wait per resolution
    /// call). `a` = object address, `b` = packed peer identity.
    Wait = 5,
    /// The object was inflated to a DSTM-style locator (NZSTM §2.3.1).
    /// `a` = object address, `b` = packed identity of the unresponsive
    /// owner.
    Inflate = 6,
    /// The object was deflated back to zero-indirection. `a` = object
    /// address, `b` = serial of the deflating transaction.
    Deflate = 7,
    /// An SCSS-wrapped store ran (§2.3.2). `a` = 1 on success, 0 when the
    /// store observed its own AbortNowPlease. `b` = serial.
    ScssStore = 8,
    /// The hybrid started a hardware attempt. `a` = attempt index within
    /// this logical transaction (0-based).
    HtmAttempt = 9,
    /// The hardware attempt committed. `a` = attempt index.
    HtmCommit = 10,
    /// The hardware attempt aborted. `a` = attempt index; `b` bits 7:0 =
    /// CPS reason class (0 conflict, 1 capacity, 2 other, 3 explicit),
    /// bits 39:8 = the backend's raw abort status word (native RTM
    /// `_xbegin` status; 0 on the simulated model).
    HtmAbort = 11,
    /// The hybrid gave up on hardware and fell back to software. `a` =
    /// hardware attempts consumed.
    HtmFallback = 12,
    /// The simulated scheduler handed the run token to a core. `thread` =
    /// `a` = the chosen core. Injected by [`Trace::merge_schedule`].
    SchedSwitch = 13,
    /// A writer scanned one flagged stripe of a striped reader indicator
    /// while requesting reader aborts. `a` = stripe line address, `b` =
    /// object address (`NZHeader::addr`). Only emitted past 64 threads
    /// (flat indicators keep readers on the header line and never scan).
    ReaderScan = 14,
    /// The contention manager switched an object's handling mode
    /// (adaptive policies only; see [`crate::cm::CmMode`]). `a` = object
    /// address, `b` = the [`crate::cm::CmMode::code`] switched *to*.
    CmMode = 15,
    /// An ADT-level operation descriptor published by a transactional
    /// data structure (see [`crate::adt::AdtOpDesc`] and
    /// [`crate::TmSys::note_adt_op`]). `a` = the operation key,
    /// `b` = [`crate::adt::AdtOpDesc::pack`] (structure id + op kind).
    AdtOp = 16,
    /// A NOrec value-validation pass started (full read-log scan).
    /// `a` = the snapshot clock being validated from, `b` = read-set
    /// size (locations scanned).
    NorecValidate = 17,
    /// A NOrec validation pass succeeded with a newer clock, extending
    /// the snapshot. `a` = old snapshot, `b` = new snapshot.
    NorecExtend = 18,
}

impl EventKind {
    /// Stable snake_case name used by the JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort => "txn_abort",
            EventKind::Acquire => "acquire",
            EventKind::Conflict => "conflict",
            EventKind::Wait => "wait",
            EventKind::Inflate => "inflate",
            EventKind::Deflate => "deflate",
            EventKind::ScssStore => "scss_store",
            EventKind::HtmAttempt => "htm_attempt",
            EventKind::HtmCommit => "htm_commit",
            EventKind::HtmAbort => "htm_abort",
            EventKind::HtmFallback => "htm_fallback",
            EventKind::SchedSwitch => "sched_switch",
            EventKind::ReaderScan => "reader_scan",
            EventKind::CmMode => "cm_mode",
            EventKind::AdtOp => "adt_op",
            EventKind::NorecValidate => "norec_validate",
            EventKind::NorecExtend => "norec_extend",
        }
    }
}

/// Pack a peer transaction's identity into one payload word:
/// thread id in the top 16 bits, serial (truncated to 48 bits) below.
pub fn pack_txn(thread: usize, serial: u64) -> u64 {
    ((thread as u64 & 0xFFFF) << 48) | (serial & 0x0000_FFFF_FFFF_FFFF)
}

/// Inverse of [`pack_txn`].
pub fn unpack_txn(word: u64) -> (usize, u64) {
    ((word >> 48) as usize, word & 0x0000_FFFF_FFFF_FFFF)
}

/// Render a transaction identity as `t<thread>#<serial>`.
pub fn txn_name(thread: usize, serial: u64) -> String {
    format!("t{thread}#{serial}")
}

/// One fixed-size binary event record (32 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Platform clock at record time (sim: logical cycles; native: ns).
    pub clock: u64,
    /// First payload word; meaning depends on [`EventKind`].
    pub a: u64,
    /// Second payload word; meaning depends on [`EventKind`].
    pub b: u64,
    /// Per-thread record sequence number: breaks clock ties so a merged
    /// trace preserves each thread's program order.
    pub seq: u32,
    /// Recording thread (sim core id / registered native thread id).
    pub thread: u16,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Merged-trace ordering key: time, then thread, then program order.
    fn key(&self) -> (u64, u16, u32) {
        (self.clock, self.thread, self.seq)
    }

    /// Human-readable one-liner. `obj_name` maps an object address to a
    /// display name (e.g. `obj#3`); pass `|a| format!("obj@{a:#x}")` when
    /// no allocation map is available.
    pub fn describe(&self, obj_name: &mut dyn FnMut(u64) -> String) -> String {
        let me = |serial: u64| txn_name(self.thread as usize, serial);
        let peer = |word: u64| {
            let (t, s) = unpack_txn(word);
            txn_name(t, s)
        };
        match self.kind {
            EventKind::TxnBegin => format!("{} begin", me(self.a)),
            EventKind::TxnCommit => format!("{} commit", me(self.a)),
            EventKind::TxnAbort => {
                let cause =
                    AbortCause::from_code(self.b).map(AbortCause::name).unwrap_or("unknown");
                format!("{} abort ({cause})", me(self.a))
            }
            EventKind::Acquire => format!("{} acquires {}", me(self.b), obj_name(self.a)),
            EventKind::Conflict => {
                format!("conflict on {} with {}", obj_name(self.a), peer(self.b))
            }
            EventKind::Wait => format!("waits for {} on {}", peer(self.b), obj_name(self.a)),
            EventKind::Inflate => {
                format!("inflates {} (unresponsive {})", obj_name(self.a), peer(self.b))
            }
            EventKind::Deflate => format!("{} deflates {}", me(self.b), obj_name(self.a)),
            EventKind::ScssStore => {
                let ok = if self.a == 1 { "ok" } else { "failed" };
                format!("{} scss store {ok}", me(self.b))
            }
            EventKind::HtmAttempt => format!("htm attempt {}", self.a),
            EventKind::HtmCommit => format!("htm commit (attempt {})", self.a),
            EventKind::HtmAbort => {
                let why = match self.b & 0xff {
                    0 => "conflict",
                    1 => "capacity",
                    2 => "other",
                    _ => "explicit",
                };
                let raw = (self.b >> 8) as u32;
                if raw == 0 {
                    format!("htm abort (attempt {}, {why})", self.a)
                } else {
                    format!("htm abort (attempt {}, {why}, rtm status {raw:#x})", self.a)
                }
            }
            EventKind::HtmFallback => {
                format!("falls back to software after {} hw attempts", self.a)
            }
            EventKind::SchedSwitch => format!("scheduler runs core {}", self.a),
            EventKind::ReaderScan => {
                format!("scans reader stripe @{:#x} of {}", self.a, obj_name(self.b))
            }
            EventKind::CmMode => {
                let mode = match self.b {
                    0 => "normal",
                    1 => "escalated",
                    _ => "unknown",
                };
                format!("cm switches {} to {mode}", obj_name(self.a))
            }
            EventKind::AdtOp => {
                let (adt, op) = crate::adt::AdtOpDesc::unpack(self.b);
                format!("adt#{adt} {} key {}", op.name(), self.a)
            }
            EventKind::NorecValidate => {
                format!("norec validates {} reads at clock {}", self.b, self.a)
            }
            EventKind::NorecExtend => {
                format!("norec extends snapshot {} -> {}", self.a, self.b)
            }
        }
    }
}

/// A single thread's overwrite-oldest event ring.
///
/// Single-writer: only the owning thread records. Lock-free trivially —
/// no other thread touches the buffer until a quiescent drain.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write slot.
    next: usize,
    /// Per-thread monotone sequence number.
    seq: u32,
    /// Events lost to overwriting since the last drain.
    overwritten: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (min 16).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(16);
        TraceRing { buf: Vec::with_capacity(cap), cap, next: 0, seq: 0, overwritten: 0 }
    }

    /// Append one event, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, clock: u64, thread: u16, kind: EventKind, a: u64, b: u64) {
        let ev = TraceEvent { clock, a, b, seq: self.seq, thread, kind };
        self.seq = self.seq.wrapping_add(1);
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.overwritten += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Move the buffered events (oldest first) into `out`, returning how
    /// many older events had been overwritten. Resets the ring.
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) -> u64 {
        if self.buf.len() == self.cap {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        self.buf.clear();
        self.next = 0;
        std::mem::take(&mut self.overwritten)
    }
}

/// Per-object contention totals, aggregated from a [`Trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectHeat {
    /// Synthetic object address (`NZHeader::addr`; deterministic per
    /// allocation order).
    pub addr: u64,
    pub conflicts: u64,
    pub waits: u64,
    pub inflations: u64,
    pub deflations: u64,
    pub acquires: u64,
    /// Writer scans of this reader-indicator stripe line. Non-zero only
    /// for stripe addresses (striped indicators, > 64 threads); attributes
    /// reader-side contention to the exact stripe a writer had to walk.
    pub reader_scans: u64,
}

impl ObjectHeat {
    /// Hotness ranking key: conflicts + inflations weigh most.
    pub fn score(&self) -> u64 {
        self.conflicts + self.inflations
    }
}

/// A merged, time-ordered event trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in `(clock, thread, seq)` order once [`Trace::sort`] (or
    /// any producer that sorts) has run.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwriting across all threads.
    pub overwritten: u64,
}

impl Trace {
    /// True when no events were captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sort into merged time order `(clock, thread, seq)`.
    pub fn sort(&mut self) {
        self.events.sort_by_key(TraceEvent::key);
    }

    /// Fold another trace in (re-sorts).
    pub fn merge(&mut self, other: Trace) {
        self.events.extend_from_slice(&other.events);
        self.overwritten += other.overwritten;
        self.sort();
    }

    /// Interleave scheduler decisions — `(clock, chosen core)` pairs in
    /// the same logical clock domain — as [`EventKind::SchedSwitch`]
    /// events (re-sorts).
    pub fn merge_schedule(&mut self, switches: impl IntoIterator<Item = (u64, u32)>) {
        for (seq, (clock, core)) in switches.into_iter().enumerate() {
            self.events.push(TraceEvent {
                clock,
                a: core as u64,
                b: 0,
                seq: seq as u32,
                thread: core as u16,
                kind: EventKind::SchedSwitch,
            });
        }
        self.sort();
    }

    /// Export as JSON-lines: one self-describing object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 80);
        for e in &self.events {
            let _ = writeln!(
                out,
                "{{\"clock\":{},\"thread\":{},\"seq\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.clock,
                e.thread,
                e.seq,
                e.kind.name(),
                e.a,
                e.b
            );
        }
        out
    }

    /// Export in Chrome `trace_event` format (the JSON object form), as
    /// consumed by Perfetto and `chrome://tracing`.
    ///
    /// Transactions render as duration spans (`B`/`E`) named
    /// `txn#<serial>` on one track per thread; everything else renders as
    /// thread-scoped instant events. Timestamps are the trace clock
    /// passed through as microseconds — on the simulator that makes one
    /// display-µs equal one logical cycle.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 120 + 64);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&s);
        };
        // Open transaction span per thread, so crash-truncated spans can
        // be closed at the end (Perfetto drops unmatched "B" events).
        let mut open: HashMap<u16, u64> = HashMap::new();
        let mut last_clock = 0u64;
        for e in &self.events {
            last_clock = last_clock.max(e.clock);
            let tid = e.thread;
            match e.kind {
                EventKind::TxnBegin => {
                    // A begin while a span is open (lost end event after
                    // ring overwrite, or a crashed attempt): close first.
                    if open.remove(&tid).is_some() {
                        emit(chrome_end(e.clock, tid), &mut out);
                    }
                    open.insert(tid, e.a);
                    emit(chrome_begin(e.clock, tid, e.a, "{}"), &mut out);
                }
                EventKind::TxnCommit | EventKind::TxnAbort => {
                    if open.remove(&tid).is_none() {
                        // End without begin (ring overwrote the begin):
                        // synthesize a zero-length span so the outcome
                        // still shows.
                        emit(chrome_begin(e.clock, tid, e.a, "{}"), &mut out);
                    }
                    let outcome = if e.kind == EventKind::TxnCommit {
                        "commit".to_string()
                    } else {
                        let cause = AbortCause::from_code(e.b)
                            .map(AbortCause::name)
                            .unwrap_or("unknown");
                        format!("abort:{cause}")
                    };
                    emit(
                        format!(
                            "{{\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":{},\
                             \"args\":{{\"outcome\":\"{}\"}}}}",
                            tid, e.clock, outcome
                        ),
                        &mut out,
                    );
                }
                _ => {
                    emit(
                        format!(
                            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\
                             \"name\":\"{}\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                            tid,
                            e.clock,
                            e.kind.name(),
                            e.a,
                            e.b
                        ),
                        &mut out,
                    );
                }
            }
        }
        for (tid, _) in open {
            emit(chrome_end(last_clock + 1, tid), &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// The `n` hottest objects by conflict/inflation count (ties broken
    /// by waits, then acquires, then address for determinism).
    pub fn hottest_objects(&self, n: usize) -> Vec<ObjectHeat> {
        let mut heat: HashMap<u64, ObjectHeat> = HashMap::new();
        for e in &self.events {
            let h = match e.kind {
                EventKind::Acquire
                | EventKind::Conflict
                | EventKind::Wait
                | EventKind::Inflate
                | EventKind::Deflate
                | EventKind::ReaderScan => {
                    heat.entry(e.a).or_insert_with(|| ObjectHeat { addr: e.a, ..Default::default() })
                }
                _ => continue,
            };
            match e.kind {
                EventKind::Acquire => h.acquires += 1,
                EventKind::Conflict => h.conflicts += 1,
                EventKind::Wait => h.waits += 1,
                EventKind::Inflate => h.inflations += 1,
                EventKind::Deflate => h.deflations += 1,
                EventKind::ReaderScan => h.reader_scans += 1,
                _ => {}
            }
        }
        let mut all: Vec<ObjectHeat> = heat.into_values().collect();
        all.sort_by_key(|h| (std::cmp::Reverse(h.score()), std::cmp::Reverse(h.waits), std::cmp::Reverse(h.acquires), h.addr));
        all.truncate(n);
        all
    }

    /// Structural sanity of a merged trace: events are time-ordered, and
    /// each thread's transaction lifecycle alternates begin → commit/abort
    /// with matching serials. A trailing unclosed attempt is legal (crash
    /// runs); a close without an open is legal only after ring overwrite
    /// (`overwritten > 0`).
    pub fn check_well_formed(&self) -> Result<(), String> {
        for w in self.events.windows(2) {
            if w[0].key() > w[1].key() {
                return Err(format!("events out of order: {:?} then {:?}", w[0], w[1]));
            }
        }
        let mut open: HashMap<u16, u64> = HashMap::new();
        for e in &self.events {
            match e.kind {
                EventKind::TxnBegin => {
                    if let Some(prev) = open.insert(e.thread, e.a) {
                        if self.overwritten == 0 {
                            return Err(format!(
                                "thread {} began t#{} with t#{prev} still open",
                                e.thread, e.a
                            ));
                        }
                    }
                }
                EventKind::TxnCommit | EventKind::TxnAbort => match open.remove(&e.thread) {
                    Some(serial) if serial != e.a => {
                        return Err(format!(
                            "thread {} closed t#{} but t#{serial} was open",
                            e.thread, e.a
                        ));
                    }
                    None if self.overwritten == 0 => {
                        return Err(format!(
                            "thread {} closed t#{} with no open attempt",
                            e.thread, e.a
                        ));
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        Ok(())
    }
}

fn chrome_begin(clock: u64, tid: u16, serial: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{clock},\
         \"name\":\"txn#{serial}\",\"args\":{args}}}"
    )
}

fn chrome_end(clock: u64, tid: u16) -> String {
    format!("{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{clock}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(clock: u64, thread: u16, seq: u32, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent { clock, a, b, seq, thread, kind }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = TraceRing::new(16);
        for i in 0..20u64 {
            r.record(i, 0, EventKind::TxnBegin, i, 0);
        }
        let mut out = Vec::new();
        let lost = r.drain_into(&mut out);
        assert_eq!(lost, 4);
        assert_eq!(out.len(), 16);
        assert_eq!(out[0].a, 4, "oldest surviving event first");
        assert_eq!(out[15].a, 19);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_drain_resets_for_reuse() {
        let mut r = TraceRing::new(16);
        r.record(1, 0, EventKind::TxnBegin, 0, 0);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 0);
        r.record(2, 0, EventKind::TxnCommit, 0, 0);
        out.clear();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, EventKind::TxnCommit);
    }

    #[test]
    fn merge_orders_by_clock_thread_seq() {
        let mut t = Trace {
            events: vec![ev(5, 1, 0, EventKind::TxnBegin, 0, 0)],
            overwritten: 0,
        };
        t.merge(Trace {
            events: vec![
                ev(3, 0, 0, EventKind::TxnBegin, 0, 0),
                ev(5, 0, 1, EventKind::TxnCommit, 0, 0),
            ],
            overwritten: 0,
        });
        let clocks: Vec<(u64, u16)> = t.events.iter().map(|e| (e.clock, e.thread)).collect();
        assert_eq!(clocks, vec![(3, 0), (5, 0), (5, 1)]);
        assert!(t.check_well_formed().is_ok());
    }

    #[test]
    fn well_formedness_catches_mismatched_serial() {
        let t = Trace {
            events: vec![
                ev(1, 0, 0, EventKind::TxnBegin, 7, 0),
                ev(2, 0, 1, EventKind::TxnCommit, 8, 0),
            ],
            overwritten: 0,
        };
        assert!(t.check_well_formed().is_err());
    }

    #[test]
    fn trailing_open_attempt_is_legal() {
        let t = Trace {
            events: vec![ev(1, 0, 0, EventKind::TxnBegin, 7, 0)],
            overwritten: 0,
        };
        assert!(t.check_well_formed().is_ok());
    }

    #[test]
    fn hottest_objects_ranks_by_conflicts_and_inflations() {
        let t = Trace {
            events: vec![
                ev(1, 0, 0, EventKind::Conflict, 100, 0),
                ev(2, 0, 1, EventKind::Conflict, 100, 0),
                ev(3, 0, 2, EventKind::Inflate, 200, 0),
                ev(4, 0, 3, EventKind::Acquire, 300, 0),
            ],
            overwritten: 0,
        };
        let hot = t.hottest_objects(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].addr, 100);
        assert_eq!(hot[0].conflicts, 2);
        assert_eq!(hot[1].addr, 200);
        assert_eq!(hot[1].inflations, 1);
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let mut t = Trace {
            events: vec![
                ev(1, 0, 0, EventKind::TxnBegin, 0, 0),
                ev(4, 0, 1, EventKind::Conflict, 100, pack_txn(1, 3)),
                ev(9, 0, 2, EventKind::TxnAbort, 0, AbortCause::Requested.code()),
                ev(11, 1, 0, EventKind::TxnBegin, 3, 0),
            ],
            overwritten: 0,
        };
        t.sort();
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("abort:requested"));
        // The trailing open span on thread 1 gets a synthesized end.
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let t = Trace {
            events: vec![
                ev(1, 0, 0, EventKind::TxnBegin, 0, 0),
                ev(2, 0, 1, EventKind::TxnCommit, 0, 0),
            ],
            overwritten: 0,
        };
        let s = t.to_jsonl();
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(s.contains("\"kind\":\"txn_begin\""));
    }

    #[test]
    fn pack_unpack_round_trips() {
        let w = pack_txn(13, 0xABCDE);
        assert_eq!(unpack_txn(w), (13, 0xABCDE));
    }

    #[test]
    fn describe_names_objects_and_peers() {
        let e = ev(4, 2, 0, EventKind::Conflict, 100, pack_txn(1, 3));
        let mut namer = |addr: u64| format!("obj#{}", addr / 100);
        assert_eq!(e.describe(&mut namer), "conflict on obj#1 with t1#3");
    }
}
