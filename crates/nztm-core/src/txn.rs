//! Transaction descriptors.
//!
//! The paper's key protocol word: a transaction's `Status`
//! ({Active, Committed, Aborted}) is stored **in the same word** as the
//! `AbortNowPlease` flag "so both may be accessed atomically using a
//! Compare&Swap instruction" (§2.1). All of NZSTM's progress reasoning
//! hangs off this word:
//!
//! * a conflicting transaction *requests* an abort by atomically setting
//!   `AbortNowPlease` (it never forces the victim's status);
//! * the victim *acknowledges* by setting `Status = Aborted` itself, which
//!   is the point after which it is guaranteed never to write object data
//!   again;
//! * commit is a CAS from `(Active, !AbortNowPlease)` to `Committed`, so a
//!   transaction that has been asked to abort can never commit.
//!
//! Descriptors are logically fresh per transaction *attempt* (the paper
//! relies on this too — it is why SPIN sees no repeated state even under
//! livelock, §3). Object owner fields hold raw pointers carrying one
//! strong `Arc` count; replacement defers the drop through the epoch
//! reclamation crate so concurrent readers holding an epoch pin never
//! observe a freed descriptor.
//!
//! ## Recycling and the ABA argument
//!
//! Physically, descriptors are *recycled* through a per-thread free list
//! (see `engine.rs`): allocating one per attempt put a `malloc`/`free`
//! pair on the fast path the paper's pitch says should be lean. Reuse of
//! an owner-word pointer is the classic ABA hazard — a stale reader that
//! loaded `&TxnDesc` must never see the descriptor morph into a later
//! incarnation under it. Recycling is safe because a descriptor is only
//! reset when `Arc::get_mut` succeeds, i.e. its strong count is exactly
//! one (the free list's own) and there are no weak counts. Every shared
//! word that can hand out a descriptor reference — object owner words,
//! registry slots, locator fields, backup `installer` words — holds one
//! strong count for as long as the raw pointer is reachable, and those
//! counts are only released through epoch-deferred drops that run after
//! every pinned reader has unpinned. So `strong == 1` proves no shared
//! word still stores the pointer *and* no pinned reader can still be
//! dereferencing it. The [`TxnDesc::incarnation`] tag is bumped on every
//! reset as a belt-and-braces witness: tests (and assertions) can detect
//! an impossible confusion between incarnations, and debuggers can tell
//! attempts apart even though the address repeats.

use std::sync::atomic::{AtomicU64, Ordering};

/// Transaction status, two bits of the [`TxnDesc`] state word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    Active,
    Committed,
    Aborted,
}

const STATUS_MASK: u64 = 0b11;
const ST_ACTIVE: u64 = 0;
const ST_COMMITTED: u64 = 1;
const ST_ABORTED: u64 = 2;
/// The AbortNowPlease flag bit.
const ANP: u64 = 0b100;

fn decode_status(bits: u64) -> Status {
    match bits & STATUS_MASK {
        ST_ACTIVE => Status::Active,
        ST_COMMITTED => Status::Committed,
        ST_ABORTED => Status::Aborted,
        _ => unreachable!("status bits corrupted"),
    }
}

/// Why a transaction attempt aborted; recorded for statistics and used by
/// retry policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// Own `AbortNowPlease` flag was found set (another transaction
    /// requested the abort).
    Requested,
    /// The contention manager told this transaction to abort itself.
    SelfAbort,
    /// Commit-time validation failed (invisible-reader extension).
    Validation,
    /// Explicit user abort (e.g. `retry`-style workload logic).
    Explicit,
    /// The enclosing best-effort hardware attempt was doomed (hybrid
    /// NZTM, §2.4): a transactional load/store hit a coherence conflict
    /// or the attempt was asked to stand down, and the `Abort` unwinds
    /// the user closure out of the hardware path. Distinct from
    /// [`AbortCause::Requested`] — no software peer set AbortNowPlease;
    /// conflating the two inflated `aborts_requested` in any tooling
    /// that inspected the cause on the hardware path.
    Htm,
    /// NOrec value validation failed: a committed writer changed a value
    /// this attempt read (and the change did not restore the original
    /// bytes — A→B→A histories pass value validation by design).
    /// Distinct from [`AbortCause::Validation`], which is the
    /// invisible-read *version* check of the ownership modes.
    ValueValidation,
}

impl AbortCause {
    /// Every cause, in [`AbortCause::code`] order — for exhaustive
    /// accounting tests and report iteration.
    pub const ALL: [AbortCause; 6] = [
        AbortCause::Requested,
        AbortCause::SelfAbort,
        AbortCause::Validation,
        AbortCause::Explicit,
        AbortCause::Htm,
        AbortCause::ValueValidation,
    ];

    /// Stable numeric code, used in flight-recorder event records.
    pub fn code(self) -> u64 {
        match self {
            AbortCause::Requested => 0,
            AbortCause::SelfAbort => 1,
            AbortCause::Validation => 2,
            AbortCause::Explicit => 3,
            AbortCause::Htm => 4,
            AbortCause::ValueValidation => 5,
        }
    }

    /// Inverse of [`AbortCause::code`]; `None` for unknown codes.
    pub fn from_code(code: u64) -> Option<AbortCause> {
        Some(match code {
            0 => AbortCause::Requested,
            1 => AbortCause::SelfAbort,
            2 => AbortCause::Validation,
            3 => AbortCause::Explicit,
            4 => AbortCause::Htm,
            5 => AbortCause::ValueValidation,
            _ => return None,
        })
    }

    /// Short human-readable name (`requested`, `self`, `validation`,
    /// `explicit`, `htm`, `value_validation`).
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::Requested => "requested",
            AbortCause::SelfAbort => "self",
            AbortCause::Validation => "validation",
            AbortCause::Explicit => "explicit",
            AbortCause::Htm => "htm",
            AbortCause::ValueValidation => "value_validation",
        }
    }
}

/// The `Abort` error: unwinds a transaction attempt back to the retry
/// loop. Carried by `Result` through user transaction code.
///
/// Carries its [`AbortCause`] so callers learn *why* an attempt aborted
/// from the error itself instead of diffing statistics counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort(pub AbortCause);

impl Abort {
    /// Why the attempt aborted.
    pub fn cause(&self) -> AbortCause {
        self.0
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted ({})", self.0.name())
    }
}

/// A transaction descriptor (the paper's `Transaction`).
///
/// One is used per attempt (recycled via the engine's per-thread free
/// list; see the module docs for the ABA argument). `state` packs the
/// status and the `AbortNowPlease` flag. The remaining fields support the
/// Karma contention manager and the LogTM-style deadlock detection the
/// paper combines it with (§4.3): `priority` counts objects acquired in
/// this attempt; `waiting_flag`+`waiting_on` implement "TL raises a flag
/// and waits until TH is done".
///
/// Aligned to 128 bytes (two lines, for adjacent-line prefetchers): the
/// `state` word is CAS'd by conflicting threads while `scss_lock` and
/// `waiting_flag` spin locally, and the descriptor must never share a
/// cache line with a neighboring allocation.
#[repr(align(128))]
pub struct TxnDesc {
    state: AtomicU64,
    /// Core/thread id that runs this transaction.
    pub thread: u32,
    /// Monotonically increasing attempt serial for this thread (debug aid;
    /// also makes descriptors distinguishable in traces).
    pub serial: u64,
    /// Incarnation counter: bumped by [`TxnDesc::reset_for_attempt`] each
    /// time this physical descriptor is recycled for a new attempt.
    /// Distinguishes incarnations that share an address (ABA witness).
    pub incarnation: u64,
    /// Karma priority: number of objects acquired in this attempt.
    priority: AtomicU64,
    /// Raised while this transaction is stalled waiting for another
    /// (deadlock-detection flag from the paper's CM, after LogTM).
    waiting_flag: AtomicU64,
    /// Spinlock used by the native SCSS emulation: serializes this
    /// transaction's paired (check `AbortNowPlease`, store word)
    /// operations against an abort-requester's barrier. See `scss.rs`.
    scss_lock: AtomicU64,
    /// Synthetic address for the deterministic cache model.
    synth: usize,
}

impl TxnDesc {
    pub fn new(thread: u32, serial: u64) -> Self {
        TxnDesc {
            state: AtomicU64::new(ST_ACTIVE),
            thread,
            serial,
            incarnation: 0,
            priority: AtomicU64::new(0),
            waiting_flag: AtomicU64::new(0),
            scss_lock: AtomicU64::new(0),
            synth: nztm_sim::synth_alloc_as(64, nztm_sim::StructClass::TxnDescs),
        }
    }

    /// Reset a recycled descriptor for a fresh attempt.
    ///
    /// Takes `&mut self` so it is only reachable through
    /// `Arc::get_mut` — i.e. after the caller has *proved* sole ownership
    /// (strong count 1, no weak counts). At that point no owner word,
    /// registry slot, locator, or installer field still holds the pointer
    /// and no epoch-pinned reader can still dereference it, so plain
    /// (non-atomic) stores are race-free; the publishing CAS/swap that
    /// later makes the descriptor shared again provides the
    /// happens-before edge. See the module docs for the full ABA
    /// argument. Keeps `synth` (the cache-model address) — reuse of the
    /// same line is exactly the locality win recycling buys.
    pub fn reset_for_attempt(&mut self, thread: u32, serial: u64) {
        *self.state.get_mut() = ST_ACTIVE;
        self.thread = thread;
        self.serial = serial;
        self.incarnation += 1;
        *self.priority.get_mut() = 0;
        *self.waiting_flag.get_mut() = 0;
        *self.scss_lock.get_mut() = 0;
    }

    /// Synthetic address of the state word, for cache-model charging.
    #[inline]
    pub fn addr(&self) -> usize {
        self.synth
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> Status {
        decode_status(self.state.load(Ordering::SeqCst))
    }

    /// Whether `AbortNowPlease` is set.
    #[inline]
    pub fn abort_requested(&self) -> bool {
        self.state.load(Ordering::SeqCst) & ANP != 0
    }

    /// Atomically load (status, abort_requested).
    #[inline]
    pub fn state_snapshot(&self) -> (Status, bool) {
        let s = self.state.load(Ordering::SeqCst);
        (decode_status(s), s & ANP != 0)
    }

    /// Request that this transaction abort itself: atomically set
    /// `AbortNowPlease`. Returns the status observed *at the linearization
    /// point* of the request:
    ///
    /// * `Active` — the victim has not yet acknowledged; if it ever
    ///   commits, the commit CAS will fail. Wait for
    ///   [`Status::Aborted`] or handle unresponsiveness.
    /// * `Committed` — too late, the victim already committed (no
    ///   conflict remains; its ownership is now inert).
    /// * `Aborted` — already acknowledged.
    pub fn request_abort(&self) -> Status {
        let prev = self.state.fetch_or(ANP, Ordering::SeqCst);
        decode_status(prev)
    }

    /// Attempt to commit: CAS `(Active, !AbortNowPlease) → Committed`.
    ///
    /// Fails iff the transaction is no longer plain-active — in practice,
    /// iff `AbortNowPlease` was set first (or the caller already moved the
    /// status). On failure the caller must abort and acknowledge.
    pub fn try_commit(&self) -> bool {
        self.state
            .compare_exchange(ST_ACTIVE, ST_COMMITTED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Set `Status = Aborted`, acknowledging any pending abort request.
    /// After this returns, the transaction must never write object data
    /// again — that is the contract the entire algorithm relies on.
    pub fn acknowledge_abort(&self) {
        loop {
            let cur = self.state.load(Ordering::SeqCst);
            if decode_status(cur) != Status::Active {
                debug_assert_eq!(decode_status(cur), Status::Aborted, "commit/abort race");
                return;
            }
            let new = (cur & !STATUS_MASK) | ST_ABORTED;
            if self
                .state
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// True once the descriptor can no longer interfere with object data:
    /// committed, or aborted-and-acknowledged.
    #[inline]
    pub fn is_settled(&self) -> bool {
        self.status() != Status::Active
    }

    // -- contention-management fields ------------------------------------

    /// Karma priority (objects acquired this attempt).
    #[inline]
    pub fn priority(&self) -> u64 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Bump Karma priority after a successful acquire.
    #[inline]
    pub fn gained_object(&self) {
        self.priority.fetch_add(1, Ordering::Relaxed);
    }

    /// Raise/lower the "I am stalled waiting" flag.
    #[inline]
    pub fn set_waiting(&self, waiting: bool) {
        self.waiting_flag.store(waiting as u64, Ordering::SeqCst);
    }

    /// Whether the stalled flag is raised.
    #[inline]
    pub fn is_waiting(&self) -> bool {
        self.waiting_flag.load(Ordering::SeqCst) != 0
    }

    /// TEST-ONLY fault injection (`sanitize` builds): set `Status =
    /// Aborted` *from a requester's thread*, violating the §2.2 rule that
    /// only the victim acknowledges. Exists solely so the sanitizer's
    /// structural detection of exactly this bug can be exercised
    /// (`NzConfig::inject_handshake_bug`).
    #[cfg(feature = "sanitize")]
    pub(crate) fn force_abort_injected(&self) {
        loop {
            let cur = self.state.load(Ordering::SeqCst);
            if decode_status(cur) != Status::Active {
                return;
            }
            let new = (cur & !STATUS_MASK) | ST_ABORTED;
            if self
                .state
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    // -- SCSS support -----------------------------------------------------

    /// Run `f` under this descriptor's SCSS lock (native emulation of the
    /// short hardware transaction). Uncontended in the common case: only
    /// the owning thread's stores and an abort-requester's one-shot
    /// barrier ever take it.
    pub fn with_scss_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        while self
            .scss_lock
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let r = f();
        self.scss_lock.store(0, Ordering::Release);
        r
    }
}

impl std::fmt::Debug for TxnDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (st, anp) = self.state_snapshot();
        f.debug_struct("TxnDesc")
            .field("thread", &self.thread)
            .field("serial", &self.serial)
            .field("status", &st)
            .field("abort_requested", &anp)
            .field("priority", &self.priority())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_descriptor_is_active() {
        let t = TxnDesc::new(0, 1);
        assert_eq!(t.status(), Status::Active);
        assert!(!t.abort_requested());
        assert!(!t.is_settled());
    }

    #[test]
    fn commit_succeeds_when_unmolested() {
        let t = TxnDesc::new(0, 1);
        assert!(t.try_commit());
        assert_eq!(t.status(), Status::Committed);
        assert!(t.is_settled());
    }

    #[test]
    fn abort_request_blocks_commit() {
        let t = TxnDesc::new(0, 1);
        assert_eq!(t.request_abort(), Status::Active);
        assert!(t.abort_requested());
        assert!(!t.try_commit(), "commit must fail after AbortNowPlease");
        t.acknowledge_abort();
        assert_eq!(t.status(), Status::Aborted);
    }

    #[test]
    fn request_after_commit_reports_committed() {
        let t = TxnDesc::new(0, 1);
        assert!(t.try_commit());
        assert_eq!(t.request_abort(), Status::Committed);
        // Status must not regress.
        assert_eq!(t.status(), Status::Committed);
    }

    #[test]
    fn acknowledge_is_idempotent() {
        let t = TxnDesc::new(0, 1);
        t.request_abort();
        t.acknowledge_abort();
        t.acknowledge_abort();
        assert_eq!(t.status(), Status::Aborted);
        assert!(t.abort_requested(), "ANP survives acknowledgement");
    }

    #[test]
    fn self_abort_without_request() {
        // A transaction may abort itself (contention manager decision)
        // without anyone setting ANP.
        let t = TxnDesc::new(0, 1);
        t.acknowledge_abort();
        assert_eq!(t.status(), Status::Aborted);
        assert!(!t.abort_requested());
    }

    #[test]
    fn priority_counts_acquires() {
        let t = TxnDesc::new(3, 1);
        assert_eq!(t.priority(), 0);
        t.gained_object();
        t.gained_object();
        assert_eq!(t.priority(), 2);
    }

    #[test]
    fn waiting_flag_round_trips() {
        let t = TxnDesc::new(0, 1);
        assert!(!t.is_waiting());
        t.set_waiting(true);
        assert!(t.is_waiting());
        t.set_waiting(false);
        assert!(!t.is_waiting());
    }

    #[test]
    fn scss_lock_is_reentrant_free_but_serializes() {
        let t = std::sync::Arc::new(TxnDesc::new(0, 1));
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = std::sync::Arc::clone(&t);
            let c = std::sync::Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.with_scss_lock(|| {
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn reset_for_attempt_restores_fresh_state_and_bumps_incarnation() {
        let mut t = TxnDesc::new(0, 1);
        let addr = t.addr();
        t.request_abort();
        t.acknowledge_abort();
        t.gained_object();
        t.set_waiting(true);
        t.reset_for_attempt(3, 9);
        assert_eq!(t.status(), Status::Active);
        assert!(!t.abort_requested());
        assert_eq!(t.priority(), 0);
        assert!(!t.is_waiting());
        assert_eq!((t.thread, t.serial, t.incarnation), (3, 9, 1));
        assert_eq!(t.addr(), addr, "synthetic line is kept across resets");
        t.reset_for_attempt(3, 10);
        assert_eq!(t.incarnation, 2);
    }

    #[test]
    fn descriptor_is_cache_line_pair_aligned() {
        assert_eq!(std::mem::align_of::<TxnDesc>(), 128);
        let t = TxnDesc::new(0, 1);
        assert_eq!(&t as *const _ as usize % 128, 0);
    }

    #[test]
    fn concurrent_request_vs_commit_is_exclusive() {
        // Exactly one of {commit succeeded, abort request saw Active}
        // can hold for a given descriptor: if the requester saw Active
        // the commit must fail, and if the commit succeeded the requester
        // must see Committed.
        for _ in 0..200 {
            let t = std::sync::Arc::new(TxnDesc::new(0, 1));
            let t2 = std::sync::Arc::clone(&t);
            let req = std::thread::spawn(move || t2.request_abort());
            let committed = t.try_commit();
            let seen = req.join().unwrap();
            if committed {
                // Requester may have seen Active (before the commit CAS —
                // impossible: CAS requires ANP clear) or Committed.
                assert_eq!(seen, Status::Committed, "commit won ⇒ request was late");
            } else {
                assert_eq!(seen, Status::Active, "commit lost ⇒ request was first");
            }
        }
    }
}
