//! Small concurrency utilities shared by the STM engines.

use std::cell::UnsafeCell;

/// Pads and aligns a value to 128 bytes (two 64-byte lines: adjacent-line
/// prefetchers pull pairs) so neighbouring slots never false-share.
#[repr(align(128))]
#[derive(Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Per-core mutable slots.
///
/// Each participating thread owns exactly one slot, indexed by its
/// platform core id, so mutable access without synchronization is sound as
/// long as the caller upholds the contract: **a slot is only ever accessed
/// from the thread whose core id it belongs to.** The accessor is `unsafe`
/// to make that contract explicit at every use site; all call sites in
/// this workspace derive the index from `Platform::core_id()` of the
/// calling thread.
///
/// Slots are cache-padded so per-thread counters never false-share.
pub struct PerCore<T> {
    slots: Vec<CachePadded<UnsafeCell<T>>>,
}

unsafe impl<T: Send> Sync for PerCore<T> {}
unsafe impl<T: Send> Send for PerCore<T> {}

impl<T> PerCore<T> {
    pub fn new(n: usize, mut init: impl FnMut(usize) -> T) -> Self {
        PerCore { slots: (0..n).map(|i| CachePadded::new(UnsafeCell::new(init(i)))).collect() }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable access to slot `id`.
    ///
    /// # Safety
    /// The caller must guarantee `id` is the calling thread's own core id
    /// (or that no other thread can access slot `id` concurrently).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self, id: usize) -> &mut T {
        &mut *self.slots[id].get()
    }

    /// Iterate all slots. Only sound when no thread is mutating any slot
    /// (e.g. after a run completes); hence `&mut self`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|c| c.get_mut())
    }
}

/// Exponential randomized backoff used between transaction retries.
///
/// The paper's contention managers separate *policy* (who aborts) from
/// *mechanism*; backoff is the mechanism that breaks symmetric retry races
/// in an obstruction-free system.
#[derive(Clone, Debug)]
pub struct Backoff {
    attempt: u32,
    cap: u32,
}

impl Backoff {
    pub fn new() -> Self {
        Backoff { attempt: 0, cap: 16 }
    }

    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Number of spin-wait steps to take before the next retry, given a
    /// random word. Grows 2^attempt up to the cap.
    pub fn steps(&mut self, random: u64) -> u64 {
        let exp = self.attempt.min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let window = 1u64 << exp.min(16);
        random % window
    }

    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percore_slots_are_independent() {
        let pc = PerCore::new(4, |i| i * 10);
        unsafe {
            *pc.get(2) += 1;
            assert_eq!(*pc.get(0), 0);
            assert_eq!(*pc.get(2), 21);
        }
    }

    #[test]
    fn percore_iter_mut_visits_all() {
        let mut pc = PerCore::new(3, |i| i);
        let sum: usize = pc.iter_mut().map(|v| *v).sum();
        assert_eq!(sum, 3);
    }

    #[test]
    fn backoff_windows_grow() {
        let mut b = Backoff::new();
        // With random = u64::MAX the step count is window - 1: strictly
        // nondecreasing windows.
        let s1 = b.steps(u64::MAX);
        let s2 = b.steps(u64::MAX);
        let s3 = b.steps(u64::MAX);
        assert!(s1 <= s2 && s2 <= s3);
        assert_eq!(s1, 0); // first window is 1
    }

    #[test]
    fn backoff_reset_restarts() {
        let mut b = Backoff::new();
        for _ in 0..10 {
            b.steps(7);
        }
        b.reset();
        assert_eq!(b.attempt(), 0);
    }

    #[test]
    fn backoff_is_capped() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.steps(u64::MAX);
        }
        assert!(b.steps(u64::MAX) < (1 << 17));
    }
}
